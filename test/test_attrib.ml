(* Flow-level delay attribution: the exact-sum invariant across protocols,
   aggregate totals against the AFCT, serial/fork byte identity, the fabric
   sampler's determinism and bounds, and the report explain layer. *)

let fat_tree protocol ~on_attrib =
  Runner.run ~attrib:true ~on_attrib protocol
    (Scenario.fat_tree_uniform ~k:4 ~num_flows:150 ~seed:1 ~load:0.6 ())

(* Every completed flow's components sum to its FCT with float equality —
   not within a tolerance — on a k=4 fat-tree, for a vanilla transport, a
   priority-dropping one, and PASE (arbitration gating). *)
let test_exact_sum_across_protocols () =
  List.iter
    (fun (name, protocol) ->
      let records = ref [] in
      let r =
        fat_tree protocol ~on_attrib:(fun ~size_pkts:_ rec_ ->
            records := rec_ :: !records)
      in
      Alcotest.(check int)
        (name ^ ": one record per completed flow")
        r.Runner.completed
        (List.length !records);
      List.iter
        (fun (rec_ : Delay.record) ->
          if not (Delay.check_sum rec_) then
            Alcotest.fail
              (Printf.sprintf "%s: flow %d components do not sum to fct" name
                 rec_.Delay.flow);
          List.iter
            (fun (comp, v) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: flow %d %s >= 0" name rec_.Delay.flow comp)
                true (v >= 0.))
            [
              ("serialization", rec_.Delay.serialization);
              ("propagation", rec_.Delay.propagation);
              ("arb_wait", rec_.Delay.arb_wait);
              ("rto_stall", rec_.Delay.rto_stall);
            ])
        !records;
      (* Aggregate fct total agrees with the runner's AFCT. *)
      let agg = match r.Runner.attrib with Some a -> a | None -> Alcotest.fail "no aggregate" in
      Alcotest.(check int) (name ^ ": aggregate flow count") r.Runner.completed
        (Attrib.flows agg);
      let total = Attrib.component_sum agg ~band:"all" ~component:"fct" in
      let afct_from_agg = total /. float_of_int r.Runner.completed in
      Alcotest.(check bool)
        (name ^ ": aggregate total matches afct")
        true
        (Float.abs (afct_from_agg -. r.Runner.afct)
        <= 1e-9 *. Float.max 1e-12 r.Runner.afct))
    [ ("dctcp", Runner.Dctcp); ("pfabric", Runner.Pfabric); ("pase", Runner.pase) ]

(* Attribution rides the fork pool byte-identically: the encoded result of a
   3-way fork equals the serial in-process one, aggregate included. *)
let test_fork_matches_serial () =
  let jobs =
    List.map
      (fun p ->
        (p, Scenario.fat_tree_uniform ~k:4 ~num_flows:80 ~seed:2 ~load:0.5 ()))
      [ Runner.Dctcp; Runner.Pfabric; Runner.pase ]
  in
  let serial = Parallel.run_jobs ~jobs:1 ~cache_dir:None ~attrib:true jobs in
  let forked = Parallel.run_jobs ~jobs:3 ~cache_dir:None ~attrib:true jobs in
  List.iteri
    (fun i (s, f) ->
      Alcotest.(check string)
        (Printf.sprintf "job %d byte-identical" i)
        (Result_codec.encode s) (Result_codec.encode f);
      Alcotest.(check bool)
        (Printf.sprintf "job %d carries aggregate" i)
        true
        (s.Runner.attrib <> None))
    (List.combine serial forked)

(* Explicit-rate protocols wait for grants: the wait shows up as arb_wait,
   and nowhere else claims it. *)
let test_pdq_arb_wait_positive () =
  let r =
    Runner.run ~attrib:true Runner.Pdq
      (Scenario.intra_rack_medium ~num_flows:60 ~seed:1 ~load:0.6 ())
  in
  let agg = match r.Runner.attrib with Some a -> a | None -> Alcotest.fail "no aggregate" in
  Alcotest.(check bool) "pdq aggregate arb_wait > 0" true
    (Attrib.component_sum agg ~band:"all" ~component:"arb_wait" > 0.)

(* A plain run does not pay for attribution: no aggregate, and the global
   Delay switch is off afterwards. *)
let test_off_by_default () =
  let r =
    Runner.run Runner.Dctcp
      (Scenario.intra_rack_medium ~num_flows:20 ~seed:1 ~load:0.4 ())
  in
  Alcotest.(check bool) "no aggregate" true (r.Runner.attrib = None);
  Alcotest.(check bool) "delay switch off" false (Delay.on ())

(* Merging two half-aggregates reproduces the single-pass one up to float
   summation order (Welford's merge reassociates, so byte identity is not
   promised — component totals and counts are). *)
let test_aggregate_merge () =
  let recs = ref [] in
  let _ =
    Runner.run ~attrib:true
      ~on_attrib:(fun ~size_pkts rec_ -> recs := (size_pkts, rec_) :: !recs)
      Runner.Dctcp
      (Scenario.intra_rack_medium ~num_flows:40 ~seed:3 ~load:0.5 ())
  in
  let recs = List.rev !recs in
  let one = Attrib.create () in
  List.iter (fun (size_pkts, r) -> Attrib.add one ~size_pkts r) recs;
  let n = List.length recs / 2 in
  let a = Attrib.create () and b = Attrib.create () in
  List.iteri
    (fun i (size_pkts, r) ->
      Attrib.add (if i < n then a else b) ~size_pkts r)
    recs;
  let merged = Attrib.merge a b in
  Alcotest.(check int) "flow count" (Attrib.flows one) (Attrib.flows merged);
  Array.iter
    (fun comp ->
      let x = Attrib.component_sum one ~band:"all" ~component:comp in
      let y = Attrib.component_sum merged ~band:"all" ~component:comp in
      Alcotest.(check bool)
        (comp ^ " total agrees")
        true
        (Float.abs (x -. y) <= 1e-12 *. Float.max 1. (Float.abs x)))
    Attrib.components

(* ---- fabric sampler ----------------------------------------------------- *)

let sampled ?(capacity = 1 lsl 16) () =
  let store = Series.store ~capacity () in
  let r =
    Runner.run ~series:(store, 1e-4) Runner.Dctcp
      (Scenario.intra_rack_medium ~num_flows:40 ~seed:1 ~load:0.6 ())
  in
  (r, store)

let test_sampler_deterministic () =
  let _, s1 = sampled () in
  let _, s2 = sampled () in
  Alcotest.(check bool) "samples taken" true (Series.seen s1 > 0);
  Alcotest.(check int) "same count" (Series.seen s1) (Series.seen s2);
  List.iter2
    (fun (a : Series.sample) (b : Series.sample) ->
      Alcotest.(check string) "metric" a.Series.metric b.Series.metric;
      Alcotest.(check bool) "time" true (a.Series.t = b.Series.t);
      Alcotest.(check bool) "value" true (a.Series.v = b.Series.v))
    (Series.samples s1) (Series.samples s2)

let test_sampler_bounded_store () =
  let r, full = sampled () in
  ignore r;
  let seen = Series.seen full in
  Alcotest.(check bool) "enough samples to overflow" true (seen > 64);
  let _, small = sampled ~capacity:64 () in
  Alcotest.(check int) "sees everything" seen (Series.seen small);
  Alcotest.(check int) "retains capacity" 64
    (List.length (Series.samples small));
  Alcotest.(check int) "counts evictions" (seen - 64) (Series.dropped small);
  (* The retained tail equals the tail of the unbounded store. *)
  let tail l n =
    let len = List.length l in
    List.filteri (fun i _ -> i >= len - n) l
  in
  List.iter2
    (fun (a : Series.sample) (b : Series.sample) ->
      Alcotest.(check string) "tail metric" a.Series.metric b.Series.metric)
    (tail (Series.samples full) 64)
    (Series.samples small)

let test_sampler_spill () =
  let spilled = ref 0 in
  let store = Series.store ~capacity:8 ~spill:(fun _ -> incr spilled) () in
  let _ =
    Runner.run ~series:(store, 1e-4) Runner.Dctcp
      (Scenario.intra_rack_medium ~num_flows:10 ~seed:1 ~load:0.4 ())
  in
  Alcotest.(check int) "spill sees every sample" (Series.seen store) !spilled

(* ---- json + report ------------------------------------------------------ *)

let test_json_parser () =
  (match Json.parse {|{"a":[1,2.5,-3e2],"b":"x\u00e9\n","c":true,"d":null}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check (option (list (float 0.))))
        "array" (Some [ 1.; 2.5; -300. ])
        (Option.map
           (List.filter_map Json.to_float)
           (Option.bind (Json.member "a" v) Json.to_list));
      Alcotest.(check (option string)) "escapes" (Some "x\xc3\xa9\n")
        (Json.string_member "b" v);
      Alcotest.(check bool) "bool member present" true
        (Json.member "c" v = Some (Json.Bool true)));
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"\\u12\"" ]

let report_inputs () =
  let attrib_lines = ref [] in
  let store = Series.store () in
  let r =
    Runner.run ~attrib:true
      ~on_attrib:(fun ~size_pkts rec_ ->
        attrib_lines :=
          Result_codec.attrib_record_to_json ~size_pkts rec_ :: !attrib_lines)
      ~series:(store, 1e-4) Runner.pase
      (Scenario.intra_rack_medium ~num_flows:60 ~seed:1 ~load:0.6 ())
  in
  let parse s =
    match Json.parse s with Ok v -> v | Error e -> Alcotest.fail e
  in
  let run = parse (Result_codec.to_json r) in
  let attrib_lines = List.rev_map parse !attrib_lines in
  let series_lines =
    List.map (fun s -> parse (Series.sample_json s)) (Series.samples store)
  in
  (run, attrib_lines, series_lines)

let test_report_deterministic_and_checked () =
  let run, attrib_lines, series_lines = report_inputs () in
  let build () =
    Report.to_json
      (Report.build ~run ~attrib_lines ~series_lines ~top:3 ())
  in
  let j1 = build () in
  Alcotest.(check string) "report reruns byte-identical" j1 (build ());
  let rep =
    match Json.parse j1 with Ok v -> v | Error e -> Alcotest.fail e
  in
  Alcotest.(check (option (float 0.))) "schema version" (Some 1.)
    (Json.float_member "report" rep);
  let attribution =
    match Json.member "attribution" rep with
    | Some a -> a
    | None -> Alcotest.fail "no attribution section"
  in
  let check =
    match Json.member "check" attribution with
    | Some c -> c
    | None -> Alcotest.fail "no check section"
  in
  (* The per-flow residual is exactly zero: the invariant survives the trip
     through JSON text and back. *)
  Alcotest.(check (option (float 0.))) "max_flow_residual is exactly 0"
    (Some 0.)
    (Json.float_member "max_flow_residual" check);
  let afct = Json.float_member "afct" check in
  let afct' = Json.float_member "afct_from_components" check in
  (match (afct, afct') with
  | Some a, Some b ->
      Alcotest.(check bool) "component afct near afct" true
        (Float.abs (a -. b) <= 1e-9 *. Float.max 1e-12 a)
  | _ -> Alcotest.fail "missing afct check fields");
  Alcotest.(check bool) "series section present" true
    (Json.member "series" rep <> None)

let suite =
  [
    Alcotest.test_case "exact sum across protocols" `Slow
      test_exact_sum_across_protocols;
    Alcotest.test_case "fork matches serial" `Slow test_fork_matches_serial;
    Alcotest.test_case "pdq arb wait positive" `Quick
      test_pdq_arb_wait_positive;
    Alcotest.test_case "off by default" `Quick test_off_by_default;
    Alcotest.test_case "aggregate merge" `Quick test_aggregate_merge;
    Alcotest.test_case "sampler deterministic" `Quick
      test_sampler_deterministic;
    Alcotest.test_case "sampler bounded store" `Quick
      test_sampler_bounded_store;
    Alcotest.test_case "sampler spill" `Quick test_sampler_spill;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "report deterministic and checked" `Quick
      test_report_deterministic_and_checked;
  ]
