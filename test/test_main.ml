let () =
  Alcotest.run "pase-repro"
    [
      ("rng", Test_rng.suite);
      ("eheap", Test_eheap.suite);
      ("engine", Test_engine.suite);
      ("queues", Test_queues.suite);
      ("link-net-topology", Test_link_net.suite);
      ("transport", Test_transport.suite);
      ("protocols", Test_protocols.suite);
      ("pdq", Test_pdq.suite);
      ("d3", Test_d3.suite);
      ("arbitration", Test_arbitration.suite);
      ("pase-core", Test_pase_core.suite);
      ("stats", Test_stats.suite);
      ("streaming", Test_streaming.suite);
      ("workload", Test_workload.suite);
      ("determinism", Test_determinism.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("fat-tree", Test_fat_tree.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("attrib", Test_attrib.suite);
      ("behaviours", Test_behaviours.suite);
      ("faults", Test_faults.suite);
      ("laws", Test_laws.suite);
    ]
