(* Extended metrics (buckets, slowdown) and control-plane failure
   injection with soft-state expiry. *)

let test_bucket_afct () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.001 ();
  Fct.add f ~flow:2 ~size_pkts:20 ~start_time:0. ~fct:0.003 ();
  Fct.add f ~flow:3 ~size_pkts:100 ~start_time:0. ~fct:0.010 ();
  Fct.add f ~flow:4 ~size_pkts:15 ~start_time:0. ~fct:0.100 ~censored:true ();
  Alcotest.(check (float 1e-9)) "small bucket" 0.002 (Fct.bucket_afct f ~lo:0 ~hi:50);
  Alcotest.(check int) "small count (censored excluded)" 2
    (Fct.bucket_count f ~lo:0 ~hi:50);
  Alcotest.(check (float 1e-9)) "large bucket" 0.010
    (Fct.bucket_afct f ~lo:50 ~hi:max_int);
  Alcotest.(check bool) "empty bucket is nan" true
    (Float.is_nan (Fct.bucket_afct f ~lo:1000 ~hi:2000))

let test_slowdown () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.002 ~ideal:0.001 ();
  Fct.add f ~flow:2 ~size_pkts:10 ~start_time:0. ~fct:0.004 ~ideal:0.001 ();
  Fct.add f ~flow:3 ~size_pkts:10 ~start_time:0. ~fct:0.009 ();
  (* no ideal: excluded *)
  Alcotest.(check (float 1e-9)) "mean slowdown" 3. (Fct.mean_slowdown f);
  Alcotest.(check (float 1e-9)) "p99 slowdown" 4. (Fct.p99_slowdown f)

let test_slowdown_nan_without_ideals () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.002 ();
  Alcotest.(check bool) "nan" true (Float.is_nan (Fct.mean_slowdown f))

let test_runner_records_ideal () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:30 ~seed:5 ~load:0.4 () in
  let r = Runner.run Runner.pase sc in
  Alcotest.(check bool) "slowdowns defined" true
    (not (Float.is_nan (Fct.mean_slowdown r.Runner.fct)));
  Alcotest.(check bool) "slowdown >= 1" true (Fct.mean_slowdown r.Runner.fct >= 1.)

let test_nominal_rtt_close_to_measured () =
  List.iter
    (fun sc ->
      let e = Engine.create () in
      let c = Counters.create () in
      let plan =
        Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
            Queue_disc.droptail c ~limit_pkts:64)
      in
      let nominal = Scenario.nominal_rtt sc in
      let measured = plan.Scenario.rtt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: nominal %.0fus vs measured %.0fus"
           sc.Scenario.name (nominal *. 1e6) (measured *. 1e6))
        true
        (Float.abs (nominal -. measured) /. measured < 0.15))
    [
      Scenario.left_right ~num_flows:1 ~load:0.5 ();
      Scenario.intra_rack_medium ~num_flows:1 ~load:0.5 ();
      Scenario.testbed ~num_flows:1 ~load:0.5 ();
    ]

(* Failure injection: arbitration messages lost with high probability.
   Flows must still complete (soft state + local decisions) and total
   degradation must be bounded. *)
let test_ctrl_loss_graceful () =
  let run p =
    let sc = Scenario.left_right ~num_flows:150 ~seed:6 ~load:0.6 () in
    Runner.run (Runner.Pase { Config.default with Config.ctrl_loss_prob = p }) sc
  in
  let clean = run 0.0 in
  let lossy = run 0.5 in
  Alcotest.(check int) "all flows complete under 50% msg loss" 150
    lossy.Runner.completed;
  Alcotest.(check bool)
    (Printf.sprintf "bounded degradation (%.3f vs %.3f ms)"
       (lossy.Runner.afct *. 1e3) (clean.Runner.afct *. 1e3))
    true
    (lossy.Runner.afct < 3. *. clean.Runner.afct)

let test_expiry_cleans_dead_flows () =
  (* An arbitrator holding state for a source that stopped refreshing must
     drop it after the expiry age, unblocking the flows behind it. *)
  let e = Engine.create () in
  let c = Counters.create () in
  let cfg = { Config.default with Config.state_expiry_rounds = 5 } in
  let topo =
    Topology.single_rack e c ~hosts:3 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:8 ~limit_pkts:500 ~mark_threshold:20)
  in
  let h = topo.Topology.hosts in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:1e5 in
  Hierarchy.start hier;
  (* Flow 1 registers once and then goes silent (we remove its flow-state
     from the hierarchy without telling the arbitrators, simulating a dead
     source whose soft state lingers). *)
  let f1 = Flow.make ~id:1 ~src:h.(0) ~dst:h.(2) ~size_pkts:10 ~start_time:0. () in
  Hierarchy.add_flow hier ~flow:f1
    ~criterion:(fun () -> 10.)
    ~demand:(fun () -> 1e9)
    ~apply:(fun ~queue:_ ~rref_bps:_ -> ())
    ();
  let arb =
    match Hierarchy.arbitrator_of_link hier h.(0) (Topology.tor_of topo h.(0)) with
    | Some a -> a
    | None -> Alcotest.fail "no arbitrator"
  in
  Alcotest.(check bool) "state present" true (Arbitrator.mem arb ~flow:1);
  (* Simulate the dead source: deregister the flow from the hierarchy but
     plant its stale soft state back into the arbitrator directly. *)
  Hierarchy.remove_flow hier ~flow_id:1;
  Arbitrator.upsert arb ~flow:1 ~criterion:10. ~demand_bps:1e9
    ~now:(Engine.now e);
  Engine.run ~until:(10. *. cfg.Config.arb_period) e;
  Hierarchy.stop hier;
  Alcotest.(check bool) "stale state expired" false (Arbitrator.mem arb ~flow:1)

let test_task_completion_times () =
  let f = Fct.create () in
  (* Task 1: two flows, spans 0..5ms. Task 2: censored member: excluded. *)
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.002 ~task:1 ();
  Fct.add f ~flow:2 ~size_pkts:10 ~start_time:0.001 ~fct:0.004 ~task:1 ();
  Fct.add f ~flow:3 ~size_pkts:10 ~start_time:0. ~fct:0.001 ~task:2 ();
  Fct.add f ~flow:4 ~size_pkts:10 ~start_time:0. ~fct:0.050 ~task:2 ~censored:true ();
  Fct.add f ~flow:5 ~size_pkts:10 ~start_time:0. ~fct:0.003 ();
  (* no task *)
  (match Fct.task_completion_times f with
  | [ t ] -> Alcotest.(check (float 1e-9)) "task 1 makespan" 0.005 t
  | l -> Alcotest.fail (Printf.sprintf "expected 1 task, got %d" (List.length l)))

let test_task_aware_scheduling_end_to_end () =
  (* With hot aggregators, task-FIFO arbitration must not be worse than
     SRPT on mean query completion (classic FIFO-LM result). *)
  let scenario =
    Scenario.worker_aggregator ~hosts:10 ~aggregators:2 ~num_flows:180 ~seed:2
      ~load:0.7 ()
  in
  let mean proto =
    Summary.mean (Fct.task_completion_times (Runner.run proto scenario).Runner.fct)
  in
  let srpt = mean Runner.pase in
  let task =
    mean (Runner.Pase { Config.default with Config.scheduling = Config.Task_aware })
  in
  Alcotest.(check bool)
    (Printf.sprintf "task-aware helps (%.2f vs %.2f ms)" (task *. 1e3) (srpt *. 1e3))
    true
    (task <= srpt *. 1.05)

let test_incast_hotspot_structure () =
  let sc =
    Scenario.worker_aggregator ~hosts:10 ~aggregators:2 ~num_flows:90 ~seed:3
      ~load:0.5 ()
  in
  let e = Engine.create () in
  let c = Counters.create () in
  let plan =
    Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
        Queue_disc.droptail c ~limit_pkts:64)
  in
  let aggs =
    List.filter_map (fun s -> if s.Scenario.long_lived then None else Some s.Scenario.dst)
      plan.Scenario.specs
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "only 2 aggregators" 2 (List.length aggs);
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then
        Alcotest.(check bool) "task tagged" true (s.Scenario.task <> None))
    plan.Scenario.specs

let suite =
  [
    Alcotest.test_case "bucket afct" `Quick test_bucket_afct;
    Alcotest.test_case "task completion times" `Quick test_task_completion_times;
    Alcotest.test_case "task-aware scheduling e2e" `Slow test_task_aware_scheduling_end_to_end;
    Alcotest.test_case "incast hotspot structure" `Quick test_incast_hotspot_structure;
    Alcotest.test_case "slowdown" `Quick test_slowdown;
    Alcotest.test_case "slowdown nan" `Quick test_slowdown_nan_without_ideals;
    Alcotest.test_case "runner records ideal" `Quick test_runner_records_ideal;
    Alcotest.test_case "nominal rtt sane" `Quick test_nominal_rtt_close_to_measured;
    Alcotest.test_case "ctrl loss graceful" `Slow test_ctrl_loss_graceful;
    Alcotest.test_case "expiry cleans dead flows" `Quick test_expiry_cleans_dead_flows;
  ]
