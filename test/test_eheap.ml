(* Event heap: ordering, FIFO tie-breaks, compaction, value release in dead
   slots, and model-based properties against a naive sorted list. *)

let test_empty () =
  let h = Eheap.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Eheap.is_empty h);
  Alcotest.(check (option (pair (float 0.) int))) "pop none" None (Eheap.pop h)

let test_ordering () =
  let h = Eheap.create ~dummy:0 () in
  List.iteri
    (fun i t -> Eheap.add h ~time:t ~seq:i i)
    [ 5.0; 1.0; 3.0; 0.5; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Eheap.pop h with
    | Some (t, _) ->
        order := t :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.)))
    "sorted" [ 0.5; 1.0; 3.0; 4.0; 5.0 ] (List.rev !order)

let test_fifo_ties () =
  let h = Eheap.create ~dummy:0 () in
  for i = 0 to 9 do
    Eheap.add h ~time:1.0 ~seq:i i
  done;
  let got = ref [] in
  let rec drain () =
    match Eheap.pop h with
    | Some (_, v) ->
        got := v :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "FIFO on equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !got)

let test_size_tracking () =
  let h = Eheap.create ~dummy:0 () in
  for i = 1 to 100 do
    Eheap.add h ~time:(float_of_int (100 - i)) ~seq:i i
  done;
  Alcotest.(check int) "size 100" 100 (Eheap.size h);
  ignore (Eheap.pop h);
  Alcotest.(check int) "size 99" 99 (Eheap.size h);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Eheap.peek_time h);
  Alcotest.(check (float 0.)) "min_time" 1. (Eheap.min_time h);
  Alcotest.(check int) "min_seq" 99 (Eheap.min_seq h)

let test_interleaved () =
  (* Interleave adds and pops; popped keys must be monotone when no smaller
     key is inserted afterwards. *)
  let h = Eheap.create ~dummy:0 () in
  Eheap.add h ~time:2. ~seq:0 0;
  Eheap.add h ~time:1. ~seq:1 1;
  let t1, _ = Option.get (Eheap.pop h) in
  Eheap.add h ~time:3. ~seq:2 2;
  let t2, _ = Option.get (Eheap.pop h) in
  let t3, _ = Option.get (Eheap.pop h) in
  Alcotest.(check (list (float 0.))) "order" [ 1.; 2.; 3. ] [ t1; t2; t3 ]

let test_compact () =
  (* Drop the odd-seq half; the survivors must drain in unchanged relative
     order. *)
  let h = Eheap.create ~dummy:(-1) () in
  for i = 0 to 99 do
    Eheap.add h ~time:(float_of_int ((i * 37) mod 50)) ~seq:i i
  done;
  Eheap.compact h ~keep:(fun ~seq _ -> seq mod 2 = 0);
  Alcotest.(check int) "half survive" 50 (Eheap.size h);
  let rec drain acc =
    match Eheap.pop h with
    | Some (t, v) -> drain ((t, v) :: acc)
    | None -> List.rev acc
  in
  let got = drain [] in
  let expect =
    List.init 50 (fun j ->
        let i = 2 * j in
        (float_of_int ((i * 37) mod 50), i))
    |> List.sort (fun (ta, sa) (tb, sb) ->
           match compare ta tb with 0 -> compare sa sb | c -> c)
  in
  Alcotest.(check (list (pair (float 0.) int))) "survivors in key order" expect got

(* Regression: [pop] used to leave the removed entry reachable at
   [arr.(len)] (and [grow] used to copy dead slots), retaining popped values
   — event closures, packets — for the life of the simulation. Popped values
   must become collectable as soon as the caller drops them. *)
let heap_with_popped_values n =
  let h = Eheap.create ~dummy:Bytes.empty () in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let v = Bytes.make 64 (Char.chr (65 + (i mod 26))) in
    Weak.set w i (Some v);
    Eheap.add h ~time:(float_of_int i) ~seq:i v
  done;
  for _ = 1 to n do
    ignore (Eheap.pop h)
  done;
  (h, w)

let test_pop_releases_values () =
  let h, w = heap_with_popped_values 1 in
  Gc.full_major ();
  Alcotest.(check bool) "popped value collected" false (Weak.check w 0);
  Alcotest.(check int) "heap empty" 0 (Eheap.size (Sys.opaque_identity h))

let test_pop_releases_values_after_grow () =
  (* More entries than the initial capacity, so [grow] runs too. *)
  let n = 200 in
  let h, w = heap_with_popped_values n in
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "popped value %d collected" i)
      false (Weak.check w i)
  done;
  Alcotest.(check int) "heap empty" 0 (Eheap.size (Sys.opaque_identity h))

let test_compact_releases_values () =
  (* Values dropped by [compact] must not be retained in dead tail slots. *)
  let n = 100 in
  let h = Eheap.create ~dummy:Bytes.empty () in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let v = Bytes.make 64 'x' in
    Weak.set w i (Some v);
    Eheap.add h ~time:(float_of_int (i mod 7)) ~seq:i v
  done;
  Eheap.compact h ~keep:(fun ~seq _ -> seq < 10);
  Gc.full_major ();
  for i = 10 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "compacted value %d collected" i)
      false (Weak.check w i)
  done;
  Alcotest.(check int) "survivors" 10 (Eheap.size (Sys.opaque_identity h))

let test_compact_shrinks_capacity () =
  (* A long run's high-water mark must not pin RSS: once compaction leaves
     occupancy far below capacity, the SoA backing arrays shrink (to 2x
     live, floored at the initial 64), and the heap keeps working — grows
     again, drains in order — after the swap. *)
  let h = Eheap.create ~dummy:(-1) () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Eheap.add h ~time:(float_of_int ((i * 37) mod 997)) ~seq:i i
  done;
  let peak = Eheap.capacity h in
  Alcotest.(check bool) "capacity grew past 10k" true (peak >= n);
  Eheap.compact h ~keep:(fun ~seq _ -> seq < 10);
  Alcotest.(check int) "10 survive" 10 (Eheap.size h);
  Alcotest.(check int) "capacity shrank to the floor" 64 (Eheap.capacity h);
  (* A modest survivor set above the floor shrinks to 2x live instead. *)
  let h2 = Eheap.create ~dummy:(-1) () in
  for i = 0 to n - 1 do
    Eheap.add h2 ~time:(float_of_int i) ~seq:i i
  done;
  Eheap.compact h2 ~keep:(fun ~seq _ -> seq < 100);
  Alcotest.(check int) "capacity = 2x live" 200 (Eheap.capacity h2);
  (* No shrink while occupancy stays above a quarter of capacity: dropping
     almost nothing must not reallocate (compact runs on hot paths). *)
  let h3 = Eheap.create ~dummy:(-1) () in
  for i = 0 to n - 1 do
    Eheap.add h3 ~time:(float_of_int i) ~seq:i i
  done;
  let cap3 = Eheap.capacity h3 in
  Eheap.compact h3 ~keep:(fun ~seq _ -> seq > 0);
  Alcotest.(check int) "dense heap keeps its arrays" cap3 (Eheap.capacity h3);
  (* The shrunk heap still orders correctly and regrows. *)
  for i = n to n + 499 do
    Eheap.add h ~time:(float_of_int ((i * 53) mod 997)) ~seq:i i
  done;
  let rec drain last count =
    match Eheap.pop h with
    | Some (t, _) ->
        Alcotest.(check bool) "monotone drain after shrink" true (t >= last);
        drain t (count + 1)
    | None -> count
  in
  Alcotest.(check int) "all survivors drain" 510 (drain neg_infinity 0)

let prop_heap_sorts =
  QCheck.Test.make ~name:"Eheap drains in sorted key order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let h = Eheap.create ~dummy:0 () in
      List.iteri (fun i t -> Eheap.add h ~time:t ~seq:i i) times;
      let rec drain acc =
        match Eheap.pop h with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare times)

let prop_fifo_on_equal_keys =
  QCheck.Test.make ~name:"Eheap preserves insertion order on equal keys"
    ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let h = Eheap.create ~dummy:0 () in
      for i = 0 to n - 1 do
        Eheap.add h ~time:7. ~seq:i i
      done;
      let rec drain acc =
        match Eheap.pop h with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.init n Fun.id)

(* Model-based property: drive a random interleaving of add / pop / compact
   against a naive sorted association list keyed by (time, seq). The heap
   must pop exactly what the model pops, at every step. Times are drawn
   from a tiny set to force FIFO tie-breaks constantly. *)
let prop_model_interleaved =
  let op =
    QCheck.(
      oneof
        [
          map (fun t -> `Add (float_of_int t)) (int_bound 5);
          always `Pop;
          map (fun k -> `Compact k) (int_bound 3);
        ])
  in
  QCheck.Test.make ~name:"Eheap matches a sorted-list model under add/pop/compact"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 0 120) op)
    (fun ops ->
      let h = Eheap.create ~dummy:(-1) () in
      let model = ref [] (* sorted [(time, seq, value)] *) in
      let seq = ref 0 in
      let insert (t, s, v) l =
        let rec go = function
          | [] -> [ (t, s, v) ]
          | ((t', s', _) as hd) :: tl ->
              if t < t' || (t = t' && s < s') then (t, s, v) :: hd :: tl
              else hd :: go tl
        in
        go l
      in
      List.for_all
        (fun o ->
          match o with
          | `Add time ->
              let s = !seq in
              incr seq;
              Eheap.add h ~time ~seq:s s;
              model := insert (time, s, s) !model;
              true
          | `Pop -> (
              match (Eheap.pop h, !model) with
              | None, [] -> true
              | Some (t, v), (t', s', v') :: tl ->
                  model := tl;
                  t = t' && v = v' && Eheap.size h = List.length tl && s' = v'
              | Some _, [] | None, _ :: _ -> false)
          | `Compact k ->
              (* Keep a pseudo-random but deterministic subset. *)
              let keep ~seq _ = (seq * 7) mod 4 <> k in
              Eheap.compact h ~keep;
              model :=
                List.filter (fun (_, s, v) -> keep ~seq:s v) !model;
              Eheap.size h = List.length !model)
        ops
      &&
      let rec drain acc =
        match Eheap.pop h with
        | Some (t, v) -> drain ((t, v) :: acc)
        | None -> List.rev acc
      in
      drain [] = List.map (fun (t, _, v) -> (t, v)) !model)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "size tracking" `Quick test_size_tracking;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    Alcotest.test_case "compact" `Quick test_compact;
    Alcotest.test_case "pop releases values" `Quick test_pop_releases_values;
    Alcotest.test_case "pop releases values after grow" `Quick
      test_pop_releases_values_after_grow;
    Alcotest.test_case "compact releases values" `Quick
      test_compact_releases_values;
    Alcotest.test_case "compact shrinks capacity" `Quick
      test_compact_shrinks_capacity;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_fifo_on_equal_keys;
    QCheck_alcotest.to_alcotest prop_model_interleaved;
  ]
