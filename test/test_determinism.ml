(* Determinism suite: serial re-runs are bit-identical, the parallel runner
   reproduces serial results exactly, chunked [Engine.run ~until] matches a
   one-shot run event-for-event, the result codec round-trips, and the
   on-disk cache serves byte-identical results. *)

let encode = Result_codec.encode

(* A small protocol x load grid (8 configurations). *)
let small_grid () =
  let scenario ~load =
    Scenario.worker_aggregator ~hosts:6 ~num_flows:24 ~seed:7 ~load ()
  in
  List.concat_map
    (fun load ->
      List.map
        (fun p -> (p, scenario ~load))
        [ Runner.Dctcp; Runner.Pfabric; Runner.pase; Runner.L2dct ])
    [ 0.4; 0.7 ]

(* (a) Same seed => bit-identical results across two serial runs. *)
let test_serial_rerun_identical () =
  let sc () = Scenario.worker_aggregator ~hosts:6 ~num_flows:30 ~seed:3 ~load:0.6 () in
  let r1 = Runner.run Runner.pase (sc ()) in
  let r2 = Runner.run Runner.pase (sc ()) in
  Alcotest.(check bool) "encoded results identical" true (encode r1 = encode r2)

(* (b) Parallel fan-out reproduces the serial sweep exactly. *)
let test_parallel_matches_serial () =
  let grid = small_grid () in
  let serial = Parallel.run_jobs ~jobs:1 ~cache_dir:None grid in
  let parallel = Parallel.run_jobs ~jobs:4 ~cache_dir:None grid in
  Alcotest.(check int) "same number of results" (List.length serial)
    (List.length parallel);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "result %d identical" i)
        true
        (encode a = encode b))
    (List.combine serial parallel)

(* (c) Chunked [run ~until] equals one-shot execution event-for-event. *)
let test_chunked_until_matches_one_shot () =
  let program e trace =
    (* Ties, nested scheduling across chunk boundaries, and an event exactly
       on a boundary. *)
    for i = 0 to 9 do
      Engine.schedule_at e ~time:(0.25 *. float_of_int i) (fun () ->
          trace := (Engine.now e, i) :: !trace;
          if i = 2 then
            Engine.schedule e ~delay:0.6 (fun () ->
                trace := (Engine.now e, 100 + i) :: !trace))
    done;
    for i = 0 to 3 do
      Engine.schedule_at e ~time:1.7 (fun () ->
          trace := (Engine.now e, 200 + i) :: !trace)
    done
  in
  let one_shot = ref [] in
  let e1 = Engine.create () in
  program e1 one_shot;
  Engine.run ~until:2.5 e1;
  let chunked = ref [] in
  let e2 = Engine.create () in
  program e2 chunked;
  List.iter (fun h -> Engine.run ~until:h e2) [ 0.5; 1.0; 1.5; 1.7; 2.0; 2.5 ];
  Alcotest.(check (list (pair (float 1e-12) int)))
    "same events in the same order" (List.rev !one_shot) (List.rev !chunked);
  Alcotest.(check (float 1e-12)) "same final clock" (Engine.now e1) (Engine.now e2);
  Alcotest.(check int) "same processed count" (Engine.events_processed e1)
    (Engine.events_processed e2)

(* Censored flows keep their task and ideal fields (runner regression). *)
let test_censored_records_complete () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:30 ~seed:5 ~load:0.9 () in
  (* A tiny horizon censors most of the workload. *)
  let r = Runner.run ~horizon:0.002 Runner.Dctcp sc in
  Alcotest.(check bool) "some flows censored" true (r.Runner.censored > 0);
  Alcotest.(check (float 1e-12)) "duration reports the horizon" 0.002
    r.Runner.duration;
  List.iter
    (fun (rec_ : Fct.record) ->
      if rec_.Fct.censored then begin
        Alcotest.(check bool) "censored record has ideal" true
          (Option.is_some rec_.Fct.ideal);
        Alcotest.(check bool) "censored record has task" true
          (Option.is_some rec_.Fct.task)
      end)
    (Fct.records r.Runner.fct)

(* Codec: round-trip and versioned rejection. *)
let test_codec_roundtrip () =
  let sc = Scenario.testbed ~num_flows:20 ~seed:2 ~load:0.5 () in
  let r = Runner.run Runner.Dctcp sc in
  (match Result_codec.decode (encode r) with
  | Ok r' -> Alcotest.(check bool) "round-trips" true (encode r = encode r')
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  (match Result_codec.decode "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  let blob = encode r in
  let forged = "PASE-RES9999" ^ String.sub blob 12 (String.length blob - 12) in
  (match Result_codec.decode forged with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error e ->
      Alcotest.(check bool) "reports version mismatch" true
        (String.length e > 0));
  let json = Result_codec.to_json r in
  Alcotest.(check bool) "json names the scenario" true
    (String.length json > 2 && json.[0] = '{')

(* The on-disk cache: a second invocation is served entirely from disk and
   is bit-identical to the first. *)
let test_cache_hits_everything () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pase-test-cache-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ()
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup (fun () ->
      let grid = small_grid () in
      let first = Parallel.run_jobs ~jobs:2 ~cache_dir:(Some dir) grid in
      let hits = ref 0 in
      let second =
        Parallel.run_jobs ~jobs:2 ~cache_dir:(Some dir)
          ~on_result:(fun _ ~cached ~wall:_ _ -> if cached then incr hits)
          grid
      in
      Alcotest.(check int) "every configuration cached" (List.length grid) !hits;
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "cached result %d identical" i)
            true
            (encode a = encode b))
        (List.combine first second))

(* Duplicate configurations are simulated once and shared. *)
let test_duplicates_shared () =
  let sc = Scenario.testbed ~num_flows:15 ~seed:9 ~load:0.4 () in
  let job = (Runner.Dctcp, sc) in
  let runs = ref 0 in
  let results =
    Parallel.run_jobs ~jobs:1 ~cache_dir:None
      ~on_result:(fun _ ~cached ~wall:_ _ -> if not cached then incr runs)
      [ job; job; job ]
  in
  Alcotest.(check int) "three results" 3 (List.length results);
  Alcotest.(check int) "one simulation" 1 !runs;
  match results with
  | [ a; b; c ] ->
      Alcotest.(check bool) "identical" true
        (encode a = encode b && encode b = encode c)
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "serial rerun identical" `Quick test_serial_rerun_identical;
    Alcotest.test_case "parallel matches serial" `Slow test_parallel_matches_serial;
    Alcotest.test_case "chunked until matches one-shot" `Quick
      test_chunked_until_matches_one_shot;
    Alcotest.test_case "censored records complete" `Quick
      test_censored_records_complete;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "cache hits everything" `Slow test_cache_hits_everything;
    Alcotest.test_case "duplicates shared" `Quick test_duplicates_shared;
  ]
