(* Control-law micro-checks driven through real (tiny) networks: DCTCP
   backoff proportionality, D2TCP's deadline-dependent cuts, Algorithm 2's
   window policy at the three queue levels, and hierarchy latency
   ordering. *)

let rig () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  (e, topo)

let mk_sender topo ?deadline () =
  let flow =
    Flow.make ~id:1 ~src:topo.Topology.hosts.(0) ~dst:topo.Topology.hosts.(1)
      ~size_pkts:10_000 ~start_time:0. ?deadline ()
  in
  Sender_base.create topo.Topology.net ~flow ~conf:Sender_base.default_conf
    ~on_complete:(fun _ ~fct:_ -> ())
    ()

(* DCTCP's cut is proportional to alpha: with alpha pinned high the cut is
   deep, with alpha low it is shallow. *)
let test_dctcp_cut_proportional_to_alpha () =
  let _, topo = rig () in
  let cut alpha_target =
    let st = Ecn_cc.create_state () in
    let s = mk_sender topo () in
    (* Drive alpha: marked fraction = alpha_target per "window". *)
    for i = 0 to 10_000 do
      Ecn_cc.observe st s
        ~ecn:(float_of_int (i mod 100) < alpha_target *. 100.)
        ~weight:1
    done;
    Sender_base.set_cwnd s 100.;
    ignore (Ecn_cc.try_cut st s ~multiplier:(1. -. (Ecn_cc.alpha st /. 2.)));
    Sender_base.cwnd s
  in
  let deep = cut 1.0 in
  let shallow = cut 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "full marking halves (%.1f)" deep)
    true
    (deep > 49. && deep < 55.);
  Alcotest.(check bool)
    (Printf.sprintf "light marking cuts ~5%% (%.1f)" shallow)
    true
    (shallow > 92. && shallow < 97.)

(* D2TCP: for the same alpha, a tight-deadline flow cuts less than a
   loose-deadline one (gamma correction). *)
let test_d2tcp_deadline_changes_cut () =
  let _, topo = rig () in
  let cut_multiplier ~deadline =
    let flow =
      Flow.make ~id:1 ~src:topo.Topology.hosts.(0)
        ~dst:topo.Topology.hosts.(1) ~size_pkts:1000 ~start_time:0. ~deadline ()
    in
    let s =
      D2tcp.create topo.Topology.net ~flow
        ~on_complete:(fun _ ~fct:_ -> ())
        ()
    in
    let alpha = 0.6 in
    let d = D2tcp.imminence s in
    1. -. ((alpha ** d) /. 2.)
  in
  let tight = cut_multiplier ~deadline:1e-9 in
  let loose = cut_multiplier ~deadline:1000. in
  Alcotest.(check bool)
    (Printf.sprintf "tight keeps more window (%.3f vs %.3f)" tight loose)
    true (tight > loose)

(* Algorithm 2 window policy at each queue level, observed through a live
   PASE flow: top queue tracks Rref x RTT, and a bottom-queue flow stays at
   one segment. *)
let test_pase_window_policy () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let cfg = Config.default in
  let topo =
    Topology.single_rack e c ~hosts:4 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:8 ~limit_pkts:500 ~mark_threshold:20)
  in
  let h = topo.Topology.hosts in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(3) ~data_bytes:1500 in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. rtt) in
  Hierarchy.start hier;
  let mk id src size =
    let flow = Flow.make ~id ~src ~dst:h.(3) ~size_pkts:size ~start_time:0. () in
    let recv = Receiver.create topo.Topology.net ~flow () in
    let host =
      Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
        ~on_complete:(fun _ ~fct:_ -> Receiver.stop recv)
        ()
    in
    Pase_host.start host;
    host
  in
  let top = mk 1 h.(0) 5000 in
  let low = mk 2 h.(1) 6000 in
  (* Let a few arbitration rounds pass mid-flight. *)
  Engine.run ~until:(6. *. cfg.Config.arb_period) e;
  Alcotest.(check int) "first flow in top queue" 0 (Pase_host.queue top);
  Alcotest.(check bool) "second flow demoted" true (Pase_host.queue low > 0);
  let bdp = Pase_host.rref_bps top *. rtt /. (8. *. 1460.) in
  let cwnd_top = Sender_base.cwnd (Pase_host.sender top) in
  Alcotest.(check bool)
    (Printf.sprintf "top cwnd ~ Rref x RTT (%.1f vs %.1f)" cwnd_top bdp)
    true
    (Float.abs (cwnd_top -. bdp) /. bdp < 0.25);
  Hierarchy.stop hier

(* Hierarchy contact latencies: a cross-core flow's decision arrives later
   than an intra-rack flow's, and delegation shortens the wait. *)
let test_hierarchy_latency_ordering () =
  let first_apply_delay ~cfg ~cross =
    Packet.reset_ids ();
    let e = Engine.create () in
    let c = Counters.create () in
    let topo =
      Topology.three_tier e c ~hosts_per_tor:4 ~tors:4 ~aggs:2
        ~edge_rate_bps:1e9 ~fabric_rate_bps:10e9 ~link_delay_s:25e-6
        ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
    in
    let h = topo.Topology.hosts in
    let dst = if cross then h.(15) else h.(1) in
    let flow = Flow.make ~id:1 ~src:h.(0) ~dst ~size_pkts:100 ~start_time:0. () in
    let hier = Hierarchy.create e c cfg topo ~base_rate_bps:1e6 in
    Hierarchy.start hier;
    let times = ref [] in
    Hierarchy.add_flow hier ~flow
      ~criterion:(fun () -> 100.)
      ~demand:(fun () -> 1e9)
      ~apply:(fun ~queue:_ ~rref_bps:_ -> times := Engine.now e :: !times)
      ();
    Engine.run ~until:0.002 e;
    Hierarchy.stop hier;
    (* The flow is added between rounds; its first full round fires at
       t = arb_period. The decision is complete at the LAST progressive
       apply of that round (before the next round's applies begin). *)
    let first_round_applies =
      List.filter
        (fun t ->
          t > 0. && t < (2. *. Config.default.Config.arb_period) -. 1e-5)
        !times
    in
    List.fold_left Float.max 0. first_round_applies
  in
  let intra = first_apply_delay ~cfg:Config.default ~cross:false in
  let cross_deleg = first_apply_delay ~cfg:Config.default ~cross:true in
  let cross_full =
    first_apply_delay
      ~cfg:{ Config.default with Config.delegation = false }
      ~cross:true
  in
  Alcotest.(check bool)
    (Printf.sprintf "intra (%.0fus) < cross (%.0fus)" (intra *. 1e6)
       (cross_deleg *. 1e6))
    true (intra < cross_deleg);
  Alcotest.(check bool)
    (Printf.sprintf "delegation not slower (%.0fus vs %.0fus)"
       (cross_deleg *. 1e6) (cross_full *. 1e6))
    true
    (cross_deleg <= cross_full +. 1e-9)

let suite =
  [
    Alcotest.test_case "dctcp cut proportional" `Quick test_dctcp_cut_proportional_to_alpha;
    Alcotest.test_case "d2tcp deadline changes cut" `Quick test_d2tcp_deadline_changes_cut;
    Alcotest.test_case "pase window policy" `Quick test_pase_window_policy;
    Alcotest.test_case "hierarchy latency ordering" `Quick test_hierarchy_latency_ordering;
  ]
