(* Fault-injection plane: schedule parsing and validation, link blackholing
   with RTO-driven recovery, byte-identical faulted reruns (serial, fork
   pool, chunked engine), arbitrator crash-and-restart with bounded AFCT,
   and control-loss soft-state expiry followed by re-request rebuild. *)

let encode = Result_codec.encode
let flap_spec = "flap:a=agg0,b=core0,at=0.004,down=0.002,up=0.004,count=3"
let crash_spec = "crash:node=tor0,at=0.002,restart=0.004"

let parsed spec =
  match Fault.parse spec with Ok evs -> evs | Error e -> Alcotest.fail e

let faulted ?(flows = 60) ?(spec = flap_spec) () =
  Scenario.with_faults
    (Scenario.left_right ~num_flows:flows ~seed:1 ~load:0.6 ())
    (parsed spec)

(* ---- grammar ----------------------------------------------------------- *)

let test_parse_roundtrip () =
  let spec =
    "down:a=host0,b=tor0,at=0.001,up=0.002;" ^ flap_spec ^ ";" ^ crash_spec
    ^ ";ctrl:at=0,until=0.05,p=0.3"
  in
  let evs = parsed spec in
  Alcotest.(check int) "four events" 4 (Fault.count evs);
  (* The canonical rendering must re-parse to itself (it feeds the result
     cache key, so it has to round-trip floats exactly). *)
  Alcotest.(check string)
    "canonical form round-trips" (Fault.spec_key evs)
    (Fault.spec_key (parsed (Fault.spec_key evs)));
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" bad)
      | Error e ->
          Alcotest.(check bool) "error is descriptive" true
            (String.length e > 0))
    [
      "";
      "boom:at=1";
      "down:a=host0,at=0";
      "crash:node=hostx,at=0";
      "ctrl:at=0,until=1";
      "flap:a=host0,b=tor0,at=0,down=x,up=0.1,count=2";
      "down:a=host0,b=tor0 at=0";
    ]

let small_tree () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.three_tier e c ~hosts_per_tor:4 ~tors:4 ~aggs:2
      ~edge_rate_bps:1e9 ~fabric_rate_bps:10e9 ~link_delay_s:25e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:Config.default.Config.num_queues
          ~limit_pkts:500 ~mark_threshold:20)
  in
  (e, c, topo)

let test_create_validates () =
  let _, _, topo = small_tree () in
  let rejects msg spec =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Fault.create topo (parsed spec)))
  in
  rejects "Fault: host0 and tor1 are not adjacent" "down:a=host0,b=tor1,at=0";
  rejects "Fault: no such node core9 (have 1)" "crash:node=core9,at=0";
  rejects "Fault: loss probability must be in [0, 1]" "ctrl:at=0,until=1,p=1.5";
  rejects "Fault: flap count must be >= 1"
    "flap:a=host0,b=tor0,at=0,down=0.1,up=0.1,count=0";
  rejects "Fault: restart time must follow crash" "crash:node=tor0,at=1,restart=1";
  ignore (Fault.create topo (parsed "down:a=node0,b=node16,at=0"))

(* ---- recovery through the data plane ------------------------------------ *)

(* A link flap blackholes in-flight packets; every sender must recover via
   RTO and finish the workload. *)
let test_flap_blackholes_and_recovers () =
  let r = Runner.run Runner.pase (faulted ()) in
  Alcotest.(check int) "all measured flows complete" 60 r.Runner.completed;
  Alcotest.(check int) "none censored" 0 r.Runner.censored;
  Alcotest.(check int) "one schedule event" 1 r.Runner.faults_injected;
  Alcotest.(check bool) "packets were blackholed" true
    (r.Runner.blackholed_pkts > 0);
  Alcotest.(check (float 1e-9)) "downtime = 3 flaps x 2 ms" 0.006
    r.Runner.link_downtime_s;
  Alcotest.(check bool) "baseline measured" true
    (r.Runner.afct_baseline > 0.);
  Alcotest.(check bool) "faults cost AFCT" true
    (r.Runner.afct_inflation >= 1.)

(* ---- determinism --------------------------------------------------------- *)

let test_faulted_rerun_identical () =
  let r1 = Runner.run Runner.pase (faulted ()) in
  let r2 = Runner.run Runner.pase (faulted ()) in
  Alcotest.(check bool) "faulted reruns bit-identical" true
    (encode r1 = encode r2);
  let r0 = Runner.run Runner.pase (Scenario.with_faults (faulted ()) []) in
  Alcotest.(check int) "fault-free run blackholes nothing" 0
    r0.Runner.blackholed_pkts;
  Alcotest.(check bool) "schedule changes the run" true (encode r0 <> encode r1)

(* Every protocol family with fault hooks (PASE hierarchy, PDQ arbiters, D3
   routers, plain end-host DCTCP) must replay identically through the fork
   pool. *)
let test_parallel_matches_serial_faulted () =
  let spec = flap_spec ^ ";" ^ crash_spec in
  let grid =
    List.map
      (fun p -> (p, faulted ~flows:40 ~spec ()))
      [ Runner.pase; Runner.Dctcp; Runner.Pdq; Runner.D3 ]
  in
  let serial = Parallel.run_jobs ~jobs:1 ~cache_dir:None grid in
  let forked = Parallel.run_jobs ~jobs:3 ~cache_dir:None grid in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "faulted result %d identical" i)
        true
        (encode a = encode b))
    (List.combine serial forked)

(* Chunked [Engine.run ~until] (with chunk boundaries landing exactly on
   fault times) applies the same transitions at the same clock readings as a
   one-shot run. *)
let test_chunked_matches_one_shot () =
  let spec =
    "flap:a=tor0,b=agg0,at=0.001,down=0.0005,up=0.0005,count=3;\
     crash:node=tor1,at=0.002,restart=0.0035;ctrl:at=0.001,until=0.002,p=0.5"
  in
  let run horizons =
    let e, _, topo = small_tree () in
    let log = ref [] in
    let put fmt = Printf.ksprintf (fun s ->
        log := Printf.sprintf "%.9f %s" (Engine.now e) s :: !log) fmt
    in
    let fp =
      Fault.create topo
        ~on_crash:(fun n -> put "crash %d" n)
        ~on_restart:(fun n -> put "restart %d" n)
        ~on_ctrl_loss:(fun p ->
          put "ctrl %s" (match p with None -> "off" | Some p ->
            Printf.sprintf "%.17g" p))
        ~on_link:(fun a b ~up -> put "link %d-%d %b" a b up)
        (parsed spec)
    in
    Fault.arm fp;
    List.iter (fun h -> Engine.run ~until:h e) horizons;
    Fault.finish fp;
    let s = Fault.stats fp in
    let tor0 = topo.Topology.tors.(0) and agg0 = topo.Topology.aggs.(0) in
    let up =
      match Net.link_from topo.Topology.net tor0 agg0 with
      | Some l -> Link.is_up l
      | None -> Alcotest.fail "tor0-agg0 link missing"
    in
    ( List.rev !log,
      (s.Fault.transitions, s.Fault.link_down_events, s.Fault.crash_events),
      s.Fault.downtime_s,
      up )
  in
  let log1, counts1, down1, up1 = run [ 0.01 ] in
  let log2, counts2, down2, up2 =
    run [ 0.001; 0.0015; 0.002; 0.0035; 0.004; 0.01 ]
  in
  Alcotest.(check (list string)) "same transitions, same clocks" log1 log2;
  Alcotest.(check (triple int int int)) "same stats" counts1 counts2;
  Alcotest.(check (float 1e-12)) "same downtime" down1 down2;
  Alcotest.(check bool) "link settled up" true (up1 && up2);
  Alcotest.(check int) "6 directed transitions per pair x 3 flaps" 12
    (let t, _, _ = counts1 in t);
  Alcotest.(check (float 1e-12)) "3 x 0.5 ms downtime" 0.0015 down1

(* ---- arbitrator crash recovery ------------------------------------------ *)

(* A mid-run arbitrator crash: flows fall back to unguided DCTCP while the
   node is down, re-requests rebuild its soft state after restart, and the
   damage stays bounded by what plain DCTCP does on the same schedule. *)
let test_crash_recovery_bounded () =
  let sc = faulted ~flows:120 ~spec:crash_spec () in
  let pase = Runner.run Runner.pase sc in
  let dctcp = Runner.run Runner.Dctcp sc in
  Alcotest.(check int) "all PASE flows complete" 120 pase.Runner.completed;
  Alcotest.(check int) "none censored" 0 pase.Runner.censored;
  Alcotest.(check bool) "time-to-first-grant measured" true
    (Float.is_finite pase.Runner.recovery_s && pase.Runner.recovery_s > 0.);
  Alcotest.(check bool) "no recovery clock without a hierarchy" true
    (Float.is_nan dctcp.Runner.recovery_s);
  Alcotest.(check bool)
    (Printf.sprintf "PASE AFCT bounded by DCTCP (%.3f vs %.3f ms)"
       (pase.Runner.afct *. 1e3) (dctcp.Runner.afct *. 1e3))
    true
    (pase.Runner.afct <= dctcp.Runner.afct *. 1.05)

(* ---- control-message loss: expiry and re-request ------------------------ *)

(* With every control message lost, remote arbitrator entries stop being
   refreshed and expire after [state_expiry_rounds]; the flow reports
   arbitration unreachable. Once the loss window closes, the periodic host
   re-requests rebuild the soft state without any explicit resync. *)
let test_ctrl_loss_expiry_and_rerequest () =
  let cfg = { Config.default with Config.delegation = false } in
  let e, c, topo = small_tree () in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. 3e-4) in
  let h = topo.Topology.hosts in
  let flow =
    Flow.make ~id:1 ~src:h.(0) ~dst:h.(15) ~size_pkts:500 ~start_time:0. ()
  in
  let reachable = ref true in
  Hierarchy.add_flow hier ~flow
    ~criterion:(fun () -> 500.)
    ~demand:(fun () -> 1e9)
    ~unreachable:(fun lost -> reachable := not lost)
    ~apply:(fun ~queue:_ ~rref_bps:_ -> ())
    ();
  Hierarchy.start hier;
  (* Soft state held by switch-owned arbitrators (everything the remote,
     message-costing contacts maintain). *)
  let remote_entries () =
    List.fold_left
      (fun acc (a, b, _) ->
        match (Net.node_kind topo.Topology.net a, Net.node_kind topo.Topology.net b) with
        | Net.Switch, Net.Switch -> (
            match Hierarchy.arbitrator_of_link hier a b with
            | Some arb -> acc + Arbitrator.flows arb
            | None -> acc)
        | _ -> acc)
      0
      (Net.links topo.Topology.net)
  in
  let round_s = cfg.Config.arb_period in
  Engine.run ~until:(10. *. round_s) e;
  Alcotest.(check bool) "remote soft state established" true
    (remote_entries () > 0);
  Alcotest.(check bool) "arbitration reachable" true !reachable;
  (* Total loss: refreshes stop getting through. *)
  Hierarchy.set_ctrl_loss_override hier (Some 1.0);
  let expiry_s =
    float_of_int (cfg.Config.state_expiry_rounds + 4) *. round_s
  in
  Engine.run ~until:((10. *. round_s) +. expiry_s) e;
  Alcotest.(check bool) "losses counted" true (c.Counters.ctrl_lost > 0);
  Alcotest.(check int) "remote soft state expired" 0 (remote_entries ());
  Alcotest.(check bool) "flow reports unreachable" true (not !reachable);
  (* Loss window closes: periodic re-requests rebuild the state. *)
  Hierarchy.set_ctrl_loss_override hier None;
  Engine.run ~until:((10. *. round_s) +. expiry_s +. (5. *. round_s)) e;
  Hierarchy.stop hier;
  Alcotest.(check bool) "re-requests rebuilt soft state" true
    (remote_entries () > 0);
  Alcotest.(check bool) "reachable again" true !reachable

(* ---- attribution under faults ------------------------------------------- *)

(* The exact-sum invariant is not a fair-weather property: with a link flap
   blackholing packets (and with an arbitrator crash), every completed
   flow's components still sum to its FCT with float equality, and the
   flap's retransmission stalls actually land in rto_stall. *)
let test_attribution_exact_under_faults () =
  List.iter
    (fun (name, spec, protocol) ->
      let records = ref [] in
      let r =
        Runner.run ~attrib:true
          ~on_attrib:(fun ~size_pkts:_ rec_ -> records := rec_ :: !records)
          protocol
          (faulted ~flows:60 ~spec ())
      in
      Alcotest.(check int)
        (name ^ ": one record per completed flow")
        r.Runner.completed
        (List.length !records);
      List.iter
        (fun (rec_ : Delay.record) ->
          if not (Delay.check_sum rec_) then
            Alcotest.fail
              (Printf.sprintf "%s: flow %d components do not sum to fct" name
                 rec_.Delay.flow))
        !records;
      if name = "flap" then begin
        Alcotest.(check bool) (name ^ ": packets blackholed") true
          (r.Runner.blackholed_pkts > 0);
        let total_rto =
          List.fold_left
            (fun acc (rec_ : Delay.record) -> acc +. rec_.Delay.rto_stall)
            0. !records
        in
        Alcotest.(check bool) (name ^ ": rto_stall observed") true
          (total_rto > 0.)
      end)
    [
      ("flap", flap_spec, Runner.pase);
      ("crash", crash_spec, Runner.pase);
    ]

(* ---- hybrid classifier edges and fault-driven promotion ------------------ *)

(* The classifier has two halves — spec (size/long-lived vs threshold) and
   protocol whitelist — and both must behave at their edges: every flow
   fluid, no flow fluid, a size landing exactly on the threshold, and a
   fault yanking fluid flows back to packet level mid-run. *)

let hybrid_on = { Runner.enabled = true; fluid_threshold = 32768 }

let hstats (r : Runner.result) =
  match r.Runner.hybrid with
  | Some h -> h
  | None -> Alcotest.fail "hybrid accounting missing"

(* A scenario whose every measured flow has the same known size. The
   unchanged-statistics tests zero the background flows: long-lived flows
   are fluid-eligible regardless of size, and a live fluid allocation
   changes the physics the packet tier sees (that is the model working,
   not an identity the edge cases can assert through). *)
let constant_size ?(flows = 40) ?background bytes =
  let base = Scenario.left_right ~num_flows:flows ~seed:1 ~load:0.6 () in
  let background =
    Option.value background ~default:base.Scenario.background_flows
  in
  {
    base with
    Scenario.size_bytes = Dist.constant (float_of_int bytes);
    background_flows = background;
  }

let test_hybrid_all_fluid () =
  (* Every size above the threshold + fluid-capable protocol: the whole
     workload (measured flows and the two long-lived background flows)
     goes through the fluid tier, and every finite flow demotes exactly
     once to finish packet-level. *)
  let sc = constant_size 100_000 in
  let r = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  let h = hstats r in
  Alcotest.(check bool) "tier active" true h.Runner.hybrid_on;
  Alcotest.(check int) "all flows fluid"
    (40 + sc.Scenario.background_flows)
    h.Runner.fluid_flows;
  Alcotest.(check int) "every measured flow demoted once" 40
    h.Runner.fluid_demotions;
  Alcotest.(check int) "no fault demotions" 0 h.Runner.fault_demotions;
  Alcotest.(check int) "all complete" 40 r.Runner.completed;
  Alcotest.(check bool) "bytes advanced analytically" true
    (h.Runner.fluid_bytes > 0.);
  Alcotest.(check bool) "short-flow p99 empty (no packet-tier flows)" true
    (Float.is_nan h.Runner.short_p99)

let test_hybrid_all_packet () =
  (* Below-threshold sizes keep every flow packet-level even with the tier
     enabled; the packet simulation must be unperturbed (identical FCT
     statistics to a run without the hybrid option, which a zero fluid
     allocation guarantees). *)
  let sc = constant_size ~background:0 20_000 in
  let plain = Runner.run Runner.Dctcp sc in
  let r = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  let h = hstats r in
  Alcotest.(check bool) "tier active" true h.Runner.hybrid_on;
  Alcotest.(check int) "no flow fluid" 0 h.Runner.fluid_flows;
  Alcotest.(check int) "no demotions" 0 h.Runner.fluid_demotions;
  Alcotest.(check (float 0.)) "afct unchanged" plain.Runner.afct r.Runner.afct;
  Alcotest.(check (float 0.)) "p99 unchanged" plain.Runner.p99 r.Runner.p99;
  (* Non-whitelisted protocol: enabled but inert, statistics identical. *)
  let pf_plain = Runner.run Runner.Pfabric sc in
  let pf = Runner.run ~hybrid:hybrid_on Runner.Pfabric sc in
  let hpf = hstats pf in
  Alcotest.(check bool) "pfabric stays packet-only" false hpf.Runner.hybrid_on;
  Alcotest.(check int) "no pfabric fluid flows" 0 hpf.Runner.fluid_flows;
  Alcotest.(check (float 0.)) "pfabric afct unchanged" pf_plain.Runner.afct
    pf.Runner.afct;
  Alcotest.(check int) "pfabric events unchanged" pf_plain.Runner.events
    pf.Runner.events

let test_hybrid_threshold_exact () =
  (* Size exactly on the threshold: fluid-eligible by the >= rule, but the
     admitted flow is already at the demotion boundary, so it demotes
     synchronously with zero bytes advanced and runs packet-level from the
     first byte — per-flow statistics equal to a pure packet run. *)
  let spec =
    {
      Scenario.src = 0;
      dst = 1;
      size_bytes = 32768;
      start = 0.;
      deadline = None;
      long_lived = false;
      task = None;
    }
  in
  Alcotest.(check bool) "exactly-at-threshold is eligible" true
    (Scenario.fluid_eligible ~threshold_bytes:32768 spec);
  Alcotest.(check bool) "one byte below is not" false
    (Scenario.fluid_eligible ~threshold_bytes:32768
       { spec with Scenario.size_bytes = 32767 });
  let sc = constant_size ~background:0 32768 in
  let plain = Runner.run Runner.Dctcp sc in
  let r = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  let h = hstats r in
  Alcotest.(check int) "all measured flows admitted" 40 h.Runner.fluid_flows;
  Alcotest.(check int) "all demoted (instantly)" 40 h.Runner.fluid_demotions;
  Alcotest.(check (float 0.)) "instant demotion advanced nothing" 0.
    h.Runner.fluid_bytes;
  Alcotest.(check (float 0.)) "afct equals pure packet run" plain.Runner.afct
    r.Runner.afct;
  Alcotest.(check (float 0.)) "p99 equals pure packet run" plain.Runner.p99
    r.Runner.p99

let test_hybrid_fault_demotes () =
  (* A link-down on the agg-core bottleneck while above-threshold flows are
     mid-transfer: every fluid flow routed across it must be demoted by the
     fault (packet level owns loss/RTO behaviour), and the workload still
     completes through recovery. *)
  let sc =
    Scenario.with_faults
      (constant_size ~flows:60 150_000)
      (parsed "down:a=agg0,b=core0,at=0.004,up=0.02")
  in
  let r = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  let h = hstats r in
  Alcotest.(check bool) "fault forced demotions" true
    (h.Runner.fault_demotions > 0);
  Alcotest.(check bool) "fault demotions within total" true
    (h.Runner.fault_demotions <= h.Runner.fluid_demotions);
  Alcotest.(check int) "all flows complete despite the fault" 60
    r.Runner.completed;
  Alcotest.(check int) "none censored" 0 r.Runner.censored

let test_hybrid_rerun_and_fork_identical () =
  (* Hybrid determinism end to end: reruns are bit-identical, the fork pool
     reproduces serial bytes, and a faulted hybrid run replays too. *)
  let sc = faulted ~flows:60 () in
  let r1 = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  let r2 = Runner.run ~hybrid:hybrid_on Runner.Dctcp sc in
  Alcotest.(check bool) "hybrid faulted rerun bit-identical" true
    (encode r1 = encode r2);
  let grid =
    List.map
      (fun p -> (p, Scenario.left_right ~num_flows:50 ~seed:3 ~load:0.6 ()))
      [ Runner.pase; Runner.Dctcp; Runner.Pfabric ]
  in
  let serial =
    Parallel.run_jobs ~jobs:1 ~cache_dir:None ~hybrid:hybrid_on grid
  in
  let forked =
    Parallel.run_jobs ~jobs:3 ~cache_dir:None ~hybrid:hybrid_on grid
  in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "hybrid fork result %d identical" i)
        true
        (encode a = encode b))
    (List.combine serial forked)

let suite =
  [
    Alcotest.test_case "parse roundtrip and errors" `Quick test_parse_roundtrip;
    Alcotest.test_case "attribution exact under faults" `Slow
      test_attribution_exact_under_faults;
    Alcotest.test_case "create validates schedules" `Quick test_create_validates;
    Alcotest.test_case "flap blackholes and recovers" `Quick
      test_flap_blackholes_and_recovers;
    Alcotest.test_case "faulted rerun identical" `Quick
      test_faulted_rerun_identical;
    Alcotest.test_case "parallel matches serial (faulted)" `Slow
      test_parallel_matches_serial_faulted;
    Alcotest.test_case "chunked matches one-shot" `Quick
      test_chunked_matches_one_shot;
    Alcotest.test_case "crash recovery bounded" `Slow test_crash_recovery_bounded;
    Alcotest.test_case "ctrl loss expiry and re-request" `Quick
      test_ctrl_loss_expiry_and_rerequest;
    Alcotest.test_case "hybrid: all-fluid edge" `Quick test_hybrid_all_fluid;
    Alcotest.test_case "hybrid: all-packet edge" `Quick test_hybrid_all_packet;
    Alcotest.test_case "hybrid: threshold-exact edge" `Quick
      test_hybrid_threshold_exact;
    Alcotest.test_case "hybrid: fault demotes mid-flow" `Quick
      test_hybrid_fault_demotes;
    Alcotest.test_case "hybrid: rerun and fork identical" `Slow
      test_hybrid_rerun_and_fork_identical;
  ]
