(* Streaming statistics: Welford exactness and merge, t-digest rank-error
   bound (property-tested over seeded samples), reservoir determinism,
   streaming-vs-exact equivalence on real runner output, edge cases
   (all-censored, single record), and deterministic sketch merging whether
   the per-job collections came from a serial loop or a fork pool. *)

let seeded_sample ~seed ~n sampler =
  let rng = Rng.create seed in
  List.init n (fun _ -> sampler rng)

let exact_mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* ---- Welford ------------------------------------------------------------- *)

let test_welford_exact () =
  let xs = seeded_sample ~seed:7 ~n:10_000 (fun rng -> Rng.float rng 50.) in
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  Alcotest.(check int) "count" 10_000 (Welford.count w);
  Alcotest.(check (float 1e-9)) "mean matches direct sum" (exact_mean xs)
    (Welford.mean w);
  let m = exact_mean xs in
  (* Population variance (M2/n), per the Welford interface. *)
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (List.length xs)
  in
  Alcotest.(check (float 1e-6)) "variance matches two-pass" var
    (Welford.variance w);
  Alcotest.(check (float 1e-12)) "min" (Summary.min xs) (Welford.min w);
  Alcotest.(check (float 1e-12)) "max" (Summary.max xs) (Welford.max w)

let test_welford_empty_nan () =
  let w = Welford.create () in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Welford.mean w));
  Alcotest.(check bool) "empty variance nan" true
    (Float.is_nan (Welford.variance w))

let test_welford_merge () =
  let xs = seeded_sample ~seed:8 ~n:5_000 (fun rng -> Rng.float rng 9.) in
  let split = 1_234 in
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  List.iteri
    (fun i x ->
      Welford.add whole x;
      Welford.add (if i < split then a else b) x)
    xs;
  let m = Welford.merge a b in
  Alcotest.(check int) "merged count" (Welford.count whole) (Welford.count m);
  Alcotest.(check (float 1e-9)) "merged mean" (Welford.mean whole)
    (Welford.mean m);
  Alcotest.(check (float 1e-6)) "merged variance" (Welford.variance whole)
    (Welford.variance m);
  (* Merging an empty operand on either side is the identity. *)
  let e = Welford.create () in
  Alcotest.(check (float 1e-12)) "empty right identity" (Welford.mean a)
    (Welford.mean (Welford.merge a e));
  Alcotest.(check (float 1e-12)) "empty left identity" (Welford.mean a)
    (Welford.mean (Welford.merge e a))

(* ---- t-digest ------------------------------------------------------------ *)

(* The estimate at quantile q must fall between the exact values at
   quantiles q ± rank_error: the digest may misplace a value's rank by at
   most the bound, never fabricate one outside the bracket. *)
let check_quantile_within_bound ~msg td sorted q =
  let n = Array.length sorted in
  let err = Tdigest.rank_error td q in
  let at p =
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1)
                            (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let lo = at (Stdlib.max 0.001 (q -. err))
  and hi = at (Stdlib.min 1. (q +. err))
  and est = Tdigest.quantile td q in
  Alcotest.(check bool)
    (Printf.sprintf "%s: q=%.3f est=%g in [%g, %g] (err %.4f)" msg q est lo hi
       err)
    true
    (est >= lo && est <= hi)

let digest_of xs =
  let td = Tdigest.create () in
  List.iter (Tdigest.add td) xs;
  td

let test_tdigest_rank_error_bound () =
  List.iter
    (fun (name, seed, sampler) ->
      let xs = seeded_sample ~seed ~n:20_000 sampler in
      let td = digest_of xs in
      let sorted = Array.of_list xs in
      Array.sort Float.compare sorted;
      List.iter
        (fun q -> check_quantile_within_bound ~msg:name td sorted q)
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ])
    [
      ("uniform", 21, fun rng -> Rng.float rng 1.);
      ("heavy-tail", 22, fun rng -> Float.exp (10. *. Rng.float rng 1.));
      ("bimodal", 23,
       fun rng ->
         if Rng.float rng 1. < 0.5 then Rng.float rng 0.01
         else 100. +. Rng.float rng 1.);
    ]

let test_tdigest_property () =
  (* Property: on arbitrary-seeded uniform samples, the median estimate
     stays inside the rank-error bracket and the extremes are exact. *)
  let prop =
    QCheck.Test.make ~count:50 ~name:"tdigest median within bound"
      QCheck.(pair small_nat (int_range 100 3000))
      (fun (seed, n) ->
        let xs = seeded_sample ~seed ~n (fun rng -> Rng.float rng 1000.) in
        let td = digest_of xs in
        let sorted = Array.of_list xs in
        Array.sort Float.compare sorted;
        let err = Tdigest.rank_error td 0.5 in
        let at p =
          sorted.(Stdlib.max 0
                    (Stdlib.min (n - 1)
                       (int_of_float (ceil (p *. float_of_int n)) - 1)))
        in
        let est = Tdigest.quantile td 0.5 in
        est >= at (0.5 -. err)
        && est <= at (0.5 +. err)
        && Tdigest.quantile td 0. = sorted.(0)
        && Tdigest.quantile td 1. = sorted.(n - 1))
  in
  QCheck.Test.check_exn prop

let test_tdigest_edges () =
  let td = Tdigest.create () in
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan (Tdigest.quantile td 0.5));
  Tdigest.add td 42.;
  Alcotest.(check (float 1e-12)) "single value p50" 42.
    (Tdigest.quantile td 0.5);
  Alcotest.(check (float 1e-12)) "single value p0" 42. (Tdigest.quantile td 0.);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Tdigest.quantile: q out of range") (fun () ->
      ignore (Tdigest.quantile td 1.5));
  Alcotest.check_raises "nan add rejected"
    (Invalid_argument "Tdigest.add: nan sample") (fun () -> Tdigest.add td nan)

let test_tdigest_merge_matches_single () =
  let xs = seeded_sample ~seed:31 ~n:8_000 (fun rng -> Rng.float rng 7.) in
  let a = digest_of (List.filteri (fun i _ -> i < 3_000) xs)
  and b = digest_of (List.filteri (fun i _ -> i >= 3_000) xs) in
  let m = Tdigest.merge a b in
  Alcotest.(check int) "merged count" (List.length xs) (Tdigest.count m);
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  List.iter
    (fun q -> check_quantile_within_bound ~msg:"merged" m sorted q)
    [ 0.05; 0.5; 0.95; 0.99 ]

let test_tdigest_merge_deterministic () =
  let mk seed = digest_of (seeded_sample ~seed ~n:2_000 (fun rng -> Rng.float rng 3.)) in
  let a = mk 41 and b = mk 42 in
  let a' = mk 41 and b' = mk 42 in
  let q1 = Tdigest.quantile (Tdigest.merge a b) 0.99
  and q2 = Tdigest.quantile (Tdigest.merge a' b') 0.99 in
  (* Bit-equal, not approximately equal: same operands, same bytes. *)
  Alcotest.(check bool) "merge is reproducible" true (q1 = q2)

(* ---- reservoir ----------------------------------------------------------- *)

let test_reservoir_deterministic () =
  let fill () =
    let r = Reservoir.create ~k:64 ~seed:9 in
    for i = 1 to 10_000 do
      Reservoir.add r i
    done;
    r
  in
  Alcotest.(check (list int)) "same seed, same sample"
    (Reservoir.sample (fill ()))
    (Reservoir.sample (fill ()));
  let r = fill () in
  Alcotest.(check int) "seen counts the population" 10_000 (Reservoir.seen r);
  Alcotest.(check int) "sample capped at k" 64
    (List.length (Reservoir.sample r))

let test_reservoir_small_population () =
  let r = Reservoir.create ~k:100 ~seed:1 in
  for i = 1 to 10 do
    Reservoir.add r i
  done;
  Alcotest.(check (list int)) "under capacity keeps everything in order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (Reservoir.sample r)

(* ---- streaming Fct vs exact Fct on runner output ------------------------- *)

let run_both ?horizon scenario =
  let exact = Runner.run ?horizon Runner.Dctcp scenario in
  let streaming = Runner.run ?horizon ~stats:`Streaming Runner.Dctcp scenario in
  (exact, streaming)

let test_streaming_matches_exact_on_run () =
  let scenario =
    Scenario.intra_rack_medium ~num_flows:400 ~seed:5 ~load:0.6 ()
  in
  let exact, streaming = run_both scenario in
  Alcotest.(check int) "completed equal" exact.Runner.completed
    streaming.Runner.completed;
  Alcotest.(check int) "censored equal" exact.Runner.censored
    streaming.Runner.censored;
  Alcotest.(check int) "events equal (same simulation)" exact.Runner.events
    streaming.Runner.events;
  (* Means are exact in both modes (Welford vs. list sum). *)
  Alcotest.(check (float 1e-12)) "afct equal" exact.Runner.afct
    streaming.Runner.afct;
  (* Deadline fraction is an exact counter in streaming mode. *)
  Alcotest.(check bool) "deadline fraction equal" true
    (exact.Runner.app_throughput = streaming.Runner.app_throughput
    || Float.is_nan exact.Runner.app_throughput
       && Float.is_nan streaming.Runner.app_throughput);
  (* Percentiles agree within the sketch's rank-error bound. *)
  let fcts = Array.of_list (Fct.completed_fcts exact.Runner.fct) in
  Array.sort Float.compare fcts;
  let n = Array.length fcts in
  let at p =
    fcts.(Stdlib.max 0 (Stdlib.min (n - 1)
                          (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  List.iter
    (fun (q, streamed) ->
      let err = Fct.quantile_rank_error streaming.Runner.fct (q *. 100.) in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within rank bound %.4f" (q *. 100.) err)
        true
        (streamed >= at (Stdlib.max 0.001 (q -. err))
        && streamed <= at (Stdlib.min 1. (q +. err))))
    [ (0.5, Fct.percentile streaming.Runner.fct 50.);
      (0.99, streaming.Runner.p99);
      (0.999, streaming.Runner.p999) ];
  (* Task metrics are exact in streaming mode. *)
  Alcotest.(check (list (float 1e-12))) "task completion times equal"
    (List.sort Float.compare (Fct.task_completion_times exact.Runner.fct))
    (List.sort Float.compare (Fct.task_completion_times streaming.Runner.fct))

let test_all_censored_both_modes () =
  (* Collections where nothing completed — the high-load run that used to
     crash Fct.percentile/p99. Every completed-only metric must degrade to
     nan (like afct), not raise. *)
  List.iter
    (fun (mode, f) ->
      for i = 1 to 5 do
        Fct.add f ~flow:i ~size_pkts:8 ~start_time:0. ~fct:0.5 ~deadline:0.01
          ~censored:true ()
      done;
      Alcotest.(check int) (mode ^ ": all censored") 5 (Fct.censored_count f);
      Alcotest.(check bool) (mode ^ ": afct nan") true
        (Float.is_nan (Fct.afct f));
      Alcotest.(check bool) (mode ^ ": p99 nan") true
        (Float.is_nan (Fct.percentile f 99.));
      Alcotest.(check bool) (mode ^ ": p50 nan") true
        (Float.is_nan (Fct.percentile f 50.));
      Alcotest.(check (list (pair (float 0.) (float 0.))))
        (mode ^ ": empty cdf") [] (Fct.cdf f);
      Alcotest.(check (float 1e-12)) (mode ^ ": deadlines all missed") 0.
        (Fct.deadline_met_fraction f))
    [ ("exact", Fct.create ()); ("streaming", Fct.create_streaming ()) ];
  (* And the degenerate run whose horizon expires before anything happens:
     empty collection end to end, still no raise. *)
  let scenario = Scenario.intra_rack_medium ~num_flows:30 ~seed:3 ~load:0.5 () in
  let exact, streaming = run_both ~horizon:1e-9 scenario in
  List.iter
    (fun (mode, (r : Runner.result)) ->
      Alcotest.(check int) (mode ^ ": nothing completed") 0 r.Runner.completed;
      Alcotest.(check bool) (mode ^ ": afct nan") true
        (Float.is_nan r.Runner.afct);
      Alcotest.(check bool) (mode ^ ": p99 nan") true
        (Float.is_nan r.Runner.p99);
      Alcotest.(check bool) (mode ^ ": p999 nan") true
        (Float.is_nan r.Runner.p999);
      Alcotest.(check (list (pair (float 0.) (float 0.))))
        (mode ^ ": empty cdf") [] (Fct.cdf r.Runner.fct))
    [ ("exact", exact); ("streaming", streaming) ]

let test_single_record () =
  List.iter
    (fun (mode, f) ->
      Fct.add f ~flow:1 ~size_pkts:4 ~start_time:0. ~fct:0.002 ();
      Alcotest.(check (float 1e-12)) (mode ^ ": afct") 0.002 (Fct.afct f);
      Alcotest.(check (float 1e-12)) (mode ^ ": p99") 0.002
        (Fct.percentile f 99.);
      Alcotest.(check int) (mode ^ ": count") 1 (Fct.count f))
    [ ("exact", Fct.create ()); ("streaming", Fct.create_streaming ()) ]

(* ---- Fct.merge ----------------------------------------------------------- *)

let test_fct_merge_exact_order () =
  let mk lo =
    let f = Fct.create () in
    Fct.add f ~flow:lo ~size_pkts:1 ~start_time:0. ~fct:(float_of_int lo) ();
    Fct.add f ~flow:(lo + 1) ~size_pkts:1 ~start_time:0.
      ~fct:(float_of_int (lo + 1)) ();
    f
  in
  let m = Fct.merge (mk 1) (mk 3) in
  Alcotest.(check (list int)) "a's records then b's" [ 1; 2; 3; 4 ]
    (List.map (fun r -> r.Fct.flow) (Fct.records m));
  Alcotest.(check int) "count" 4 (Fct.count m)

let test_fct_merge_mixed_raises () =
  Alcotest.check_raises "mixed modes rejected"
    (Invalid_argument "Fct.merge: cannot merge exact and streaming collections")
    (fun () -> ignore (Fct.merge (Fct.create ()) (Fct.create_streaming ())))

let test_fct_merge_streaming () =
  let mk seed =
    let f = Fct.create_streaming ~seed () in
    let rng = Rng.create seed in
    for i = 1 to 500 do
      Fct.add f ~flow:i ~size_pkts:2 ~start_time:0. ~fct:(Rng.float rng 0.01) ()
    done;
    f
  in
  let m1 = Fct.merge (mk 51) (mk 52) and m2 = Fct.merge (mk 51) (mk 52) in
  Alcotest.(check int) "merged count" 1_000 (Fct.count m1);
  Alcotest.(check bool) "merge reproducible bit-for-bit" true
    (Fct.percentile m1 99. = Fct.percentile m2 99.
    && Fct.afct m1 = Fct.afct m2)

(* ---- serial vs forked sweep ---------------------------------------------- *)

let test_parallel_streaming_determinism () =
  let jobs =
    List.map
      (fun seed ->
        ( Runner.Dctcp,
          Scenario.intra_rack_medium ~num_flows:120 ~seed ~load:0.5 () ))
      [ 11; 12; 13; 14 ]
  in
  let serial =
    Parallel.run_jobs ~jobs:1 ~cache_dir:None ~stats:`Streaming jobs
  in
  let forked =
    Parallel.run_jobs ~jobs:4 ~cache_dir:None ~stats:`Streaming jobs
  in
  List.iteri
    (fun i (s, f) ->
      Alcotest.(check string)
        (Printf.sprintf "job %d: serial and forked results byte-identical" i)
        (Result_codec.encode s) (Result_codec.encode f))
    (List.combine serial forked);
  let ms = Parallel.merged_fct serial and mf = Parallel.merged_fct forked in
  Alcotest.(check int) "merged count" (Fct.count ms) (Fct.count mf);
  Alcotest.(check bool) "merged sketch identical regardless of fork order" true
    (Fct.percentile ms 99. = Fct.percentile mf 99.
    && Fct.afct ms = Fct.afct mf
    && Fct.cdf ~points:20 ms = Fct.cdf ~points:20 mf)

let suite =
  [
    Alcotest.test_case "welford exact" `Quick test_welford_exact;
    Alcotest.test_case "welford empty" `Quick test_welford_empty_nan;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "tdigest rank-error bound" `Quick
      test_tdigest_rank_error_bound;
    Alcotest.test_case "tdigest property (qcheck)" `Slow test_tdigest_property;
    Alcotest.test_case "tdigest edges" `Quick test_tdigest_edges;
    Alcotest.test_case "tdigest merge accuracy" `Quick
      test_tdigest_merge_matches_single;
    Alcotest.test_case "tdigest merge deterministic" `Quick
      test_tdigest_merge_deterministic;
    Alcotest.test_case "reservoir deterministic" `Quick
      test_reservoir_deterministic;
    Alcotest.test_case "reservoir small population" `Quick
      test_reservoir_small_population;
    Alcotest.test_case "streaming matches exact on run" `Quick
      test_streaming_matches_exact_on_run;
    Alcotest.test_case "all-censored degrades to nan" `Quick
      test_all_censored_both_modes;
    Alcotest.test_case "single record" `Quick test_single_record;
    Alcotest.test_case "fct merge exact order" `Quick test_fct_merge_exact_order;
    Alcotest.test_case "fct merge mixed raises" `Quick
      test_fct_merge_mixed_raises;
    Alcotest.test_case "fct merge streaming" `Quick test_fct_merge_streaming;
    Alcotest.test_case "parallel streaming determinism" `Quick
      test_parallel_streaming_determinism;
  ]
