(* Link telemetry: sampling cadence, utilization math, queue peaks. *)

let rig () =
  let e = Engine.create () in
  let c = Counters.create () in
  let arrivals = ref 0 in
  let link =
    Link.create e
      ~qdisc:(Queue_disc.droptail c ~limit_pkts:1000)
      ~rate_bps:1e9 ~delay_s:0.
      ~deliver:(fun _ -> incr arrivals)
      ()
  in
  (e, link)

let pkt seq =
  Packet.make ~flow:1 ~src:0 ~dst:1 ~kind:Packet.Data ~size:1500 ~seq
    ~sent_at:0. ()

let test_idle_link_zero_utilization () =
  let e, link = rig () in
  let t = Telemetry.create e ~period:1e-3 [ ("l", link) ] in
  Engine.run ~until:0.005 e;
  Telemetry.stop t;
  Alcotest.(check bool) "samples taken" true (List.length (Telemetry.samples t "l") >= 4);
  Alcotest.(check (float 1e-9)) "idle = 0" 0. (Telemetry.mean_utilization t "l");
  Alcotest.(check int) "no queue" 0 (Telemetry.peak_queue t "l")

let test_saturated_link_full_utilization () =
  let e, link = rig () in
  let t = Telemetry.create e ~period:1e-3 [ ("l", link) ] in
  (* 1 Gbps for 5 ms = ~417 packets; enqueue more than that. *)
  for i = 0 to 599 do
    Link.send link (pkt i)
  done;
  Engine.run ~until:0.005 e;
  Telemetry.stop t;
  let u = Telemetry.mean_utilization t "l" in
  Alcotest.(check bool) (Printf.sprintf "busy (%.2f)" u) true (u > 0.95);
  Alcotest.(check bool) "queue observed" true (Telemetry.peak_queue t "l" > 100)

let test_stop_freezes_samples () =
  let e, link = rig () in
  let t = Telemetry.create e ~period:1e-3 [ ("l", link) ] in
  Engine.run ~until:0.002 e;
  Telemetry.stop t;
  let n = List.length (Telemetry.samples t "l") in
  Engine.run ~until:0.010 e;
  Alcotest.(check int) "no new samples after stop" n
    (List.length (Telemetry.samples t "l"))

let test_unknown_label () =
  let e, link = rig () in
  let t = Telemetry.create e ~period:1e-3 [ ("l", link) ] in
  Alcotest.(check (list string)) "labels" [ "l" ] (Telemetry.labels t);
  Alcotest.(check bool) "unknown label empty" true (Telemetry.samples t "x" = []);
  Alcotest.(check bool) "unknown label nan" true
    (Float.is_nan (Telemetry.mean_utilization t "x"))

(* Chunked [Engine.run ~until] segments must yield exactly the samples a
   one-shot run produces — times, utilization, depths and per-band byte
   counters alike. (The engine's horizon check peeks rather than pops, so a
   tick scheduled past one chunk's horizon keeps its place; this pins the
   guarantee for telemetry.) *)
let test_chunked_matches_one_shot () =
  let with_traffic run_segments =
    let e, link = rig () in
    let t = Telemetry.create e ~period:1e-3 [ ("l", link) ] in
    for i = 0 to 299 do
      Link.send link (pkt i)
    done;
    run_segments e;
    Telemetry.stop t;
    Telemetry.samples t "l"
  in
  let oneshot = with_traffic (fun e -> Engine.run ~until:0.005 e) in
  let chunked =
    with_traffic (fun e ->
        List.iter
          (fun until -> Engine.run ~until e)
          [ 0.0007; 0.0018; 0.003; 0.0042; 0.005 ])
  in
  Alcotest.(check int) "same sample count" (List.length oneshot)
    (List.length chunked);
  List.iter2
    (fun (a : Telemetry.sample) (b : Telemetry.sample) ->
      Alcotest.(check bool) "time" true (a.Telemetry.time = b.Telemetry.time);
      Alcotest.(check bool) "utilization" true
        (a.Telemetry.utilization = b.Telemetry.utilization);
      Alcotest.(check int) "queue pkts" a.Telemetry.queue_pkts
        b.Telemetry.queue_pkts;
      Alcotest.(check int) "queue bytes" a.Telemetry.queue_bytes
        b.Telemetry.queue_bytes;
      Alcotest.(check bool) "bands" true
        (a.Telemetry.bands = b.Telemetry.bands))
    oneshot chunked

let test_rejects_bad_period () =
  let e, link = rig () in
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Telemetry.create: period must be positive") (fun () ->
      ignore (Telemetry.create e ~period:0. [ ("l", link) ]))

let suite =
  [
    Alcotest.test_case "idle link" `Quick test_idle_link_zero_utilization;
    Alcotest.test_case "saturated link" `Quick test_saturated_link_full_utilization;
    Alcotest.test_case "stop freezes" `Quick test_stop_freezes_samples;
    Alcotest.test_case "unknown label" `Quick test_unknown_label;
    Alcotest.test_case "chunked matches one-shot" `Quick
      test_chunked_matches_one_shot;
    Alcotest.test_case "rejects bad period" `Quick test_rejects_bad_period;
  ]
