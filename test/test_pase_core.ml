(* PASE core: Arbitrator soft state, Hierarchy (bottom-up arbitration,
   pruning, delegation, message accounting), and the Pase_host transport. *)

let test_arbitrator_upsert_remove () =
  let a = Arbitrator.create ~capacity_bps:1e9 () in
  Arbitrator.upsert a ~flow:1 ~criterion:10. ~demand_bps:1e9 ~now:0.;
  Arbitrator.upsert a ~flow:2 ~criterion:5. ~demand_bps:1e9 ~now:0.;
  Alcotest.(check int) "two flows" 2 (Arbitrator.flows a);
  Arbitrator.upsert a ~flow:1 ~criterion:3. ~demand_bps:1e9 ~now:1.;
  Alcotest.(check int) "upsert does not duplicate" 2 (Arbitrator.flows a);
  Arbitrator.remove a ~flow:2;
  Alcotest.(check int) "removed" 1 (Arbitrator.flows a);
  Alcotest.(check bool) "mem" true (Arbitrator.mem a ~flow:1)

let test_arbitrator_arbitrate_cache () =
  let a = Arbitrator.create ~capacity_bps:1e9 () in
  Arbitrator.upsert a ~flow:1 ~criterion:10. ~demand_bps:1e9 ~now:0.;
  Arbitrator.upsert a ~flow:2 ~criterion:20. ~demand_bps:1e9 ~now:0.;
  Arbitrator.arbitrate a ~num_queues:8 ~base_rate_bps:1e5;
  (match Arbitrator.cached a ~flow:1 with
  | Some (q, r) ->
      Alcotest.(check int) "flow 1 top" 0 q;
      Alcotest.(check (float 1.)) "flow 1 full rate" 1e9 r
  | None -> Alcotest.fail "no cache for flow 1");
  (match Arbitrator.cached a ~flow:2 with
  | Some (q, _) -> Alcotest.(check int) "flow 2 second queue" 1 q
  | None -> Alcotest.fail "no cache for flow 2");
  Alcotest.(check int) "one flow in top queue" 1 (Arbitrator.in_top_queues a ~k:1);
  Alcotest.(check int) "two in top-2" 2 (Arbitrator.in_top_queues a ~k:2)

let test_arbitrator_expiry () =
  let a = Arbitrator.create ~capacity_bps:1e9 () in
  Arbitrator.upsert a ~flow:1 ~criterion:10. ~demand_bps:1e9 ~now:0.;
  Arbitrator.upsert a ~flow:2 ~criterion:20. ~demand_bps:1e9 ~now:5.;
  Arbitrator.expire a ~now:6. ~max_age:2.;
  Alcotest.(check bool) "stale flow expired" false (Arbitrator.mem a ~flow:1);
  Alcotest.(check bool) "fresh flow kept" true (Arbitrator.mem a ~flow:2)

let test_arbitrator_capacity_update () =
  let a = Arbitrator.create ~capacity_bps:1e9 () in
  Arbitrator.set_capacity a 2e9;
  Alcotest.(check (float 1.)) "capacity updated" 2e9 (Arbitrator.capacity_bps a);
  Arbitrator.set_capacity a (-1.);
  Alcotest.(check (float 1.)) "non-positive ignored" 2e9 (Arbitrator.capacity_bps a)

(* Hierarchy rigs. *)
let tree_rig cfg =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.three_tier e c ~hosts_per_tor:4 ~tors:4 ~aggs:2 ~edge_rate_bps:1e9
      ~fabric_rate_bps:10e9 ~link_delay_s:25e-6
      ~qdisc:(fun ~rate_bps ->
        Prio_queue.create c ~bands:cfg.Config.num_queues ~limit_pkts:500
          ~mark_threshold:(if rate_bps >= 5e9 then 65 else 20))
  in
  let h = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. 3e-4) in
  (e, c, topo, h)

let add_static_flow hier ~flow ~remaining ~demand ~assignments =
  Hierarchy.add_flow hier ~flow
    ~criterion:(fun () -> float_of_int remaining)
    ~demand:(fun () -> demand)
    ~apply:(fun ~queue ~rref_bps -> assignments := (queue, rref_bps) :: !assignments)
    ()

let test_hierarchy_intra_rack_no_messages () =
  let cfg = Config.default in
  let e, c, topo, hier = tree_rig cfg in
  let h = topo.Topology.hosts in
  let asg = ref [] in
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:100 ~start_time:0. () in
  add_static_flow hier ~flow ~remaining:100 ~demand:1e9 ~assignments:asg;
  Hierarchy.start hier;
  Engine.run ~until:0.01 e;
  Hierarchy.stop hier;
  Alcotest.(check int) "intra-rack costs no messages" 0 c.Counters.ctrl_msgs;
  Alcotest.(check bool) "assignments delivered" true (List.length !asg > 1);
  let q, r = List.hd !asg in
  Alcotest.(check int) "single flow in top queue" 0 q;
  Alcotest.(check bool) "full edge rate" true (r >= 0.99e9)

let test_hierarchy_inter_rack_messages () =
  (* Suppress capacity rebalancing so the per-round count is exact. *)
  let cfg = { Config.default with Config.delegation_period = 10. } in
  let e, c, topo, hier = tree_rig cfg in
  let h = topo.Topology.hosts in
  let asg = ref [] in
  (* Host 0 (rack 0) to host 15 (rack 3): crosses the core. *)
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(15) ~size_pkts:100 ~start_time:0. () in
  add_static_flow hier ~flow ~remaining:100 ~demand:1e9 ~assignments:asg;
  Hierarchy.start hier;
  (* Stop before the first delegation rebalance to keep counts exact. *)
  Engine.run ~until:0.0029 e;
  Hierarchy.stop hier;
  (* With delegation: ToR contact on each side = 4 msgs per round. *)
  let rounds = Hierarchy.rounds hier in
  Alcotest.(check bool) "rounds ran" true (rounds >= 9);
  Alcotest.(check int) "4 messages per round under delegation"
    (4 * rounds) c.Counters.ctrl_msgs

let test_hierarchy_delegation_off_costs_more () =
  let cfg = { Config.default with Config.delegation = false } in
  let e, c, topo, hier = tree_rig cfg in
  let h = topo.Topology.hosts in
  let asg = ref [] in
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(15) ~size_pkts:100 ~start_time:0. () in
  add_static_flow hier ~flow ~remaining:100 ~demand:1e9 ~assignments:asg;
  Hierarchy.start hier;
  Engine.run ~until:0.0029 e;
  Hierarchy.stop hier;
  let rounds = Hierarchy.rounds hier in
  (* Without delegation the agg-core contacts are separate: 8 msgs/round. *)
  Alcotest.(check int) "8 messages per round without delegation"
    (8 * rounds) c.Counters.ctrl_msgs

let test_hierarchy_bottleneck_combination () =
  (* Two saturating flows from different sources to hosts in the same
     remote rack share the agg-core link: one must be demoted even though
     both access links are free. *)
  let cfg = { Config.default with Config.delegation = false } in
  let e, _, topo, hier = tree_rig cfg in
  let h = topo.Topology.hosts in
  let asg1 = ref [] and asg2 = ref [] in
  let f1 = Flow.make ~id:1 ~src:h.(0) ~dst:h.(14) ~size_pkts:100 ~start_time:0. () in
  let f2 = Flow.make ~id:2 ~src:h.(1) ~dst:h.(15) ~size_pkts:200 ~start_time:0. () in
  add_static_flow hier ~flow:f1 ~remaining:100 ~demand:10e9 ~assignments:asg1;
  add_static_flow hier ~flow:f2 ~remaining:200 ~demand:10e9 ~assignments:asg2;
  Hierarchy.start hier;
  Engine.run ~until:0.005 e;
  Hierarchy.stop hier;
  let q1, _ = List.hd !asg1 and q2, _ = List.hd !asg2 in
  Alcotest.(check int) "shorter flow stays top" 0 q1;
  Alcotest.(check bool) "longer flow demoted at shared 10G link" true (q2 >= 1)

let test_hierarchy_pruning_reduces_messages () =
  let run pruning =
    let cfg =
      { Config.default with Config.early_pruning = pruning; delegation = false }
    in
    let e, c, topo, hier = tree_rig cfg in
    let h = topo.Topology.hosts in
    (* Many cross-core flows from one source: most sit in low queues. *)
    for i = 1 to 12 do
      let flow =
        Flow.make ~id:i ~src:h.(0) ~dst:h.(12 + (i mod 4)) ~size_pkts:(100 * i)
          ~start_time:0. ()
      in
      add_static_flow hier ~flow ~remaining:(100 * i) ~demand:1e9
        ~assignments:(ref [])
    done;
    Hierarchy.start hier;
    Engine.run ~until:0.003 e;
    Hierarchy.stop hier;
    c.Counters.ctrl_msgs
  in
  let without = run false and with_pruning = run true in
  Alcotest.(check bool)
    (Printf.sprintf "pruning cuts messages (%d -> %d)" without with_pruning)
    true
    (with_pruning < without)

let test_hierarchy_promotion_on_completion () =
  (* When the top flow leaves, the demoted flow must be promoted. *)
  let cfg = Config.default in
  let e, _, topo, hier = tree_rig cfg in
  let h = topo.Topology.hosts in
  let asg2 = ref [] in
  let f1 = Flow.make ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:10 ~start_time:0. () in
  let f2 = Flow.make ~id:2 ~src:h.(0) ~dst:h.(1) ~size_pkts:999 ~start_time:0. () in
  add_static_flow hier ~flow:f1 ~remaining:10 ~demand:1e9 ~assignments:(ref []);
  add_static_flow hier ~flow:f2 ~remaining:999 ~demand:1e9 ~assignments:asg2;
  Hierarchy.start hier;
  Engine.schedule e ~delay:0.002 (fun () -> Hierarchy.remove_flow hier ~flow_id:1);
  Engine.run ~until:0.005 e;
  Hierarchy.stop hier;
  let first_q = List.nth !asg2 (List.length !asg2 - 1) |> fst in
  let last_q = fst (List.hd !asg2) in
  Alcotest.(check bool) "was demoted while f1 alive" true (first_q >= 1);
  Alcotest.(check int) "promoted after f1 left" 0 last_q

(* Pase_host end-to-end: SRPT completion order and probe-based recovery. *)
let pase_rig ?(cfg = Config.default) ?(hosts = 4) () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:cfg.Config.num_queues ~limit_pkts:500
          ~mark_threshold:20)
  in
  let rtt =
    Topology.base_rtt topo ~src:topo.Topology.hosts.(0)
      ~dst:topo.Topology.hosts.(1) ~data_bytes:1500
  in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. rtt) in
  Hierarchy.start hier;
  let launch ~id ~src ~dst ~size_pkts ~start =
    let result = ref None in
    Engine.schedule_at e ~time:start (fun () ->
        let flow = Flow.make ~id ~src ~dst ~size_pkts ~start_time:start () in
        let recv = Receiver.create topo.Topology.net ~flow () in
        let rtt = Topology.base_rtt topo ~src ~dst ~data_bytes:1500 in
        let on_complete _ ~fct =
          Receiver.stop recv;
          result := Some fct
        in
        Pase_host.start
          (Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
             ~on_complete ()));
    result
  in
  (e, c, topo, hier, launch)

let test_pase_host_srpt_order () =
  let e, _, topo, hier, launch = pase_rig () in
  let h = topo.Topology.hosts in
  (* Three flows to one destination, sizes inverted vs start order. *)
  let big = launch ~id:1 ~src:h.(0) ~dst:h.(3) ~size_pkts:600 ~start:0. in
  let mid = launch ~id:2 ~src:h.(1) ~dst:h.(3) ~size_pkts:200 ~start:0.0005 in
  let small = launch ~id:3 ~src:h.(2) ~dst:h.(3) ~size_pkts:50 ~start:0.001 in
  Engine.run ~until:0.5 e;
  Hierarchy.stop hier;
  match (!big, !mid, !small) with
  | Some fb, Some fm, Some fs ->
      let done_at start fct = start +. fct in
      Alcotest.(check bool) "small finishes first" true
        (done_at 0.001 fs < done_at 0.0005 fm);
      Alcotest.(check bool) "mid finishes before big" true
        (done_at 0.0005 fm < done_at 0. fb);
      (* Work conservation: total near serialization of 850 pkts. *)
      Alcotest.(check bool)
        (Printf.sprintf "big near-serial (%.2f ms)" (fb *. 1e3))
        true
        (fb < 13e-3)
  | _ -> Alcotest.fail "flows did not finish"

let test_pase_host_uses_probes () =
  let cfg = Config.default in
  let e, _, topo, hier, launch = pase_rig ~cfg () in
  let h = topo.Topology.hosts in
  (* A long-demoted flow behind a big one will time out in a low queue and
     probe instead of retransmitting. We only check it completes and the
     system stays correct. *)
  let big = launch ~id:1 ~src:h.(0) ~dst:h.(3) ~size_pkts:2000 ~start:0. in
  let small = launch ~id:2 ~src:h.(1) ~dst:h.(3) ~size_pkts:100 ~start:0.0005 in
  Engine.run ~until:1.0 e;
  Hierarchy.stop hier;
  Alcotest.(check bool) "both complete" true (!big <> None && !small <> None)

let test_pase_deterministic () =
  let run () =
    let e, _, topo, hier, launch = pase_rig () in
    let h = topo.Topology.hosts in
    let a = launch ~id:1 ~src:h.(0) ~dst:h.(3) ~size_pkts:300 ~start:0. in
    let b = launch ~id:2 ~src:h.(1) ~dst:h.(3) ~size_pkts:100 ~start:0.0002 in
    Engine.run ~until:0.5 e;
    Hierarchy.stop hier;
    (Option.get !a, Option.get !b)
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (pair (float 0.) (float 0.))) "bit-identical reruns" r1 r2

let suite =
  [
    Alcotest.test_case "arbitrator upsert/remove" `Quick test_arbitrator_upsert_remove;
    Alcotest.test_case "arbitrator arbitrate cache" `Quick test_arbitrator_arbitrate_cache;
    Alcotest.test_case "arbitrator expiry" `Quick test_arbitrator_expiry;
    Alcotest.test_case "arbitrator capacity" `Quick test_arbitrator_capacity_update;
    Alcotest.test_case "hierarchy intra-rack no msgs" `Quick test_hierarchy_intra_rack_no_messages;
    Alcotest.test_case "hierarchy inter-rack msgs" `Quick test_hierarchy_inter_rack_messages;
    Alcotest.test_case "hierarchy delegation off costs more" `Quick test_hierarchy_delegation_off_costs_more;
    Alcotest.test_case "hierarchy bottleneck combination" `Quick test_hierarchy_bottleneck_combination;
    Alcotest.test_case "hierarchy pruning reduces msgs" `Quick test_hierarchy_pruning_reduces_messages;
    Alcotest.test_case "hierarchy promotion on completion" `Quick test_hierarchy_promotion_on_completion;
    Alcotest.test_case "pase host SRPT order" `Quick test_pase_host_srpt_order;
    Alcotest.test_case "pase host uses probes" `Quick test_pase_host_uses_probes;
    Alcotest.test_case "pase deterministic" `Quick test_pase_deterministic;
  ]
