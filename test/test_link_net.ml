(* Links: serialization + propagation timing, back-to-back pipelining.
   Net: routing, delivery, handlers. Topology: structure and base RTT. *)

let mk ?(flow = 0) ?(seq = 0) ?(size = 1500) ?(src = 0) ?(dst = 1) () =
  Packet.make ~flow ~src ~dst ~kind:Packet.Data ~size ~seq ~sent_at:0. ()

let test_link_timing () =
  let e = Engine.create () in
  let c = Counters.create () in
  let arrivals = ref [] in
  let link =
    Link.create e
      ~qdisc:(Queue_disc.droptail c ~limit_pkts:10)
      ~rate_bps:1e9 ~delay_s:10e-6
      ~deliver:(fun p -> arrivals := (Engine.now e, p.Packet.seq) :: !arrivals)
      ()
  in
  (* 1500 B at 1 Gbps = 12 us serialization + 10 us propagation = 22 us. *)
  Link.send link (mk ~seq:0 ());
  Engine.run e;
  (match !arrivals with
  | [ (t, 0) ] -> Alcotest.(check (float 1e-9)) "arrival at 22us" 22e-6 t
  | _ -> Alcotest.fail "expected exactly one arrival");
  Alcotest.(check int) "bytes txed" 1500 (Link.bytes_txed link)

let test_link_pipelining () =
  let e = Engine.create () in
  let c = Counters.create () in
  let arrivals = ref [] in
  let link =
    Link.create e
      ~qdisc:(Queue_disc.droptail c ~limit_pkts:10)
      ~rate_bps:1e9 ~delay_s:10e-6
      ~deliver:(fun p -> arrivals := (Engine.now e, p.Packet.seq) :: !arrivals)
      ()
  in
  (* Two back-to-back packets: second is serialized right after the first,
     so it arrives exactly one serialization time later. *)
  Link.send link (mk ~seq:0 ());
  Link.send link (mk ~seq:1 ());
  Engine.run e;
  (match List.rev !arrivals with
  | [ (t0, 0); (t1, 1) ] ->
      Alcotest.(check (float 1e-9)) "first at 22us" 22e-6 t0;
      Alcotest.(check (float 1e-9)) "second 12us later" 34e-6 t1
  | _ -> Alcotest.fail "expected two arrivals")

let test_link_respects_queue_priority () =
  let e = Engine.create () in
  let c = Counters.create () in
  let arrivals = ref [] in
  let link =
    Link.create e
      ~qdisc:(Prio_queue.create c ~bands:2 ~limit_pkts:10 ~mark_threshold:99)
      ~rate_bps:1e9 ~delay_s:0.
      ~deliver:(fun p -> arrivals := p.Packet.seq :: !arrivals)
      ()
  in
  (* First packet seizes the transmitter; among the queued rest, the
     high-priority one must leave ahead of earlier low-priority arrivals. *)
  let p0 = mk ~seq:0 () in
  p0.Packet.tos <- 1;
  let p1 = mk ~seq:1 () in
  p1.Packet.tos <- 1;
  let p2 = mk ~seq:2 () in
  p2.Packet.tos <- 0;
  Link.send link p0;
  Link.send link p1;
  Link.send link p2;
  Engine.run e;
  Alcotest.(check (list int)) "priority within queue" [ 0; 2; 1 ]
    (List.rev !arrivals)

let build_star () =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:4 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  (e, c, topo)

let test_net_route_star () =
  let _, _, topo = build_star () in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let tor = topo.Topology.tors.(0) in
  Alcotest.(check (list int)) "two-hop route" [ h.(0); tor; h.(3) ]
    (Net.route net ~src:h.(0) ~dst:h.(3) ())

let test_net_delivery_and_handlers () =
  let e, c, topo = build_star () in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let got = ref [] in
  Net.register_flow net ~host:h.(1) ~flow:7 (fun p -> got := p.Packet.seq :: !got);
  Net.send net
    (Packet.make ~flow:7 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Data ~size:1500
       ~seq:42 ~sent_at:0. ());
  Engine.run e;
  Alcotest.(check (list int)) "delivered" [ 42 ] !got;
  Alcotest.(check int) "no strays" 0 c.Counters.stray_pkts;
  (* After unregistering, delivery counts as stray. *)
  Net.unregister_flow net ~host:h.(1) ~flow:7;
  Net.send net
    (Packet.make ~flow:7 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Data ~size:1500
       ~seq:43 ~sent_at:0. ());
  Engine.run e;
  Alcotest.(check int) "stray counted" 1 c.Counters.stray_pkts

let build_tree () =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.three_tier e c ~hosts_per_tor:4 ~tors:4 ~aggs:2 ~edge_rate_bps:1e9
      ~fabric_rate_bps:10e9 ~link_delay_s:25e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  (e, c, topo)

let test_tree_structure () =
  let _, _, topo = build_tree () in
  Alcotest.(check int) "hosts" 16 (Array.length topo.Topology.hosts);
  Alcotest.(check int) "tors" 4 (Array.length topo.Topology.tors);
  Alcotest.(check int) "aggs" 2 (Array.length topo.Topology.aggs);
  Alcotest.(check int) "cores" 1 (Array.length topo.Topology.cores)

let test_tree_routes () =
  let _, _, topo = build_tree () in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  (* Same rack: 2 hops via the ToR only. *)
  let intra = Net.route net ~src:h.(0) ~dst:h.(1) () in
  Alcotest.(check int) "intra-rack path length" 3 (List.length intra);
  (* Same agg, different racks: via ToR-Agg-ToR. *)
  let same_agg = Net.route net ~src:h.(0) ~dst:h.(4) () in
  Alcotest.(check int) "same-agg path length" 5 (List.length same_agg);
  (* Across the core: 6 links. *)
  let cross = Net.route net ~src:h.(0) ~dst:h.(15) () in
  Alcotest.(check int) "cross-core path length" 7 (List.length cross);
  Alcotest.(check bool) "crosses the core" true
    (List.mem topo.Topology.cores.(0) cross)

let test_tree_tor_agg_of () =
  let _, _, topo = build_tree () in
  let h = topo.Topology.hosts in
  Alcotest.(check int) "tor of host 0" topo.Topology.tors.(0)
    (Topology.tor_of topo h.(0));
  Alcotest.(check int) "tor of host 15" topo.Topology.tors.(3)
    (Topology.tor_of topo h.(15));
  Alcotest.(check int) "agg of tor 0" topo.Topology.aggs.(0)
    (Topology.agg_of topo topo.Topology.tors.(0));
  Alcotest.(check int) "agg of tor 3" topo.Topology.aggs.(1)
    (Topology.agg_of topo topo.Topology.tors.(3))

let test_base_rtt () =
  let _, _, topo = build_tree () in
  let h = topo.Topology.hosts in
  (* Cross-core: 6 links each way; propagation 12 x 25us = 300us, plus
     serialization of data (6 x 12us) and ack (6 x 0.32us). *)
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(15) ~data_bytes:1500 in
  Alcotest.(check bool) "rtt near 330-380us" true (rtt > 320e-6 && rtt < 390e-6);
  let intra = Topology.base_rtt topo ~src:h.(0) ~dst:h.(1) ~data_bytes:1500 in
  Alcotest.(check bool) "intra-rack rtt smaller" true (intra < rtt /. 2.)

let test_end_to_end_delivery_tree () =
  let e, _, topo = build_tree () in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let got = ref 0 in
  Net.register_flow net ~host:h.(15) ~flow:1 (fun _ -> incr got);
  for seq = 0 to 9 do
    Net.send net
      (Packet.make ~flow:1 ~src:h.(0) ~dst:h.(15) ~kind:Packet.Data ~size:1500
         ~seq ~sent_at:0. ())
  done;
  Engine.run e;
  Alcotest.(check int) "all delivered across core" 10 !got

let suite =
  [
    Alcotest.test_case "link timing" `Quick test_link_timing;
    Alcotest.test_case "link pipelining" `Quick test_link_pipelining;
    Alcotest.test_case "link respects queue priority" `Quick test_link_respects_queue_priority;
    Alcotest.test_case "net route star" `Quick test_net_route_star;
    Alcotest.test_case "net delivery and handlers" `Quick test_net_delivery_and_handlers;
    Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "tree routes" `Quick test_tree_routes;
    Alcotest.test_case "tor/agg accessors" `Quick test_tree_tor_agg_of;
    Alcotest.test_case "base rtt" `Quick test_base_rtt;
    Alcotest.test_case "end-to-end delivery in tree" `Quick test_end_to_end_delivery_tree;
  ]
