(* pase_lint, both tiers.

   Parse tier: each syntactic rule fires exactly once on its fixture,
   pragmas suppress (with a justification) or are themselves flagged,
   and stale pragmas are reported. Typed tier: the four dataflow
   analyses run over fixtures typechecked in-process against the same
   compiler-libs this binary links, driven through the same
   [Lint_flow.analyze] pipeline (pragma suppression included) as
   `pase_lint --typed-only`. Finally, the shipped tree must be
   parse-tier clean (the typed tier needs cmts; CI runs it after
   `dune build @check`). *)

let rules fs = List.map (fun f -> f.Lint_engine.rule) fs
let lint src = Lint_engine.lint_source ~file:"fixture.ml" src

let check_rules msg expected src =
  Alcotest.(check (list string)) msg expected (rules (lint src))

(* ---- parse tier: rules ---------------------------------------------------- *)

let test_clean () =
  check_rules "no findings on clean code" []
    {|let f h = Hashtbl.find_opt h 0
let g h k v = Hashtbl.replace h k v
let s xs = List.fold_left ( +. ) 0. xs|}

let test_unseeded_random () =
  check_rules "Random.* flagged" [ "no-unseeded-random" ]
    {|let x () = Random.int 5|}

let test_wallclock () =
  check_rules "Unix.gettimeofday flagged" [ "no-wallclock" ]
    {|let t () = Unix.gettimeofday ()|};
  check_rules "Sys.time flagged" [ "no-wallclock" ] {|let t () = Sys.time ()|}

let test_hash_order () =
  check_rules "Hashtbl.fold flagged" [ "no-hash-order" ]
    {|let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|};
  check_rules "Hashtbl.iter flagged" [ "no-hash-order" ]
    {|let f h = Hashtbl.iter (fun _ _ -> ()) h|};
  check_rules "Det_tbl not flagged" []
    {|let f h = Det_tbl.fold (fun k _ acc -> k :: acc) h []|}

let test_silent_catchall () =
  check_rules "try-with wildcard flagged" [ "no-silent-catchall" ]
    {|let f g = try g () with _ -> 0|};
  check_rules "match-exception wildcard flagged" [ "no-silent-catchall" ]
    {|let f g = match g () with v -> v | exception _ -> 0|};
  check_rules "explicit handler not flagged" []
    {|let f g = try g () with Not_found -> 0|}

let test_marshal () =
  check_rules "Marshal flagged" [ "no-marshal" ]
    {|let s x = Marshal.to_string x []|}

let test_obj_magic () =
  check_rules "Obj.magic flagged" [ "no-obj-magic" ] {|let c x = Obj.magic x|};
  check_rules "other Obj.* not flagged" [] {|let r x = Obj.repr x|}

let test_poly_compare_sort () =
  check_rules "List.sort compare flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort compare xs|};
  check_rules "Array.sort Stdlib.compare flagged" [ "no-poly-compare-sort" ]
    {|let f a = Array.sort Stdlib.compare a|};
  check_rules "List.sort_uniq compare flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort_uniq compare xs|};
  check_rules "Array.stable_sort compare flagged" [ "no-poly-compare-sort" ]
    {|let f a = Array.stable_sort compare a|};
  check_rules "ListLabels.stable_sort ~cmp:compare flagged"
    [ "no-poly-compare-sort" ]
    {|let f xs = ListLabels.stable_sort ~cmp:compare xs|};
  check_rules "explicit comparator not flagged" []
    {|let f xs = List.sort Float.compare xs
let g a = Array.sort Int.compare a
let h rows = List.sort (List.compare String.compare) rows|}

let test_poly_compare_eta () =
  check_rules "eta-expanded compare flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort (fun a b -> compare a b) xs|};
  check_rules "flipped eta-expansion flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort (fun a b -> compare b a) xs|};
  check_rules "eta-expanded Stdlib.compare in sort_uniq flagged"
    [ "no-poly-compare-sort" ]
    {|let f xs = List.sort_uniq (fun a b -> Stdlib.compare a b) xs|};
  check_rules "eta-expansion of a typed comparator not flagged" []
    {|let f xs = List.sort (fun a b -> Float.compare a b) xs|};
  (* A named comparator that happens to wrap `compare`, or `compare` used
     outside a sort, is out of the rule's scope. *)
  check_rules "compare outside a sort not flagged" []
    {|let cmp a b = compare a b
let f xs = List.sort cmp xs
let eq x y = compare x y = 0|}

let test_mentions_in_comments_and_strings () =
  check_rules "comments and strings are not code" []
    {|(* Hashtbl.fold would be bad; so would Random.int *)
let doc = "call Hashtbl.fold or try ... with _ -> here"|}

(* ---- parse tier: pragmas -------------------------------------------------- *)

let test_pragma_same_line () =
  check_rules "trailing pragma suppresses" []
    {|let f h = Hashtbl.fold (fun k _ a -> k :: a) h [] (* lint: allow no-hash-order — test fixture *)|}

let test_pragma_previous_line () =
  check_rules "pragma on the line above suppresses" []
    {|(* lint: allow no-hash-order — test fixture *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_two_rules_one_line () =
  (* Two violations on one line need two pragma lines; both may share one
     comment (the grammar splits on lines). *)
  check_rules "stacked pragmas suppress two rules on one line" []
    {|(* lint: allow no-hash-order — test fixture
   lint: allow no-unseeded-random — test fixture *)
let f h = Hashtbl.iter (fun k _ -> ignore (Random.int k)) h|};
  check_rules "one pragma leaves the other rule firing"
    [ "no-unseeded-random" ]
    {|(* lint: allow no-hash-order — test fixture *)
let f h = Hashtbl.iter (fun k _ -> ignore (Random.int k)) h|}

let test_pragma_in_functor_body () =
  check_rules "pragma inside a functor body suppresses" []
    {|module F (X : sig val h : (int, int) Hashtbl.t end) = struct
  (* lint: allow no-hash-order — test fixture *)
  let f () = Hashtbl.iter (fun _ _ -> ()) X.h
end|};
  check_rules "functor body without pragma still fires" [ "no-hash-order" ]
    {|module F (X : sig val h : (int, int) Hashtbl.t end) = struct
  let f () = Hashtbl.iter (fun _ _ -> ()) X.h
end|}

let test_pragma_wrong_rule () =
  (* The wrong-rule pragma suppresses nothing, so it is also stale. *)
  check_rules "pragma for another rule does not suppress"
    [ "stale-pragma"; "no-hash-order" ]
    {|(* lint: allow no-wallclock — wrong rule *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_out_of_range () =
  check_rules "pragma two lines up does not suppress"
    [ "stale-pragma"; "no-hash-order" ]
    {|(* lint: allow no-hash-order — too far away *)

let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_unknown_rule () =
  check_rules "unknown rule name is flagged" [ "bad-pragma" ]
    {|(* lint: allow no-such-rule — whatever *)
let x = 1|}

let test_pragma_missing_reason () =
  check_rules "justification is mandatory"
    [ "bad-pragma"; "no-hash-order" ]
    {|(* lint: allow no-hash-order *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_stale () =
  (* Regression: the stale check must run *after* suppression has marked
     pragmas used — a pragma that suppresses is never stale... *)
  check_rules "suppressing pragma is not reported stale" []
    {|(* lint: allow no-marshal — test fixture *)
let s x = Marshal.to_string x []|};
  (* ...and a justified pragma whose violation was fixed is dead weight. *)
  check_rules "orphaned pragma is stale" [ "stale-pragma" ]
    {|(* lint: allow no-marshal — the violation below was deleted *)
let x = 1|}

let test_parse_error () =
  check_rules "unparsable source is reported" [ "parse-error" ]
    {|let f = (|}

(* ---- typed tier: fixture harness ------------------------------------------ *)

(* Typecheck a fixture against the stdlib of the compiler-libs this test
   links, then push it through the same driver pipeline as
   `pase_lint --typed-only` (all four analyses + pragma suppression +
   stale-pragma detection). Fixtures stub [Packet]/[Trace] locally; the
   analyses match on the trailing components of paths, so the stubs are
   indistinguishable from the simulator's unwrapped modules. *)
let typecheck src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf "fixture.ml";
  let ast = Parse.implementation lexbuf in
  Compmisc.init_path ();
  let env = Compmisc.initial_env () in
  match Typemod.type_structure env ast with
  | str, _, _, _, _ -> str
  | exception exn ->
      Alcotest.failf "fixture does not typecheck: %s"
        (Printexc.to_string exn)

let typed_rules src =
  rules
    (Lint_flow.analyze
       [
         Lint_flow.input_of_typed ~src_file:"fixture.ml" ~source:(Some src)
           (typecheck src);
       ])

let check_typed msg expected src =
  Alcotest.(check (list string)) msg expected (typed_rules src)

let packet_stub =
  {|module Packet = struct
  type t = { mutable size : int }
  let free (_ : t) = ()
end
|}

(* ---- typed tier: pool lifetimes ------------------------------------------- *)

let test_flow_use_after_free () =
  check_typed "read after free flagged" [ "pool-lifetime" ]
    (packet_stub ^ {|let f p = Packet.free p; p.Packet.size|});
  check_typed "double free flagged" [ "pool-lifetime" ]
    (packet_stub ^ {|let f p = Packet.free p; Packet.free p|});
  check_typed "free on one branch taints the join" [ "pool-lifetime" ]
    (packet_stub
   ^ {|let f c p = (if c then Packet.free p); ignore (p : Packet.t)|});
  check_typed "use before free is fine" []
    (packet_stub ^ {|let f p = ignore p.Packet.size; Packet.free p|})

let test_flow_interprocedural_free () =
  (* [discard] forwards its parameter to [Packet.free]; the summary pass
     must treat it as freeing so the use in [f] is flagged. *)
  check_typed "use after call to a freeing wrapper flagged"
    [ "pool-lifetime" ]
    (packet_stub
   ^ {|let discard p = Packet.free p
let f p = discard p; p.Packet.size|})

let test_flow_escape () =
  check_typed "store into a mutable field flagged" [ "pool-lifetime" ]
    (packet_stub
   ^ {|type slot = { mutable cur : Packet.t }
let park s p = s.cur <- p|});
  check_typed "push into a container flagged" [ "pool-lifetime" ]
    (packet_stub ^ {|let park q (p : Packet.t) = Queue.push p q|});
  check_typed "Some-wrapped array store flagged" [ "pool-lifetime" ]
    (packet_stub ^ {|let park a (p : Packet.t) = a.(0) <- Some p|});
  check_typed "closure deferred via schedule flagged" [ "pool-lifetime" ]
    (packet_stub
   ^ {|let defer schedule (p : Packet.t) = schedule (fun () -> ignore p)|});
  (* Clearing a slot with the pool's dummy sentinel is the blessed idiom. *)
  check_typed "dummy-sentinel store exempt" []
    (packet_stub
   ^ {|type slot = { mutable cur : Packet.t }
let dummy = { Packet.size = 0 }
let clear s = s.cur <- dummy|})

let test_flow_pool_pragma () =
  check_typed "allow pragma suppresses an ownership transfer" []
    (packet_stub
   ^ {|(* lint: allow pool-lifetime — test fixture: ownership transfers *)
let park q (p : Packet.t) = Queue.push p q|});
  check_typed "orphaned typed-tier pragma is stale" [ "stale-pragma" ]
    (packet_stub
   ^ {|(* lint: allow pool-lifetime — nothing left to excuse *)
let x = 1|})

(* ---- typed tier: units of measure ----------------------------------------- *)

let test_flow_units () =
  check_typed "adding seconds to bits/sec flagged" [ "unit-mismatch" ]
    {|let f (deadline_s : float) (rate_bps : float) = deadline_s +. rate_bps|};
  check_typed "comparing time to bytes flagged" [ "unit-mismatch" ]
    {|let f (fct : float) (data_bytes : float) = fct < data_bytes|};
  check_typed "same dimension is fine" []
    {|let f (start_s : float) (end_s : float) = end_s -. start_s|};
  (* Multiplication legitimately changes dimension: bps * s = bits. *)
  check_typed "products are dimensionless to the checker" []
    {|let f (x_bytes : float) (rate_bps : float) (dur_s : float) =
  x_bytes +. (rate_bps *. dur_s /. 8.)|}

let test_flow_units_intermediate () =
  (* An unsuffixed let-binding inherits the dimension of its initializer,
     so one intermediate doesn't launder a mismatch. *)
  check_typed "dimension tracked through a let intermediate"
    [ "unit-mismatch" ]
    {|let f (now : float) (start_time : float) (len_bytes : float) =
  let elapsed = now -. start_time in
  elapsed +. len_bytes|}

let test_flow_units_labeled_arg () =
  check_typed "bytes passed to a ~delay_s: parameter flagged"
    [ "unit-mismatch" ]
    {|let callee ~delay_s:(d : float) = d
let caller (sz_bytes : float) = callee ~delay_s:sz_bytes|};
  check_typed "matching labeled dimension is fine" []
    {|let callee ~delay_s:(d : float) = d
let caller (rtt : float) = callee ~delay_s:rtt|}

let test_flow_units_pragma () =
  check_typed "allow pragma suppresses a deliberate mix" []
    {|(* lint: allow unit-mismatch — test fixture: deliberate *)
let f (deadline_s : float) (rate_bps : float) = deadline_s +. rate_bps|}

(* ---- typed tier: trace guard ---------------------------------------------- *)

let trace_stub =
  {|module Trace = struct
  type event = Tick of int
  let on () = true
  let emit (_ : event) = ()
end
|}

let test_flow_trace () =
  check_typed "unguarded emit flagged" [ "trace-unguarded" ]
    (trace_stub ^ {|let f x = Trace.emit (Trace.Tick x)|});
  check_typed "guarded emit is fine" []
    (trace_stub
   ^ {|let f x = if Trace.on () then Trace.emit (Trace.Tick x)|});
  check_typed "negated guard protects the else branch" []
    (trace_stub
   ^ {|let f x = if not (Trace.on ()) then () else Trace.emit (Trace.Tick x)|});
  check_typed "unguarded event allocation flagged" [ "trace-unguarded" ]
    (trace_stub ^ {|let make x = Trace.Tick x|});
  check_typed "allocation inside a guarded closure is fine" []
    (trace_stub
   ^ {|let f run x = if Trace.on () then run (fun () -> Trace.emit (Trace.Tick x))|})

(* ---- typed tier: determinism taint ---------------------------------------- *)

let test_flow_taint () =
  (* A one-line wrapper launders Random past the parse tier; the summary
     pass must carry the taint to the caller. *)
  check_typed "RNG taint propagates through a wrapper"
    [ "determinism-taint" ]
    {|let jitter () = Random.float 1e-6
let step x = x +. jitter ()|};
  (* The defect class caught in this tree: a helper wrapping Hashtbl.iter
     hands unordered iteration to every caller (test_workload's incast
     check asserted group shapes in hash order until this pass flagged
     it). *)
  check_typed "hash-order taint propagates through a wrapper"
    [ "determinism-taint" ]
    {|let visit h f = Hashtbl.iter f h
let total h = let n = ref 0 in visit h (fun _ v -> n := !n + v); !n|};
  check_typed "untainted helpers are fine" []
    {|let double x = 2 * x
let f x = double (double x)|}

let test_flow_taint_pragmas () =
  check_typed "taint pragma declares propagation" []
    {|let jitter () = Random.float 1e-6
(* lint: taint no-unseeded-random — test fixture: by-design noise *)
let step x = x +. jitter ()|};
  check_typed "allow pragma contains the call site" []
    {|let jitter () = Random.float 1e-6
(* lint: allow determinism-taint — test fixture: contained *)
let step x = x +. jitter ()|};
  (* Containing the source means there is nothing to propagate. *)
  check_typed "allow pragma at the source kills the taint" []
    {|(* lint: allow no-unseeded-random — test fixture: contained at source *)
let jitter () = Random.float 1e-6
let step x = x +. jitter ()|}

(* ---- the shipped tree ------------------------------------------------------ *)

(* The shipped tree must be parse-tier clean: every banned construct is
   either migrated or carries a justified pragma. Mirrors the parse half
   of `dune build @lint`; CI re-runs the typed half after @check. *)
let test_tree_is_clean () =
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "lib"))
      [ "."; ".."; Filename.concat ".." ".." ]
  in
  match root with
  | None -> Alcotest.fail "cannot locate the source tree from the test cwd"
  | Some root ->
      let paths =
        List.filter Sys.file_exists
          (List.map (Filename.concat root) [ "lib"; "bin"; "bench" ])
      in
      let findings = Lint_engine.lint_paths paths in
      Alcotest.(check (list string))
        (Printf.sprintf "tree under %s is lint-clean" root)
        []
        (List.map (Format.asprintf "%a" Lint_engine.pp_finding) findings)

let parse_suite =
  [
    Alcotest.test_case "clean code" `Quick test_clean;
    Alcotest.test_case "no-unseeded-random" `Quick test_unseeded_random;
    Alcotest.test_case "no-wallclock" `Quick test_wallclock;
    Alcotest.test_case "no-hash-order" `Quick test_hash_order;
    Alcotest.test_case "no-silent-catchall" `Quick test_silent_catchall;
    Alcotest.test_case "no-marshal" `Quick test_marshal;
    Alcotest.test_case "no-obj-magic" `Quick test_obj_magic;
    Alcotest.test_case "no-poly-compare-sort" `Quick test_poly_compare_sort;
    Alcotest.test_case "eta-expanded comparators" `Quick test_poly_compare_eta;
    Alcotest.test_case "comments and strings ignored" `Quick
      test_mentions_in_comments_and_strings;
    Alcotest.test_case "pragma same line" `Quick test_pragma_same_line;
    Alcotest.test_case "pragma previous line" `Quick test_pragma_previous_line;
    Alcotest.test_case "pragma two rules one line" `Quick
      test_pragma_two_rules_one_line;
    Alcotest.test_case "pragma in functor body" `Quick
      test_pragma_in_functor_body;
    Alcotest.test_case "pragma wrong rule" `Quick test_pragma_wrong_rule;
    Alcotest.test_case "pragma out of range" `Quick test_pragma_out_of_range;
    Alcotest.test_case "pragma unknown rule" `Quick test_pragma_unknown_rule;
    Alcotest.test_case "pragma missing reason" `Quick test_pragma_missing_reason;
    Alcotest.test_case "stale pragmas" `Quick test_pragma_stale;
    Alcotest.test_case "parse error reported" `Quick test_parse_error;
  ]

let typed_suite =
  [
    Alcotest.test_case "use after free" `Quick test_flow_use_after_free;
    Alcotest.test_case "interprocedural free" `Quick
      test_flow_interprocedural_free;
    Alcotest.test_case "escape detection" `Quick test_flow_escape;
    Alcotest.test_case "pool pragmas" `Quick test_flow_pool_pragma;
    Alcotest.test_case "unit mismatches" `Quick test_flow_units;
    Alcotest.test_case "units through intermediates" `Quick
      test_flow_units_intermediate;
    Alcotest.test_case "units of labeled arguments" `Quick
      test_flow_units_labeled_arg;
    Alcotest.test_case "units pragma" `Quick test_flow_units_pragma;
    Alcotest.test_case "trace guard" `Quick test_flow_trace;
    Alcotest.test_case "determinism taint" `Quick test_flow_taint;
    Alcotest.test_case "taint pragmas" `Quick test_flow_taint_pragmas;
  ]

let tree_suite =
  [ Alcotest.test_case "shipped tree is clean" `Quick test_tree_is_clean ]

let () =
  Alcotest.run "pase-lint"
    [ ("parse", parse_suite); ("typed", typed_suite); ("tree", tree_suite) ]
