(* pase_lint: each rule fires exactly once on its fixture, pragmas
   suppress (with a justification) or are themselves flagged, file
   allowlists work, and the shipped tree is lint-clean. *)

let rules fs = List.map (fun f -> f.Lint_engine.rule) fs
let lint src = Lint_engine.lint_source ~file:"fixture.ml" src

let check_rules msg expected src =
  Alcotest.(check (list string)) msg expected (rules (lint src))

let test_clean () =
  check_rules "no findings on clean code" []
    {|let f h = Hashtbl.find_opt h 0
let g h k v = Hashtbl.replace h k v
let s xs = List.fold_left ( +. ) 0. xs|}

let test_unseeded_random () =
  check_rules "Random.* flagged" [ "no-unseeded-random" ]
    {|let x () = Random.int 5|}

let test_wallclock () =
  check_rules "Unix.gettimeofday flagged" [ "no-wallclock" ]
    {|let t () = Unix.gettimeofday ()|};
  check_rules "Sys.time flagged" [ "no-wallclock" ] {|let t () = Sys.time ()|}

let test_hash_order () =
  check_rules "Hashtbl.fold flagged" [ "no-hash-order" ]
    {|let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []|};
  check_rules "Hashtbl.iter flagged" [ "no-hash-order" ]
    {|let f h = Hashtbl.iter (fun _ _ -> ()) h|};
  check_rules "Det_tbl not flagged" []
    {|let f h = Det_tbl.fold (fun k _ acc -> k :: acc) h []|}

let test_silent_catchall () =
  check_rules "try-with wildcard flagged" [ "no-silent-catchall" ]
    {|let f g = try g () with _ -> 0|};
  check_rules "match-exception wildcard flagged" [ "no-silent-catchall" ]
    {|let f g = match g () with v -> v | exception _ -> 0|};
  check_rules "explicit handler not flagged" []
    {|let f g = try g () with Not_found -> 0|}

let test_marshal () =
  check_rules "Marshal flagged" [ "no-marshal" ]
    {|let s x = Marshal.to_string x []|}

let test_obj_magic () =
  check_rules "Obj.magic flagged" [ "no-obj-magic" ] {|let c x = Obj.magic x|};
  check_rules "other Obj.* not flagged" [] {|let r x = Obj.repr x|}

let test_poly_compare_sort () =
  check_rules "List.sort compare flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort compare xs|};
  check_rules "Array.sort Stdlib.compare flagged" [ "no-poly-compare-sort" ]
    {|let f a = Array.sort Stdlib.compare a|};
  check_rules "List.sort_uniq compare flagged" [ "no-poly-compare-sort" ]
    {|let f xs = List.sort_uniq compare xs|};
  check_rules "ListLabels.stable_sort ~cmp:compare flagged"
    [ "no-poly-compare-sort" ]
    {|let f xs = ListLabels.stable_sort ~cmp:compare xs|};
  check_rules "explicit comparator not flagged" []
    {|let f xs = List.sort Float.compare xs
let g a = Array.sort Int.compare a
let h rows = List.sort (List.compare String.compare) rows|};
  (* A named comparator that happens to wrap `compare`, or `compare` used
     outside a sort, is out of the rule's scope. *)
  check_rules "compare outside a sort not flagged" []
    {|let cmp a b = compare a b
let f xs = List.sort cmp xs
let eq x y = compare x y = 0|}

let test_mentions_in_comments_and_strings () =
  check_rules "comments and strings are not code" []
    {|(* Hashtbl.fold would be bad; so would Random.int *)
let doc = "call Hashtbl.fold or try ... with _ -> here"|}

let test_pragma_same_line () =
  check_rules "trailing pragma suppresses" []
    {|let f h = Hashtbl.fold (fun k _ a -> k :: a) h [] (* lint: allow no-hash-order — test fixture *)|}

let test_pragma_previous_line () =
  check_rules "pragma on the line above suppresses" []
    {|(* lint: allow no-hash-order — test fixture *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_wrong_rule () =
  check_rules "pragma for another rule does not suppress" [ "no-hash-order" ]
    {|(* lint: allow no-wallclock — wrong rule *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_out_of_range () =
  check_rules "pragma two lines up does not suppress" [ "no-hash-order" ]
    {|(* lint: allow no-hash-order — too far away *)

let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_pragma_unknown_rule () =
  check_rules "unknown rule name is flagged" [ "bad-pragma" ]
    {|(* lint: allow no-such-rule — whatever *)
let x = 1|}

let test_pragma_missing_reason () =
  check_rules "justification is mandatory"
    [ "bad-pragma"; "no-hash-order" ]
    {|(* lint: allow no-hash-order *)
let f h = Hashtbl.iter (fun _ _ -> ()) h|}

let test_file_allowlists () =
  let check_allowed file src =
    Alcotest.(check (list string))
      (file ^ " is allowlisted") []
      (rules (Lint_engine.lint_source ~file src))
  in
  check_allowed "lib/sim/rng.ml" {|let x () = Random.int 5|};
  check_allowed "lib/workload/parallel.ml" {|let t () = Unix.gettimeofday ()|};
  check_allowed "lib/sim/det_tbl.ml"
    {|let f h = Hashtbl.fold (fun k _ a -> k :: a) h []|};
  check_allowed "lib/workload/result_codec.ml"
    {|let s x = Marshal.to_string x []|};
  (* Eheap lost its no-obj-magic exemption when it grew a typed ~dummy
     slot: Obj.magic is now banned everywhere. *)
  Alcotest.(check (list string))
    "eheap.ml no longer exempt from no-obj-magic" [ "no-obj-magic" ]
    (rules
       (Lint_engine.lint_source ~file:"lib/sim/eheap.ml"
          {|let c x = Obj.magic x|}));
  (* The allowlist is per rule, not a blanket exemption. *)
  Alcotest.(check (list string))
    "rng.ml still checked for other rules" [ "no-hash-order" ]
    (rules
       (Lint_engine.lint_source ~file:"lib/sim/rng.ml"
          {|let f h = Hashtbl.iter (fun _ _ -> ()) h|}))

let test_parse_error () =
  check_rules "unparsable source is reported" [ "parse-error" ]
    {|let f = (|}

(* The shipped tree must be clean: every banned construct is either
   migrated or carries a justified pragma. Mirrors `dune build @lint`. *)
let test_tree_is_clean () =
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "lib"))
      [ "."; ".."; Filename.concat ".." ".." ]
  in
  match root with
  | None -> Alcotest.fail "cannot locate the source tree from the test cwd"
  | Some root ->
      let paths =
        List.filter Sys.file_exists
          (List.map (Filename.concat root) [ "lib"; "bin"; "bench" ])
      in
      let findings = Lint_engine.lint_paths paths in
      Alcotest.(check (list string))
        (Printf.sprintf "tree under %s is lint-clean" root)
        []
        (List.map (Format.asprintf "%a" Lint_engine.pp_finding) findings)

let suite =
  [
    Alcotest.test_case "clean code" `Quick test_clean;
    Alcotest.test_case "no-unseeded-random" `Quick test_unseeded_random;
    Alcotest.test_case "no-wallclock" `Quick test_wallclock;
    Alcotest.test_case "no-hash-order" `Quick test_hash_order;
    Alcotest.test_case "no-silent-catchall" `Quick test_silent_catchall;
    Alcotest.test_case "no-marshal" `Quick test_marshal;
    Alcotest.test_case "no-obj-magic" `Quick test_obj_magic;
    Alcotest.test_case "no-poly-compare-sort" `Quick test_poly_compare_sort;
    Alcotest.test_case "comments and strings ignored" `Quick
      test_mentions_in_comments_and_strings;
    Alcotest.test_case "pragma same line" `Quick test_pragma_same_line;
    Alcotest.test_case "pragma previous line" `Quick test_pragma_previous_line;
    Alcotest.test_case "pragma wrong rule" `Quick test_pragma_wrong_rule;
    Alcotest.test_case "pragma out of range" `Quick test_pragma_out_of_range;
    Alcotest.test_case "pragma unknown rule" `Quick test_pragma_unknown_rule;
    Alcotest.test_case "pragma missing reason" `Quick test_pragma_missing_reason;
    Alcotest.test_case "file allowlists" `Quick test_file_allowlists;
    Alcotest.test_case "parse error reported" `Quick test_parse_error;
    Alcotest.test_case "shipped tree is clean" `Quick test_tree_is_clean;
  ]

let () = Alcotest.run "pase-lint" [ ("lint", suite) ]
