(* Scenarios and the runner: schedule construction, load accounting, and
   end-to-end integration runs for every protocol. *)

let build sc =
  let e = Engine.create () in
  let c = Counters.create () in
  let plan =
    Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
        Queue_disc.droptail c ~limit_pkts:100)
  in
  plan

let test_left_right_plan () =
  let sc = Scenario.left_right ~num_flows:200 ~seed:5 ~load:0.6 () in
  let plan = build sc in
  Alcotest.(check int) "160 hosts" 160
    (Array.length plan.Scenario.topo.Topology.hosts);
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  Alcotest.(check int) "200 measured flows" 200 (List.length measured);
  Alcotest.(check int) "2 background" 2
    (List.length plan.Scenario.specs - List.length measured);
  (* Left to right only. *)
  let hosts = plan.Scenario.topo.Topology.hosts in
  let left = Array.sub hosts 0 80 and right = Array.sub hosts 80 80 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "src in left" true
        (Array.exists (fun h -> h = s.Scenario.src) left);
      Alcotest.(check bool) "dst in right" true
        (Array.exists (fun h -> h = s.Scenario.dst) right))
    measured;
  (* Arrival rate: load x 10G / mean bits. *)
  let expect = 0.6 *. 10e9 /. (8. *. 100e3) in
  Alcotest.(check bool) "arrival rate" true
    (Float.abs (plan.Scenario.arrival_rate -. expect) /. expect < 1e-9)

let test_starts_sorted_and_positive () =
  let sc = Scenario.left_right ~num_flows:100 ~seed:2 ~load:0.5 () in
  let plan = build sc in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Scenario.start <= b.Scenario.start && sorted rest
    | _ -> true
  in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  Alcotest.(check bool) "arrivals sorted" true (sorted measured);
  List.iter
    (fun s -> Alcotest.(check bool) "positive sizes" true (s.Scenario.size_bytes > 0))
    measured

let test_deadline_scenario_has_deadlines () =
  let sc = Scenario.deadline_intra_rack ~num_flows:50 ~seed:1 ~load:0.4 () in
  let plan = build sc in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then begin
        match s.Scenario.deadline with
        | Some d ->
            Alcotest.(check bool) "deadline in [5,25] ms" true
              (d >= 0.005 && d <= 0.025)
        | None -> Alcotest.fail "missing deadline"
      end)
    plan.Scenario.specs

let test_sizes_in_range () =
  let sc = Scenario.left_right ~num_flows:300 ~seed:9 ~load:0.5 () in
  let plan = build sc in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then
        Alcotest.(check bool) "size in [2,198] KB" true
          (s.Scenario.size_bytes >= 2_000 && s.Scenario.size_bytes <= 198_000))
    plan.Scenario.specs

let test_incast_structure () =
  let sc = Scenario.worker_aggregator ~hosts:10 ~num_flows:90 ~seed:3 ~load:0.5 () in
  let plan = build sc in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  (* 90 flows / fanout 9 = 10 queries of 9 flows each, same start and dst. *)
  Alcotest.(check int) "90 flows" 90 (List.length measured);
  let by_start = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let k = s.Scenario.start in
      Hashtbl.replace by_start k
        (s :: (try Hashtbl.find by_start k with Not_found -> [])))
    measured;
  Alcotest.(check int) "10 queries" 10 (Hashtbl.length by_start);
  (* Det_tbl, not Hashtbl.iter: a failing assertion must name the same
     query on every run, not whichever group the hash order visits first
     (flagged by the typed-tier determinism-taint pass). *)
  Det_tbl.iter
    (fun _ flows ->
      Alcotest.(check int) "9 workers per query" 9 (List.length flows);
      let dsts = List.sort_uniq compare (List.map (fun s -> s.Scenario.dst) flows) in
      Alcotest.(check int) "one aggregator" 1 (List.length dsts);
      List.iter
        (fun s ->
          Alcotest.(check bool) "worker is not aggregator" true
            (s.Scenario.src <> s.Scenario.dst))
        flows)
    by_start

let test_testbed_pattern () =
  let sc = Scenario.testbed ~num_flows:40 ~seed:4 ~load:0.3 () in
  let plan = build sc in
  let hosts = plan.Scenario.topo.Topology.hosts in
  let server = hosts.(9) in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then begin
        Alcotest.(check int) "all to the server" server s.Scenario.dst;
        Alcotest.(check bool) "client src" true (s.Scenario.src <> server)
      end)
    plan.Scenario.specs

let test_determinism_of_build () =
  let sc () = Scenario.left_right ~num_flows:50 ~seed:7 ~load:0.5 () in
  let p1 = build (sc ()) and p2 = build (sc ()) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical schedule" true
        (a.Scenario.src = b.Scenario.src
        && a.Scenario.dst = b.Scenario.dst
        && a.Scenario.size_bytes = b.Scenario.size_bytes
        && a.Scenario.start = b.Scenario.start))
    p1.Scenario.specs p2.Scenario.specs

let test_load_bounds () =
  let e = Engine.create () in
  let c = Counters.create () in
  let sc =
    { (Scenario.left_right ~num_flows:10 ~load:0.5 ()) with Scenario.load = 0. }
  in
  Alcotest.check_raises "zero load" (Invalid_argument "Scenario.build: load")
    (fun () ->
      ignore
        (Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
             Queue_disc.droptail c ~limit_pkts:10)))

(* Integration: a small run per protocol completes all flows and produces
   sane metrics. *)
let integration proto () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:60 ~seed:11 ~load:0.5 () in
  let r = Runner.run proto sc in
  Alcotest.(check int) "all completed" 60 r.Runner.completed;
  Alcotest.(check int) "none censored" 0 r.Runner.censored;
  Alcotest.(check bool) "afct positive" true (r.Runner.afct > 0.);
  Alcotest.(check bool) "p99 >= afct" true (r.Runner.p99 >= r.Runner.afct);
  Alcotest.(check bool) "duration sane" true
    (r.Runner.duration > 0. && r.Runner.duration < 10.)

let test_runner_deterministic () =
  let sc () = Scenario.worker_aggregator ~hosts:6 ~num_flows:40 ~seed:2 ~load:0.6 () in
  let r1 = Runner.run Runner.pase (sc ()) in
  let r2 = Runner.run Runner.pase (sc ()) in
  Alcotest.(check (float 0.)) "identical afct" r1.Runner.afct r2.Runner.afct;
  Alcotest.(check int) "identical msgs" r1.Runner.ctrl_msgs r2.Runner.ctrl_msgs

let test_runner_deadline_metric () =
  let sc = Scenario.deadline_intra_rack ~num_flows:60 ~seed:5 ~load:0.3 () in
  let r = Runner.run Runner.pase sc in
  Alcotest.(check bool) "app throughput defined" true
    (not (Float.is_nan r.Runner.app_throughput));
  Alcotest.(check bool) "in [0,1]" true
    (r.Runner.app_throughput >= 0. && r.Runner.app_throughput <= 1.)

let test_runner_pase_local_variant () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:30 ~seed:8 ~load:0.5 () in
  let r =
    Runner.run (Runner.Pase { Config.default with Config.local_only = true }) sc
  in
  Alcotest.(check string) "named variant" "PASE-local" r.Runner.protocol;
  Alcotest.(check int) "completes" 30 r.Runner.completed

(* ---- empirical CDF layer ------------------------------------------------ *)

let icdf_of d =
  match d.Dist.icdf with
  | Some f -> f
  | None -> Alcotest.failf "%s: no inverse CDF" d.Dist.name

let test_icdf_monotone () =
  List.iter
    (fun (name, d) ->
      let inv = icdf_of d in
      let prev = ref (inv 0.) in
      for i = 1 to 1000 do
        let u = float_of_int i /. 1000. in
        let v = inv u in
        if v < !prev then
          Alcotest.failf "%s: icdf not monotone at u=%g" name u;
        prev := v
      done;
      (* out-of-range arguments clamp rather than extrapolate *)
      Alcotest.(check (float 0.)) "clamp low" (inv 0.) (inv (-0.5));
      Alcotest.(check (float 0.)) "clamp high" (inv 1.) (inv 1.5))
    Dist.builtins

let test_icdf_exact_knots () =
  (* A hand-built table: the inverse CDF must hit every knot exactly. *)
  let knots = [ (100., 0.); (1_000., 0.5); (10_000., 0.9); (50_000., 1.) ] in
  let d =
    match Dist.of_cdf_points ~name:"knots" knots with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let inv = icdf_of d in
  List.iter
    (fun (v, p) -> Alcotest.(check (float 0.)) "knot value" v (inv p))
    knots;
  (* and interpolate linearly between them *)
  Alcotest.(check (float 1e-9)) "midpoint" 550. (inv 0.25);
  (* built-in hadoop knots (spot checks against the published shape) *)
  let h = icdf_of Dist.hadoop_bytes in
  Alcotest.(check (float 0.)) "hadoop min" 150. (h 0.);
  Alcotest.(check (float 0.)) "hadoop p12" 300. (h 0.12);
  Alcotest.(check (float 0.)) "hadoop median" 1_000. (h 0.5);
  Alcotest.(check (float 0.)) "hadoop max" 400_000_000. (h 1.)

let test_cdf_sampling_deterministic () =
  let draw () =
    let rng = Rng.create 42 in
    List.init 1000 (fun _ -> Dist.web_search_bytes.Dist.sample rng)
  in
  let a = draw () and b = draw () in
  Alcotest.(check bool) "identical sample streams" true (a = b)

let test_builtin_lookup () =
  List.iter
    (fun name ->
      match Dist.builtin name with
      | Some _ -> ()
      | None -> Alcotest.failf "builtin %s not found" name)
    [ "websearch"; "web-search"; "Web_Search"; "datamining"; "hadoop" ];
  Alcotest.(check bool) "unknown name" true (Dist.builtin "nonesuch" = None)

(* Empirical CDF of 50k samples must match the source CDF: for any
   probability u, the fraction of samples <= icdf(u) is u up to sampling
   noise (binomial stderr at n=50k is ~0.0022; 0.02 is a 9-sigma gate). *)
let prop_empirical_quantiles =
  let samples =
    lazy
      (let rng = Rng.create 7 in
       let a =
         Array.init 50_000 (fun _ -> Dist.web_search_bytes.Dist.sample rng)
       in
       Array.sort Float.compare a;
       a)
  in
  let frac_le a v =
    (* binary search: count of samples <= v *)
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. float_of_int (Array.length a)
  in
  QCheck.Test.make ~name:"empirical quantiles track the source CDF" ~count:50
    QCheck.(float_range 0.02 0.98)
    (fun u ->
      let a = Lazy.force samples in
      let inv = icdf_of Dist.web_search_bytes in
      Float.abs (frac_le a (inv u) -. u) <= 0.02)

let with_temp_cdf contents f =
  let path = Filename.temp_file "pase-cdf" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_cdf_file_ok () =
  with_temp_cdf "# bytes cum-prob\n1000 0.0\n10000\t0.5\n\n100000 1.0\n"
    (fun path ->
      match Dist.of_cdf_file path with
      | Error e -> Alcotest.fail e
      | Ok d ->
          Alcotest.(check (float 1e-9)) "table mean" 30_250. d.Dist.mean;
          Alcotest.(check (float 0.)) "knot" 10_000. ((icdf_of d) 0.5))

let test_cdf_file_malformed () =
  let expect_error label contents =
    with_temp_cdf contents (fun path ->
        match Dist.of_cdf_file path with
        | Ok _ -> Alcotest.failf "%s: accepted malformed table" label
        | Error e ->
            Alcotest.(check bool)
              (label ^ ": error names the file") true
              (String.length e > 0
              && String.sub e 0 (String.length path) = path))
  in
  expect_error "non-numeric" "1000 0.0\nfoo 0.5\n2000 1.0\n";
  expect_error "missing column" "1000 0.0\n2000\n3000 1.0\n";
  expect_error "decreasing prob" "1000 0.0\n2000 0.6\n3000 0.4\n4000 1.0\n";
  expect_error "last prob not 1" "1000 0.0\n2000 0.9\n";
  expect_error "negative value" "-5 0.0\n2000 1.0\n";
  expect_error "prob out of range" "1000 0.0\n2000 1.5\n";
  expect_error "empty table" "# only comments\n"

(* ---- scenario generators ------------------------------------------------ *)

let test_hotspot_bias () =
  let sc =
    Scenario.hotspot ~k:4 ~hot_racks:1 ~hot_weight:0.8 ~num_flows:600 ~seed:3
      ~load:0.5 ()
  in
  let plan = build sc in
  let hosts = plan.Scenario.topo.Topology.hosts in
  (* hosts.(i) hangs off edge switch i/(k/2): the first k/2 hosts are the
     hot rack for hot_racks = 1, k = 4 *)
  let hot = Array.sub hosts 0 2 in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  let in_hot =
    List.length
      (List.filter
         (fun s -> Array.exists (fun h -> h = s.Scenario.dst) hot)
         measured)
  in
  let frac = float_of_int in_hot /. float_of_int (List.length measured) in
  (* expectation 0.8 + 0.2 * 2/16 = 0.825; uniform traffic would sit at
     0.125, so a 0.6 floor separates the two by many sigma *)
  Alcotest.(check bool)
    (Printf.sprintf "hot-rack fraction %.3f > 0.6" frac)
    true (frac > 0.6);
  List.iter
    (fun s ->
      Alcotest.(check bool) "src <> dst" true (s.Scenario.src <> s.Scenario.dst))
    measured

let test_hotspot_validation () =
  Alcotest.check_raises "weight out of range"
    (Invalid_argument "Scenario.hotspot: hot_weight must be in (0, 1]")
    (fun () -> ignore (Scenario.hotspot ~hot_weight:1.5 ~load:0.5 ()));
  Alcotest.check_raises "too many hot racks"
    (Invalid_argument "Scenario.hotspot: hot_racks out of range")
    (fun () -> ignore (Scenario.hotspot ~k:4 ~hot_racks:9 ~load:0.5 ()))

let test_incast_fanin () =
  let sc =
    Scenario.worker_aggregator ~hosts:12 ~fanin:(Dist.constant 4.)
      ~num_flows:80 ~seed:6 ~load:0.5 ()
  in
  let plan = build sc in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  let by_task = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.Scenario.task with
      | None -> Alcotest.fail "incast flow without task id"
      | Some t ->
          Hashtbl.replace by_task t
            (s :: (try Hashtbl.find by_task t with Not_found -> [])))
    measured;
  Det_tbl.iter
    (fun _ flows ->
      Alcotest.(check int) "4 workers per query" 4 (List.length flows);
      let workers = List.sort_uniq compare (List.map (fun s -> s.Scenario.src) flows) in
      Alcotest.(check int) "workers distinct" 4 (List.length workers))
    by_task

let test_traffic_matrix_plan () =
  let sc () = Scenario.traffic_matrix ~k:4 ~num_flows:300 ~seed:9 ~load:0.5 () in
  let p1 = build (sc ()) and p2 = build (sc ()) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "deterministic schedule" true
        (a.Scenario.src = b.Scenario.src
        && a.Scenario.dst = b.Scenario.dst
        && a.Scenario.size_bytes = b.Scenario.size_bytes
        && a.Scenario.start = b.Scenario.start))
    p1.Scenario.specs p2.Scenario.specs;
  (* the demand matrix has a zero diagonal: no intra-rack pairs *)
  let hosts = p1.Scenario.topo.Topology.hosts in
  let rack_of h =
    let idx = ref (-1) in
    Array.iteri (fun i x -> if x = h then idx := i) hosts;
    !idx / 2
  in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then
        Alcotest.(check bool) "inter-rack pair" true
          (rack_of s.Scenario.src <> rack_of s.Scenario.dst))
    p1.Scenario.specs

(* ---- coflows ------------------------------------------------------------ *)

let test_coflow_groups () =
  let sc =
    Scenario.with_coflows
      (Scenario.fat_tree_uniform ~k:4 ~num_flows:60 ~seed:4 ~load:0.5 ())
      ~deadline_s:(Dist.constant 0.05) ~width:(Dist.constant 3.) ()
  in
  let plan = build sc in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  let by_task = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.Scenario.task with
      | None -> Alcotest.fail "coflow member without task id"
      | Some t ->
          Hashtbl.replace by_task t
            (s :: (try Hashtbl.find by_task t with Not_found -> [])))
    measured;
  Alcotest.(check bool) "several jobs" true (Hashtbl.length by_task >= 10);
  Det_tbl.iter
    (fun _ flows ->
      Alcotest.(check int) "3 members per job" 3 (List.length flows);
      let starts = List.sort_uniq compare (List.map (fun s -> s.Scenario.start) flows) in
      Alcotest.(check int) "members start together" 1 (List.length starts);
      let dls = List.sort_uniq compare (List.map (fun s -> s.Scenario.deadline) flows) in
      Alcotest.(check int) "shared deadline" 1 (List.length dls);
      Alcotest.(check bool) "deadline set" true (List.hd dls = Some 0.05))
    by_task

let test_coflow_rejects_incast () =
  let sc = Scenario.worker_aggregator ~hosts:10 ~load:0.5 () in
  Alcotest.check_raises "incast already groups"
    (Invalid_argument
       "Scenario.with_coflows: incast queries are already task groups")
    (fun () -> ignore (Scenario.with_coflows sc ~width:(Dist.constant 2.) ()))

let test_coflow_runner_aggregate () =
  let sc () =
    Scenario.with_coflows
      (Scenario.fat_tree_uniform ~k:4 ~num_flows:60 ~seed:12 ~load:0.5 ())
      ~deadline_s:(Dist.constant 0.05) ~width:(Dist.uniform 2. 5.) ()
  in
  let r1 = Runner.run Runner.Dctcp (sc ()) in
  let r2 = Runner.run Runner.Dctcp (sc ()) in
  match r1.Runner.coflow with
  | None -> Alcotest.fail "no coflow aggregate"
  | Some c ->
      Alcotest.(check bool) "several coflows" true (Coflow.coflows c >= 10);
      Alcotest.(check int) "members cover all records" (Coflow.flows c)
        (r1.Runner.completed + r1.Runner.censored);
      Alcotest.(check int) "deadline tracked" (Coflow.coflows c)
        (Coflow.deadline_total c);
      (* all members of a job share a start, so each group CCT is the max
         member FCT and the mean of maxes dominates the mean FCT *)
      Alcotest.(check bool) "cct_mean >= afct" true
        (Coflow.cct_mean c >= r1.Runner.afct);
      Alcotest.(check bool) "p99 >= p50" true
        (Coflow.cct_quantile c 0.99 >= Coflow.cct_quantile c 0.5);
      (* byte-stable across reruns, through the JSON codec *)
      Alcotest.(check string) "rerun byte-identical"
        (Result_codec.to_json r1) (Result_codec.to_json r2)

let suite =
  [
    Alcotest.test_case "left-right plan" `Quick test_left_right_plan;
    Alcotest.test_case "starts sorted" `Quick test_starts_sorted_and_positive;
    Alcotest.test_case "deadline scenario" `Quick test_deadline_scenario_has_deadlines;
    Alcotest.test_case "sizes in range" `Quick test_sizes_in_range;
    Alcotest.test_case "incast structure" `Quick test_incast_structure;
    Alcotest.test_case "testbed pattern" `Quick test_testbed_pattern;
    Alcotest.test_case "deterministic build" `Quick test_determinism_of_build;
    Alcotest.test_case "load bounds" `Quick test_load_bounds;
    Alcotest.test_case "integration DCTCP" `Slow (integration Runner.Dctcp);
    Alcotest.test_case "integration D2TCP" `Slow (integration Runner.D2tcp);
    Alcotest.test_case "integration L2DCT" `Slow (integration Runner.L2dct);
    Alcotest.test_case "integration pFabric" `Slow (integration Runner.Pfabric);
    Alcotest.test_case "integration PDQ" `Slow (integration Runner.Pdq);
    Alcotest.test_case "integration PASE" `Slow (integration Runner.pase);
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "runner deadline metric" `Quick test_runner_deadline_metric;
    Alcotest.test_case "runner PASE-local" `Quick test_runner_pase_local_variant;
    Alcotest.test_case "icdf monotone" `Quick test_icdf_monotone;
    Alcotest.test_case "icdf exact knots" `Quick test_icdf_exact_knots;
    Alcotest.test_case "cdf sampling deterministic" `Quick
      test_cdf_sampling_deterministic;
    Alcotest.test_case "builtin lookup" `Quick test_builtin_lookup;
    QCheck_alcotest.to_alcotest prop_empirical_quantiles;
    Alcotest.test_case "cdf file ok" `Quick test_cdf_file_ok;
    Alcotest.test_case "cdf file malformed" `Quick test_cdf_file_malformed;
    Alcotest.test_case "hotspot bias" `Quick test_hotspot_bias;
    Alcotest.test_case "hotspot validation" `Quick test_hotspot_validation;
    Alcotest.test_case "incast fanin" `Quick test_incast_fanin;
    Alcotest.test_case "traffic-matrix plan" `Quick test_traffic_matrix_plan;
    Alcotest.test_case "coflow groups" `Quick test_coflow_groups;
    Alcotest.test_case "coflow rejects incast" `Quick test_coflow_rejects_incast;
    Alcotest.test_case "coflow runner aggregate" `Slow
      test_coflow_runner_aggregate;
  ]
