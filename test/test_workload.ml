(* Scenarios and the runner: schedule construction, load accounting, and
   end-to-end integration runs for every protocol. *)

let build sc =
  let e = Engine.create () in
  let c = Counters.create () in
  let plan =
    Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
        Queue_disc.droptail c ~limit_pkts:100)
  in
  plan

let test_left_right_plan () =
  let sc = Scenario.left_right ~num_flows:200 ~seed:5 ~load:0.6 () in
  let plan = build sc in
  Alcotest.(check int) "160 hosts" 160
    (Array.length plan.Scenario.topo.Topology.hosts);
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  Alcotest.(check int) "200 measured flows" 200 (List.length measured);
  Alcotest.(check int) "2 background" 2
    (List.length plan.Scenario.specs - List.length measured);
  (* Left to right only. *)
  let hosts = plan.Scenario.topo.Topology.hosts in
  let left = Array.sub hosts 0 80 and right = Array.sub hosts 80 80 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "src in left" true
        (Array.exists (fun h -> h = s.Scenario.src) left);
      Alcotest.(check bool) "dst in right" true
        (Array.exists (fun h -> h = s.Scenario.dst) right))
    measured;
  (* Arrival rate: load x 10G / mean bits. *)
  let expect = 0.6 *. 10e9 /. (8. *. 100e3) in
  Alcotest.(check bool) "arrival rate" true
    (Float.abs (plan.Scenario.arrival_rate -. expect) /. expect < 1e-9)

let test_starts_sorted_and_positive () =
  let sc = Scenario.left_right ~num_flows:100 ~seed:2 ~load:0.5 () in
  let plan = build sc in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Scenario.start <= b.Scenario.start && sorted rest
    | _ -> true
  in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  Alcotest.(check bool) "arrivals sorted" true (sorted measured);
  List.iter
    (fun s -> Alcotest.(check bool) "positive sizes" true (s.Scenario.size_bytes > 0))
    measured

let test_deadline_scenario_has_deadlines () =
  let sc = Scenario.deadline_intra_rack ~num_flows:50 ~seed:1 ~load:0.4 () in
  let plan = build sc in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then begin
        match s.Scenario.deadline with
        | Some d ->
            Alcotest.(check bool) "deadline in [5,25] ms" true
              (d >= 0.005 && d <= 0.025)
        | None -> Alcotest.fail "missing deadline"
      end)
    plan.Scenario.specs

let test_sizes_in_range () =
  let sc = Scenario.left_right ~num_flows:300 ~seed:9 ~load:0.5 () in
  let plan = build sc in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then
        Alcotest.(check bool) "size in [2,198] KB" true
          (s.Scenario.size_bytes >= 2_000 && s.Scenario.size_bytes <= 198_000))
    plan.Scenario.specs

let test_incast_structure () =
  let sc = Scenario.worker_aggregator ~hosts:10 ~num_flows:90 ~seed:3 ~load:0.5 () in
  let plan = build sc in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  (* 90 flows / fanout 9 = 10 queries of 9 flows each, same start and dst. *)
  Alcotest.(check int) "90 flows" 90 (List.length measured);
  let by_start = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let k = s.Scenario.start in
      Hashtbl.replace by_start k
        (s :: (try Hashtbl.find by_start k with Not_found -> [])))
    measured;
  Alcotest.(check int) "10 queries" 10 (Hashtbl.length by_start);
  (* Det_tbl, not Hashtbl.iter: a failing assertion must name the same
     query on every run, not whichever group the hash order visits first
     (flagged by the typed-tier determinism-taint pass). *)
  Det_tbl.iter
    (fun _ flows ->
      Alcotest.(check int) "9 workers per query" 9 (List.length flows);
      let dsts = List.sort_uniq compare (List.map (fun s -> s.Scenario.dst) flows) in
      Alcotest.(check int) "one aggregator" 1 (List.length dsts);
      List.iter
        (fun s ->
          Alcotest.(check bool) "worker is not aggregator" true
            (s.Scenario.src <> s.Scenario.dst))
        flows)
    by_start

let test_testbed_pattern () =
  let sc = Scenario.testbed ~num_flows:40 ~seed:4 ~load:0.3 () in
  let plan = build sc in
  let hosts = plan.Scenario.topo.Topology.hosts in
  let server = hosts.(9) in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then begin
        Alcotest.(check int) "all to the server" server s.Scenario.dst;
        Alcotest.(check bool) "client src" true (s.Scenario.src <> server)
      end)
    plan.Scenario.specs

let test_determinism_of_build () =
  let sc () = Scenario.left_right ~num_flows:50 ~seed:7 ~load:0.5 () in
  let p1 = build (sc ()) and p2 = build (sc ()) in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical schedule" true
        (a.Scenario.src = b.Scenario.src
        && a.Scenario.dst = b.Scenario.dst
        && a.Scenario.size_bytes = b.Scenario.size_bytes
        && a.Scenario.start = b.Scenario.start))
    p1.Scenario.specs p2.Scenario.specs

let test_load_bounds () =
  let e = Engine.create () in
  let c = Counters.create () in
  let sc =
    { (Scenario.left_right ~num_flows:10 ~load:0.5 ()) with Scenario.load = 0. }
  in
  Alcotest.check_raises "zero load" (Invalid_argument "Scenario.build: load")
    (fun () ->
      ignore
        (Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
             Queue_disc.droptail c ~limit_pkts:10)))

(* Integration: a small run per protocol completes all flows and produces
   sane metrics. *)
let integration proto () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:60 ~seed:11 ~load:0.5 () in
  let r = Runner.run proto sc in
  Alcotest.(check int) "all completed" 60 r.Runner.completed;
  Alcotest.(check int) "none censored" 0 r.Runner.censored;
  Alcotest.(check bool) "afct positive" true (r.Runner.afct > 0.);
  Alcotest.(check bool) "p99 >= afct" true (r.Runner.p99 >= r.Runner.afct);
  Alcotest.(check bool) "duration sane" true
    (r.Runner.duration > 0. && r.Runner.duration < 10.)

let test_runner_deterministic () =
  let sc () = Scenario.worker_aggregator ~hosts:6 ~num_flows:40 ~seed:2 ~load:0.6 () in
  let r1 = Runner.run Runner.pase (sc ()) in
  let r2 = Runner.run Runner.pase (sc ()) in
  Alcotest.(check (float 0.)) "identical afct" r1.Runner.afct r2.Runner.afct;
  Alcotest.(check int) "identical msgs" r1.Runner.ctrl_msgs r2.Runner.ctrl_msgs

let test_runner_deadline_metric () =
  let sc = Scenario.deadline_intra_rack ~num_flows:60 ~seed:5 ~load:0.3 () in
  let r = Runner.run Runner.pase sc in
  Alcotest.(check bool) "app throughput defined" true
    (not (Float.is_nan r.Runner.app_throughput));
  Alcotest.(check bool) "in [0,1]" true
    (r.Runner.app_throughput >= 0. && r.Runner.app_throughput <= 1.)

let test_runner_pase_local_variant () =
  let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:30 ~seed:8 ~load:0.5 () in
  let r =
    Runner.run (Runner.Pase { Config.default with Config.local_only = true }) sc
  in
  Alcotest.(check string) "named variant" "PASE-local" r.Runner.protocol;
  Alcotest.(check int) "completes" 30 r.Runner.completed

let suite =
  [
    Alcotest.test_case "left-right plan" `Quick test_left_right_plan;
    Alcotest.test_case "starts sorted" `Quick test_starts_sorted_and_positive;
    Alcotest.test_case "deadline scenario" `Quick test_deadline_scenario_has_deadlines;
    Alcotest.test_case "sizes in range" `Quick test_sizes_in_range;
    Alcotest.test_case "incast structure" `Quick test_incast_structure;
    Alcotest.test_case "testbed pattern" `Quick test_testbed_pattern;
    Alcotest.test_case "deterministic build" `Quick test_determinism_of_build;
    Alcotest.test_case "load bounds" `Quick test_load_bounds;
    Alcotest.test_case "integration DCTCP" `Slow (integration Runner.Dctcp);
    Alcotest.test_case "integration D2TCP" `Slow (integration Runner.D2tcp);
    Alcotest.test_case "integration L2DCT" `Slow (integration Runner.L2dct);
    Alcotest.test_case "integration pFabric" `Slow (integration Runner.Pfabric);
    Alcotest.test_case "integration PDQ" `Slow (integration Runner.Pdq);
    Alcotest.test_case "integration PASE" `Slow (integration Runner.pase);
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "runner deadline metric" `Quick test_runner_deadline_metric;
    Alcotest.test_case "runner PASE-local" `Quick test_runner_pase_local_variant;
  ]
