(* Trace bus: disabled-bus overhead contract, JSONL determinism across
   reruns and across fork (serial vs. worker), filter semantics, ring-buffer
   bounds, and the stray-packet counter surfaced by the runner. *)

let tmp_file tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pase-trace-%s-%d.jsonl" tag (Unix.getpid ()))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let traced_run_to path =
  let oc = open_out path in
  Trace.attach (Trace.jsonl_sink oc);
  Fun.protect
    ~finally:(fun () ->
      Trace.reset ();
      close_out oc)
    (fun () ->
      let sc = Scenario.testbed ~num_flows:20 ~seed:2 ~load:0.5 () in
      Runner.run Runner.pase sc)

let pkt ~flow seq =
  Packet.make ~flow ~src:0 ~dst:1 ~kind:Packet.Data ~size:1500 ~seq
    ~sent_at:0. ()

(* With no sink attached the bus is off and nothing is counted: the guard
   at every instrumentation site short-circuits. *)
let test_disabled_bus_is_silent () =
  Trace.reset ();
  Alcotest.(check bool) "bus off" false (Trace.on ());
  let sc = Scenario.testbed ~num_flows:10 ~seed:1 ~load:0.4 () in
  let r = Runner.run Runner.Dctcp sc in
  Alcotest.(check bool) "flows ran" true (r.Runner.completed > 0);
  Alcotest.(check int) "no events emitted" 0 (Trace.emitted ());
  (* emit without a sink is a no-op, not an error *)
  Trace.emit (Trace.Flow_finish { flow = 0; fct = 1. });
  Alcotest.(check int) "still nothing" 0 (Trace.emitted ())

(* Two traced runs of the same configuration produce byte-identical JSONL
   files, and every line is a JSON object with the common envelope. *)
let test_jsonl_reruns_byte_identical () =
  Trace.reset ();
  let f1 = tmp_file "a" and f2 = tmp_file "b" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with _ -> ()) [ f1; f2 ])
    (fun () ->
      let r1 = traced_run_to f1 in
      let r2 = traced_run_to f2 in
      Alcotest.(check bool) "results identical" true
        (Result_codec.encode r1 = Result_codec.encode r2);
      let a = read_file f1 and b = read_file f2 in
      Alcotest.(check bool) "trace non-empty" true (String.length a > 0);
      Alcotest.(check bool) "traces byte-identical" true (a = b);
      String.split_on_char '\n' a
      |> List.iter (fun line ->
             if line <> "" then begin
               Alcotest.(check bool) "line is an object" true
                 (line.[0] = '{' && line.[String.length line - 1] = '}');
               Alcotest.(check bool) "line has a timestamp" true
                 (String.length line > 5 && String.sub line 0 5 = {|{"t":|})
             end))

(* A forked child (the shape of a parallel worker) writes exactly the trace
   the parent writes for the same job: the bus is per-process state. *)
let test_fork_matches_serial () =
  Trace.reset ();
  let f_parent = tmp_file "serial" and f_child = tmp_file "forked" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with _ -> ()) [ f_parent; f_child ])
    (fun () ->
      (match Unix.fork () with
      | 0 ->
          let ok = try ignore (traced_run_to f_child); true with _ -> false in
          Stdlib.exit (if ok then 0 else 1)
      | child ->
          let _, status = Unix.waitpid [] child in
          Alcotest.(check bool) "child succeeded" true
            (status = Unix.WEXITED 0));
      ignore (traced_run_to f_parent);
      Alcotest.(check bool) "forked trace matches serial" true
        (read_file f_parent = read_file f_child))

(* Filter semantics, driven through the public bus with synthetic events:
   same-key values union, distinct keys intersect, flow/link filters exclude
   flowless/linkless events. *)
let test_filters () =
  Trace.reset ();
  Trace.set_clock (fun () -> 0.);
  let ring, sink = Trace.ring_sink ~capacity:64 in
  Trace.attach sink;
  Fun.protect ~finally:Trace.reset (fun () ->
      let burst () =
        Trace.emit (Trace.Drop { pkt = pkt ~flow:1 0; link = (0, 3); qpkts = 9 });
        Trace.emit (Trace.Drop { pkt = pkt ~flow:2 0; link = (4, 5); qpkts = 9 });
        Trace.emit
          (Trace.Enqueue { pkt = pkt ~flow:1 1; link = (0, 3); qpkts = 1 });
        Trace.emit (Trace.Cwnd { flow = 2; cwnd = 4.; ssthresh = 8. });
        Trace.emit
          (Trace.Arb { link = (0, 3); delegate = 0; flows = 2; top_flows = 1 })
      in
      burst ();
      Alcotest.(check int) "no filter passes all" 5 (Trace.ring_seen ring);

      Trace.set_kind_filter (Some [ Trace.Kind.Drop ]);
      burst ();
      Alcotest.(check int) "kind filter" 7 (Trace.ring_seen ring);

      Trace.set_flow_filter (Some [ 1 ]);
      burst ();
      (* kind=drop AND flow=1: one event per burst *)
      Alcotest.(check int) "kind+flow intersect" 8 (Trace.ring_seen ring);

      Trace.set_kind_filter None;
      burst ();
      (* flow=1 alone: drop+enqueue for flow 1; Cwnd is flow 2; Arb is
         flowless and must not pass a flow filter. *)
      Alcotest.(check int) "flow filter excludes flowless" 10
        (Trace.ring_seen ring);

      Trace.set_flow_filter None;
      Trace.set_link_filter (Some [ (4, 5) ]);
      burst ();
      Alcotest.(check int) "link filter excludes linkless" 11
        (Trace.ring_seen ring);
      match List.rev (Trace.ring_contents ring) with
      | (_, Trace.Drop { link = (4, 5); _ }) :: _ -> ()
      | (_, e) :: _ ->
          Alcotest.failf "unexpected last event kind %s"
            (Trace.Kind.name (Trace.kind_of e))
      | [] -> Alcotest.fail "ring empty")

(* The ring keeps the newest [capacity] events, oldest first, and counts
   everything it ever saw. *)
let test_ring_bounds () =
  Trace.reset ();
  Trace.set_clock (fun () -> 0.);
  let ring, sink = Trace.ring_sink ~capacity:4 in
  Trace.attach sink;
  Fun.protect ~finally:Trace.reset (fun () ->
      for i = 0 to 9 do
        Trace.emit (Trace.Ctrl { flow = i; msgs = 1 })
      done;
      Alcotest.(check int) "length bounded" 4 (Trace.ring_length ring);
      Alcotest.(check int) "seen counts evicted" 10 (Trace.ring_seen ring);
      Alcotest.(check int) "dropped = seen - capacity" 6
        (Trace.ring_dropped ring);
      let flows =
        List.map
          (function _, Trace.Ctrl { flow; _ } -> flow | _ -> -1)
          (Trace.ring_contents ring)
      in
      Alcotest.(check (list int)) "newest four, oldest first" [ 6; 7; 8; 9 ]
        flows);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.ring_sink: capacity must be positive") (fun () ->
      ignore (Trace.ring_sink ~capacity:0))

(* Kind names round-trip (the CLI parses them back). *)
let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Trace.Kind.of_name (Trace.Kind.name k) with
      | Some k' ->
          Alcotest.(check int) "round-trips" (Trace.Kind.index k)
            (Trace.Kind.index k')
      | None -> Alcotest.failf "name %s not parsed" (Trace.Kind.name k))
    Trace.Kind.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Trace.Kind.of_name "no-such-kind" = None);
  Alcotest.(check int) "count matches all" Trace.Kind.count
    (List.length Trace.Kind.all)

(* Runner surfaces stray packets (none on a healthy run) and the engine's
   peak heap depth. *)
let test_runner_counters () =
  Trace.reset ();
  let sc = Scenario.testbed ~num_flows:15 ~seed:4 ~load:0.5 () in
  let r = Runner.run ~profile:true Runner.Dctcp sc in
  Alcotest.(check int) "no stray packets" 0 r.Runner.stray_pkts;
  Alcotest.(check bool) "peak heap positive" true (r.Runner.peak_heap > 0);
  Alcotest.(check bool) "profile has sites" true
    (List.length r.Runner.sched_profile > 0);
  List.iter
    (fun (label, n) ->
      Alcotest.(check bool) (label ^ " counted") true (n >= 0))
    r.Runner.sched_profile;
  (* unprofiled runs carry no site table *)
  let r' = Runner.run Runner.Dctcp sc in
  Alcotest.(check (list (pair string int))) "profiling off" []
    r'.Runner.sched_profile

let suite =
  [
    Alcotest.test_case "disabled bus is silent" `Quick
      test_disabled_bus_is_silent;
    Alcotest.test_case "jsonl reruns byte-identical" `Quick
      test_jsonl_reruns_byte_identical;
    Alcotest.test_case "fork matches serial" `Quick test_fork_matches_serial;
    Alcotest.test_case "filters" `Quick test_filters;
    Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
    Alcotest.test_case "kind names roundtrip" `Quick test_kind_names_roundtrip;
    Alcotest.test_case "runner counters" `Quick test_runner_counters;
  ]
