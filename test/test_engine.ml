(* Discrete-event engine: scheduling semantics, cancellation, stop/until. *)

let test_time_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:0.5 (fun () -> seen := (Engine.now e, 'b') :: !seen);
  Engine.schedule e ~delay:0.1 (fun () -> seen := (Engine.now e, 'a') :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-12) char)))
    "events in time order" [ (0.1, 'a'); (0.5, 'b') ] (List.rev !seen)

let test_fifo_same_time () =
  let e = Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.0 (fun () -> seen := i :: !seen)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let trace = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      trace := "outer" :: !trace;
      Engine.schedule e ~delay:1.0 (fun () -> trace := "inner" :: !trace));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !trace);
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 (fun () -> fired := true) in
  cancel ();
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "not counted" 0 (Engine.events_processed e)

let test_cancel_idempotent () =
  let e = Engine.create () in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 ignore in
  cancel ();
  cancel ();
  Engine.run e

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  (* Run can resume afterwards. *)
  Engine.run e;
  Alcotest.(check int) "resumed" 10 !count

let test_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> Engine.schedule e ~delay:t (fun () -> incr count))
    [ 0.1; 0.2; 0.9; 1.5 ];
  Engine.run ~until:1.0 e;
  Alcotest.(check int) "3 events before horizon" 3 !count;
  Alcotest.(check bool) "future event still pending" true (Engine.pending e > 0);
  Engine.run e;
  Alcotest.(check int) "rest runs later" 4 !count

(* Regression: [run ~until] used to stop at the last processed event without
   advancing the clock to the horizon, understating censored-flow FCTs and
   inflating per-second rates computed against [now]. *)
let test_until_advances_clock () =
  let e = Engine.create () in
  List.iter (fun t -> Engine.schedule e ~delay:t ignore) [ 0.1; 0.2; 1.5 ];
  Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-12)) "clock at horizon" 1.0 (Engine.now e);
  (* Also when the queue drains before the horizon. *)
  let e2 = Engine.create () in
  Engine.schedule e2 ~delay:0.1 ignore;
  Engine.run ~until:1.0 e2;
  Alcotest.(check (float 1e-12)) "clock at horizon after drain" 1.0 (Engine.now e2)

let test_stop_beats_horizon_clamp () =
  (* [stop] means the run did not cover the window: keep the event-time clock. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:0.1 (fun () -> Engine.stop e);
  Engine.schedule e ~delay:0.2 ignore;
  Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-12)) "clock stays at stop time" 0.1 (Engine.now e)

(* Regression: a future event cut off by [~until] used to be popped and
   re-inserted with a fresh seq, so chunked [run ~until] calls broke FIFO
   ordering of simultaneous events. *)
let test_fifo_ties_across_chunked_runs () =
  let e = Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.7 (fun () -> seen := i :: !seen)
  done;
  Engine.run ~until:1.0 e;
  Alcotest.(check (list int)) "nothing before horizon" [] (List.rev !seen);
  Engine.run ~until:1.5 e;
  Engine.run ~until:2.0 e;
  Alcotest.(check (list int))
    "FIFO preserved across chunks" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 100 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  Engine.run ~max_events:10 e;
  Alcotest.(check int) "budget respected" 10 !count

(* The budget counts every pop, live or dead: a heap full of cancelled
   events must still make [run ~max_events] terminate. *)
let test_max_events_counts_dead_pops () =
  let e = Engine.create () in
  for i = 1 to 20 do
    let cancel =
      Engine.schedule_cancellable e
        ~delay:(0.01 *. float_of_int i)
        (fun () -> Alcotest.fail "cancelled event fired")
    in
    cancel ()
  done;
  let fired = ref false in
  Engine.schedule e ~delay:1.0 (fun () -> fired := true);
  Engine.run ~max_events:10 e;
  Alcotest.(check int) "dead pops consumed the budget" 0
    (Engine.events_processed e);
  Alcotest.(check bool) "live event still pending" true (Engine.pending e > 0);
  Engine.run e;
  Alcotest.(check bool) "live event fires later" true !fired

(* Mass cancellation must not leave the heap full of corpses: once dead
   slots outnumber live ones the engine compacts in place. *)
let test_lazy_compaction () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  let cancels =
    List.init 200 (fun _ -> Engine.schedule_cancellable e ~delay:0.5 ignore)
  in
  Alcotest.(check int) "all queued" 210 (Engine.pending e);
  List.iter (fun c -> c ()) cancels;
  Alcotest.(check bool)
    (Printf.sprintf "compaction reclaimed dead slots (pending %d)"
       (Engine.pending e))
    true
    (Engine.pending e <= 74);
  Engine.run e;
  Alcotest.(check int) "live events unaffected" 10 !count;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

(* Fired one-shots go back on the free list; a stale cancel handle must
   not be able to kill the unrelated event that reuses the record. *)
let test_stale_cancel_handle_is_inert () =
  let e = Engine.create () in
  let cancel = Engine.schedule_cancellable e ~delay:0.1 ignore in
  Engine.run e;
  let fired = ref false in
  Engine.schedule e ~delay:0.1 (fun () -> fired := true);
  cancel ();
  Engine.run e;
  Alcotest.(check bool) "recycled event unaffected by stale handle" true !fired

(* Cancelled closures capture packets and flow state: draining the dead
   slot must drop the closure, not park it in the event pool. *)
let test_cancelled_closure_released () =
  let e = Engine.create () in
  let w : bytes Weak.t = Weak.create 1 in
  let cancel =
    let big = Bytes.create 4096 in
    Weak.set w 0 (Some big);
    Engine.schedule_cancellable e ~delay:1.0 (fun () ->
        ignore (Bytes.length big))
  in
  cancel ();
  Engine.run e;
  Gc.full_major ();
  Alcotest.(check bool) "cancelled closure collected" false (Weak.check w 0)

(* ---- timers ----------------------------------------------------------- *)

let test_timer_fire_and_rearm () =
  let e = Engine.create () in
  let fires = ref [] in
  let tm = Engine.timer e (fun () -> fires := Engine.now e :: !fires) in
  Alcotest.(check bool) "fresh timer not pending" false (Engine.timer_pending tm);
  Engine.timer_schedule e tm ~delay:0.5;
  Alcotest.(check bool) "armed" true (Engine.timer_pending tm);
  Engine.run e;
  Alcotest.(check bool) "fired, no longer pending" false
    (Engine.timer_pending tm);
  Engine.timer_schedule e tm ~delay:0.25;
  Engine.run e;
  Alcotest.(check (list (float 1e-12)))
    "same timer fires at both times" [ 0.5; 0.75 ] (List.rev !fires)

let test_timer_reschedule_supersedes () =
  let e = Engine.create () in
  let fires = ref [] in
  let tm = Engine.timer e (fun () -> fires := Engine.now e :: !fires) in
  Engine.timer_schedule e tm ~delay:1.0;
  Engine.timer_schedule e tm ~delay:0.5;
  Engine.run e;
  Alcotest.(check (list (float 1e-12)))
    "only the latest schedule fires" [ 0.5 ]
    (List.rev !fires);
  Alcotest.(check int) "stale slot not counted as processed" 1
    (Engine.events_processed e);
  Alcotest.(check int) "heap fully drained" 0 (Engine.pending e)

let test_timer_cancel_and_rearm () =
  let e = Engine.create () in
  let count = ref 0 in
  let tm = Engine.timer e (fun () -> incr count) in
  Engine.timer_schedule e tm ~delay:1.0;
  Engine.timer_cancel e tm;
  Engine.timer_cancel e tm;
  Alcotest.(check bool) "cancelled" false (Engine.timer_pending tm);
  Engine.run e;
  Alcotest.(check int) "cancelled timer does not fire" 0 !count;
  Engine.timer_schedule e tm ~delay:1.0;
  Engine.run e;
  Alcotest.(check int) "re-armed after cancel" 1 !count

(* The RTO pattern: the handler re-arms its own timer. *)
let test_timer_rearm_in_handler () =
  let e = Engine.create () in
  let count = ref 0 in
  let tm_ref = ref None in
  let tm =
    Engine.timer e (fun () ->
        incr count;
        if !count < 3 then
          Engine.timer_schedule e (Option.get !tm_ref) ~delay:1.0)
  in
  tm_ref := Some tm;
  Engine.timer_schedule e tm ~delay:1.0;
  Engine.run e;
  Alcotest.(check int) "timer chain ran" 3 !count;
  Alcotest.(check (float 1e-12)) "one RTT apart" 3.0 (Engine.now e)

(* Rescheduling consumes a fresh seq: a superseded-then-re-armed timer
   is FIFO-ordered by its latest schedule point, not its first. *)
let test_timer_reschedule_fifo_order () =
  let e = Engine.create () in
  let seen = ref [] in
  let tm = Engine.timer e (fun () -> seen := 'T' :: !seen) in
  Engine.timer_schedule e tm ~delay:2.0;
  Engine.schedule e ~delay:1.0 (fun () -> seen := 'A' :: !seen);
  Engine.timer_schedule e tm ~delay:1.0;
  Engine.run e;
  Alcotest.(check (list char))
    "tie broken by latest schedule order" [ 'A'; 'T' ] (List.rev !seen)

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.check_raises "no time travel"
        (Invalid_argument "Engine.schedule: negative delay") (fun () ->
          Engine.schedule e ~delay:(-0.5) ignore));
  Engine.run e

let test_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:0.1 ignore
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_processed e)

let suite =
  [
    Alcotest.test_case "time advances" `Quick test_time_advances;
    Alcotest.test_case "FIFO same time" `Quick test_fifo_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "stop and resume" `Quick test_stop;
    Alcotest.test_case "until horizon" `Quick test_until;
    Alcotest.test_case "until advances clock" `Quick test_until_advances_clock;
    Alcotest.test_case "stop beats horizon clamp" `Quick test_stop_beats_horizon_clamp;
    Alcotest.test_case "FIFO ties across chunked runs" `Quick
      test_fifo_ties_across_chunked_runs;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "max events counts dead pops" `Quick
      test_max_events_counts_dead_pops;
    Alcotest.test_case "lazy compaction" `Quick test_lazy_compaction;
    Alcotest.test_case "stale cancel handle is inert" `Quick
      test_stale_cancel_handle_is_inert;
    Alcotest.test_case "cancelled closure released" `Quick
      test_cancelled_closure_released;
    Alcotest.test_case "timer fire and re-arm" `Quick test_timer_fire_and_rearm;
    Alcotest.test_case "timer reschedule supersedes" `Quick
      test_timer_reschedule_supersedes;
    Alcotest.test_case "timer cancel and re-arm" `Quick
      test_timer_cancel_and_rearm;
    Alcotest.test_case "timer re-arm in handler" `Quick
      test_timer_rearm_in_handler;
    Alcotest.test_case "timer reschedule FIFO order" `Quick
      test_timer_reschedule_fifo_order;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "events processed" `Quick test_events_processed;
  ]
