(* Discrete-event engine: scheduling semantics, cancellation, stop/until. *)

let test_time_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:0.5 (fun () -> seen := (Engine.now e, 'b') :: !seen);
  Engine.schedule e ~delay:0.1 (fun () -> seen := (Engine.now e, 'a') :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-12) char)))
    "events in time order" [ (0.1, 'a'); (0.5, 'b') ] (List.rev !seen)

let test_fifo_same_time () =
  let e = Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.0 (fun () -> seen := i :: !seen)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let trace = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      trace := "outer" :: !trace;
      Engine.schedule e ~delay:1.0 (fun () -> trace := "inner" :: !trace));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !trace);
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 (fun () -> fired := true) in
  cancel ();
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "not counted" 0 (Engine.events_processed e)

let test_cancel_idempotent () =
  let e = Engine.create () in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 ignore in
  cancel ();
  cancel ();
  Engine.run e

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  (* Run can resume afterwards. *)
  Engine.run e;
  Alcotest.(check int) "resumed" 10 !count

let test_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> Engine.schedule e ~delay:t (fun () -> incr count))
    [ 0.1; 0.2; 0.9; 1.5 ];
  Engine.run ~until:1.0 e;
  Alcotest.(check int) "3 events before horizon" 3 !count;
  Alcotest.(check bool) "future event still pending" true (Engine.pending e > 0);
  Engine.run e;
  Alcotest.(check int) "rest runs later" 4 !count

(* Regression: [run ~until] used to stop at the last processed event without
   advancing the clock to the horizon, understating censored-flow FCTs and
   inflating per-second rates computed against [now]. *)
let test_until_advances_clock () =
  let e = Engine.create () in
  List.iter (fun t -> Engine.schedule e ~delay:t ignore) [ 0.1; 0.2; 1.5 ];
  Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-12)) "clock at horizon" 1.0 (Engine.now e);
  (* Also when the queue drains before the horizon. *)
  let e2 = Engine.create () in
  Engine.schedule e2 ~delay:0.1 ignore;
  Engine.run ~until:1.0 e2;
  Alcotest.(check (float 1e-12)) "clock at horizon after drain" 1.0 (Engine.now e2)

let test_stop_beats_horizon_clamp () =
  (* [stop] means the run did not cover the window: keep the event-time clock. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:0.1 (fun () -> Engine.stop e);
  Engine.schedule e ~delay:0.2 ignore;
  Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-12)) "clock stays at stop time" 0.1 (Engine.now e)

(* Regression: a future event cut off by [~until] used to be popped and
   re-inserted with a fresh seq, so chunked [run ~until] calls broke FIFO
   ordering of simultaneous events. *)
let test_fifo_ties_across_chunked_runs () =
  let e = Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.7 (fun () -> seen := i :: !seen)
  done;
  Engine.run ~until:1.0 e;
  Alcotest.(check (list int)) "nothing before horizon" [] (List.rev !seen);
  Engine.run ~until:1.5 e;
  Engine.run ~until:2.0 e;
  Alcotest.(check (list int))
    "FIFO preserved across chunks" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 100 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  Engine.run ~max_events:10 e;
  Alcotest.(check int) "budget respected" 10 !count

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.check_raises "no time travel"
        (Invalid_argument "Engine.schedule: negative delay") (fun () ->
          Engine.schedule e ~delay:(-0.5) ignore));
  Engine.run e

let test_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:0.1 ignore
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_processed e)

let suite =
  [
    Alcotest.test_case "time advances" `Quick test_time_advances;
    Alcotest.test_case "FIFO same time" `Quick test_fifo_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "stop and resume" `Quick test_stop;
    Alcotest.test_case "until horizon" `Quick test_until;
    Alcotest.test_case "until advances clock" `Quick test_until_advances_clock;
    Alcotest.test_case "stop beats horizon clamp" `Quick test_stop_beats_horizon_clamp;
    Alcotest.test_case "FIFO ties across chunked runs" `Quick
      test_fifo_ties_across_chunked_runs;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "events processed" `Quick test_events_processed;
  ]
