(* Stats: summary math, FCT bookkeeping, series rendering. *)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Summary.mean [ 1.; 2.; 3. ]);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Summary.mean []))

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50. (Summary.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p99" 99. (Summary.percentile 99. xs);
  Alcotest.(check (float 1e-9)) "p100" 100. (Summary.percentile 100. xs);
  Alcotest.(check (float 1e-9)) "p1" 1. (Summary.percentile 1. xs);
  (* An empty sample (e.g. an all-censored collection) is a degenerate
     result, not a programming error: nan, like Summary.mean. *)
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Summary.percentile 50. []));
  Alcotest.check_raises "p out of range still raises"
    (Invalid_argument "Summary.percentile: p out of range") (fun () ->
      ignore (Summary.percentile 101. xs))

let test_percentile_unsorted_input () =
  Alcotest.(check (float 1e-9)) "unsorted" 3.
    (Summary.percentile 50. [ 5.; 1.; 3.; 2.; 4.; 6. ])

let test_min_max () =
  Alcotest.(check (float 1e-9)) "min" 1. (Summary.min [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Summary.max [ 3.; 1.; 2. ])

let test_cdf () =
  let xs = List.init 10 (fun i -> float_of_int (i + 1)) in
  let cdf = Summary.cdf ~points:10 xs in
  Alcotest.(check int) "10 points" 10 (List.length cdf);
  let last_v, last_q = List.nth cdf 9 in
  Alcotest.(check (float 1e-9)) "last value" 10. last_v;
  Alcotest.(check (float 1e-9)) "last quantile" 1. last_q;
  (* CDF values are non-decreasing. *)
  let rec mono = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (mono cdf);
  (* cdf and percentile share the nearest-rank convention: the value at
     quantile q must equal percentile (100 q) for every emitted point. *)
  let xs = List.init 137 (fun i -> float_of_int (i * i mod 97)) in
  List.iter
    (fun (v, q) ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "cdf(%.2f) = percentile(%.0f)" q (q *. 100.))
        (Summary.percentile (q *. 100.) xs)
        v)
    (Summary.cdf ~points:100 xs)

let test_fct_bookkeeping () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.001 ();
  Fct.add f ~flow:2 ~size_pkts:10 ~start_time:0. ~fct:0.003 ();
  Fct.add f ~flow:3 ~size_pkts:10 ~start_time:0. ~fct:0.100 ~censored:true ();
  Alcotest.(check int) "count" 3 (Fct.count f);
  Alcotest.(check int) "censored" 1 (Fct.censored_count f);
  Alcotest.(check (float 1e-9)) "afct over completed" 0.002 (Fct.afct f);
  Alcotest.(check int) "completed list" 2 (List.length (Fct.completed_fcts f))

let test_fct_deadlines () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.001 ~deadline:0.002 ();
  Fct.add f ~flow:2 ~size_pkts:10 ~start_time:0. ~fct:0.005 ~deadline:0.002 ();
  Fct.add f ~flow:3 ~size_pkts:10 ~start_time:0. ~fct:0.001 ~deadline:0.002
    ~censored:true ();
  Fct.add f ~flow:4 ~size_pkts:10 ~start_time:0. ~fct:0.001 ();
  (* no deadline *)
  Alcotest.(check (float 1e-9)) "1 of 3 met" (1. /. 3.)
    (Fct.deadline_met_fraction f)

let test_fct_no_deadlines_nan () =
  let f = Fct.create () in
  Fct.add f ~flow:1 ~size_pkts:10 ~start_time:0. ~fct:0.001 ();
  Alcotest.(check bool) "nan without deadlines" true
    (Float.is_nan (Fct.deadline_met_fraction f))

let test_series_arity_check () =
  Alcotest.check_raises "row arity" (Invalid_argument "Series.make: row arity mismatch")
    (fun () ->
      ignore
        (Series.make ~title:"t" ~x_label:"x" ~columns:[ "a"; "b" ]
           ~rows:[ (1., [ 1. ]) ]))

let test_series_prints () =
  (* Smoke test: rendering must not raise. *)
  let s =
    Series.make ~title:"demo" ~x_label:"load" ~columns:[ "A"; "B" ]
      ~rows:[ (0.1, [ 1.; 2. ]); (0.2, [ 3.; 4. ]) ]
  in
  Series.print s;
  Series.print_table ~title:"tbl" ~header:[ "h1"; "h2" ] [ [ "a"; "b" ] ]

let test_dist_means () =
  let rng = Rng.create 3 in
  let d = Dist.uniform 10. 20. in
  Alcotest.(check (float 1e-9)) "uniform mean" 15. d.Dist.mean;
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. d.Dist.sample rng
  done;
  Alcotest.(check bool) "empirical mean" true
    (Float.abs ((!sum /. float_of_int n) -. 15.) < 0.1);
  let c = Dist.constant 5. in
  Alcotest.(check (float 1e-9)) "constant" 5. (c.Dist.sample rng);
  let ch = Dist.choice [ 1.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "choice mean" 2. ch.Dist.mean

let test_dist_sample_int () =
  let rng = Rng.create 4 in
  let d = Dist.uniform 100. 200. in
  for _ = 1 to 100 do
    let v = Dist.sample_int d rng in
    Alcotest.(check bool) "int in range" true (v >= 100 && v <= 200)
  done

let test_piecewise_validation () =
  Alcotest.check_raises "needs two points"
    (Invalid_argument "Dist.piecewise: need at least two points") (fun () ->
      ignore (Dist.piecewise ~name:"x" [ (0., 0.) ]));
  Alcotest.check_raises "first prob 0"
    (Invalid_argument "Dist.piecewise: first probability must be 0") (fun () ->
      ignore (Dist.piecewise ~name:"x" [ (0., 0.5); (1., 1.) ]));
  Alcotest.check_raises "last prob 1"
    (Invalid_argument "Dist.piecewise: last probability must be 1") (fun () ->
      ignore (Dist.piecewise ~name:"x" [ (0., 0.); (1., 0.9) ]));
  Alcotest.check_raises "monotone"
    (Invalid_argument "Dist.piecewise: breakpoints must be non-decreasing")
    (fun () -> ignore (Dist.piecewise ~name:"x" [ (0., 0.); (2., 0.8); (1., 1.) ]))

let test_piecewise_uniform_equivalence () =
  (* A single segment (0,0)-(1,1) is U[0,1]: mean 1/2, samples in range. *)
  let d = Dist.piecewise ~name:"u" [ (0., 0.); (1., 1.) ] in
  Alcotest.(check (float 1e-9)) "mean" 0.5 d.Dist.mean;
  let rng = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = d.Dist.sample rng in
    Alcotest.(check bool) "in range" true (v >= 0. && v <= 1.);
    sum := !sum +. v
  done;
  Alcotest.(check bool) "empirical mean" true
    (Float.abs ((!sum /. float_of_int n) -. 0.5) < 0.01)

let test_piecewise_median () =
  (* Half the samples of the data-mining mix fall below its p50 point. *)
  let d = Dist.data_mining_bytes in
  let rng = Rng.create 11 in
  let below = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if d.Dist.sample rng <= 1_100. then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "median respected (%.3f)" frac)
    true
    (Float.abs (frac -. 0.5) < 0.02)

let test_empirical_means_sane () =
  (* Heavy tails dominate the means. *)
  Alcotest.(check bool) "web search mean > 1 MB" true
    (Dist.web_search_bytes.Dist.mean > 1e6);
  Alcotest.(check bool) "data mining mean > 5 MB" true
    (Dist.data_mining_bytes.Dist.mean > 5e6)

let test_empirical_scenario_builds () =
  let sc = Scenario.web_search ~hosts:10 ~num_flows:50 ~seed:2 ~load:0.5 () in
  let e = Engine.create () in
  let c = Counters.create () in
  let plan =
    Scenario.build sc e c ~qdisc:(fun ~rate_bps:_ ->
        Queue_disc.droptail c ~limit_pkts:64)
  in
  List.iter
    (fun s ->
      if not s.Scenario.long_lived then
        Alcotest.(check bool) "sizes positive and bounded" true
          (s.Scenario.size_bytes >= 1_000 && s.Scenario.size_bytes <= 30_000_000))
    plan.Scenario.specs

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "piecewise validation" `Quick test_piecewise_validation;
    Alcotest.test_case "piecewise uniform" `Quick test_piecewise_uniform_equivalence;
    Alcotest.test_case "piecewise median" `Quick test_piecewise_median;
    Alcotest.test_case "empirical means" `Quick test_empirical_means_sane;
    Alcotest.test_case "empirical scenario builds" `Quick test_empirical_scenario_builds;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "fct bookkeeping" `Quick test_fct_bookkeeping;
    Alcotest.test_case "fct deadlines" `Quick test_fct_deadlines;
    Alcotest.test_case "fct nan without deadlines" `Quick test_fct_no_deadlines_nan;
    Alcotest.test_case "series arity" `Quick test_series_arity_check;
    Alcotest.test_case "series prints" `Quick test_series_prints;
    Alcotest.test_case "dist means" `Quick test_dist_means;
    Alcotest.test_case "dist sample_int" `Quick test_dist_sample_int;
  ]
