(* Interprocedural determinism taint (rule [determinism-taint]).

   The parse tier bans direct nondeterminism — [Random.*] (unseeded
   RNG), [Unix.gettimeofday] / [Sys.time] (wallclock), [Hashtbl.iter] /
   [Hashtbl.fold] (hash order) — but a one-line wrapper launders all
   three: [let jitter () = Random.float 1e-6] passes the parse tier at
   every call site. This pass closes the loophole with per-function
   summaries joined to a fixed point across all analyzed files:

   - a function's body containing a banned use is a taint source for
     that kind, unless the site carries a justified
     [(* lint: allow <kind-rule> — ... *)] (contained: the
     nondeterminism provably does not reach simulation results, e.g.
     profiling metadata). A [(* lint: taint <kind-rule> — ... *)]
     pragma declares the opposite: by-design nondeterminism that
     propagates to callers;
   - any reference to a tainted function — call or higher-order pass —
     taints the referencing function in turn, unless the site carries
     [(* lint: allow determinism-taint — ... *)] (containment) or
     [(* lint: taint <kind-rule> — ... *)] for every carried kind
     (declared propagation);
   - every reference neither contained nor declared is reported.

   Summaries cover top-level [let]-bound functions, keyed
   ["Module.name"]; taint inside module-initialization code or local
   closures is attributed to the enclosing top-level binding. Soundness
   limits (DESIGN.md §13): calls through record fields, functor
   arguments, or function-typed parameters carry no summary. *)

open Typedtree

let rule = "determinism-taint"

type kind = Wallclock | Rng | Hash_order

let kind_rule = function
  | Wallclock -> "no-wallclock"
  | Rng -> "no-unseeded-random"
  | Hash_order -> "no-hash-order"

let kind_name = function
  | Wallclock -> "wallclock"
  | Rng -> "unseeded-RNG"
  | Hash_order -> "hash-order"

let banned_kind p : kind option =
  match p with
  | Path.Pdot (pm, n) -> (
      let m =
        match pm with
        | Path.Pident id -> Ident.name id
        | Path.Pdot (_, pmn) -> pmn
        | _ -> ""
      in
      match (m, n) with
      | "Random", _ -> Some Rng
      | "Unix", "gettimeofday" | "Sys", "time" -> Some Wallclock
      | "Hashtbl", ("iter" | "fold") -> Some Hash_order
      | _ -> None)
  | _ -> None

(* ---- pragma queries ------------------------------------------------------ *)

let covers (p : Lint_engine.pragma) line =
  line >= p.Lint_engine.p_sline && line <= p.Lint_engine.p_eline + 1

(* Both queries mark matching pragmas used, so a pragma whose only job
   is containing/declaring taint is not reported stale by the driver. *)
let allowed pragmas ~rule:r line =
  List.fold_left
    (fun acc p ->
      if
        p.Lint_engine.p_kind = Lint_engine.Allow
        && p.Lint_engine.p_known && p.Lint_engine.p_justified
        && p.Lint_engine.p_rule = r && covers p line
      then begin
        p.Lint_engine.p_used <- true;
        true
      end
      else acc)
    false pragmas

let declared pragmas ~kind line =
  List.fold_left
    (fun acc p ->
      if
        p.Lint_engine.p_kind = Lint_engine.Taint
        && p.Lint_engine.p_known && p.Lint_engine.p_justified
        && p.Lint_engine.p_rule = kind_rule kind
        && covers p line
      then begin
        p.Lint_engine.p_used <- true;
        true
      end
      else acc)
    false pragmas

(* ---- per-function facts -------------------------------------------------- *)

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* References to other top-level values in [body]: (callee key, loc). *)
let collect_refs ~cur_module body =
  let refs = ref [] in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) when banned_kind p = None ->
        refs := (Flow_common.callee_name ~cur_module p, e.exp_loc) :: !refs
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  List.rev !refs

let collect_direct ~pragmas body =
  let kinds = ref [] in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match banned_kind p with
        | Some k ->
            let line = line_of e.exp_loc in
            let source =
              declared pragmas ~kind:k line
              || not (allowed pragmas ~rule:(kind_rule k) line)
            in
            if source && not (List.mem k !kinds) then kinds := k :: !kinds
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !kinds

type fn = {
  f_key : string;
  f_file : string;
  f_pragmas : Lint_engine.pragma list;
  f_direct : kind list;
  f_refs : (string * Location.t) list;
}

let collect_fns (input : Flow_common.input) : fn list =
  let pragmas = input.Flow_common.pragmas in
  let fns = ref [] in
  let structure_item (sub : Tast_iterator.iterator) (si : structure_item) =
    (match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
                fns :=
                  {
                    f_key = input.Flow_common.modname ^ "." ^ Ident.name id;
                    f_file = input.Flow_common.src_file;
                    f_pragmas = pragmas;
                    f_direct = collect_direct ~pragmas vb.vb_expr;
                    f_refs =
                      collect_refs ~cur_module:input.Flow_common.modname
                        vb.vb_expr;
                  }
                  :: !fns
            | _ -> ())
          vbs
    | _ -> ());
    Tast_iterator.default_iterator.structure_item sub si
  in
  let it = { Tast_iterator.default_iterator with structure_item } in
  it.structure it input.Flow_common.str;
  List.rev !fns

(* ---- fixed point and reporting ------------------------------------------- *)

let analyze (inputs : Flow_common.input list) =
  let fns = List.concat_map collect_fns inputs in
  let taints : (string, kind list) Hashtbl.t = Hashtbl.create 64 in
  let get key = Option.value ~default:[] (Hashtbl.find_opt taints key) in
  List.iter
    (fun f -> if f.f_direct <> [] then Hashtbl.replace taints f.f_key f.f_direct)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let acc = ref (get f.f_key) in
        List.iter
          (fun (callee, loc) ->
            if callee <> f.f_key then
              let ks = get callee in
              if ks <> [] && not (allowed f.f_pragmas ~rule (line_of loc))
              then
                List.iter
                  (fun k -> if not (List.mem k !acc) then acc := k :: !acc)
                  ks)
          f.f_refs;
        if List.length !acc > List.length (get f.f_key) then begin
          Hashtbl.replace taints f.f_key !acc;
          changed := true
        end)
      fns
  done;
  (* Report every reference to a tainted function that neither contains
     ([allow determinism-taint]) nor declares ([taint <kind-rule>], all
     kinds) the propagation. *)
  List.concat_map
    (fun f ->
      List.filter_map
        (fun (callee, loc) ->
          let ks = if callee = f.f_key then [] else get callee in
          if ks = [] then None
          else
            let line = line_of loc in
            if allowed f.f_pragmas ~rule line then None
            else if List.for_all (fun k -> declared f.f_pragmas ~kind:k line) ks
            then None
            else
              Some
                (Flow_common.finding ~rule ~file:f.f_file loc
                   (Printf.sprintf
                      "`%s` carries %s taint; contain it with (* lint: allow \
                       determinism-taint — ... *) or declare it with (* lint: \
                       taint %s — ... *)"
                      callee
                      (String.concat "+" (List.map kind_name ks))
                      (kind_rule (List.hd ks)))))
        f.f_refs)
    fns
  |> List.sort_uniq Lint_engine.compare_findings
