(* Pool-lifetime analysis (rule [pool-lifetime]).

   Pooled [Packet.t] values are recycled through a free list: after
   [Packet.free p] the record may be handed out again with every field
   reinitialized, so any later read, store, capture, or second free of [p]
   races the next owner. This pass tracks lets-bound and parameter packets
   intraprocedurally, in (approximate) evaluation order:

   - a use of an identifier after a call that may free it is flagged
     (reads, field stores, argument passing, and capture inside a closure
     created after the free all count as uses);
   - a second may-free call on the same identifier is a double free;
   - branches fork the freed-set and merge by union: a packet freed on
     either arm is treated as freed after the join.

   "May free" is interprocedural by summary: [Packet.free] seeds the set,
   and a function that forwards one of its parameters to a may-free
   parameter position joins it (fixed point across all analyzed files), so
   wrappers like [Queue_disc.count_drop] or [Link.blackhole] are tracked
   without annotations.

   Soundness limits (documented in DESIGN.md §13): aliases are not
   tracked ([let q = p]), containers are not modeled (a packet parked in
   an array and freed through another name escapes the pass), loop bodies
   are walked once (a free on iteration N hitting a use on iteration N+1
   is missed), and calls through record fields or higher-order arguments
   have no summary. Suppress intentional sites with
   [(* lint: allow pool-lifetime — <reason> *)]. *)

open Typedtree

let rule = "pool-lifetime"

(* Argument slot of a function: positional index among unlabeled
   arguments, or the label name — robust against labeled-argument
   reordering between definition and call sites. *)
type slot = Nth of int | Label of string

let slot_of_label ~nolabel_rank (lbl : Asttypes.arg_label) =
  match lbl with
  | Asttypes.Nolabel -> Nth nolabel_rank
  | Asttypes.Labelled s | Asttypes.Optional s -> Label s

(* The curried parameter chain of a bound function: one (slot, ident)
   per [fun] layer whose pattern is a plain variable. *)
let rec params_of_expr nolabel_rank (e : expression) =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ { c_lhs; c_rhs; c_guard = None } ]; _ }
    -> (
      let rank' =
        match arg_label with
        | Asttypes.Nolabel -> nolabel_rank + 1
        | _ -> nolabel_rank
      in
      let rest = params_of_expr rank' c_rhs in
      match c_lhs.pat_desc with
      | Tpat_var (id, _) -> (slot_of_label ~nolabel_rank arg_label, id) :: rest
      | _ -> rest)
  | _ -> []

let rec body_of_expr (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
      body_of_expr c_rhs
  | _ -> e

let is_packet_free p = Flow_common.path_is p ~m:"Packet" ~n:"free"

(* ---- may-free summaries -------------------------------------------------- *)

module SMap = Map.Make (String)

(* name -> freeing slots. [Packet.free] is implicit (slot [Nth 0]). *)
type summaries = slot list SMap.t

let freeing_slots summaries p : slot list =
  if is_packet_free p then [ Nth 0 ]
  else
    match SMap.find_opt (Flow_common.path_last p) summaries with
    | Some slots -> slots
    | None -> []

(* Summaries are keyed by the value's bare name: unwrapped libraries give
   every top-level binding a distinct enough name in this codebase, and
   keying bare names lets a module-local call ([count_drop ...]) and a
   qualified one ([Queue_disc.count_drop ...]) share one summary. *)
let collect_function_defs (input : Flow_common.input) =
  let defs = ref [] in
  let structure_item (sub : Tast_iterator.iterator) (si : structure_item) =
    (match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
                let params = params_of_expr 0 vb.vb_expr in
                if params <> [] then
                  defs :=
                    (Ident.name id, params, body_of_expr vb.vb_expr) :: !defs
            | _ -> ())
          vbs
    | _ -> ());
    Tast_iterator.default_iterator.structure_item sub si
  in
  let it = { Tast_iterator.default_iterator with structure_item } in
  it.structure it input.str;
  List.rev !defs

(* One propagation round: does [body] pass any of [params] to a freeing
   slot of a summarized function? *)
let freed_params summaries params body =
  let hit = ref [] in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let slots = freeing_slots summaries p in
        if slots <> [] then begin
          let rank = ref 0 in
          List.iter
            (fun (lbl, arg) ->
              let slot = slot_of_label ~nolabel_rank:!rank lbl in
              (match lbl with Asttypes.Nolabel -> incr rank | _ -> ());
              if List.mem slot slots then
                match arg with
                | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } -> (
                    match
                      List.find_opt (fun (_, pid) -> Ident.same pid id) params
                    with
                    | Some (pslot, _) ->
                        if not (List.mem pslot !hit) then hit := pslot :: !hit
                    | None -> ())
                | _ -> ())
            args
        end
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !hit

let build_summaries (inputs : Flow_common.input list) : summaries =
  let defs = List.concat_map collect_function_defs inputs in
  let summaries = ref SMap.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, params, body) ->
        let hits = freed_params !summaries params body in
        let prev = Option.value ~default:[] (SMap.find_opt name !summaries) in
        let merged = List.sort_uniq compare (hits @ prev) in
        if merged <> prev then begin
          summaries := SMap.add name merged !summaries;
          changed := true
        end)
      defs
  done;
  !summaries

(* ---- escape detection ---------------------------------------------------- *)

(* A packet parked in a container or captured by a deferred closure
   outlives the current event, where the pool may recycle it under the
   holder's feet. Such hand-offs are legal only where ownership provably
   transfers (the data path's queues and in-flight rings) — every site
   must say so with [(* lint: allow pool-lifetime — <reason> *)]. Stores
   of the pool's [dummy] sentinel (slot-clearing) are exempt by
   convention. *)
let container_fns = [ "push"; "add"; "replace"; "set"; "unsafe_set" ]
let schedule_fns = [ "schedule"; "schedule_at"; "schedule_cancellable" ]

let is_dummy_store (v : expression) =
  match v.exp_desc with
  | Texp_ident (p, _, _) -> Flow_common.path_last p = "dummy"
  | Texp_field (_, _, ld) -> ld.Types.lbl_name = "dummy"
  | _ -> false

(* Does storing [v] park a packet? Sees through constructor and tuple
   wrapping ([Some pkt], [(pkt, meta)]); the [dummy] sentinel is exempt. *)
let rec stores_packet (v : expression) =
  if Flow_common.is_packet_type v.exp_type then not (is_dummy_store v)
  else
    match v.exp_desc with
    | Texp_construct (_, _, args) -> List.exists stores_packet args
    | Texp_tuple vs -> List.exists stores_packet vs
    | _ -> false

(* Packet-typed identifiers referenced inside [fn] but bound outside it:
   the captures that make a closure hold a packet. *)
let captured_packets (fn : expression) =
  let bound = ref [] in
  let used = ref [] in
  let pat (type k) sub (p : k general_pattern) =
    (match p.pat_desc with
    | Tpat_var (id, _) -> bound := id :: !bound
    | Tpat_alias (_, id, _) -> bound := id :: !bound
    | _ -> ());
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when Flow_common.is_packet_type e.exp_type ->
        used := (id, e.exp_loc) :: !used
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it fn;
  List.filter
    (fun (id, _) -> not (List.exists (Ident.same id) !bound))
    (List.rev !used)

(* ---- intraprocedural use-after-free walk -------------------------------- *)

module IMap = Map.Make (Ident)

let analyze_input summaries (input : Flow_common.input) =
  let file = input.Flow_common.src_file in
  let findings = ref [] in
  let report loc msg = findings := Flow_common.finding ~rule ~file loc msg :: !findings in
  (* freed ident -> location of the (first) freeing call *)
  let freed : Location.t IMap.t ref = ref IMap.empty in
  let merge a b =
    IMap.union (fun _ l _ -> Some l) a b
  in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match IMap.find_opt id !freed with
        | Some floc ->
            report e.exp_loc
              (Printf.sprintf
                 "pooled `%s` used after being freed at line %d; the pool \
                  may already have recycled it"
                 (Ident.name id) floc.Location.loc_start.Lexing.pos_lnum)
        | None -> ())
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args)
      when freeing_slots summaries p <> [] ->
        let slots = freeing_slots summaries p in
        sub.expr sub fn;
        let rank = ref 0 in
        List.iter
          (fun (lbl, arg) ->
            let slot = slot_of_label ~nolabel_rank:!rank lbl in
            (match lbl with Asttypes.Nolabel -> incr rank | _ -> ());
            match arg with
            | Some ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as ae)
              when List.mem slot slots
                   && Flow_common.is_packet_type ae.exp_type -> (
                match IMap.find_opt id !freed with
                | Some floc ->
                    report ae.exp_loc
                      (Printf.sprintf
                         "pooled `%s` freed again (`%s`); first freed at \
                          line %d — double free corrupts the free list"
                         (Ident.name id)
                         (Flow_common.path_last p)
                         floc.Location.loc_start.Lexing.pos_lnum)
                | None -> freed := IMap.add id e.exp_loc !freed)
            | Some ae -> sub.expr sub ae
            | None -> ())
          args
    | Texp_setfield (_, _, ld, v) when stores_packet v ->
        report v.exp_loc
          (Printf.sprintf
             "pooled packet escapes into mutable field `%s`; justify the \
              ownership transfer or the pool may recycle it in place"
             ld.Types.lbl_name);
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when List.mem (Flow_common.path_last p) container_fns ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some (a : expression) when stores_packet a ->
                report a.exp_loc
                  (Printf.sprintf
                     "pooled packet escapes into a container via `%s`; \
                      justify the ownership transfer or the pool may \
                      recycle it in place"
                     (Flow_common.path_last p))
            | _ -> ())
          args;
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when List.mem (Flow_common.path_last p) schedule_fns ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some ({ exp_desc = Texp_function _; _ } as fn) ->
                List.iter
                  (fun (id, loc) ->
                    report loc
                      (Printf.sprintf
                         "pooled `%s` captured by a closure deferred via \
                          `%s`; it may be recycled before the closure runs"
                         (Ident.name id)
                         (Flow_common.path_last p)))
                  (captured_packets fn)
            | _ -> ())
          args;
        Tast_iterator.default_iterator.expr sub e
    | Texp_ifthenelse (cond, then_, else_) ->
        sub.expr sub cond;
        let before = !freed in
        sub.expr sub then_;
        let after_then = !freed in
        freed := before;
        (match else_ with Some e2 -> sub.expr sub e2 | None -> ());
        freed := merge after_then !freed
    | Texp_match (scrut, cases, _) ->
        sub.expr sub scrut;
        let before = !freed in
        let out = ref before in
        List.iter
          (fun c ->
            freed := before;
            (match c.c_guard with Some g -> sub.expr sub g | None -> ());
            sub.expr sub c.c_rhs;
            out := merge !out !freed)
          cases;
        freed := !out
    | Texp_try (body, cases) ->
        let before = !freed in
        sub.expr sub body;
        let out = ref !freed in
        List.iter
          (fun c ->
            freed := before;
            (match c.c_guard with Some g -> sub.expr sub g | None -> ());
            sub.expr sub c.c_rhs;
            out := merge !out !freed)
          cases;
        freed := !out
    | Texp_while (cond, body) ->
        (* One pass over the body: cross-iteration hazards are out of
           scope (see the header comment). *)
        sub.expr sub cond;
        let before = !freed in
        sub.expr sub body;
        freed := merge before !freed
    | Texp_for (_, _, lo, hi, _, body) ->
        sub.expr sub lo;
        sub.expr sub hi;
        let before = !freed in
        sub.expr sub body;
        freed := merge before !freed
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it input.Flow_common.str;
  List.rev !findings

let analyze (inputs : Flow_common.input list) =
  let summaries = build_summaries inputs in
  inputs
  |> List.filter (fun i ->
         (* packet.ml implements the pool: freeing into the free list is
            its job, not a lifetime violation. *)
         not (Flow_common.basename_is i.Flow_common.src_file "packet.ml"))
  |> List.concat_map (analyze_input summaries)
