(* Typedtree dataflow tier: driver.

   Loads [.cmt] files produced by [dune build @check], maps each back to
   its source file, and runs the four dataflow analyses over the typed
   trees:

   - {!Flow_pool}:  [pool-lifetime]      — use/re-free after [Packet.free]
   - {!Flow_units}: [unit-mismatch]      — seconds/bytes/bps/ratio mixing
   - {!Flow_trace}: [trace-unguarded]    — [Trace.emit] outside [Trace.on ()]
   - {!Flow_taint}: [determinism-taint]  — interprocedural wallclock/RNG/
                                           hash-order propagation

   Findings are suppressed by the same in-source pragma grammar as the
   parse tier, and allow-pragmas for typed rules that suppress nothing
   are reported stale. See DESIGN.md §13. *)

let typed_tier = "typed"

(* ---- cmt discovery ------------------------------------------------------- *)

(* All .cmt files under [root]. Dune hides object directories behind dot
   names ([.sim.objs/byte/...]), so — unlike the parse tier's source
   walk — dot-directories are descended into. *)
let rec cmt_files_under root acc =
  match Sys.readdir root with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let p = Filename.concat root entry in
          if Sys.is_directory p then cmt_files_under p acc
          else if Filename.check_suffix entry ".cmt" then p :: acc
          else acc)
        acc entries

(* [under_one_of ~only src] — is [src] one of [only] or inside one of
   those directories? Component-aware: ["lib"] matches ["lib/sim/x.ml"]
   but not ["library.ml"]. *)
let under_one_of ~only src =
  let strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  let src = strip src in
  List.exists
    (fun p ->
      let p = strip p in
      p = "." || p = ""
      || src = p
      || String.length src > String.length p
         && String.sub src 0 (String.length p + 1) = p ^ "/")
    only

let input_of_typed ~src_file ~source (str : Typedtree.structure) :
    Flow_common.input =
  {
    Flow_common.src_file;
    modname = Flow_common.module_name_of_source src_file;
    str;
    source;
    pragmas =
      (match source with
      | Some s -> Lint_engine.pragmas_of_source s
      | None -> []);
  }

(* Read one cmt; [None] for interfaces, packs, partial cmts, or files
   whose recorded source falls outside [only]. *)
let input_of_cmt ~only cmt_path : Flow_common.input option =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when under_one_of ~only src ->
          let source =
            match In_channel.with_open_bin src In_channel.input_all with
            | s -> Some s
            | exception Sys_error _ -> None
          in
          Some (input_of_typed ~src_file:src ~source str)
      | _ -> None)

(* Inputs for every implementation under [only] (source-relative paths,
   e.g. [["lib"; "bench"]]) whose cmt lives under [cmt_root]. One input
   per source file: dune builds some modules into several object
   directories (library + executable), and analyzing both would double
   every finding. *)
let inputs_under ~cmt_root ~only : Flow_common.input list =
  let seen = Hashtbl.create 64 in
  cmt_files_under cmt_root []
  |> List.sort compare
  |> List.filter_map (fun cmt -> input_of_cmt ~only cmt)
  |> List.filter (fun (i : Flow_common.input) ->
         if Hashtbl.mem seen i.Flow_common.src_file then false
         else begin
           Hashtbl.add seen i.Flow_common.src_file ();
           true
         end)

(* ---- analysis ------------------------------------------------------------ *)

(* Raw findings from the four passes, unsuppressed. *)
let analyze_raw (inputs : Flow_common.input list) : Lint_engine.finding list =
  Flow_pool.analyze inputs @ Flow_units.analyze inputs
  @ Flow_trace.analyze inputs @ Flow_taint.analyze inputs

(* Full pipeline: analyze, apply pragma suppression per file, then
   report stale allow-pragmas for the typed rules. *)
let analyze (inputs : Flow_common.input list) : Lint_engine.finding list =
  let raw = analyze_raw inputs in
  inputs
  |> List.concat_map (fun (i : Flow_common.input) ->
         let mine =
           List.filter
             (fun (f : Lint_engine.finding) ->
               f.Lint_engine.file = i.Flow_common.src_file)
             raw
         in
         let kept = Lint_engine.suppress ~pragmas:i.Flow_common.pragmas mine in
         kept
         @ Lint_engine.stale_pragma_findings ~file:i.Flow_common.src_file
             ~rules:Lint_engine.typed_rule_ids i.Flow_common.pragmas)
  |> List.sort_uniq Lint_engine.compare_findings

(* Entry point used by [pase_lint --typed]. *)
let lint_cmts ~cmt_root ~only : Lint_engine.finding list =
  analyze (inputs_under ~cmt_root ~only)
