(* Trace-guard analysis (rule [trace-unguarded]).

   PR 3's trace bus promises zero cost when tracing is off: every
   [Trace.emit] call — and every [Trace.event] allocation feeding one —
   must be dominated by a [Trace.on ()] check. An unguarded emit
   allocates an event record on the hot path of every untraced run.

   The pass walks each function body with a guardedness flag:

   - [if Trace.on () then e] makes [e] guarded; [if not (Trace.on ())
     then a else b] makes [b] guarded; [&&] / [||] / [not] combine with
     the usual polarity rules (a conjunct containing [Trace.on ()]
     guards the then-branch; a disjunct containing [not (Trace.on ())]
     guards the else-branch);
   - guardedness flows into closures created in a guarded region —
     sound here because [Trace.on ()] is constant for the lifetime of a
     run;
   - an unguarded [Trace.emit] application, or an unguarded
     [Trace.event] construction (the allocation), is flagged. A
     construction that is the argument of an already-flagged emit on the
     same line is not double-reported.

   [trace.ml] itself (the bus implementation) is exempt. Guarding
   laundered through a boolean variable ([let on = Trace.on () in if on
   then ...]) is not recognized — call [Trace.on ()] directly in the
   condition, or suppress with
   [(* lint: allow trace-unguarded — <reason> *)]. *)

open Typedtree

let rule = "trace-unguarded"

let is_unit_apply_of e ~m ~n =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some _) ]) ->
      Flow_common.path_is p ~m ~n
  | _ -> false

let is_trace_on e = is_unit_apply_of e ~m:"Trace" ~n:"on"

type polarity = Pos | Neg | Unknown

(* Polarity of a guard condition w.r.t. tracing: [Pos] means "true only
   if tracing is on", [Neg] means "true only if tracing is off". *)
let rec polarity (e : expression) : polarity =
  if is_trace_on e then Pos
  else
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a) ])
      when Flow_common.path_last p = "not" -> (
        match polarity a with Pos -> Neg | Neg -> Pos | Unknown -> Unknown)
    | Texp_apply
        ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a); (_, Some b) ])
      -> (
        match Flow_common.path_last p with
        | "&&" ->
            if polarity a = Pos || polarity b = Pos then Pos else Unknown
        | "||" ->
            if polarity a = Neg || polarity b = Neg then Neg else Unknown
        | _ -> Unknown)
    | _ -> Unknown

let is_trace_event_type ty = Flow_common.type_is_constr ty ~m:"Trace" ~n:"event"

let analyze_input (input : Flow_common.input) =
  let file = input.Flow_common.src_file in
  let findings = ref [] in
  let reported_lines = Hashtbl.create 8 in
  let report loc msg =
    Hashtbl.replace reported_lines loc.Location.loc_start.Lexing.pos_lnum ();
    findings := Flow_common.finding ~rule ~file loc msg :: !findings
  in
  let guarded = ref false in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when Flow_common.path_is p ~m:"Trace" ~n:"emit" ->
        if not !guarded then begin
          report e.exp_loc
            "`Trace.emit` not dominated by a `Trace.on ()` guard — this \
             allocates and emits even when tracing is off";
          (* One finding covers the whole site: don't also flag the
             event allocation feeding this emit. *)
          guarded := true;
          Tast_iterator.default_iterator.expr sub e;
          guarded := false
        end
        else Tast_iterator.default_iterator.expr sub e
    | Texp_construct (_, _, _)
      when is_trace_event_type e.exp_type && not !guarded
           && not
                (Hashtbl.mem reported_lines
                   e.exp_loc.Location.loc_start.Lexing.pos_lnum) ->
        report e.exp_loc
          "`Trace.event` allocated outside a `Trace.on ()` guard — the \
           allocation is not free when tracing is off";
        Tast_iterator.default_iterator.expr sub e
    | Texp_ifthenelse (cond, then_, else_) ->
        let saved = !guarded in
        sub.expr sub cond;
        let pol = polarity cond in
        guarded := saved || pol = Pos;
        sub.expr sub then_;
        guarded := saved || pol = Neg;
        (match else_ with Some e2 -> sub.expr sub e2 | None -> ());
        guarded := saved
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it input.Flow_common.str;
  List.rev !findings

let analyze (inputs : Flow_common.input list) =
  inputs
  |> List.filter (fun i ->
         not (Flow_common.basename_is i.Flow_common.src_file "trace.ml"))
  |> List.concat_map analyze_input
