(** Determinism-invariant static analyzer for the PASE simulator: the
    parse tier.

    Parses OCaml sources with compiler-libs and enforces the syntactic
    rule set documented in DESIGN.md ("Determinism invariants"):

    - [no-unseeded-random]: [Random.*] (route randomness through [Rng])
    - [no-wallclock]: [Unix.gettimeofday] / [Sys.time]
    - [no-hash-order]: [Hashtbl.iter] / [Hashtbl.fold] (use [Det_tbl])
    - [no-silent-catchall]: [try ... with _ ->] (or
      [match ... with exception _ ->]) handlers
    - [no-marshal]: [Marshal.*] (route persistence through [Result_codec])
    - [no-obj-magic]: [Obj.magic] anywhere
    - [no-poly-compare-sort]: the polymorphic [compare] passed to a sort
      combinator, bare or eta-expanded [(fun a b -> compare a b)]

    There are no per-file allowlists: every blessed site carries its own
    pragma comment on the same line or the line above:

    {v (* lint: allow <rule> — <justification> *) v}

    or, for a site that is nondeterministic {e by design} (the typed
    tier's determinism-taint pass propagates it to callers):

    {v (* lint: taint <rule> — <justification> *) v}

    A pragma with an unknown rule name or an empty justification is
    itself reported (rule id [bad-pragma]); a justified allow-pragma that
    no longer suppresses anything is reported as [stale-pragma]; a source
    file that fails to parse is reported as [parse-error].

    The typedtree dataflow tier (rules [pool-lifetime], [unit-mismatch],
    [trace-unguarded], [determinism-taint]) lives in {!Lint_flow} and
    shares this module's finding and pragma machinery. *)

type finding = {
  rule : string;  (** rule id, e.g. ["no-hash-order"] *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

(** The parse-tier rule ids, in reporting order. *)
val rule_ids : string list

(** The typed-tier rule ids (enforced by {!Lint_flow}). *)
val typed_rule_ids : string list

(** The rules accepted by [lint: taint] pragmas. *)
val taintable_rule_ids : string list

(** {1 Pragmas}

    Shared between the two tiers: both consume the same comment syntax,
    and each tier stale-checks only the rules it ran. *)

type pragma_kind = Allow | Taint

type pragma = {
  p_kind : pragma_kind;
  p_rule : string;
  p_known : bool;
  p_justified : bool;
  p_sline : int;  (** line the pragma text starts on (1-based) *)
  p_eline : int;  (** last line of the enclosing comment *)
  mutable p_used : bool;  (** set by {!suppress} when it suppressed *)
}

(** Scan comments (string/char/quoted-string aware) and parse every
    [lint:] pragma, including malformed ones ([p_known = false]). *)
val pragmas_of_source : string -> pragma list

(** [bad-pragma] findings for unknown rules / missing justifications. *)
val bad_pragma_findings : file:string -> pragma list -> finding list

(** Drop findings matched by a justified pragma on the same line or the
    line above, marking those pragmas used. *)
val suppress : pragmas:pragma list -> finding list -> finding list

(** [stale-pragma] findings: justified allow-pragmas among [rules] that
    suppressed nothing. Call after {!suppress}. *)
val stale_pragma_findings :
  file:string -> rules:string list -> pragma list -> finding list

val compare_findings : finding -> finding -> int

(** {1 Entry points} *)

(** [lint_source ~file src] lints the source text [src] with the parse
    tier, attributing findings to [file]. *)
val lint_source : file:string -> string -> finding list

(** [lint_file path] reads and lints [path]. *)
val lint_file : string -> finding list

(** [lint_paths paths] lints every [.ml] file under each path (files are
    taken as-is, directories walked recursively, skipping [_build] and
    dot-directories), in sorted file order. *)
val lint_paths : string list -> finding list

val pp_finding : Format.formatter -> finding -> unit

(** One finding as a JSON object with a ["tier"] tag. *)
val finding_to_json : tier:string -> finding -> string
