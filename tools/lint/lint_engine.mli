(** Determinism-invariant static analyzer for the PASE simulator.

    Parses OCaml sources with compiler-libs and enforces the rule set
    documented in DESIGN.md ("Determinism invariants"):

    - [no-unseeded-random]: [Random.*] outside [lib/sim/rng.ml]
    - [no-wallclock]: [Unix.gettimeofday] / [Sys.time] outside
      [lib/workload/parallel.ml]
    - [no-hash-order]: [Hashtbl.iter] / [Hashtbl.fold] outside
      [lib/sim/det_tbl.ml]
    - [no-silent-catchall]: [try ... with _ ->] (or
      [match ... with exception _ ->]) handlers
    - [no-marshal]: [Marshal.*] outside [lib/workload/result_codec.ml]
    - [no-obj-magic]: [Obj.magic] anywhere (no allowlisted site; Eheap
      uses a typed [~dummy] slot instead)

    A violation can be allowlisted per site with a pragma comment on the
    same line or the line above:

    {v (* lint: allow <rule> — <justification> *) v}

    A pragma with an unknown rule name or an empty justification is itself
    reported (rule id [bad-pragma]), as is a source file that fails to
    parse ([parse-error]). *)

type finding = {
  rule : string;  (** rule id, e.g. ["no-hash-order"] *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

(** The six enforced rule ids, in reporting order. *)
val rule_ids : string list

(** [lint_source ~file src] lints the source text [src], attributing
    findings to [file]. [file] also selects per-file allowlists. *)
val lint_source : file:string -> string -> finding list

(** [lint_file path] reads and lints [path]. *)
val lint_file : string -> finding list

(** [lint_paths paths] lints every [.ml] file under each path (files are
    taken as-is, directories walked recursively, skipping [_build] and
    dot-directories), in sorted file order. *)
val lint_paths : string list -> finding list

val pp_finding : Format.formatter -> finding -> unit
