(* Shared helpers for the typedtree dataflow tier. Everything here works
   purely on paths and names — no Env lookups — so analyses run on .cmt
   files without replaying the compilation environment. *)

type finding = Lint_engine.finding

let finding ~rule ~file (loc : Location.t) message : finding =
  let pos = loc.Location.loc_start in
  {
    Lint_engine.rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* [path_is p ~m ~n] matches a [Path.t] whose last two components are
   [m.n] — e.g. both the simulator's unwrapped [Packet.free] and a test
   fixture's locally-stubbed [module Packet]. *)
let path_is p ~m ~n =
  match p with
  | Path.Pdot (pm, pn) -> (
      pn = n
      &&
      match pm with
      | Path.Pident id -> Ident.name id = m
      | Path.Pdot (_, pmn) -> pmn = m
      | _ -> false)
  | _ -> false

let path_last p =
  match p with
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, n) -> n
  | _ -> Path.name p

(* Qualified name of a called value as the taint pass keys it:
   [M.f] for a cross-module reference, [<cur>.f] for a module-local one. *)
let callee_name ~cur_module p =
  match p with
  | Path.Pident id -> cur_module ^ "." ^ Ident.name id
  | Path.Pdot (pm, n) -> (
      match pm with
      | Path.Pident id -> Ident.name id ^ "." ^ n
      | Path.Pdot (_, pmn) -> pmn ^ "." ^ n
      | _ -> Path.name p)
  | _ -> Path.name p

let rec type_is_constr ty ~m ~n =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> path_is p ~m ~n || (m = "" && path_last p = n)
  | Types.Tpoly (t, _) -> type_is_constr t ~m ~n
  | _ -> false

let type_is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* "Packet.t" both as the unwrapped library module and as a fixture stub.
   Inside packet.ml itself the type is just "t"; the pool analysis skips
   that file, so the qualified match is enough. *)
let is_packet_type ty = type_is_constr ty ~m:"Packet" ~n:"t"

let module_name_of_source src_file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename src_file))

(* Per-file input to the analyses. [source] is the file's text when it
   could be read (pragma suppression needs it); [None] disables
   suppression for that file rather than failing the run. [pragmas] is
   parsed once from [source] and shared between the taint pass (which
   consults allow/taint pragmas for propagation) and the driver's
   suppression + stale-pragma check, so a pragma consumed by either
   counts as used. *)
type input = {
  src_file : string;
  modname : string;
  str : Typedtree.structure;
  source : string option;
  pragmas : Lint_engine.pragma list;
}

let basename_is src_file name = Filename.basename src_file = name
