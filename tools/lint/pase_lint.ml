(* pase_lint — determinism-invariant static analyzer for the simulator.

   Usage: pase_lint [PATH ...]        (default: lib bin bench)

   Exits 1 if any unannotated violation of the rule set is found. See
   DESIGN.md "Determinism invariants" for the rules and the pragma syntax. *)

let () =
  let paths =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib"; "bin"; "bench" ]
    | ps -> ps
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Format.eprintf "pase_lint: no such path(s): %s@."
      (String.concat ", " missing);
    exit 2
  end;
  let findings = Lint_engine.lint_paths paths in
  List.iter (fun f -> Format.printf "%a@." Lint_engine.pp_finding f) findings;
  match findings with
  | [] ->
      Format.printf "pase_lint: clean (%s)@." (String.concat " " paths);
      exit 0
  | fs ->
      Format.eprintf "pase_lint: %d violation(s)@." (List.length fs);
      exit 1
