(* pase_lint — determinism-invariant static analyzer for the simulator.

   Usage: pase_lint [OPTIONS] [PATH ...]     (default paths: lib bin bench)

     --parse-only        run only the parsetree tier (syntactic rules)
     --typed-only        run only the typedtree dataflow tier
     --cmt-root DIR      where to find .cmt files for the typed tier
                         (default: _build/default; use `.` when invoked
                         from inside the build context). The cmts come
                         from `dune build @check`.
     --json              print findings as a JSON array on stdout

   Exits 1 if any unannotated violation is found, 2 on usage errors or a
   missing cmt root. See DESIGN.md §13 for the two-tier architecture,
   the rule set, and the pragma syntax. *)

let usage () =
  Format.eprintf
    "usage: pase_lint [--parse-only|--typed-only] [--cmt-root DIR] [--json] \
     [PATH ...]@.";
  exit 2

let () =
  let json = ref false in
  let run_parse = ref true in
  let run_typed = ref true in
  let cmt_root = ref "_build/default" in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--parse-only" :: rest ->
        run_typed := false;
        parse_args rest
    | "--typed-only" :: rest ->
        run_parse := false;
        parse_args rest
    | "--cmt-root" :: dir :: rest ->
        cmt_root := dir;
        parse_args rest
    | "--cmt-root" :: [] -> usage ()
    | s :: _ when String.length s > 0 && s.[0] = '-' -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if (not !run_parse) && not !run_typed then usage ();
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Format.eprintf "pase_lint: no such path(s): %s@."
      (String.concat ", " missing);
    exit 2
  end;
  let parse_findings =
    if !run_parse then Lint_engine.lint_paths paths else []
  in
  let typed_findings =
    if not !run_typed then []
    else if not (Sys.file_exists !cmt_root) then begin
      Format.eprintf
        "pase_lint: cmt root `%s` not found — run `dune build @check` first \
         (or pass --cmt-root)@."
        !cmt_root;
      exit 2
    end
    else Lint_flow.lint_cmts ~cmt_root:!cmt_root ~only:paths
  in
  let tagged =
    List.map (fun f -> ("parse", f)) parse_findings
    @ List.map (fun f -> ("typed", f)) typed_findings
  in
  if !json then begin
    print_string "[";
    List.iteri
      (fun i (tier, f) ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (Lint_engine.finding_to_json ~tier f))
      tagged;
    if tagged <> [] then print_string "\n";
    print_string "]\n"
  end
  else
    List.iter
      (fun (_, f) -> Format.printf "%a@." Lint_engine.pp_finding f)
      tagged;
  let tiers =
    (if !run_parse then [ "parse" ] else [])
    @ if !run_typed then [ "typed" ] else []
  in
  match tagged with
  | [] ->
      Format.eprintf "pase_lint: clean (%s tier%s; %s)@."
        (String.concat "+" tiers)
        (if List.length tiers > 1 then "s" else "")
        (String.concat " " paths);
      exit 0
  | fs ->
      Format.eprintf "pase_lint: %d violation(s)@." (List.length fs);
      exit 1
