type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let rule_ids =
  [
    "no-unseeded-random";
    "no-wallclock";
    "no-hash-order";
    "no-silent-catchall";
    "no-marshal";
    "no-obj-magic";
    "no-poly-compare-sort";
  ]

(* Rules enforced by the typedtree dataflow tier (lint_flow). The parse
   tier must know them so their pragmas parse, but it neither raises nor
   stale-checks them: only the tier that runs an analysis can tell whether
   its pragma still suppresses something. *)
let typed_rule_ids =
  [ "pool-lifetime"; "unit-mismatch"; "trace-unguarded"; "determinism-taint" ]

(* The nondeterminism sources whose taint the typed tier propagates through
   the call graph. Only these may appear in a [taint] pragma. *)
let taintable_rule_ids = [ "no-unseeded-random"; "no-wallclock"; "no-hash-order" ]

(* ---- comment / pragma scanning ------------------------------------------ *)

type comment = { text : string; sline : int; eline : int }

(* A hand-rolled scanner rather than the compiler lexer: [Lexer.token]
   drops comments unless the full init dance is replayed, and we need
   byte-accurate line spans anyway. Tracks string literals, quoted strings
   ({id|...|id}), char literals (so a double-quote char literal does not
   open a string) and nested comments, both in code and inside comments,
   mirroring the concerns of the real lexer. *)
let scan_comments src =
  let n = String.length src in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then incr line;
      incr i
    end
  in
  let is_id c = (c >= 'a' && c <= 'z') || c = '_' in
  (* If a quoted-string opener (brace, id, pipe) starts at the cursor,
     return its delimiter id. *)
  let quoted_opener () =
    if peek 0 <> Some '{' then None
    else begin
      let j = ref (!i + 1) in
      while !j < n && is_id src.[!j] do
        incr j
      done;
      if !j < n && src.[!j] = '|' then
        Some (String.sub src (!i + 1) (!j - !i - 1))
      else None
    end
  in
  let skip_quoted id =
    (* Past the opener; consume until the matching pipe-id-brace closer. *)
    let closer = "|" ^ id ^ "}" in
    let len = String.length closer in
    let closed = ref false in
    while (not !closed) && !i < n do
      if !i + len <= n && String.sub src !i len = closer then begin
        for _ = 1 to len do
          advance ()
        done;
        closed := true
      end
      else advance ()
    done
  in
  let skip_string () =
    (* Past the opening quote; consume up to and including the closer. *)
    let closed = ref false in
    while (not !closed) && !i < n do
      match src.[!i] with
      | '\\' ->
          advance ();
          advance ()
      | '"' ->
          advance ();
          closed := true
      | _ -> advance ()
    done
  in
  let skip_char_literal () =
    (* At a ['] that may open a char literal or be a type variable. *)
    match peek 1 with
    | Some '\\' ->
        advance ();
        advance ();
        advance ();
        (* numeric escapes: consume until the closing quote *)
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '\'' then begin
            advance ();
            closed := true
          end
          else advance ()
        done
    | Some _ when peek 2 = Some '\'' ->
        advance ();
        advance ();
        advance ()
    | _ -> advance ()
  in
  while !i < n do
    match src.[!i] with
    | '"' ->
        advance ();
        skip_string ()
    | '\'' -> skip_char_literal ()
    | '{' -> (
        match quoted_opener () with
        | Some id ->
            for _ = 1 to String.length id + 2 do
              advance ()
            done;
            skip_quoted id
        | None -> advance ())
    | '(' when peek 1 = Some '*' ->
        let sline = !line in
        let buf = Buffer.create 64 in
        advance ();
        advance ();
        let depth = ref 1 in
        while !depth > 0 && !i < n do
          if peek 0 = Some '(' && peek 1 = Some '*' then begin
            incr depth;
            Buffer.add_string buf "(*";
            advance ();
            advance ()
          end
          else if peek 0 = Some '*' && peek 1 = Some ')' then begin
            decr depth;
            if !depth > 0 then Buffer.add_string buf "*)";
            advance ();
            advance ()
          end
          else
            match src.[!i] with
            | '"' ->
                let s = !i in
                advance ();
                skip_string ();
                Buffer.add_string buf (String.sub src s (!i - s))
            | '\'' ->
                let s = !i in
                skip_char_literal ();
                Buffer.add_string buf (String.sub src s (!i - s))
            | c ->
                Buffer.add_char buf c;
                advance ()
        done;
        comments :=
          { text = Buffer.contents buf; sline; eline = !line } :: !comments
    | _ -> advance ()
  done;
  List.rev !comments

type pragma_kind = Allow | Taint

type pragma = {
  p_kind : pragma_kind;
  p_rule : string;
  p_known : bool;
  p_justified : bool;
  p_sline : int;
  p_eline : int;
  mutable p_used : bool;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let drop_prefix s k = String.sub s k (String.length s - k)

(* Strip the separator between rule name and justification: spaces plus
   any run of ASCII or typographic dashes (em/en dash UTF-8 bytes). *)
let strip_separator s =
  let sep c = c = ' ' || c = '\t' || c = '-' || c = '\xe2' || c = '\x80'
              || c = '\x93' || c = '\x94' in
  let k = ref 0 in
  while !k < String.length s && sep s.[!k] do
    incr k
  done;
  drop_prefix s !k

(* Pragmas may stack inside one comment, one per line:
   [(* lint: allow r1 — x
        lint: allow r2 — y *)]. Splitting on lines keeps the grammar
   unambiguous (a justification never spans lines). *)
let parse_pragma (c : comment) =
  let lines = String.split_on_char '\n' c.text in
  List.concat_map
    (fun (off, ln) ->
      let t = String.trim ln in
      if not (starts_with ~prefix:"lint:" t) then []
      else
        let sline = c.sline + off in
        let mk kind rest =
          let rule, tail =
            match String.index_opt rest ' ' with
            | None -> (rest, "")
            | Some k -> (String.sub rest 0 k, drop_prefix rest k)
          in
          let known =
            match kind with
            | Allow -> List.mem rule (rule_ids @ typed_rule_ids)
            | Taint -> List.mem rule taintable_rule_ids
          in
          [
            {
              p_kind = kind;
              p_rule = rule;
              p_known = known;
              p_justified = String.trim (strip_separator tail) <> "";
              p_sline = sline;
              p_eline = c.eline;
              p_used = false;
            };
          ]
        in
        let rest = String.trim (drop_prefix t 5) in
        if starts_with ~prefix:"allow " rest || rest = "allow" then
          mk Allow (String.trim (drop_prefix rest 5))
        else if starts_with ~prefix:"taint " rest || rest = "taint" then
          mk Taint (String.trim (drop_prefix rest 5))
        else
          [
            {
              p_kind = Allow;
              p_rule = "";
              p_known = false;
              p_justified = false;
              p_sline = sline;
              p_eline = c.eline;
              p_used = false;
            };
          ])
    (List.mapi (fun i ln -> (i, ln)) lines)

(* ---- AST rules ----------------------------------------------------------- *)

let root_module lid =
  let rec go = function
    | Longident.Lident s -> s
    | Longident.Ldot (l, _) -> go l
    | Longident.Lapply (l, _) -> go l
  in
  go lid

let ident_string lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> root_module lid

(* A pattern that matches every exception: bare [_], possibly behind
   aliases, constraints or or-pattern arms. *)
let rec pattern_is_catchall (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias (q, _) | Parsetree.Ppat_constraint (q, _) ->
      pattern_is_catchall q
  | Parsetree.Ppat_or (a, b) -> pattern_is_catchall a || pattern_is_catchall b
  | _ -> false

let rule_of_ident lid =
  match lid with
  | Longident.Ldot (Longident.Lident "Hashtbl", ("iter" | "fold")) ->
      Some
        ( "no-hash-order",
          "visits bindings in hash-bucket order, which leaks into \
           float-summation / list / scheduling order; use Det_tbl (sorted \
           by key)" )
  | Longident.Ldot (Longident.Lident "Unix", "gettimeofday")
  | Longident.Ldot (Longident.Lident "Sys", "time") ->
      Some
        ( "no-wallclock",
          "wall-clock reads differ across runs; simulation logic must use \
           Engine.now" )
  | Longident.Ldot (Longident.Lident "Obj", "magic") ->
      Some
        ( "no-obj-magic",
          "defeats the type system; keep dummy slots typed (see Eheap's \
           ~dummy parameter) instead" )
  | _ -> (
      match root_module lid with
      | "Random" ->
          Some
            ( "no-unseeded-random",
              "draws from the global, unseeded generator; route randomness \
               through Rng so every stream is seeded and splittable" )
      | "Marshal" ->
          Some
            ( "no-marshal",
              "unversioned binary blobs break cache compatibility silently; \
               route persistence through Result_codec" )
      | _ -> None)

(* The sort combinators whose comparator argument the poly-compare rule
   inspects. *)
let is_sort_fn = function
  | Longident.Ldot
      ( Longident.Lident ("List" | "Array" | "ListLabels" | "ArrayLabels"),
        ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ) ->
      true
  | _ -> false

(* A bare polymorphic [compare] (or [Stdlib.compare]) passed as a
   comparator — directly, or eta-expanded as [(fun a b -> compare a b)]
   (either argument order; a flipped comparator is still keyed on the
   polymorphic order). Structural compare is not a total order on floats
   (nan compares inconsistently with itself), so a sort keyed on it can
   return different permutations for equal multisets. *)
let is_poly_compare_ident (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident
      {
        txt =
          ( Longident.Lident "compare"
          | Longident.Ldot (Longident.Lident "Stdlib", "compare") );
        _;
      } ->
      true
  | _ -> false

let is_poly_compare (e : Parsetree.expression) =
  let pat_var (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | _ -> None
  in
  let arg_var (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident v; _ } -> Some v
    | _ -> None
  in
  if is_poly_compare_ident e then true
  else
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun
        ( Asttypes.Nolabel,
          None,
          pa,
          {
            Parsetree.pexp_desc =
              Parsetree.Pexp_fun (Asttypes.Nolabel, None, pb, body);
            _;
          } ) -> (
        match (pat_var pa, pat_var pb, body.Parsetree.pexp_desc) with
        | ( Some a,
            Some b,
            Parsetree.Pexp_apply
              (f, [ (Asttypes.Nolabel, x); (Asttypes.Nolabel, y) ]) )
          when is_poly_compare_ident f -> (
            match (arg_var x, arg_var y) with
            | Some xa, Some yb -> (xa = a && yb = b) || (xa = b && yb = a)
            | _ -> false)
        | _ -> false)
    | _ -> false

let collect_ast_findings ~file ast =
  let acc = ref [] in
  let report rule loc detail =
    let pos = loc.Location.loc_start in
    acc :=
      {
        rule;
        file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        message = detail;
      }
      :: !acc
  in
  let check_ident lid loc =
    match rule_of_ident lid with
    | Some (rule, why) ->
        report rule loc (Printf.sprintf "`%s` %s" (ident_string lid) why)
    | None -> ()
  in
  let catchall loc =
    "catch-all handler silently swallows Out_of_memory / Stack_overflow / \
     Assert_failure; match the exceptions the body can actually raise"
  |> report "no-silent-catchall" loc
  in
  let expr (sub : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_ident txt loc
    | Parsetree.Pexp_apply
        ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
      when is_sort_fn txt ->
        List.iter
          (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
            if is_poly_compare arg then
              report "no-poly-compare-sort" arg.Parsetree.pexp_loc
                (Printf.sprintf
                   "`%s` called with the polymorphic `compare`: not a total \
                    order on floats (nan), raises on functional values, and \
                    hides type changes; pass an explicit comparator \
                    (Float.compare, Int.compare, String.compare, ...)"
                   (ident_string txt)))
          args
    | Parsetree.Pexp_try (_, cases) ->
        List.iter
          (fun (c : Parsetree.case) ->
            if pattern_is_catchall c.Parsetree.pc_lhs then
              catchall c.Parsetree.pc_lhs.Parsetree.ppat_loc)
          cases
    | Parsetree.Pexp_match (_, cases) ->
        List.iter
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_exception p when pattern_is_catchall p ->
                catchall p.Parsetree.ppat_loc
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  (* [open Random] / [module R = Random] would otherwise hide every use
     from the ident check. *)
  let module_expr (sub : Ast_iterator.iterator) (m : Parsetree.module_expr) =
    (match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { txt; loc } -> (
        match root_module txt with
        | "Random" | "Marshal" -> check_ident txt loc
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.module_expr sub m
  in
  let open_description (sub : Ast_iterator.iterator)
      (o : Parsetree.open_description) =
    (match o.Parsetree.popen_expr.Location.txt with
    | lid -> (
        match root_module lid with
        | "Random" | "Marshal" -> check_ident lid o.Parsetree.popen_loc
        | _ -> ()));
    Ast_iterator.default_iterator.open_description sub o
  in
  let it =
    { Ast_iterator.default_iterator with expr; module_expr; open_description }
  in
  it.Ast_iterator.structure it ast;
  !acc

(* ---- entry points -------------------------------------------------------- *)

let compare_findings a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let pragmas_of_source src =
  List.concat_map parse_pragma (scan_comments src)

let bad_pragma_findings ~file pragmas =
  List.filter_map
    (fun p ->
      if p.p_known && p.p_justified then None
      else
        Some
          {
            rule = "bad-pragma";
            file;
            line = p.p_sline;
            col = 0;
            message =
              (if not p.p_known then
                 match p.p_kind with
                 | Taint when p.p_rule <> "" ->
                     Printf.sprintf
                       "rule %S is not a propagatable nondeterminism source; \
                        `lint: taint` accepts: %s"
                       p.p_rule
                       (String.concat ", " taintable_rule_ids)
                 | _ ->
                     Printf.sprintf "unknown lint rule %S; expected one of: %s"
                       p.p_rule
                       (String.concat ", " (rule_ids @ typed_rule_ids))
               else
                 "pragma has no justification; write `(* lint: allow <rule> \
                  — <reason> *)`");
          })
    pragmas

(* [allow] and [taint] both suppress the finding at the site; [taint]
   additionally marks the enclosing function as nondeterministic for the
   typed tier's propagation pass. Marks matching pragmas used (the input
   to stale-pragma detection). *)
let suppress ~pragmas findings =
  List.filter
    (fun (f : finding) ->
      let matching =
        List.filter
          (fun p ->
            p.p_known && p.p_justified && p.p_rule = f.rule
            && f.line >= p.p_sline
            && f.line <= p.p_eline + 1)
          pragmas
      in
      List.iter (fun p -> p.p_used <- true) matching;
      matching = [])
    findings

(* A justified pragma for one of [rules] that suppressed nothing is dead
   weight: either the violation it excused was fixed (delete the pragma)
   or the pragma drifted away from its site (move it back). Each tier
   stale-checks only the rules it actually ran, so a typed-tier pragma is
   never misreported stale by the parse tier. *)
let stale_pragma_findings ~file ~rules pragmas =
  List.filter_map
    (fun p ->
      if
        p.p_known && p.p_justified && (not p.p_used) && List.mem p.p_rule rules
        (* A taint pragma is a standing declaration about the function, not
           a per-finding waiver: it stays meaningful (the typed tier reads
           it) even on a line the parse tier finds nothing on. *)
        && p.p_kind = Allow
      then
        Some
          {
            rule = "stale-pragma";
            file;
            line = p.p_sline;
            col = 0;
            message =
              Printf.sprintf
                "allow-pragma for %S no longer suppresses anything; delete \
                 it (or move it back to the violating line)"
                p.p_rule;
          }
      else None)
    pragmas

let lint_source ~file src =
  let pragmas = pragmas_of_source src in
  let bad_pragmas = bad_pragma_findings ~file pragmas in
  let ast_findings =
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf file;
    match Parse.implementation lexbuf with
    | ast ->
        (* Stale detection is only meaningful when the rules actually ran
           over a parsed AST. Bind the suppressed findings first: [suppress]
           marks pragmas used, and [@]'s operand order is unspecified. *)
        let kept = suppress ~pragmas (collect_ast_findings ~file ast) in
        kept @ stale_pragma_findings ~file ~rules:rule_ids pragmas
    | exception exn ->
        let line =
          match exn with
          | Syntaxerr.Error err ->
              (Syntaxerr.location_of_error err).Location.loc_start
                .Lexing.pos_lnum
          | _ -> 1
        in
        [
          {
            rule = "parse-error";
            file;
            line;
            col = 0;
            message = Printexc.to_string exn;
          };
        ]
  in
  List.sort compare_findings (bad_pragmas @ ast_findings)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~file:path (read_file path)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (name <> "" && name.[0] = '.') then acc
           else collect_ml acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  List.fold_left collect_ml [] paths
  |> List.sort_uniq String.compare
  |> List.concat_map lint_file

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json ~tier f =
  Printf.sprintf
    "{\"tier\":\"%s\",\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (json_escape tier) (json_escape f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message)
