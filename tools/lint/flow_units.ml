(* Units-of-measure analysis (rule [unit-mismatch]).

   The simulator passes seconds, bytes, bits/sec, and dimensionless
   ratios around as bare [float]s; the type checker is blind to a
   [deadline_s +. rate_bps]. This pass assigns each float expression a
   dimension seeded from the naming conventions used across [lib/sim]
   and [lib/transport]:

   - [Time_s]:     suffix [_s] / [_time] / [_at], names [now] / [time] /
                   [fct] / [deadline] / [rtt] / [srtt]
   - [Bytes]:      suffix [_bytes], name [bytes]
   - [Bits_per_s]: suffix [_bps]
   - [Ratio]:      suffix [_ratio] / [_frac], names [utilization] / [alpha]

   and flags [+.], [-.], comparisons ([<], [<=], [>], [>=], [=], [<>]),
   [min]/[max]/[compare] (bare or [Float.]-qualified) whose two operands
   have *known, different* dimensions. Multiplication, division, and
   [**] legitimately change dimension, so their results are unknown;
   unknown never flags. The inference is purely name-driven and
   intraprocedural — a mismatch laundered through an unsuffixed
   intermediate is missed (soundness limits in DESIGN.md §13). Suppress
   a deliberate mix with [(* lint: allow unit-mismatch — <reason> *)]. *)

open Typedtree

let rule = "unit-mismatch"

type dim = Time_s | Bytes | Bits_per_s | Ratio

let dim_name = function
  | Time_s -> "time_s"
  | Bytes -> "bytes"
  | Bits_per_s -> "bits_per_s"
  | Ratio -> "ratio"

let ends_with s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let dim_of_name name =
  let n = String.lowercase_ascii name in
  if
    ends_with n "_s" || ends_with n "_time" || ends_with n "_at"
    || List.mem n [ "now"; "time"; "fct"; "deadline"; "rtt"; "srtt" ]
  then Some Time_s
  else if ends_with n "_bytes" || n = "bytes" then Some Bytes
  else if ends_with n "_bps" then Some Bits_per_s
  else if
    ends_with n "_ratio" || ends_with n "_frac"
    || List.mem n [ "utilization"; "alpha" ]
  then Some Ratio
  else None

let first_known dims = List.find_opt (fun _ -> true) (List.filter_map Fun.id dims)

(* Operators/functions where mixing dimensions across the two arguments
   is meaningless. *)
let additive = [ "+."; "-." ]
let comparisons = [ "<"; "<="; ">"; ">="; "="; "<>" ]
let dim_preserving_pair = [ "min"; "max"; "compare" ]
let dim_preserving_one = [ "abs_float"; "abs"; "~-."; "neg" ]

(* [env] carries dimensions inferred for let-bound identifiers whose
   names don't follow the suffix conventions ([let left = deadline_s -.
   now in ...]), so one unsuffixed intermediate doesn't launder a
   dimension. Idents are globally unique in a typedtree, so a flat table
   needs no scoping. *)
let rec dim_of env (e : expression) : dim option =
  if not (Flow_common.type_is_float e.exp_type) then None
  else
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match dim_of_name (Ident.name id) with
        | Some d -> Some d
        | None -> Hashtbl.find_opt env id)
    | Texp_ident (p, _, _) -> dim_of_name (Flow_common.path_last p)
    | Texp_field (_, _, ld) -> dim_of_name ld.Types.lbl_name
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let name = Flow_common.path_last p in
        let arg_dims =
          List.filter_map (fun (_, a) -> Option.map (dim_of env) a) args
        in
        if List.mem name additive || List.mem name dim_preserving_pair then
          first_known arg_dims
        else if List.mem name dim_preserving_one then first_known arg_dims
        else if List.mem name [ "*."; "/."; "**" ] then None
        else
          (* a full application returning float: trust the callee's
             name, e.g. [Engine.now eng] is a time. *)
          dim_of_name name)
    | Texp_ifthenelse (_, t, Some e2) ->
        first_known [ dim_of env t; dim_of env e2 ]
    | Texp_let (_, _, b) | Texp_sequence (_, b) -> dim_of env b
    | Texp_match (_, cases, _) ->
        first_known (List.map (fun c -> dim_of env c.c_rhs) cases)
    | Texp_open (_, b) -> dim_of env b
    | _ -> None

let analyze_input (input : Flow_common.input) =
  let file = input.Flow_common.src_file in
  let findings = ref [] in
  let env : (Ident.t, dim) Hashtbl.t = Hashtbl.create 64 in
  let check loc what a b =
    match (dim_of env a, dim_of env b) with
    | Some d1, Some d2 when d1 <> d2 ->
        findings :=
          Flow_common.finding ~rule ~file loc
            (Printf.sprintf
               "%s mixes dimensions: left operand is %s, right is %s" what
               (dim_name d1) (dim_name d2))
          :: !findings
    | _ -> ()
  in
  (* Labeled arguments carry the callee's naming convention: passing a
     known dimension into [~delay_s:]/[~rate_bps:]/[~data_bytes:] etc.
     with a *different* known dimension is a cross-dimension hand-off. *)
  let check_labeled_args args =
    List.iter
      (fun (lbl, arg) ->
        match (lbl, arg) with
        | (Asttypes.Labelled l | Asttypes.Optional l), Some (a : expression)
          when Flow_common.type_is_float a.exp_type -> (
            match (dim_of_name l, dim_of env a) with
            | Some want, Some got when want <> got ->
                findings :=
                  Flow_common.finding ~rule ~file a.exp_loc
                    (Printf.sprintf
                       "argument ~%s expects %s but the value passed is %s" l
                       (dim_name want) (dim_name got))
                  :: !findings
            | _ -> ())
        | _ -> ())
      args
  in
  let expr (sub : Tast_iterator.iterator) (e : expression) =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
        (* Record dims for plain-variable bindings before the default
           iteration reaches the body. *)
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) when dim_of_name (Ident.name id) = None -> (
                match dim_of env vb.vb_expr with
                | Some d -> Hashtbl.replace env id d
                | None -> ())
            | _ -> ())
          vbs
    | Texp_apply
        ( { exp_desc = Texp_ident (p, _, _); _ },
          ([ (_, Some a); (_, Some b) ] as args) ) ->
        let name = Flow_common.path_last p in
        if List.mem name additive && Flow_common.type_is_float a.exp_type then
          check e.exp_loc (Printf.sprintf "`%s`" name) a b
        else if
          (List.mem name comparisons || List.mem name dim_preserving_pair)
          && Flow_common.type_is_float a.exp_type
          && Flow_common.type_is_float b.exp_type
        then check e.exp_loc (Printf.sprintf "`%s`" name) a b
        else check_labeled_args args
    | Texp_apply (_, args) -> check_labeled_args args
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it input.Flow_common.str;
  List.rev !findings

let analyze (inputs : Flow_common.input list) =
  List.concat_map analyze_input inputs
