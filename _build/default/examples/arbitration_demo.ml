(* Control-plane demo: watch PASE's arbitration decisions evolve as flows
   arrive and finish on one bottleneck link. Prints, at each arbitration
   event, the (queue, reference-rate) each flow holds — the mechanics of
   section 3.1 made visible.

   Run with: dune exec examples/arbitration_demo.exe *)

let () =
  let engine = Engine.create () in
  let counters = Counters.create () in
  let cfg = Config.default in
  let qdisc ~rate_bps:_ =
    Prio_queue.create counters ~bands:cfg.Config.num_queues ~limit_pkts:500
      ~mark_threshold:20
  in
  let topo =
    Topology.single_rack engine counters ~hosts:5 ~rate_bps:1e9
      ~link_delay_s:25e-6 ~qdisc
  in
  let h = topo.Topology.hosts in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(4) ~data_bytes:1500 in
  let hier =
    Hierarchy.create engine counters cfg topo ~base_rate_bps:(8. *. 1500. /. rtt)
  in
  Hierarchy.start hier;
  let state = Hashtbl.create 8 in
  let show () =
    let now_ms = Engine.now engine *. 1e3 in
    let entries =
      Hashtbl.fold (fun id (q, r) acc -> (id, q, r) :: acc) state []
      |> List.sort compare
    in
    Printf.printf "t=%6.2f ms |" now_ms;
    List.iter
      (fun (id, q, r) ->
        Printf.printf " flow%d: queue %d, Rref %4.0f Mbps |" id q (r /. 1e6))
      entries;
    print_newline ()
  in
  (* Flows of decreasing size arriving 2 ms apart, all to host 4: each new,
     shorter flow takes over the top queue and demotes the others. *)
  let sizes = [ (1, 1500); (2, 700); (3, 250) ] in
  List.iteri
    (fun i (id, size_pkts) ->
      let start = float_of_int i *. 0.002 in
      Engine.schedule_at engine ~time:start (fun () ->
          Printf.printf "t=%6.2f ms >> flow%d arrives (%d pkts)\n"
            (Engine.now engine *. 1e3) id size_pkts;
          let flow =
            Flow.make ~id ~src:h.(i) ~dst:h.(4) ~size_pkts ~start_time:start ()
          in
          let recv = Receiver.create topo.Topology.net ~flow () in
          let on_complete _ ~fct =
            Receiver.stop recv;
            Hashtbl.remove state id;
            Printf.printf "t=%6.2f ms << flow%d done (fct %.2f ms)\n"
              (Engine.now engine *. 1e3) id (fct *. 1e3);
            show ()
          in
          let host =
            Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
              ~on_complete ()
          in
          Pase_host.start host;
          (* Sample this flow's assignment every arbitration period. *)
          let rec sample () =
            if not (Sender_base.completed (Pase_host.sender host)) then begin
              let q = Pase_host.queue host and r = Pase_host.rref_bps host in
              let changed =
                match Hashtbl.find_opt state id with
                | Some (q', r') -> q' <> q || r' <> r
                | None -> true
              in
              Hashtbl.replace state id (q, r);
              if changed then show ();
              Engine.schedule engine ~delay:cfg.Config.arb_period sample
            end
          in
          sample ()))
    sizes;
  Engine.run ~until:0.1 engine;
  Printf.printf "\n%d arbitration rounds, %d control messages (intra-rack: 0)\n"
    (Hierarchy.rounds hier) counters.Counters.ctrl_msgs
