(* Web-search rack: the query/response (worker -> aggregator) pattern the
   paper's introduction motivates. Compares PASE against pFabric and DCTCP
   at one load and prints the per-protocol AFCT, tail, and loss rate.

   Run with: dune exec examples/websearch.exe [load] *)

let () =
  let load =
    if Array.length Sys.argv > 1 then
      match float_of_string_opt Sys.argv.(1) with Some l -> l | None -> 0.8
    else 0.8
  in
  Printf.printf
    "Web-search rack (40 hosts, query fan-out, U[2,198] KB responses) at \
     %.0f%% load\n"
    (load *. 100.);
  let protocols = [ Runner.pase; Runner.Pfabric; Runner.Dctcp ] in
  let results =
    List.map
      (fun p ->
        Runner.run p (Scenario.worker_aggregator ~num_flows:600 ~seed:7 ~load ()))
      protocols
  in
  Series.print_table ~title:"query response completion times"
    ~header:[ "protocol"; "AFCT (ms)"; "p99 FCT (ms)"; "loss (%)"; "censored" ]
    (List.map
       (fun r ->
         [
           r.Runner.protocol;
           Printf.sprintf "%.3f" (r.Runner.afct *. 1e3);
           Printf.sprintf "%.3f" (r.Runner.p99 *. 1e3);
           Printf.sprintf "%.2f" (r.Runner.loss_rate *. 100.);
           string_of_int r.Runner.censored;
         ])
       results);
  let pase = List.nth results 0 and pfabric = List.nth results 1 in
  Printf.printf "PASE improves AFCT over pFabric by %.1f%%\n"
    ((pfabric.Runner.afct -. pase.Runner.afct) /. pfabric.Runner.afct *. 100.)
