(* Incast under the microscope: 19 workers answer one aggregator at the
   same instant. Telemetry on the aggregator's downlink shows how PASE
   serializes the fan-in (full utilization, bounded queue) while pFabric's
   line-rate start floods the port and sheds packets.

   Run with: dune exec examples/incast_telemetry.exe *)

let run_incast name ~make_qdisc ~make_host =
  Packet.reset_ids ();
  let engine = Engine.create () in
  let counters = Counters.create () in
  let topo =
    Topology.single_rack engine counters ~hosts:20 ~rate_bps:1e9
      ~link_delay_s:25e-6 ~qdisc:(make_qdisc counters)
  in
  let h = topo.Topology.hosts in
  let agg = h.(0) in
  let net = topo.Topology.net in
  let tor = Topology.tor_of topo agg in
  let downlink = Option.get (Net.link_from net tor agg) in
  let telemetry =
    Telemetry.create engine ~period:0.5e-3 [ ("ToR->aggregator", downlink) ]
  in
  let fcts = ref [] in
  let setup = make_host engine counters topo in
  for i = 1 to 19 do
    let flow =
      (* ~100 KB response per worker *)
      Flow.make ~id:i ~src:h.(i) ~dst:agg ~size_pkts:68 ~start_time:0. ()
    in
    let recv = Receiver.create net ~flow () in
    setup ~flow ~on_complete:(fun _ ~fct ->
        Receiver.stop recv;
        fcts := fct :: !fcts;
        (* Freeze the measurement window when the fan-in drains. *)
        if List.length !fcts = 19 then begin
          Telemetry.stop telemetry;
          Engine.stop engine
        end)
  done;
  Engine.run ~until:0.2 engine;
  Printf.printf
    "%-8s AFCT %6.2f ms | last %6.2f ms | downlink util %3.0f%% | peak queue \
     %3d pkts | drops %d\n"
    name
    (Summary.mean !fcts *. 1e3)
    (Summary.max !fcts *. 1e3)
    (Telemetry.mean_utilization telemetry "ToR->aggregator" *. 100.)
    (Telemetry.peak_queue telemetry "ToR->aggregator")
    counters.Counters.dropped_pkts

let () =
  print_endline "19-worker incast onto one aggregator (68-segment responses)\n";
  (* PASE: arbitration serializes the workers through the priority bands. *)
  run_incast "PASE"
    ~make_qdisc:(fun counters ~rate_bps:_ ->
      Prio_queue.create counters ~bands:8 ~limit_pkts:500 ~mark_threshold:20)
    ~make_host:(fun engine counters topo ->
      let cfg = Config.default in
      let rtt =
        Topology.base_rtt topo ~src:topo.Topology.hosts.(1)
          ~dst:topo.Topology.hosts.(0) ~data_bytes:1500
      in
      let hier =
        Hierarchy.create engine counters cfg topo
          ~base_rate_bps:(8. *. 1500. /. rtt)
      in
      Hierarchy.start hier;
      fun ~flow ~on_complete ->
        Pase_host.start
          (Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
             ~on_complete ()));
  (* pFabric: everyone blasts a 38-segment window into a 76-packet port. *)
  run_incast "pFabric"
    ~make_qdisc:(fun counters ~rate_bps:_ ->
      Pfabric_queue.create counters ~limit_pkts:76)
    ~make_host:(fun _engine _counters topo ->
      fun ~flow ~on_complete ->
        let rtt =
          Topology.base_rtt topo ~src:flow.Flow.src ~dst:flow.Flow.dst
            ~data_bytes:1500
        in
        Sender_base.start
          (Pfabric_host.create topo.Topology.net ~flow
             ~conf:(Pfabric_host.conf ~init_rtt:rtt ())
             ~on_complete ()))
