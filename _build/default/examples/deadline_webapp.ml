(* Deadline-bound web application (partition-aggregate with SLAs): the
   D2TCP evaluation scenario. Shows how many responses make their deadline
   under PASE (EDF arbitration), D2TCP, and DCTCP as load grows.

   Run with: dune exec examples/deadline_webapp.exe *)

let () =
  print_endline
    "Deadline-bound app: 20-host rack, U[100,500] KB responses, deadlines \
     U[5,25] ms";
  let pase_edf =
    Runner.Pase { Config.default with Config.scheduling = Config.Edf }
  in
  let rows =
    List.map
      (fun load ->
        let tput proto =
          (Runner.run proto
             (Scenario.deadline_intra_rack ~num_flows:400 ~seed:3 ~load ()))
            .Runner.app_throughput
        in
        (load *. 100., [ tput pase_edf; tput Runner.D2tcp; tput Runner.Dctcp ]))
      [ 0.2; 0.4; 0.6; 0.8; 0.9 ]
  in
  Series.print
    ~fmt_y:(Printf.sprintf "%.3f")
    (Series.make ~title:"fraction of deadlines met" ~x_label:"load(%)"
       ~columns:[ "PASE (EDF)"; "D2TCP"; "DCTCP" ]
       ~rows)
