(* Quickstart: five PASE flows of different sizes share one rack. The
   arbitration control plane maps shorter flows to higher-priority queues,
   so they finish in (roughly) size order even though all start together. *)

let () =
  let engine = Engine.create () in
  let counters = Counters.create () in
  let cfg = Config.default in
  let qdisc ~rate_bps =
    Prio_queue.create counters ~bands:cfg.Config.num_queues
      ~limit_pkts:cfg.Config.queue_limit_pkts
      ~mark_threshold:(if rate_bps >= 5e9 then 65 else 20)
  in
  let topo =
    Topology.single_rack engine counters ~hosts:6 ~rate_bps:1e9
      ~link_delay_s:25e-6 ~qdisc
  in
  let net = topo.Topology.net in
  let rtt =
    Topology.base_rtt topo ~src:topo.Topology.hosts.(0)
      ~dst:topo.Topology.hosts.(5) ~data_bytes:1500
  in
  let hierarchy =
    Hierarchy.create engine counters cfg topo ~base_rate_bps:(8. *. 1500. /. rtt)
  in
  Hierarchy.start hierarchy;
  (* Five flows, 30..510 segments, all toward host 5 (a shared bottleneck). *)
  let sizes = [ 30; 150; 270; 390; 510 ] in
  List.iteri
    (fun i size_pkts ->
      let flow =
        Flow.make ~id:i ~src:topo.Topology.hosts.(i)
          ~dst:topo.Topology.hosts.(5) ~size_pkts ~start_time:0. ()
      in
      let recv = Receiver.create net ~flow () in
      let on_complete _sender ~fct =
        Receiver.stop recv;
        Printf.printf "flow %d (%3d pkts, %4d KB) finished at %6.2f ms\n" i
          size_pkts (size_pkts * 1460 / 1000) (fct *. 1e3)
      in
      let host =
        Pase_host.create net hierarchy ~flow ~cfg ~rtt ~nic_bps:1e9 ~on_complete
          ()
      in
      Pase_host.start host)
    sizes;
  Engine.run ~until:0.5 engine;
  Printf.printf "events: %d, arbitration msgs: %d, drops: %d\n"
    (Engine.events_processed engine)
    counters.Counters.ctrl_msgs counters.Counters.dropped_pkts
