examples/quickstart.ml: Array Config Counters Engine Flow Hierarchy List Pase_host Printf Prio_queue Receiver Topology
