examples/deadline_webapp.mli:
