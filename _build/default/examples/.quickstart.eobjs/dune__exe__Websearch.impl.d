examples/websearch.ml: Array List Printf Runner Scenario Series Sys
