examples/websearch.mli:
