examples/incast_telemetry.ml: Array Config Counters Engine Flow Hierarchy List Net Option Packet Pase_host Pfabric_host Pfabric_queue Printf Prio_queue Receiver Sender_base Summary Telemetry Topology
