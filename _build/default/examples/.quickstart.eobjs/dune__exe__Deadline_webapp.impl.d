examples/deadline_webapp.ml: Config List Printf Runner Scenario Series
