examples/incast_telemetry.mli:
