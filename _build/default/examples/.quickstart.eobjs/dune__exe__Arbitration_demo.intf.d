examples/arbitration_demo.mli:
