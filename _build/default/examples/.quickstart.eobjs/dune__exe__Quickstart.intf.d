examples/quickstart.mli:
