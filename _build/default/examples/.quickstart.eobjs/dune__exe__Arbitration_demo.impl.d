examples/arbitration_demo.ml: Array Config Counters Engine Flow Hashtbl Hierarchy List Pase_host Printf Prio_queue Receiver Sender_base Topology
