(* Discrete-event engine: scheduling semantics, cancellation, stop/until. *)

let test_time_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:0.5 (fun () -> seen := (Engine.now e, 'b') :: !seen);
  Engine.schedule e ~delay:0.1 (fun () -> seen := (Engine.now e, 'a') :: !seen);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-12) char)))
    "events in time order" [ (0.1, 'a'); (0.5, 'b') ] (List.rev !seen)

let test_fifo_same_time () =
  let e = Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Engine.schedule e ~delay:1.0 (fun () -> seen := i :: !seen)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let trace = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      trace := "outer" :: !trace;
      Engine.schedule e ~delay:1.0 (fun () -> trace := "inner" :: !trace));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !trace);
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 (fun () -> fired := true) in
  cancel ();
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "not counted" 0 (Engine.events_processed e)

let test_cancel_idempotent () =
  let e = Engine.create () in
  let cancel = Engine.schedule_cancellable e ~delay:1.0 ignore in
  cancel ();
  cancel ();
  Engine.run e

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  (* Run can resume afterwards. *)
  Engine.run e;
  Alcotest.(check int) "resumed" 10 !count

let test_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> Engine.schedule e ~delay:t (fun () -> incr count))
    [ 0.1; 0.2; 0.9; 1.5 ];
  Engine.run ~until:1.0 e;
  Alcotest.(check int) "3 events before horizon" 3 !count;
  Alcotest.(check bool) "future event still pending" true (Engine.pending e > 0);
  Engine.run e;
  Alcotest.(check int) "rest runs later" 4 !count

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 100 do
    Engine.schedule e ~delay:1.0 (fun () -> incr count)
  done;
  Engine.run ~max_events:10 e;
  Alcotest.(check int) "budget respected" 10 !count

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.check_raises "no time travel"
        (Invalid_argument "Engine.schedule: negative delay") (fun () ->
          Engine.schedule e ~delay:(-0.5) ignore));
  Engine.run e

let test_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:0.1 ignore
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_processed e)

let suite =
  [
    Alcotest.test_case "time advances" `Quick test_time_advances;
    Alcotest.test_case "FIFO same time" `Quick test_fifo_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "stop and resume" `Quick test_stop;
    Alcotest.test_case "until horizon" `Quick test_until;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "events processed" `Quick test_events_processed;
  ]
