(* D3: router allocation (FCFS reservations + fair share) and host
   behaviour, including the FCFS priority-inversion weakness. *)

let router cap = D3.Router.create ~capacity_bps:cap
let upd r ~flow ~req = D3.Router.update r ~flow ~request_bps:req

let test_single_flow_gets_all () =
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.3e9;
  (* Reservation + the whole leftover as fair share. *)
  Alcotest.(check (float 1.)) "request plus leftover" 1e9
    (D3.Router.allocation r ~flow:1)

let test_fair_share_no_deadlines () =
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.;
  upd r ~flow:2 ~req:0.;
  Alcotest.(check (float 1.)) "half each" 0.5e9 (D3.Router.allocation r ~flow:1);
  Alcotest.(check (float 1.)) "half each" 0.5e9 (D3.Router.allocation r ~flow:2)

let test_reservations_first () =
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.6e9;
  upd r ~flow:2 ~req:0.;
  (* flow 1: 0.6 + 0.2 fair; flow 2: 0.2 fair. *)
  Alcotest.(check (float 1e6)) "reserver" 0.8e9 (D3.Router.allocation r ~flow:1);
  Alcotest.(check (float 1e6)) "best effort" 0.2e9 (D3.Router.allocation r ~flow:2)

let test_fcfs_priority_inversion () =
  (* D3's published weakness: an early far-deadline flow holds its
     reservation against a later tight-deadline flow. *)
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.9e9;
  (* arrives first, loose deadline *)
  upd r ~flow:2 ~req:0.9e9;
  (* arrives second, tight deadline *)
  Alcotest.(check (float 1e6)) "first keeps its request" 0.9e9
    (D3.Router.allocation r ~flow:1);
  Alcotest.(check bool) "second is squeezed" true
    (D3.Router.allocation r ~flow:2 < 0.2e9)

let test_update_keeps_arrival_order () =
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.9e9;
  upd r ~flow:2 ~req:0.9e9;
  (* Refreshing flow 1 must not demote it behind flow 2. *)
  upd r ~flow:1 ~req:0.8e9;
  Alcotest.(check (float 1e6)) "order stable across updates" 0.8e9
    (D3.Router.allocation r ~flow:1)

let test_remove_releases () =
  let r = router 1e9 in
  upd r ~flow:1 ~req:0.9e9;
  upd r ~flow:2 ~req:0.9e9;
  D3.Router.remove r ~flow:1;
  Alcotest.(check int) "one left" 1 (D3.Router.flows r);
  Alcotest.(check (float 1e6)) "capacity released" 1e9
    (D3.Router.allocation r ~flow:2)

let test_host_end_to_end () =
  (* A deadline flow and a best-effort flow share a server link under D3;
     both complete, and the deadline flow meets a deadline it could not
     meet under an equal split. *)
  let sc =
    Scenario.deadline_intra_rack ~num_flows:60 ~seed:4 ~load:0.4 ()
  in
  let r = Runner.run Runner.D3 sc in
  Alcotest.(check int) "all completed" 60 r.Runner.completed;
  Alcotest.(check bool) "some deadlines met" true (r.Runner.app_throughput > 0.5);
  Alcotest.(check bool) "control messages counted" true (r.Runner.ctrl_msgs > 0)

let test_d3_beats_dctcp_on_deadlines () =
  let tput proto =
    (Runner.run proto (Scenario.deadline_intra_rack ~num_flows:150 ~seed:9 ~load:0.4 ()))
      .Runner.app_throughput
  in
  Alcotest.(check bool) "explicit deadline rates help at moderate load" true
    (tput Runner.D3 >= tput Runner.Dctcp -. 0.05)

let suite =
  [
    Alcotest.test_case "single flow gets all" `Quick test_single_flow_gets_all;
    Alcotest.test_case "fair share" `Quick test_fair_share_no_deadlines;
    Alcotest.test_case "reservations first" `Quick test_reservations_first;
    Alcotest.test_case "FCFS priority inversion" `Quick test_fcfs_priority_inversion;
    Alcotest.test_case "arrival order stable" `Quick test_update_keeps_arrival_order;
    Alcotest.test_case "remove releases" `Quick test_remove_releases;
    Alcotest.test_case "host end-to-end" `Slow test_host_end_to_end;
    Alcotest.test_case "beats DCTCP on deadlines" `Slow test_d3_beats_dctcp_on_deadlines;
  ]
