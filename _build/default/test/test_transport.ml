(* Transport machinery: Seg_store, Flow, and the Sender_base/Receiver pair:
   reliable delivery, analytic FCT, loss recovery, fast retransmit,
   probing, pacing. *)

let test_seg_store () =
  let s = Seg_store.create () in
  Alcotest.(check bool) "default unsent" true (Seg_store.get s 0 = Seg_store.Unsent);
  Alcotest.(check bool) "far index unsent" true
    (Seg_store.get s 100_000 = Seg_store.Unsent);
  Seg_store.set s 5 Seg_store.Inflight;
  Seg_store.set s 1_000 Seg_store.Acked;
  Alcotest.(check bool) "set/get" true (Seg_store.get s 5 = Seg_store.Inflight);
  Alcotest.(check bool) "growth preserves" true
    (Seg_store.get s 1_000 = Seg_store.Acked);
  Alcotest.(check bool) "neighbours untouched" true
    (Seg_store.get s 999 = Seg_store.Unsent)

let test_flow_helpers () =
  let f = Flow.make ~id:1 ~src:0 ~dst:1 ~size_pkts:10 ~start_time:0.5 ~deadline:0.2 () in
  Alcotest.(check (option (float 1e-12))) "absolute deadline" (Some 0.7)
    (Flow.absolute_deadline f);
  Alcotest.(check bool) "not long lived" false (Flow.is_long_lived f);
  Alcotest.(check int) "bytes to pkts rounds up" 2
    (Flow.size_pkts_of_bytes ~mss:1460 1461);
  Alcotest.(check int) "exact" 1 (Flow.size_pkts_of_bytes ~mss:1460 1460)

(* One host pair through a ToR, droptail queues unless specified. *)
let rig ?(hosts = 2) ?(qdisc = fun c ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100) () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps -> qdisc c ~rate_bps)
  in
  (e, c, topo)

let run_flow ?conf ?hooks (e, _c, topo) ~size_pkts =
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts ~start_time:0. () in
  let conf =
    match conf with
    | Some c -> c
    | None ->
        {
          Sender_base.default_conf with
          Sender_base.init_cwnd = 10.;
          init_rtt =
            Topology.base_rtt topo ~src:h.(0) ~dst:h.(1) ~data_bytes:1500;
        }
  in
  let recv = Receiver.create net ~flow () in
  let result = ref None in
  let sender =
    Sender_base.create net ~flow ~conf ?hooks
      ~on_complete:(fun _ ~fct ->
        Receiver.stop recv;
        result := Some fct)
      ()
  in
  Sender_base.start sender;
  Engine.run ~until:5.0 e;
  (sender, !result)

let test_single_flow_completes () =
  let rig = rig () in
  let sender, fct = run_flow rig ~size_pkts:50 in
  (match fct with
  | None -> Alcotest.fail "flow did not complete"
  | Some fct ->
      (* 50 pkts x 12us serialization ~ 0.6 ms; allow window ramp slack. *)
      Alcotest.(check bool) "fct sane" true (fct > 0.6e-3 && fct < 2e-3));
  Alcotest.(check bool) "sender completed" true (Sender_base.completed sender);
  Alcotest.(check int) "all acked" 50 (Sender_base.acked_pkts sender)

let test_single_flow_analytic_fct () =
  (* With cwnd larger than the flow, FCT ~ first-packet RTT + remaining
     serialization: 10us*2 +12us + ~12us + 49 x 12us + ack ~ 0.64ms. *)
  let rigv = rig () in
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 100.;
      init_rtt = 100e-6;
    }
  in
  let _, fct = run_flow rigv ~conf ~size_pkts:50 in
  match fct with
  | None -> Alcotest.fail "no completion"
  | Some fct ->
      Alcotest.(check bool)
        (Printf.sprintf "near serialization bound (got %.3f ms)" (fct *. 1e3))
        true
        (fct > 0.60e-3 && fct < 0.75e-3)

let test_delivery_under_loss () =
  (* Tiny queue forces drops; reliability must still deliver everything. *)
  let rigv =
    rig ~qdisc:(fun c ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:5) ()
  in
  let e, c, _ = rigv in
  ignore e;
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 50.;
      (* bigger than queue: guarantees drops *)
      min_rto = 0.002;
      init_rtt = 100e-6;
    }
  in
  let sender, fct = run_flow rigv ~conf ~size_pkts:100 in
  Alcotest.(check bool) "some drops happened" true (c.Counters.dropped_pkts > 0);
  Alcotest.(check bool) "completed anyway" true (fct <> None);
  Alcotest.(check int) "every segment acked" 100 (Sender_base.acked_pkts sender)

let test_fast_retransmit_triggers () =
  let fired = ref 0 in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.on_fast_retransmit = (fun _ -> incr fired);
    }
  in
  let rigv =
    rig ~qdisc:(fun c ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:8) ()
  in
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 40.;
      min_rto = 0.050;
      (* long RTO: recovery must come from dupacks *)
      init_rtt = 100e-6;
    }
  in
  let _, fct = run_flow rigv ~hooks ~conf ~size_pkts:60 in
  Alcotest.(check bool) "completed" true (fct <> None);
  Alcotest.(check bool) "fast retransmit fired" true (!fired > 0);
  (match fct with
  | Some fct ->
      Alcotest.(check bool) "recovered without RTO stall" true (fct < 0.050)
  | None -> ())

let test_rto_recovers_total_loss () =
  (* Queue of 1 packet and a huge initial burst: nearly everything drops;
     timeouts must recover. *)
  let rigv =
    rig ~qdisc:(fun c ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:2) ()
  in
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 30.;
      min_rto = 0.001;
      init_rtt = 100e-6;
    }
  in
  let sender, fct = run_flow rigv ~conf ~size_pkts:40 in
  Alcotest.(check bool) "completed" true (fct <> None);
  Alcotest.(check int) "all acked" 40 (Sender_base.acked_pkts sender)

let test_probe_distinguishes_loss () =
  (* Receiver answers probes: a probed, received segment yields sack >= 0;
     a missing one yields sack = -1 (checked via sender state transition). *)
  let rigv = rig () in
  let e, _, topo = rigv in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let flow = Flow.make ~id:9 ~src:h.(0) ~dst:h.(1) ~size_pkts:5 ~start_time:0. () in
  let recv = Receiver.create net ~flow () in
  let replies = ref [] in
  Net.register_flow net ~host:h.(0) ~flow:9 (fun p ->
      replies := (p.Packet.kind, p.Packet.seq, p.Packet.sack) :: !replies);
  (* Deliver segment 2 only, then probe 2 and 0. *)
  Net.send net
    (Packet.make ~flow:9 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Data ~size:1500
       ~seq:2 ~sent_at:0. ());
  Net.send net
    (Packet.make ~flow:9 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Probe
       ~size:Packet.probe_bytes ~seq:2 ~sent_at:0. ());
  Net.send net
    (Packet.make ~flow:9 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Probe
       ~size:Packet.probe_bytes ~seq:0 ~sent_at:0. ());
  Engine.run e;
  Receiver.stop recv;
  let probe_acks =
    List.filter (fun (k, _, _) -> k = Packet.Probe_ack) (List.rev !replies)
  in
  match probe_acks with
  | [ (_, 2, sack2); (_, 0, sack0) ] ->
      Alcotest.(check int) "received segment acked by probe" 2 sack2;
      Alcotest.(check int) "missing segment reported" (-1) sack0
  | _ -> Alcotest.fail "expected two probe-acks"

let test_receiver_cumulative_ack () =
  let rigv = rig () in
  let e, _, topo = rigv in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let flow = Flow.make ~id:3 ~src:h.(0) ~dst:h.(1) ~size_pkts:10 ~start_time:0. () in
  let recv = Receiver.create net ~flow () in
  let acks = ref [] in
  Net.register_flow net ~host:h.(0) ~flow:3 (fun p ->
      acks := (p.Packet.ack, p.Packet.sack) :: !acks);
  let send seq =
    Net.send net
      (Packet.make ~flow:3 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Data ~size:1500
         ~seq ~sent_at:0. ())
  in
  send 0;
  send 2;
  (* gap at 1 *)
  send 1;
  Engine.run e;
  Receiver.stop recv;
  Alcotest.(check (list (pair int int)))
    "cum ack advances through gap"
    [ (1, 0); (1, 2); (3, 1) ]
    (List.rev !acks);
  Alcotest.(check int) "receiver cum" 3 (Receiver.cum_ack recv)

let test_pacing_rate_limits () =
  (* Paced sender at 100 Mbps: 50 x 1500 B takes >= 6 ms. *)
  let rigv = rig () in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.pacing_rate = (fun _ -> Some 100e6);
    }
  in
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 1000.;
      init_rtt = 100e-6;
    }
  in
  let _, fct = run_flow rigv ~hooks ~conf ~size_pkts:50 in
  match fct with
  | None -> Alcotest.fail "no completion"
  | Some fct ->
      Alcotest.(check bool)
        (Printf.sprintf "paced (got %.2f ms)" (fct *. 1e3))
        true
        (fct >= 5.9e-3 && fct < 8e-3)

let test_allow_send_gate () =
  let gate = ref false in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.allow_send = (fun _ -> !gate);
    }
  in
  let rigv = rig () in
  let e, _, _ = rigv in
  ignore e;
  let _, fct = run_flow rigv ~hooks ~size_pkts:10 in
  Alcotest.(check bool) "gated flow cannot finish" true (fct = None)

let test_deterministic_fct () =
  let run () =
    let rigv = rig () in
    let _, fct = run_flow rigv ~size_pkts:80 in
    Option.get fct
  in
  Alcotest.(check (float 0.)) "identical runs" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "seg store" `Quick test_seg_store;
    Alcotest.test_case "flow helpers" `Quick test_flow_helpers;
    Alcotest.test_case "single flow completes" `Quick test_single_flow_completes;
    Alcotest.test_case "analytic FCT" `Quick test_single_flow_analytic_fct;
    Alcotest.test_case "delivery under loss" `Quick test_delivery_under_loss;
    Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_triggers;
    Alcotest.test_case "RTO recovers total loss" `Quick test_rto_recovers_total_loss;
    Alcotest.test_case "probe distinguishes loss" `Quick test_probe_distinguishes_loss;
    Alcotest.test_case "receiver cumulative ack" `Quick test_receiver_cumulative_ack;
    Alcotest.test_case "pacing rate limits" `Quick test_pacing_rate_limits;
    Alcotest.test_case "allow_send gate" `Quick test_allow_send_gate;
    Alcotest.test_case "deterministic fct" `Quick test_deterministic_fct;
  ]
