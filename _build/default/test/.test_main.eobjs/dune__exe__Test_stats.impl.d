test/test_stats.ml: Alcotest Counters Dist Engine Fct Float List Printf Queue_disc Rng Scenario Series Summary
