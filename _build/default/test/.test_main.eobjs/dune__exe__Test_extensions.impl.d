test/test_extensions.ml: Alcotest Arbitrator Array Config Counters Engine Fct Float Flow Hierarchy List Printf Prio_queue Queue_disc Runner Scenario Summary Topology
