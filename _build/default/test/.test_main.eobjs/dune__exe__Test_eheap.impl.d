test/test_eheap.ml: Alcotest Eheap Fun List Option QCheck QCheck_alcotest
