test/test_queues.ml: Alcotest Counters List Option Packet Pfabric_queue Prio_queue QCheck QCheck_alcotest Queue_disc
