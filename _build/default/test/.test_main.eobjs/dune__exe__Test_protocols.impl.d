test/test_protocols.ml: Alcotest Array Counters D2tcp Dctcp Ecn_cc Engine Float Flow L2dct List Net Option Packet Pfabric_host Pfabric_queue Printf Queue_disc Receiver Sender_base Topology
