test/test_rng.ml: Alcotest Float QCheck QCheck_alcotest Rng
