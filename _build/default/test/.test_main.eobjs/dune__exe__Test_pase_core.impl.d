test/test_pase_core.ml: Alcotest Arbitrator Array Config Counters Engine Flow Hierarchy List Option Packet Pase_host Printf Prio_queue Receiver Topology
