test/test_behaviours.ml: Alcotest Array Config Counters Ecn_cc Engine Float Flow Hashtbl Hierarchy List Net Packet Pase_host Pdq Printf Prio_queue Queue_disc Receiver Sender_base Topology
