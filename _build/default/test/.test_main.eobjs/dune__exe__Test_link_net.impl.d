test/test_link_net.ml: Alcotest Array Counters Engine Link List Net Packet Prio_queue Queue_disc Topology
