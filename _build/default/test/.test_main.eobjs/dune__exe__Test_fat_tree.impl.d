test/test_fat_tree.ml: Alcotest Array Counters Engine Hashtbl List Net Packet Printf Queue_disc Runner Scenario Topology
