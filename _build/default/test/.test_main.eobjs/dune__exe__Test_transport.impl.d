test/test_transport.ml: Alcotest Array Counters Engine Flow List Net Option Packet Printf Queue_disc Receiver Seg_store Sender_base Topology
