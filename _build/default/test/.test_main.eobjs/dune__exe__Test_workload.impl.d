test/test_workload.ml: Alcotest Array Config Counters Engine Float Hashtbl List Queue_disc Runner Scenario Topology
