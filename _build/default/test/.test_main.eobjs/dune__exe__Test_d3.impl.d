test/test_d3.ml: Alcotest D3 Runner Scenario
