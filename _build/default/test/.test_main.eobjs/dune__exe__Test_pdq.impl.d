test/test_pdq.ml: Alcotest Array Counters Engine Flow Hashtbl Link List Net Option Packet Pdq Printf Queue_disc Receiver Topology
