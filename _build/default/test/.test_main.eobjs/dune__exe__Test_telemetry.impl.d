test/test_telemetry.ml: Alcotest Counters Engine Float Link List Packet Printf Queue_disc Telemetry
