test/test_laws.ml: Alcotest Array Config Counters D2tcp Ecn_cc Engine Float Flow Hierarchy List Packet Pase_host Printf Prio_queue Queue_disc Receiver Sender_base Topology
