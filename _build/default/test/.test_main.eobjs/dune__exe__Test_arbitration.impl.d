test/test_arbitration.ml: Alcotest Arbitration Hashtbl List Printf QCheck QCheck_alcotest
