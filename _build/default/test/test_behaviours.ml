(* Focused behavioural tests: the PASE reordering guard, DCTCP's alpha
   convergence, PDQ's termination-release timing, PASE probe accounting,
   and receiver ECN echo. *)

let prio_rig ?(hosts = 3) ?(limit_pkts = 500) () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:8 ~limit_pkts ~mark_threshold:20)
  in
  (e, c, topo)

(* The reordering guard's externally visible contract: promotions happen
   mid-flight (big flow drains, small flow promoted) and the system stays
   clean — every flow completes, nothing is misdelivered, and the promoted
   flow's completion is not delayed past the big flow's. *)
let test_reorder_guard_holds_sends () =
  let e, c, topo = prio_rig () in
  let h = topo.Topology.hosts in
  let cfg = Config.default in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(2) ~data_bytes:1500 in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. rtt) in
  Hierarchy.start hier;
  let fcts = Hashtbl.create 4 in
  let launch id src size start =
    Engine.schedule_at e ~time:start (fun () ->
        let flow = Flow.make ~id ~src ~dst:h.(2) ~size_pkts:size ~start_time:start () in
        let recv = Receiver.create topo.Topology.net ~flow () in
        Pase_host.start
          (Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
             ~on_complete:(fun _ ~fct ->
               Receiver.stop recv;
               Hashtbl.replace fcts id fct)
             ()))
  in
  (* Small flow starts demoted behind the big one, then gets promoted when
     the big one finishes: the classic guard-triggering sequence. *)
  launch 1 h.(0) 80 0.;
  launch 2 h.(1) 120 0.0005;
  Engine.run ~until:0.1 e;
  Hierarchy.stop hier;
  Alcotest.(check int) "both completed" 2 (Hashtbl.length fcts);
  Alcotest.(check int) "no stray packets" 0 c.Counters.stray_pkts

let test_dctcp_alpha_converges_to_marking_fraction () =
  (* Feed a synthetic 25% marking pattern; alpha must converge near 0.25. *)
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  let flow =
    Flow.make ~id:1 ~src:topo.Topology.hosts.(0) ~dst:topo.Topology.hosts.(1)
      ~size_pkts:1_000_000 ~start_time:0. ()
  in
  let st = Ecn_cc.create_state () in
  let sender =
    Sender_base.create topo.Topology.net ~flow ~conf:Sender_base.default_conf
      ~on_complete:(fun _ ~fct:_ -> ())
      ()
  in
  for i = 0 to 4_000 do
    Ecn_cc.observe st sender ~ecn:(i mod 4 = 0) ~weight:1
  done;
  let alpha = Ecn_cc.alpha st in
  Alcotest.(check bool)
    (Printf.sprintf "alpha ~ 0.25 (got %.3f)" alpha)
    true
    (Float.abs (alpha -. 0.25) < 0.08)

let test_pdq_release_timing () =
  (* After a flow completes, its arbiter entry must disappear only after the
     one-way termination delay. *)
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:50)
  in
  let h = topo.Topology.hosts in
  let net = topo.Topology.net in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(1) ~data_bytes:1500 in
  let arb = Pdq.Arbiter.create ~capacity_bps:1e9 in
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:20 ~start_time:0. () in
  let recv = Receiver.create net ~flow () in
  let done_at = ref nan in
  Pdq.start
    (Pdq.create net ~flow ~arbiters:[ arb ] ~rtt
       ~conf:(Pdq.conf ~init_rtt:rtt ())
       ~on_complete:(fun _ ~fct ->
         Receiver.stop recv;
         done_at := fct)
       ());
  Engine.run ~until:0.05 e;
  Alcotest.(check bool) "flow completed" true (not (Float.is_nan !done_at));
  Alcotest.(check int) "arbiter state released after termination" 0
    (Pdq.Arbiter.flows arb)

let test_pase_probe_counting () =
  (* A bottom-queue flow (window 1) behind four saturating flows in a tiny
     shared buffer keeps losing its lone packet to push-out: its timeouts
     must go through header-only probes, not data retransmissions. *)
  let e, c, topo = prio_rig ~hosts:8 ~limit_pkts:24 () in
  let h = topo.Topology.hosts in
  let cfg = { Config.default with Config.rto_low = 0.0003; num_queues = 4 } in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(7) ~data_bytes:1500 in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. rtt) in
  Hierarchy.start hier;
  let mk id src size =
    let flow = Flow.make ~id ~src ~dst:h.(7) ~size_pkts:size ~start_time:0. () in
    let recv = Receiver.create topo.Topology.net ~flow () in
    let host =
      Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
        ~on_complete:(fun _ ~fct:_ -> Receiver.stop recv)
        ()
    in
    Pase_host.start host;
    host
  in
  let _f1 = mk 1 h.(0) 1500 in
  let _f2 = mk 2 h.(1) 1600 in
  let _f3 = mk 3 h.(2) 1700 in
  let _f4 = mk 4 h.(3) 1800 in
  let target = mk 5 h.(4) 2000 in
  Engine.run ~until:0.02 e;
  Hierarchy.stop hier;
  Alcotest.(check bool) "drops happened" true (c.Counters.dropped_pkts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "probes sent (%d)" (Pase_host.probes_sent target))
    true
    (Pase_host.probes_sent target > 0)

let test_receiver_echoes_ecn () =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.red_ecn c ~limit_pkts:100 ~mark_threshold:1)
  in
  let h = topo.Topology.hosts in
  let net = topo.Topology.net in
  let flow = Flow.make ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:10 ~start_time:0. () in
  let recv = Receiver.create net ~flow () in
  let echoes = ref [] in
  Net.register_flow net ~host:h.(0) ~flow:1 (fun pkt ->
      echoes := pkt.Packet.ecn_echo :: !echoes);
  (* K = 1: packet 0 seizes the transmitter, packet 1 enqueues into an
     empty queue (unmarked), packet 2 sees occupancy 1 >= K (marked). *)
  for seq = 0 to 2 do
    Net.send net
      (Packet.make ~flow:1 ~src:h.(0) ~dst:h.(1) ~kind:Packet.Data ~size:1500
         ~seq ~ecn_capable:true ~sent_at:0. ())
  done;
  Engine.run e;
  Receiver.stop recv;
  Alcotest.(check (list bool)) "third ack echoes CE" [ false; false; true ]
    (List.rev !echoes)

let suite =
  [
    Alcotest.test_case "reorder guard" `Quick test_reorder_guard_holds_sends;
    Alcotest.test_case "dctcp alpha converges" `Quick test_dctcp_alpha_converges_to_marking_fraction;
    Alcotest.test_case "pdq release timing" `Quick test_pdq_release_timing;
    Alcotest.test_case "pase probe counting" `Quick test_pase_probe_counting;
    Alcotest.test_case "receiver echoes ECN" `Quick test_receiver_echoes_ecn;
  ]
