(* Fat-tree topology and ECMP: structure, path multiplicity, per-flow path
   stability, spreading across cores, and end-to-end runs. *)

let build k =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.fat_tree e c ~k ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  (e, c, topo)

let test_structure () =
  let _, _, topo = build 4 in
  Alcotest.(check int) "hosts" 16 (Array.length topo.Topology.hosts);
  Alcotest.(check int) "edge switches" 8 (Array.length topo.Topology.tors);
  Alcotest.(check int) "agg switches" 8 (Array.length topo.Topology.aggs);
  Alcotest.(check int) "cores" 4 (Array.length topo.Topology.cores)

let test_k6_structure () =
  let _, _, topo = build 6 in
  Alcotest.(check int) "hosts" 54 (Array.length topo.Topology.hosts);
  Alcotest.(check int) "cores" 9 (Array.length topo.Topology.cores)

let test_rejects_odd_k () =
  let e = Engine.create () in
  let c = Counters.create () in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Topology.fat_tree: k must be even and >= 2") (fun () ->
      ignore
        (Topology.fat_tree e c ~k:3 ~rate_bps:1e9 ~link_delay_s:10e-6
           ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:10)))

let test_path_lengths () =
  let _, _, topo = build 4 in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  (* Same edge: 2 hops; same pod: 4 hops; cross-pod: 6 hops. *)
  Alcotest.(check int) "same edge" 3 (List.length (Net.route net ~src:h.(0) ~dst:h.(1) ()));
  Alcotest.(check int) "same pod" 5 (List.length (Net.route net ~src:h.(0) ~dst:h.(2) ()));
  Alcotest.(check int) "cross pod" 7 (List.length (Net.route net ~src:h.(0) ~dst:h.(15) ()))

let test_path_multiplicity () =
  let _, _, topo = build 4 in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  (* k=4: 4 equal-cost paths between cross-pod hosts, 2 within a pod. *)
  Alcotest.(check int) "cross-pod paths" 4 (Net.path_count net ~src:h.(0) ~dst:h.(15));
  Alcotest.(check int) "same-pod paths" 2 (Net.path_count net ~src:h.(0) ~dst:h.(2));
  Alcotest.(check int) "same-edge path" 1 (Net.path_count net ~src:h.(0) ~dst:h.(1))

let test_flow_path_stable () =
  let _, _, topo = build 4 in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  for flow = 0 to 20 do
    let p1 = Net.route net ~flow ~src:h.(0) ~dst:h.(15) () in
    let p2 = Net.route net ~flow ~src:h.(0) ~dst:h.(15) () in
    Alcotest.(check (list int)) "same flow, same path" p1 p2
  done

let test_ecmp_spreads () =
  let _, _, topo = build 4 in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let cores = Array.to_list topo.Topology.cores in
  let used = Hashtbl.create 4 in
  for flow = 0 to 199 do
    let path = Net.route net ~flow ~src:h.(0) ~dst:h.(15) () in
    List.iter (fun n -> if List.mem n cores then Hashtbl.replace used n ()) path
  done;
  (* 200 flows must spread over several of the 4 cores. *)
  Alcotest.(check bool)
    (Printf.sprintf "cores used: %d" (Hashtbl.length used))
    true
    (Hashtbl.length used >= 3)

let test_end_to_end_delivery () =
  let e, _, topo = build 4 in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let got = ref 0 in
  for flow = 1 to 8 do
    Net.register_flow net ~host:h.(15) ~flow (fun _ -> incr got);
    Net.send net
      (Packet.make ~flow ~src:h.(0) ~dst:h.(15) ~kind:Packet.Data ~size:1500
         ~seq:0 ~sent_at:0. ())
  done;
  Engine.run e;
  Alcotest.(check int) "all flows delivered over ECMP" 8 !got

let test_runner_on_fat_tree () =
  let sc = Scenario.fat_tree_uniform ~k:4 ~num_flows:80 ~seed:3 ~load:0.5 () in
  List.iter
    (fun proto ->
      let r = Runner.run proto sc in
      Alcotest.(check int)
        (r.Runner.protocol ^ " completes")
        80 r.Runner.completed)
    [ Runner.pase; Runner.Dctcp; Runner.Pfabric ]

let suite =
  [
    Alcotest.test_case "structure k=4" `Quick test_structure;
    Alcotest.test_case "structure k=6" `Quick test_k6_structure;
    Alcotest.test_case "rejects odd k" `Quick test_rejects_odd_k;
    Alcotest.test_case "path lengths" `Quick test_path_lengths;
    Alcotest.test_case "path multiplicity" `Quick test_path_multiplicity;
    Alcotest.test_case "flow path stable" `Quick test_flow_path_stable;
    Alcotest.test_case "ECMP spreads" `Quick test_ecmp_spreads;
    Alcotest.test_case "end-to-end delivery" `Quick test_end_to_end_delivery;
    Alcotest.test_case "runner on fat-tree" `Slow test_runner_on_fat_tree;
  ]
