(* Protocol control laws: DCTCP alpha/backoff, D2TCP gamma correction,
   L2DCT weights, pFabric host behaviour, and cross-protocol dynamics on a
   shared bottleneck. *)

let rig ?(hosts = 3) ?(qdisc = `Red (225, 20)) () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let mk_q c ~rate_bps:_ =
    match qdisc with
    | `Red (limit, k) -> Queue_disc.red_ecn c ~limit_pkts:limit ~mark_threshold:k
    | `Pfabric limit -> Pfabric_queue.create c ~limit_pkts:limit
  in
  let topo =
    Topology.single_rack e c ~hosts ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps -> mk_q c ~rate_bps)
  in
  (e, c, topo)

let launch proto (e, _, topo) ~id ~src ~dst ~size_pkts ?deadline ~start () =
  let net = topo.Topology.net in
  let flow = Flow.make ~id ~src ~dst ~size_pkts ~start_time:start ?deadline () in
  let result = ref None in
  Engine.schedule_at e ~time:start (fun () ->
      let recv = Receiver.create net ~flow () in
      let init_rtt = Topology.base_rtt topo ~src ~dst ~data_bytes:1500 in
      let on_complete _ ~fct =
        Receiver.stop recv;
        result := Some fct
      in
      let sender =
        match proto with
        | `Dctcp -> Dctcp.create net ~flow ~conf:(Dctcp.conf ~init_rtt ()) ~on_complete ()
        | `D2tcp -> D2tcp.create net ~flow ~conf:(D2tcp.conf ~init_rtt ()) ~on_complete ()
        | `L2dct -> L2dct.create net ~flow ~conf:(L2dct.conf ~init_rtt ()) ~on_complete ()
        | `Pfabric ->
            Pfabric_host.create net ~flow
              ~conf:(Pfabric_host.conf ~init_rtt ~init_cwnd:13. ())
              ~on_complete ()
      in
      Sender_base.start sender);
  result

let test_ecn_cc_alpha_tracks_marks () =
  (* Directly drive the Ecn_cc state machine with a synthetic sender. *)
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  let flow =
    Flow.make ~id:1 ~src:topo.Topology.hosts.(0) ~dst:topo.Topology.hosts.(1)
      ~size_pkts:10_000 ~start_time:0. ()
  in
  let st = Ecn_cc.create_state () in
  let sender =
    Sender_base.create topo.Topology.net ~flow ~conf:Sender_base.default_conf
      ~on_complete:(fun _ ~fct:_ -> ())
      ()
  in
  Alcotest.(check (float 1e-9)) "alpha starts at 0" 0. (Ecn_cc.alpha st);
  (* All-marked windows push alpha toward 1. *)
  for _ = 1 to 200 do
    Ecn_cc.observe st sender ~ecn:true ~weight:1
  done;
  Alcotest.(check bool) "alpha grows" true (Ecn_cc.alpha st > 0.5)

let test_ecn_cc_cut_once_per_window () =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  let flow =
    Flow.make ~id:1 ~src:topo.Topology.hosts.(0) ~dst:topo.Topology.hosts.(1)
      ~size_pkts:10_000 ~start_time:0. ()
  in
  let st = Ecn_cc.create_state () in
  let sender =
    Sender_base.create topo.Topology.net ~flow ~conf:Sender_base.default_conf
      ~on_complete:(fun _ ~fct:_ -> ())
      ()
  in
  Sender_base.set_cwnd sender 100.;
  let cut1 = Ecn_cc.try_cut st sender ~multiplier:0.5 in
  let w1 = Sender_base.cwnd sender in
  let cut2 = Ecn_cc.try_cut st sender ~multiplier:0.5 in
  let w2 = Sender_base.cwnd sender in
  Alcotest.(check bool) "first cut applies" true cut1;
  Alcotest.(check (float 1e-9)) "halved" 50. w1;
  (* No new data was sent/acked, so the same window cannot be cut twice...
     but cut_end was 0 and sent_new is still 0, so a second cut in the same
     window is suppressed only after progress; verify the guard holds once
     cum advances past cut_end. *)
  Alcotest.(check bool) "second cut suppressed or idempotent" true
    ((not cut2) || w2 = 25.)

let test_dctcp_flows_share_fairly () =
  let rigv = rig () in
  let e, _, topo = rigv in
  let h = topo.Topology.hosts in
  (* Two same-size flows to one receiver starting together finish near each
     other (fair sharing): neither should finish before ~85% of the other. *)
  let r1 = launch `Dctcp rigv ~id:1 ~src:h.(0) ~dst:h.(2) ~size_pkts:300 ~start:0. () in
  let r2 = launch `Dctcp rigv ~id:2 ~src:h.(1) ~dst:h.(2) ~size_pkts:300 ~start:0. () in
  Engine.run ~until:5.0 e;
  match (!r1, !r2) with
  | Some f1, Some f2 ->
      let ratio = Float.min f1 f2 /. Float.max f1 f2 in
      Alcotest.(check bool)
        (Printf.sprintf "fair (ratio %.2f)" ratio)
        true (ratio > 0.75)
  | _ -> Alcotest.fail "flows did not finish"

let test_dctcp_keeps_queue_short () =
  let rigv = rig ~qdisc:(`Red (225, 20)) () in
  let e, c, topo = rigv in
  let h = topo.Topology.hosts in
  let _ = launch `Dctcp rigv ~id:1 ~src:h.(0) ~dst:h.(2) ~size_pkts:2000 ~start:0. () in
  Engine.run ~until:0.050 e;
  (* A long DCTCP flow must have triggered marking rather than drops. *)
  Alcotest.(check bool) "ECN marks happened" true (c.Counters.ecn_marked_pkts > 0);
  Alcotest.(check int) "no drops" 0 c.Counters.dropped_pkts

let test_d2tcp_imminence_bounds () =
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:2 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:100)
  in
  let mk_sender ?deadline () =
    let flow =
      Flow.make ~id:1 ~src:topo.Topology.hosts.(0) ~dst:topo.Topology.hosts.(1)
        ~size_pkts:100 ~start_time:0. ?deadline ()
    in
    D2tcp.create topo.Topology.net ~flow ~on_complete:(fun _ ~fct:_ -> ()) ()
  in
  (* No deadline: d = 1 (DCTCP-equivalent). *)
  Alcotest.(check (float 1e-9)) "no deadline" 1. (D2tcp.imminence (mk_sender ()));
  (* Very tight deadline: d clamps at 2. *)
  Alcotest.(check (float 1e-9)) "tight deadline" 2.
    (D2tcp.imminence (mk_sender ~deadline:1e-9 ()));
  (* Very loose deadline: d clamps at 0.5. *)
  Alcotest.(check (float 1e-9)) "loose deadline" 0.5
    (D2tcp.imminence (mk_sender ~deadline:1000. ()))

let test_l2dct_weights_monotone () =
  Alcotest.(check (float 1e-9)) "fresh flow gets w_max" L2dct.w_max
    (L2dct.weight_of_sent 0);
  Alcotest.(check (float 1e-9)) "heavy flow gets w_min" L2dct.w_min
    (L2dct.weight_of_sent (2 * L2dct.ref_bytes));
  let w1 = L2dct.weight_of_sent 100_000 in
  let w2 = L2dct.weight_of_sent 500_000 in
  Alcotest.(check bool) "monotone decreasing" true (w1 > w2)

let test_l2dct_favours_short_flows () =
  (* A short flow competing with a long flow should do better under L2DCT
     than under DCTCP. *)
  let fct_of proto =
    let rigv = rig () in
    let e, _, topo = rigv in
    let h = topo.Topology.hosts in
    let _long =
      launch proto rigv ~id:1 ~src:h.(0) ~dst:h.(2) ~size_pkts:100_000 ~start:0. ()
    in
    let short =
      launch proto rigv ~id:2 ~src:h.(1) ~dst:h.(2) ~size_pkts:70 ~start:0.005 ()
    in
    Engine.run ~until:0.2 e;
    Option.get !short
  in
  let l2dct = fct_of `L2dct and dctcp = fct_of `Dctcp in
  Alcotest.(check bool)
    (Printf.sprintf "short flow faster under L2DCT (%.2f vs %.2f ms)"
       (l2dct *. 1e3) (dctcp *. 1e3))
    true (l2dct <= dctcp)

let test_pfabric_srpt_order () =
  (* Two flows to one host; the smaller must finish first even if started
     later, because its packets carry better priority. *)
  let rigv = rig ~qdisc:(`Pfabric 30) () in
  let e, _, topo = rigv in
  let h = topo.Topology.hosts in
  let big = launch `Pfabric rigv ~id:1 ~src:h.(0) ~dst:h.(2) ~size_pkts:800 ~start:0. () in
  let small =
    launch `Pfabric rigv ~id:2 ~src:h.(1) ~dst:h.(2) ~size_pkts:40 ~start:0.002 ()
  in
  Engine.run ~until:1.0 e;
  match (!big, !small) with
  | Some fb, Some fs ->
      Alcotest.(check bool) "small flow much faster" true (fs < fb /. 4.);
      (* Small flow barely affected: close to its isolated time (~0.5ms). *)
      Alcotest.(check bool)
        (Printf.sprintf "small near-ideal (%.2f ms)" (fs *. 1e3))
        true (fs < 2e-3)
  | _ -> Alcotest.fail "flows did not finish"

let test_pfabric_stamps_remaining () =
  let rigv = rig ~qdisc:(`Pfabric 30) () in
  let e, _, topo = rigv in
  let net = topo.Topology.net in
  let h = topo.Topology.hosts in
  let flow = Flow.make ~id:5 ~src:h.(0) ~dst:h.(1) ~size_pkts:20 ~start_time:0. () in
  let prios = ref [] in
  (* Intercept at the receiver by wrapping a receiver-like handler. *)
  Net.register_flow net ~host:h.(1) ~flow:5 (fun p ->
      prios := p.Packet.prio :: !prios);
  let sender =
    Pfabric_host.create net ~flow
      ~conf:(Pfabric_host.conf ~init_cwnd:4. ())
      ~on_complete:(fun _ ~fct:_ -> ())
      ()
  in
  Sender_base.start sender;
  Engine.run ~until:0.01 e;
  (* First window stamped with full remaining size. *)
  Alcotest.(check bool) "prio = remaining at stamp time" true
    (List.for_all (fun p -> p = 20.) (List.filteri (fun i _ -> i >= List.length !prios - 4) !prios))

let suite =
  [
    Alcotest.test_case "ecn_cc alpha tracks marks" `Quick test_ecn_cc_alpha_tracks_marks;
    Alcotest.test_case "ecn_cc cut once per window" `Quick test_ecn_cc_cut_once_per_window;
    Alcotest.test_case "dctcp fair sharing" `Quick test_dctcp_flows_share_fairly;
    Alcotest.test_case "dctcp keeps queue short" `Quick test_dctcp_keeps_queue_short;
    Alcotest.test_case "d2tcp imminence bounds" `Quick test_d2tcp_imminence_bounds;
    Alcotest.test_case "l2dct weights monotone" `Quick test_l2dct_weights_monotone;
    Alcotest.test_case "l2dct favours short flows" `Quick test_l2dct_favours_short_flows;
    Alcotest.test_case "pfabric SRPT order" `Quick test_pfabric_srpt_order;
    Alcotest.test_case "pfabric stamps remaining" `Quick test_pfabric_stamps_remaining;
  ]
