(* Cross-cutting properties: end-to-end packet conservation, per-band FIFO
   order, pFabric dequeue against a naive oracle, and work conservation of
   the PASE data path. *)

let mk ?(flow = 0) ?(seq = 0) ?(prio = 0.) ?(tos = 0) () =
  Packet.make ~flow ~src:0 ~dst:1 ~kind:Packet.Data ~size:1500 ~seq ~prio ~tos
    ~sent_at:0. ()

(* Every injected packet is eventually delivered or dropped; nothing is
   duplicated or lost by the fabric itself. *)
let prop_net_conservation =
  QCheck.Test.make ~count:100 ~name:"network conserves packets end-to-end"
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(int_range 1 60) (int_range 0 7)))
    (fun (hosts, dsts) ->
      let e = Engine.create () in
      let c = Counters.create () in
      let topo =
        Topology.single_rack e c ~hosts ~rate_bps:1e9 ~link_delay_s:10e-6
          ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:5)
      in
      let h = topo.Topology.hosts in
      let delivered = ref 0 in
      Array.iter
        (fun host ->
          Net.register_flow topo.Topology.net ~host ~flow:1 (fun _ ->
              incr delivered))
        h;
      let sent = ref 0 in
      List.iteri
        (fun i d ->
          let src = h.(i mod hosts) in
          let dst = h.(d mod hosts) in
          if src <> dst then begin
            incr sent;
            Net.send topo.Topology.net
              (Packet.make ~flow:1 ~src ~dst ~kind:Packet.Data ~size:1500
                 ~seq:i ~sent_at:0. ())
          end)
        dsts;
      Engine.run e;
      !delivered + c.Counters.dropped_pkts = !sent)

(* Within one priority band the queue is strictly FIFO. *)
let prop_prio_band_fifo =
  QCheck.Test.make ~count:200 ~name:"prio queue is FIFO within each band"
    QCheck.(list_of_size Gen.(int_range 1 80) (int_range 0 3))
    (fun toses ->
      let c = Counters.create () in
      let q =
        Prio_queue.create c ~bands:4 ~limit_pkts:10_000 ~mark_threshold:9_999
      in
      List.iteri (fun i tos -> q.Queue_disc.enqueue (mk ~seq:i ~tos ())) toses;
      let last_seq = Array.make 4 (-1) in
      let ok = ref true in
      let rec drain () =
        match q.Queue_disc.dequeue () with
        | None -> ()
        | Some p ->
            let band = p.Packet.tos in
            if p.Packet.seq < last_seq.(band) then ok := false;
            last_seq.(band) <- p.Packet.seq;
            drain ()
      in
      drain ();
      !ok)

(* pFabric dequeue equals a naive oracle: min (prio, seq) flow, earliest
   segment of that flow. *)
let prop_pfabric_oracle =
  QCheck.Test.make ~count:200 ~name:"pfabric dequeue matches oracle"
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 5) (int_range 0 50)))
    (fun pkts ->
      let c = Counters.create () in
      let q = Pfabric_queue.create c ~limit_pkts:1000 in
      let model = ref [] in
      List.iteri
        (fun i (flow, prio) ->
          let p = mk ~flow ~seq:i ~prio:(float_of_int prio) () in
          q.Queue_disc.enqueue p;
          model := p :: !model)
        pkts;
      let oracle_pop () =
        match !model with
        | [] -> None
        | l ->
            let best =
              List.fold_left
                (fun acc p ->
                  match acc with
                  | None -> Some p
                  | Some b ->
                      if
                        p.Packet.prio < b.Packet.prio
                        || (p.Packet.prio = b.Packet.prio
                           && p.Packet.seq < b.Packet.seq)
                      then Some p
                      else acc)
                None l
            in
            let b = Option.get best in
            (* earliest segment of the chosen flow *)
            let chosen =
              List.fold_left
                (fun acc p ->
                  if p.Packet.flow = b.Packet.flow && p.Packet.seq < acc.Packet.seq
                  then p
                  else acc)
                b l
            in
            model := List.filter (fun p -> p != chosen) !model;
            Some chosen
      in
      let ok = ref true in
      let rec drain () =
        match (q.Queue_disc.dequeue (), oracle_pop ()) with
        | None, None -> ()
        | Some a, Some b ->
            if a.Packet.id <> b.Packet.id then ok := false else drain ()
        | _ -> ok := false
      in
      drain ();
      !ok)

(* Work conservation: with two PASE flows saturating one bottleneck, the
   bottleneck link transmits ~continuously until both finish. *)
let test_pase_work_conservation () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let cfg = Config.default in
  let topo =
    Topology.single_rack e c ~hosts:3 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ ->
        Prio_queue.create c ~bands:8 ~limit_pkts:500 ~mark_threshold:20)
  in
  let h = topo.Topology.hosts in
  let rtt = Topology.base_rtt topo ~src:h.(0) ~dst:h.(2) ~data_bytes:1500 in
  let hier = Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. rtt) in
  Hierarchy.start hier;
  let finished = ref 0 in
  let end_time = ref 0. in
  List.iteri
    (fun i size_pkts ->
      let flow =
        Flow.make ~id:i ~src:h.(i) ~dst:h.(2) ~size_pkts ~start_time:0. ()
      in
      let recv = Receiver.create topo.Topology.net ~flow () in
      Pase_host.start
        (Pase_host.create topo.Topology.net hier ~flow ~cfg ~rtt ~nic_bps:1e9
           ~on_complete:(fun _ ~fct ->
             Receiver.stop recv;
             incr finished;
             end_time := Float.max !end_time fct)
           ()))
    [ 400; 400 ];
  Engine.run ~until:0.5 e;
  Hierarchy.stop hier;
  Alcotest.(check int) "both finished" 2 !finished;
  (* 800 segments on a 1 Gbps link take 9.7 ms back to back; demand >95%
     utilization of the bottleneck across the makespan. *)
  let ideal = 800. *. 1500. *. 8. /. 1e9 in
  Alcotest.(check bool)
    (Printf.sprintf "work conserving (makespan %.2f vs ideal %.2f ms)"
       (!end_time *. 1e3) (ideal *. 1e3))
    true
    (!end_time < ideal /. 0.95)

(* Random PASE/DCTCP mixes on random small scenarios must always deliver
   every flow (no deadlock, no lost completion). *)
let prop_runner_always_completes =
  QCheck.Test.make ~count:8 ~name:"runner completes every flow (random mixes)"
    QCheck.(pair (int_range 0 5) (int_range 1 1000))
    (fun (pidx, seed) ->
      let proto =
        match pidx with
        | 0 -> Runner.Dctcp
        | 1 -> Runner.Pfabric
        | 2 -> Runner.Pdq
        | 3 -> Runner.D3
        | 4 -> Runner.L2dct
        | _ -> Runner.pase
      in
      let sc = Scenario.worker_aggregator ~hosts:6 ~num_flows:40 ~seed ~load:0.6 () in
      let r = Runner.run proto sc in
      r.Runner.completed = 40 && r.Runner.censored = 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_net_conservation;
    QCheck_alcotest.to_alcotest prop_prio_band_fifo;
    QCheck_alcotest.to_alcotest prop_pfabric_oracle;
    Alcotest.test_case "pase work conservation" `Quick test_pase_work_conservation;
    QCheck_alcotest.to_alcotest prop_runner_always_completes;
  ]
