(* Algorithm 1 (pure): queue assignment, reference rates, and invariants. *)

let inp flow criterion demand =
  { Arbitration.flow; criterion; demand_bps = demand }

let assign ?(cap = 1e9) ?(nq = 8) ?(base = 1e5) flows =
  Arbitration.assign ~capacity_bps:cap ~num_queues:nq ~base_rate_bps:base flows

let find fid outs =
  List.find (fun o -> o.Arbitration.out_flow = fid) outs

let test_single_flow_top_queue () =
  let outs = assign [ inp 1 10. 1e9 ] in
  let o = find 1 outs in
  Alcotest.(check int) "top queue" 0 o.Arbitration.queue;
  Alcotest.(check (float 1.)) "full capacity" 1e9 o.Arbitration.rref_bps

let test_demand_capped_by_capacity () =
  let outs = assign [ inp 1 10. 5e9 ] in
  Alcotest.(check (float 1.)) "capped" 1e9 (find 1 outs).Arbitration.rref_bps

let test_two_small_flows_share_top () =
  let outs = assign [ inp 1 10. 0.4e9; inp 2 20. 0.4e9 ] in
  Alcotest.(check int) "first top" 0 (find 1 outs).Arbitration.queue;
  Alcotest.(check int) "second top too" 0 (find 2 outs).Arbitration.queue;
  Alcotest.(check (float 1.)) "own demand" 0.4e9 (find 2 outs).Arbitration.rref_bps

let test_leftover_rate () =
  let outs = assign [ inp 1 10. 0.7e9; inp 2 20. 0.6e9 ] in
  (* Second flow's reference rate is the residual capacity. *)
  Alcotest.(check (float 1.)) "residual" 0.3e9 (find 2 outs).Arbitration.rref_bps;
  Alcotest.(check int) "still top queue" 0 (find 2 outs).Arbitration.queue

let test_saturating_flows_stack_queues () =
  (* Full-demand flows: one per queue level. *)
  let outs = assign (List.init 5 (fun i -> inp i (float_of_int i) 1e9)) in
  List.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Printf.sprintf "flow %d queue" i)
        i
        (find i outs).Arbitration.queue)
    outs;
  Alcotest.(check (float 1.)) "lower queues get base rate" 1e5
    (find 3 outs).Arbitration.rref_bps

let test_lowest_queue_caps () =
  let outs = assign ~nq:4 (List.init 10 (fun i -> inp i (float_of_int i) 1e9)) in
  List.iter
    (fun o ->
      Alcotest.(check bool) "queue within range" true
        (o.Arbitration.queue >= 0 && o.Arbitration.queue < 4))
    outs;
  Alcotest.(check int) "overflow goes to lowest" 3 (find 9 outs).Arbitration.queue

let test_priority_ordering_by_criterion () =
  (* Smaller criterion = more important, regardless of list order. *)
  let outs = assign [ inp 1 500. 1e9; inp 2 5. 1e9; inp 3 50. 1e9 ] in
  Alcotest.(check int) "smallest first" 0 (find 2 outs).Arbitration.queue;
  Alcotest.(check int) "middle second" 1 (find 3 outs).Arbitration.queue;
  Alcotest.(check int) "largest last" 2 (find 1 outs).Arbitration.queue

let test_tie_break_on_flow_id () =
  let outs = assign [ inp 2 10. 1e9; inp 1 10. 1e9 ] in
  Alcotest.(check int) "lower id wins tie" 0 (find 1 outs).Arbitration.queue;
  Alcotest.(check int) "other demoted" 1 (find 2 outs).Arbitration.queue

(* Invariants over random inputs. *)
let gen_flows =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (triple (int_range 0 1000) (float_range 1. 1e6) (float_range 1e3 2e9)))

let arb_flows =
  QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_flows

let dedup_ids flows =
  (* Distinct flow ids; keep first occurrence. *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (id, crit, dem) ->
      if Hashtbl.mem seen id then None
      else begin
        Hashtbl.add seen id ();
        Some (inp id crit dem)
      end)
    flows

let prop_top_queue_rates_within_capacity =
  QCheck.Test.make ~count:500 ~name:"sum of top-queue Rref <= capacity"
    arb_flows (fun flows ->
      let flows = dedup_ids flows in
      QCheck.assume (flows <> []);
      let outs = assign ~cap:1e9 flows in
      let top_sum =
        List.fold_left
          (fun acc o ->
            if o.Arbitration.queue = 0 then acc +. o.Arbitration.rref_bps
            else acc)
          0. outs
      in
      top_sum <= 1e9 *. (1. +. 1e-9))

let prop_queue_monotone_in_priority =
  QCheck.Test.make ~count:500
    ~name:"higher-priority flows never sit in lower queues" arb_flows
    (fun flows ->
      let flows = dedup_ids flows in
      QCheck.assume (flows <> []);
      let outs = assign flows in
      (* Sort outputs by the input criterion order and check queues are
         non-decreasing. *)
      let crit_of fid =
        let f = List.find (fun i -> i.Arbitration.flow = fid) flows in
        (f.Arbitration.criterion, f.Arbitration.flow)
      in
      let sorted =
        List.sort
          (fun a b ->
            compare (crit_of a.Arbitration.out_flow) (crit_of b.Arbitration.out_flow))
          outs
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) ->
            a.Arbitration.queue <= b.Arbitration.queue && non_decreasing rest
        | _ -> true
      in
      non_decreasing sorted)

let prop_every_flow_assigned =
  QCheck.Test.make ~count:500 ~name:"every input flow gets an assignment"
    arb_flows (fun flows ->
      let flows = dedup_ids flows in
      QCheck.assume (flows <> []);
      let outs = assign flows in
      List.length outs = List.length flows
      && List.for_all
           (fun i ->
             List.exists (fun o -> o.Arbitration.out_flow = i.Arbitration.flow) outs)
           flows)

let prop_rref_positive =
  QCheck.Test.make ~count:500 ~name:"reference rates are positive" arb_flows
    (fun flows ->
      let flows = dedup_ids flows in
      QCheck.assume (flows <> []);
      assign flows |> List.for_all (fun o -> o.Arbitration.rref_bps > 0.))

let suite =
  [
    Alcotest.test_case "single flow top queue" `Quick test_single_flow_top_queue;
    Alcotest.test_case "demand capped" `Quick test_demand_capped_by_capacity;
    Alcotest.test_case "two small flows share top" `Quick test_two_small_flows_share_top;
    Alcotest.test_case "leftover rate" `Quick test_leftover_rate;
    Alcotest.test_case "saturating flows stack queues" `Quick test_saturating_flows_stack_queues;
    Alcotest.test_case "lowest queue caps" `Quick test_lowest_queue_caps;
    Alcotest.test_case "priority ordering" `Quick test_priority_ordering_by_criterion;
    Alcotest.test_case "tie break on id" `Quick test_tie_break_on_flow_id;
    QCheck_alcotest.to_alcotest prop_top_queue_rates_within_capacity;
    QCheck_alcotest.to_alcotest prop_queue_monotone_in_priority;
    QCheck_alcotest.to_alcotest prop_every_flow_assigned;
    QCheck_alcotest.to_alcotest prop_rref_positive;
  ]
