(* PDQ: arbiter allocation (SJF/EDF order, suppressed demand, Early Start)
   and host behaviour (preemption, switching overhead). *)

let arb cap = Pdq.Arbiter.create ~capacity_bps:cap

let upd a ~flow ~rem ?(nic = 1e9) ?(use = 1e9) ?deadline () =
  Pdq.Arbiter.update a ~flow ~remaining_pkts:rem ~nic_bps:nic ~usable_bps:use
    ~deadline

let alloc a flow = Pdq.Arbiter.allocation a ~flow ~rtt:150e-6 ~mss_bits:11680.

let test_single_flow_full_rate () =
  let a = arb 1e9 in
  upd a ~flow:1 ~rem:100 ();
  Alcotest.(check (float 1.)) "full rate" 1e9 (alloc a 1)

let test_sjf_order () =
  let a = arb 1e9 in
  upd a ~flow:1 ~rem:1000 ();
  upd a ~flow:2 ~rem:100 ();
  (* Shorter flow wins the link; longer is paused. *)
  Alcotest.(check (float 1.)) "short gets link" 1e9 (alloc a 2);
  Alcotest.(check (float 1.)) "long paused" 0. (alloc a 1)

let test_edf_beats_sjf () =
  let a = arb 1e9 in
  upd a ~flow:1 ~rem:10 ();
  upd a ~flow:2 ~rem:1000 ~deadline:0.01 ();
  (* Deadline flow outranks a shorter non-deadline flow. *)
  Alcotest.(check (float 1.)) "deadline flow first" 1e9 (alloc a 2);
  Alcotest.(check (float 1.)) "other paused" 0. (alloc a 1)

let test_suppressed_demand_frees_capacity () =
  let a = arb 1e9 in
  (* Flow 1 is shortest but bottlenecked elsewhere (usable 0): it must not
     block flow 2. *)
  upd a ~flow:1 ~rem:10 ~use:0. ();
  upd a ~flow:2 ~rem:100 ();
  Alcotest.(check (float 1.)) "blocked flow still offered rate" 1e9 (alloc a 1);
  Alcotest.(check (float 1.)) "next flow gets the capacity" 1e9 (alloc a 2)

let test_partial_suppression () =
  let a = arb 1e9 in
  upd a ~flow:1 ~rem:10 ~use:0.4e9 ();
  upd a ~flow:2 ~rem:100 ();
  Alcotest.(check (float 1e6)) "remainder to second flow" 0.6e9 (alloc a 2)

let test_early_start () =
  let a = arb 1e9 in
  (* Flow 1 finishes within one RTT at full rate (10 pkts ~ 117us < 150us):
     Early Start lets flow 2 begin immediately. *)
  upd a ~flow:1 ~rem:10 ();
  upd a ~flow:2 ~rem:100 ();
  Alcotest.(check (float 1.)) "successor admitted early" 1e9 (alloc a 2);
  (* A longer leader does consume the link. *)
  let a2 = arb 1e9 in
  upd a2 ~flow:1 ~rem:100 ();
  upd a2 ~flow:2 ~rem:200 ();
  Alcotest.(check (float 1.)) "no early start for long leader" 0. (alloc a2 2)

let test_remove () =
  let a = arb 1e9 in
  upd a ~flow:1 ~rem:10 ();
  upd a ~flow:2 ~rem:100 ();
  Pdq.Arbiter.remove a ~flow:1;
  Alcotest.(check int) "one left" 1 (Pdq.Arbiter.flows a);
  Alcotest.(check (float 1.)) "survivor promoted" 1e9 (alloc a 2)

(* Shared arbiters across flows need a common registry: rebuild rig-level. *)
let rig_with_arbiters () =
  Packet.reset_ids ();
  let e = Engine.create () in
  let c = Counters.create () in
  let topo =
    Topology.single_rack e c ~hosts:4 ~rate_bps:1e9 ~link_delay_s:10e-6
      ~qdisc:(fun ~rate_bps:_ -> Queue_disc.droptail c ~limit_pkts:24)
  in
  let net = topo.Topology.net in
  let arbs = Hashtbl.create 8 in
  let arbiters_for src dst =
    let rec links acc = function
      | a :: (b :: _ as rest) ->
          let arb =
            match Hashtbl.find_opt arbs (a, b) with
            | Some x -> x
            | None ->
                let l = Option.get (Net.link_from net a b) in
                let x = Pdq.Arbiter.create ~capacity_bps:(Link.rate_bps l) in
                Hashtbl.replace arbs (a, b) x;
                x
          in
          links (arb :: acc) rest
      | _ -> List.rev acc
    in
    links [] (Net.route net ~src ~dst ())
  in
  let launch ~id ~src ~dst ~size_pkts ~start =
    let result = ref None in
    Engine.schedule_at e ~time:start (fun () ->
        let flow = Flow.make ~id ~src ~dst ~size_pkts ~start_time:start () in
        let recv = Receiver.create net ~flow () in
        let rtt = Topology.base_rtt topo ~src ~dst ~data_bytes:1500 in
        let on_complete _ ~fct =
          Receiver.stop recv;
          result := Some fct
        in
        Pdq.start
          (Pdq.create net ~flow ~arbiters:(arbiters_for src dst) ~rtt
             ~conf:(Pdq.conf ~init_rtt:rtt ()) ~on_complete ()));
    result
  in
  (e, topo, launch)

let test_host_single_flow () =
  let e, topo, launch = rig_with_arbiters () in
  let h = topo.Topology.hosts in
  let r = launch ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:100 ~start:0. in
  Engine.run ~until:0.5 e;
  match !r with
  | None -> Alcotest.fail "flow did not complete"
  | Some fct ->
      (* 100 pkts ~ 1.2 ms serialization + ~2 RTT setup. *)
      Alcotest.(check bool)
        (Printf.sprintf "near line rate (%.2f ms)" (fct *. 1e3))
        true
        (fct > 1.2e-3 && fct < 2.2e-3)

let test_host_preemption () =
  let e, topo, launch = rig_with_arbiters () in
  let h = topo.Topology.hosts in
  let big = launch ~id:1 ~src:h.(0) ~dst:h.(3) ~size_pkts:400 ~start:0. in
  let small = launch ~id:2 ~src:h.(1) ~dst:h.(3) ~size_pkts:40 ~start:0.001 in
  Engine.run ~until:0.5 e;
  match (!big, !small) with
  | Some fb, Some fs ->
      (* The small flow preempts: it finishes close to its isolated time,
         the big flow pays for it. *)
      Alcotest.(check bool)
        (Printf.sprintf "small fast (%.2f ms)" (fs *. 1e3))
        true (fs < 1.5e-3);
      Alcotest.(check bool) "big paid preemption" true (fb > 4.8e-3)
  | _ -> Alcotest.fail "flows did not finish"

let test_host_counts_ctrl_msgs () =
  let e, topo, launch = rig_with_arbiters () in
  let h = topo.Topology.hosts in
  let c = Net.counters topo.Topology.net in
  let _ = launch ~id:1 ~src:h.(0) ~dst:h.(1) ~size_pkts:100 ~start:0. in
  Engine.run ~until:0.5 e;
  Alcotest.(check bool) "control messages counted" true (c.Counters.ctrl_msgs > 0)

let suite =
  [
    Alcotest.test_case "single flow full rate" `Quick test_single_flow_full_rate;
    Alcotest.test_case "SJF order" `Quick test_sjf_order;
    Alcotest.test_case "EDF beats SJF" `Quick test_edf_beats_sjf;
    Alcotest.test_case "suppressed demand" `Quick test_suppressed_demand_frees_capacity;
    Alcotest.test_case "partial suppression" `Quick test_partial_suppression;
    Alcotest.test_case "early start" `Quick test_early_start;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "host single flow" `Quick test_host_single_flow;
    Alcotest.test_case "host preemption" `Quick test_host_preemption;
    Alcotest.test_case "host counts ctrl msgs" `Quick test_host_counts_ctrl_msgs;
  ]
