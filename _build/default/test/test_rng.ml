(* SplitMix64 PRNG: determinism, ranges, and rough distribution moments. *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in [0,13)" true (v >= 0 && v < 13)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0. && v < 3.5)
  done

let test_uniform_mean () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng 10. 20.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 15" true (Float.abs (mean -. 15.) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create 9 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 2" true (Float.abs (mean -. 2.0) < 0.05)

let test_exponential_positive () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng ~mean:1. > 0.)
  done

let test_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* The split stream must not replay the parent stream. *)
  let equal = ref 0 in
  for _ = 1 to 32 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  Alcotest.(check bool) "split independent" true (!equal < 3)

let test_bool_balance () =
  let rng = Rng.create 17 in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "balanced" true (Float.abs (frac -. 0.5) < 0.02)

let prop_int_nonnegative =
  QCheck.Test.make ~name:"Rng.int is always in range" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    QCheck_alcotest.to_alcotest prop_int_nonnegative;
  ]
