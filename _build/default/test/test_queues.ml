(* Queue disciplines: droptail, RED/ECN marking, strict-priority bands,
   pFabric scheduling/dropping, and conservation properties. *)

let mk ?(flow = 0) ?(seq = 0) ?(size = 1500) ?(prio = 0.) ?(tos = 0)
    ?(ecn_capable = true) ?(kind = Packet.Data) () =
  Packet.make ~flow ~src:0 ~dst:1 ~kind ~size ~seq ~prio ~tos ~ecn_capable
    ~sent_at:0. ()

let test_droptail_fifo () =
  let c = Counters.create () in
  let q = Queue_disc.droptail c ~limit_pkts:10 in
  for i = 0 to 4 do
    q.Queue_disc.enqueue (mk ~seq:i ())
  done;
  for i = 0 to 4 do
    match q.Queue_disc.dequeue () with
    | Some p -> Alcotest.(check int) "FIFO order" i p.Packet.seq
    | None -> Alcotest.fail "queue empty early"
  done;
  Alcotest.(check bool) "drained" true (q.Queue_disc.dequeue () = None)

let test_droptail_limit () =
  let c = Counters.create () in
  let q = Queue_disc.droptail c ~limit_pkts:3 in
  for i = 0 to 9 do
    q.Queue_disc.enqueue (mk ~seq:i ())
  done;
  Alcotest.(check int) "3 queued" 3 (q.Queue_disc.pkts ());
  Alcotest.(check int) "7 dropped" 7 c.Counters.dropped_pkts;
  Alcotest.(check int) "drops are data" 7 c.Counters.dropped_data_pkts

let test_droptail_bytes () =
  let c = Counters.create () in
  let q = Queue_disc.droptail c ~limit_pkts:10 in
  q.Queue_disc.enqueue (mk ~size:100 ());
  q.Queue_disc.enqueue (mk ~size:200 ());
  Alcotest.(check int) "bytes" 300 (q.Queue_disc.bytes ());
  ignore (q.Queue_disc.dequeue ());
  Alcotest.(check int) "bytes after dequeue" 200 (q.Queue_disc.bytes ())

let test_red_marks_above_threshold () =
  let c = Counters.create () in
  let q = Queue_disc.red_ecn c ~limit_pkts:100 ~mark_threshold:5 in
  let pkts = List.init 10 (fun i -> mk ~seq:i ()) in
  List.iter q.Queue_disc.enqueue pkts;
  (* Packets arriving when occupancy >= 5 (i.e. the 6th onward) are marked. *)
  let marked = List.filter (fun p -> p.Packet.ecn_ce) pkts in
  Alcotest.(check int) "5 marked" 5 (List.length marked);
  List.iter
    (fun p -> Alcotest.(check bool) "late ones marked" true (p.Packet.seq >= 5))
    marked;
  Alcotest.(check int) "counter" 5 c.Counters.ecn_marked_pkts

let test_red_ignores_non_ecn () =
  let c = Counters.create () in
  let q = Queue_disc.red_ecn c ~limit_pkts:100 ~mark_threshold:0 in
  let p = mk ~ecn_capable:false () in
  q.Queue_disc.enqueue p;
  Alcotest.(check bool) "not marked" false p.Packet.ecn_ce

let test_prio_strictness () =
  let c = Counters.create () in
  let q = Prio_queue.create c ~bands:4 ~limit_pkts:100 ~mark_threshold:50 in
  q.Queue_disc.enqueue (mk ~seq:0 ~tos:3 ());
  q.Queue_disc.enqueue (mk ~seq:1 ~tos:1 ());
  q.Queue_disc.enqueue (mk ~seq:2 ~tos:0 ());
  q.Queue_disc.enqueue (mk ~seq:3 ~tos:2 ());
  q.Queue_disc.enqueue (mk ~seq:4 ~tos:0 ());
  let order =
    List.init 5 (fun _ -> (Option.get (q.Queue_disc.dequeue ())).Packet.seq)
  in
  (* Band 0 first (FIFO within band), then bands 1, 2, 3. *)
  Alcotest.(check (list int)) "strict priority" [ 2; 4; 1; 3; 0 ] order

let test_prio_tos_clamped () =
  let c = Counters.create () in
  let q = Prio_queue.create c ~bands:2 ~limit_pkts:10 ~mark_threshold:50 in
  q.Queue_disc.enqueue (mk ~seq:0 ~tos:7 ());
  (* tos 7 with 2 bands goes to band 1, still deliverable. *)
  Alcotest.(check int) "delivered" 0
    (Option.get (q.Queue_disc.dequeue ())).Packet.seq

let test_prio_pushout () =
  let c = Counters.create () in
  let q = Prio_queue.create c ~bands:4 ~limit_pkts:4 ~mark_threshold:50 in
  (* Fill with low priority. *)
  for i = 0 to 3 do
    q.Queue_disc.enqueue (mk ~seq:i ~tos:3 ())
  done;
  (* High-priority arrival evicts a low-priority packet. *)
  q.Queue_disc.enqueue (mk ~seq:100 ~tos:0 ());
  Alcotest.(check int) "still 4 queued" 4 (q.Queue_disc.pkts ());
  Alcotest.(check int) "one drop" 1 c.Counters.dropped_pkts;
  Alcotest.(check int) "high prio delivered first" 100
    (Option.get (q.Queue_disc.dequeue ())).Packet.seq

let test_prio_full_of_high_drops_low () =
  let c = Counters.create () in
  let q = Prio_queue.create c ~bands:4 ~limit_pkts:4 ~mark_threshold:50 in
  for i = 0 to 3 do
    q.Queue_disc.enqueue (mk ~seq:i ~tos:0 ())
  done;
  (* Low-priority arrival cannot push out higher bands: dropped. *)
  q.Queue_disc.enqueue (mk ~seq:100 ~tos:2 ());
  Alcotest.(check int) "arrival dropped" 1 c.Counters.dropped_pkts;
  Alcotest.(check int) "4 queued" 4 (q.Queue_disc.pkts ())

let test_prio_per_band_marking () =
  let c = Counters.create () in
  let q, occupancy =
    Prio_queue.create_with_inspect c ~bands:2 ~limit_pkts:100 ~mark_threshold:3
  in
  (* Fill band 1 beyond K; band 0 packets must not be marked. *)
  for i = 0 to 5 do
    q.Queue_disc.enqueue (mk ~seq:i ~tos:1 ())
  done;
  let p0 = mk ~seq:100 ~tos:0 () in
  q.Queue_disc.enqueue p0;
  Alcotest.(check bool) "band-0 arrival unmarked" false p0.Packet.ecn_ce;
  Alcotest.(check int) "band 1 occupancy" 6 (occupancy 1);
  Alcotest.(check int) "band 0 occupancy" 1 (occupancy 0);
  Alcotest.(check int) "3 marked in band 1" 3 c.Counters.ecn_marked_pkts

let test_pfabric_priority_dequeue () =
  let c = Counters.create () in
  let q = Pfabric_queue.create c ~limit_pkts:10 in
  q.Queue_disc.enqueue (mk ~flow:1 ~seq:0 ~prio:50. ());
  q.Queue_disc.enqueue (mk ~flow:2 ~seq:0 ~prio:10. ());
  q.Queue_disc.enqueue (mk ~flow:3 ~seq:0 ~prio:30. ());
  let first = Option.get (q.Queue_disc.dequeue ()) in
  Alcotest.(check int) "lowest prio value wins" 2 first.Packet.flow

let test_pfabric_starvation_avoidance () =
  let c = Counters.create () in
  let q = Pfabric_queue.create c ~limit_pkts:10 in
  (* Flow 1's later packet has the best priority (smallest remaining), but
     its earliest buffered segment must leave first. *)
  q.Queue_disc.enqueue (mk ~flow:1 ~seq:5 ~prio:20. ());
  q.Queue_disc.enqueue (mk ~flow:1 ~seq:3 ~prio:22. ());
  q.Queue_disc.enqueue (mk ~flow:2 ~seq:0 ~prio:90. ());
  let first = Option.get (q.Queue_disc.dequeue ()) in
  Alcotest.(check int) "flow 1 chosen" 1 first.Packet.flow;
  Alcotest.(check int) "earliest segment first" 3 first.Packet.seq

let test_pfabric_drop_worst () =
  let c = Counters.create () in
  let q = Pfabric_queue.create c ~limit_pkts:3 in
  q.Queue_disc.enqueue (mk ~flow:1 ~seq:0 ~prio:10. ());
  q.Queue_disc.enqueue (mk ~flow:2 ~seq:0 ~prio:99. ());
  q.Queue_disc.enqueue (mk ~flow:3 ~seq:0 ~prio:50. ());
  (* Buffer full; a more important arrival evicts the worst (flow 2). *)
  q.Queue_disc.enqueue (mk ~flow:4 ~seq:0 ~prio:20. ());
  Alcotest.(check int) "one drop" 1 c.Counters.dropped_pkts;
  let flows =
    List.init 3 (fun _ -> (Option.get (q.Queue_disc.dequeue ())).Packet.flow)
  in
  Alcotest.(check (list int)) "survivors by priority" [ 1; 4; 3 ] flows

let test_pfabric_drop_arrival_if_worst () =
  let c = Counters.create () in
  let q = Pfabric_queue.create c ~limit_pkts:2 in
  q.Queue_disc.enqueue (mk ~flow:1 ~seq:0 ~prio:10. ());
  q.Queue_disc.enqueue (mk ~flow:2 ~seq:0 ~prio:20. ());
  q.Queue_disc.enqueue (mk ~flow:3 ~seq:0 ~prio:99. ());
  Alcotest.(check int) "arrival dropped" 1 c.Counters.dropped_pkts;
  Alcotest.(check int) "still 2" 2 (q.Queue_disc.pkts ())

(* Conservation: enqueued = dequeued + dropped + resident, for any queue. *)
let conservation_property make_queue =
  QCheck.Test.make ~count:200
    ~name:"queue conserves packets (in = out + dropped + resident)"
    QCheck.(list (pair (int_range 0 7) (int_range 0 3)))
    (fun ops ->
      let c = Counters.create () in
      let q = make_queue c in
      let attempts = ref 0 in
      let out = ref 0 in
      List.iteri
        (fun i (tos, deq) ->
          incr attempts;
          q.Queue_disc.enqueue (mk ~seq:i ~tos ~prio:(float_of_int tos) ());
          for _ = 1 to deq do
            match q.Queue_disc.dequeue () with
            | Some _ -> incr out
            | None -> ()
          done)
        ops;
      !attempts = !out + c.Counters.dropped_pkts + q.Queue_disc.pkts ())

let prop_droptail_conservation =
  conservation_property (fun c -> Queue_disc.droptail c ~limit_pkts:5)

let prop_prio_conservation =
  conservation_property (fun c ->
      Prio_queue.create c ~bands:4 ~limit_pkts:5 ~mark_threshold:3)

let prop_pfabric_conservation =
  conservation_property (fun c -> Pfabric_queue.create c ~limit_pkts:5)

let prop_prio_strict =
  QCheck.Test.make ~count:200 ~name:"prio bands always drain high before low"
    QCheck.(list (int_range 0 3))
    (fun toses ->
      let c = Counters.create () in
      let q = Prio_queue.create c ~bands:4 ~limit_pkts:10_000 ~mark_threshold:9999 in
      List.iteri (fun i tos -> q.Queue_disc.enqueue (mk ~seq:i ~tos ())) toses;
      let rec drain acc =
        match q.Queue_disc.dequeue () with
        | Some p -> drain (p.Packet.tos :: acc)
        | None -> List.rev acc
      in
      let order = drain [] in
      order = List.sort compare toses)

let suite =
  [
    Alcotest.test_case "droptail FIFO" `Quick test_droptail_fifo;
    Alcotest.test_case "droptail limit" `Quick test_droptail_limit;
    Alcotest.test_case "droptail bytes" `Quick test_droptail_bytes;
    Alcotest.test_case "RED marks above threshold" `Quick test_red_marks_above_threshold;
    Alcotest.test_case "RED ignores non-ECN" `Quick test_red_ignores_non_ecn;
    Alcotest.test_case "prio strictness" `Quick test_prio_strictness;
    Alcotest.test_case "prio tos clamped" `Quick test_prio_tos_clamped;
    Alcotest.test_case "prio pushout" `Quick test_prio_pushout;
    Alcotest.test_case "prio full of high drops low" `Quick test_prio_full_of_high_drops_low;
    Alcotest.test_case "prio per-band marking" `Quick test_prio_per_band_marking;
    Alcotest.test_case "pfabric priority dequeue" `Quick test_pfabric_priority_dequeue;
    Alcotest.test_case "pfabric starvation avoidance" `Quick test_pfabric_starvation_avoidance;
    Alcotest.test_case "pfabric drop worst" `Quick test_pfabric_drop_worst;
    Alcotest.test_case "pfabric drop arrival if worst" `Quick test_pfabric_drop_arrival_if_worst;
    QCheck_alcotest.to_alcotest prop_droptail_conservation;
    QCheck_alcotest.to_alcotest prop_prio_conservation;
    QCheck_alcotest.to_alcotest prop_pfabric_conservation;
    QCheck_alcotest.to_alcotest prop_prio_strict;
  ]
