(** Binary min-heap keyed by [(time, seq)], used as the simulator's event
    queue. Ties on [time] break on insertion order ([seq]), giving the
    engine FIFO semantics for simultaneous events. *)

type 'a t

val create : unit -> 'a t

(** [add t ~time ~seq v] inserts [v] with key [(time, seq)]. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop t] removes and returns the minimum element, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time t] returns the key of the minimum element without removal. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool
