(** pFabric switch port queue (Alizadeh et al., SIGCOMM'13).

    Scheduling: dequeue the packet whose flow holds the numerically lowest
    [prio] (most important) anywhere in the buffer, then — for starvation
    avoidance — transmit that flow's {e earliest} buffered segment.

    Dropping: when the buffer is full and the arriving packet has strictly
    lower [prio] (higher importance) than the worst buffered packet, the
    worst buffered packet is evicted; otherwise the arrival is dropped.

    The buffer is tiny in pFabric (≈ 2 × BDP), so linear scans are exact and
    cheap. *)

val create : Counters.t -> limit_pkts:int -> Queue_disc.t
