(** Queue disciplines attached to link transmit sides.

    A discipline owns admission (it may drop on [enqueue]) and scheduling
    (the order [dequeue] returns packets). Drops and ECN marks are recorded
    in the supplied {!Counters.t}. *)

type t = {
  enqueue : Packet.t -> unit;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;  (** packets currently queued *)
  bytes : unit -> int;  (** bytes currently queued *)
}

(** [droptail counters ~limit_pkts] is a FIFO that drops arrivals once
    [limit_pkts] packets are queued. *)
val droptail : Counters.t -> limit_pkts:int -> t

(** [red_ecn counters ~limit_pkts ~mark_threshold] is a FIFO with DCTCP-style
    marking: an arriving ECN-capable packet is CE-marked when the
    instantaneous queue length is at least [mark_threshold] packets
    (RED with min = max = K, as in the paper's implementation §3.3).
    Non-ECN-capable packets are dropped instead of marked only on overflow. *)
val red_ecn : Counters.t -> limit_pkts:int -> mark_threshold:int -> t

(** Record a drop of [pkt] in [counters]; exposed for other disciplines. *)
val count_drop : Counters.t -> Packet.t -> unit

(** Record a successful enqueue of [pkt]. *)
val count_enqueue : Counters.t -> Packet.t -> unit

(** Record a dequeue of [pkt]. *)
val count_dequeue : Counters.t -> Packet.t -> unit
