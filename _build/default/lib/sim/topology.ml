type t = {
  net : Net.t;
  hosts : int array;
  tors : int array;
  aggs : int array;
  cores : int array;
  edge_rate_bps : float;
  fabric_rate_bps : float;
  link_delay_s : float;
}

let tor_of t host =
  match Net.route t.net ~src:host ~dst:t.hosts.(0) () with
  | _ :: tor :: _ when host <> t.hosts.(0) -> tor
  | _ -> (
      (* host = hosts.(0): route toward any other host. *)
      match Net.route t.net ~src:host ~dst:t.hosts.(Array.length t.hosts - 1) () with
      | _ :: tor :: _ -> tor
      | _ -> invalid_arg "Topology.tor_of")

let agg_of t tor =
  let is_agg n = Array.exists (fun a -> a = n) t.aggs in
  match
    List.find_opt
      (fun (a, b, _) -> a = tor && is_agg b)
      (Net.links t.net)
  with
  | Some (_, b, _) -> b
  | None -> invalid_arg "Topology.agg_of: not a three-tier ToR"

let base_rtt t ~src ~dst ~data_bytes =
  let path = Net.route t.net ~src ~dst () in
  let rec hops acc = function
    | a :: (b :: _ as rest) ->
        let link =
          match Net.link_from t.net a b with Some l -> l | None -> assert false
        in
        hops (link :: acc) rest
    | _ -> acc
  in
  let fwd = hops [] path in
  let one_way bytes =
    List.fold_left
      (fun acc l ->
        acc +. Link.delay_s l +. (float_of_int (8 * bytes) /. Link.rate_bps l))
      0. fwd
  in
  one_way data_bytes +. one_way Packet.ack_bytes

let single_rack engine counters ~hosts ~rate_bps ~link_delay_s ~qdisc =
  let net = Net.create engine counters in
  let hs = Array.init hosts (fun _ -> Net.add_host net) in
  let tor = Net.add_switch net in
  Array.iter
    (fun h ->
      Net.connect net h tor ~rate_bps ~delay_s:link_delay_s
        ~qdisc:(fun () -> qdisc ~rate_bps))
    hs;
  Net.finalize net;
  {
    net;
    hosts = hs;
    tors = [| tor |];
    aggs = [||];
    cores = [||];
    edge_rate_bps = rate_bps;
    fabric_rate_bps = rate_bps;
    link_delay_s;
  }

let three_tier engine counters ~hosts_per_tor ~tors ~aggs ~edge_rate_bps
    ~fabric_rate_bps ~link_delay_s ~qdisc =
  if tors mod aggs <> 0 then
    invalid_arg "Topology.three_tier: tors must divide evenly across aggs";
  let net = Net.create engine counters in
  let hs = Array.init (hosts_per_tor * tors) (fun _ -> Net.add_host net) in
  let ts = Array.init tors (fun _ -> Net.add_switch net) in
  let ags = Array.init aggs (fun _ -> Net.add_switch net) in
  let core = Net.add_switch net in
  Array.iteri
    (fun i h ->
      let tor = ts.(i / hosts_per_tor) in
      Net.connect net h tor ~rate_bps:edge_rate_bps ~delay_s:link_delay_s
        ~qdisc:(fun () -> qdisc ~rate_bps:edge_rate_bps))
    hs;
  let tors_per_agg = tors / aggs in
  Array.iteri
    (fun i tor ->
      let agg = ags.(i / tors_per_agg) in
      Net.connect net tor agg ~rate_bps:fabric_rate_bps ~delay_s:link_delay_s
        ~qdisc:(fun () -> qdisc ~rate_bps:fabric_rate_bps))
    ts;
  Array.iter
    (fun agg ->
      Net.connect net agg core ~rate_bps:fabric_rate_bps ~delay_s:link_delay_s
        ~qdisc:(fun () -> qdisc ~rate_bps:fabric_rate_bps))
    ags;
  Net.finalize net;
  {
    net;
    hosts = hs;
    tors = ts;
    aggs = ags;
    cores = [| core |];
    edge_rate_bps;
    fabric_rate_bps;
    link_delay_s;
  }

let fat_tree engine counters ~k ~rate_bps ~link_delay_s ~qdisc =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let net = Net.create engine counters in
  let hosts = Array.init (k * half * half) (fun _ -> Net.add_host net) in
  let edges = Array.init (k * half) (fun _ -> Net.add_switch net) in
  let aggs = Array.init (k * half) (fun _ -> Net.add_switch net) in
  let cores = Array.init (half * half) (fun _ -> Net.add_switch net) in
  let connect a b =
    Net.connect net a b ~rate_bps ~delay_s:link_delay_s
      ~qdisc:(fun () -> qdisc ~rate_bps)
  in
  (* Hosts to edge switches: host i sits under edge (i / half). *)
  Array.iteri (fun i h -> connect h edges.(i / half)) hosts;
  (* Within pod p: every edge switch connects to every agg switch. *)
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        connect edges.((p * half) + e) aggs.((p * half) + a)
      done
    done
  done;
  (* Agg switch a of each pod connects to core group a: cores
     [a*half, (a+1)*half). *)
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        connect aggs.((p * half) + a) cores.((a * half) + c)
      done
    done
  done;
  Net.finalize net;
  {
    net;
    hosts;
    tors = edges;
    aggs;
    cores;
    edge_rate_bps = rate_bps;
    fabric_rate_bps = rate_bps;
    link_delay_s;
  }
