(** Data-center topology builders (paper §4.1, Figure 8).

    Both builders return a finalized {!Net.t} plus the node inventory needed
    by scenarios and by PASE's per-link arbitrators. *)

type t = {
  net : Net.t;
  hosts : int array;
  tors : int array;
  aggs : int array;
  cores : int array;
  edge_rate_bps : float;
  fabric_rate_bps : float;
  link_delay_s : float;  (** per directed link propagation delay *)
}

(** [tor_of t host] is the ToR switch node a host hangs off. *)
val tor_of : t -> int -> int

(** [agg_of t tor] is the aggregation switch above [tor] (three-tier only). *)
val agg_of : t -> int -> int

(** Base (zero-load) RTT between two hosts, including transmission time of a
    [data_bytes] segment and its [ack_bytes] ack at every hop. *)
val base_rtt : t -> src:int -> dst:int -> data_bytes:int -> float

(** [single_rack engine counters ~hosts ~rate_bps ~link_delay_s ~qdisc]
    builds a star: [hosts] hosts on one ToR. [qdisc] is invoked per directed
    link with the link rate so thresholds can scale with speed. *)
val single_rack :
  Engine.t ->
  Counters.t ->
  hosts:int ->
  rate_bps:float ->
  link_delay_s:float ->
  qdisc:(rate_bps:float -> Queue_disc.t) ->
  t

(** [three_tier engine counters ~hosts_per_tor ~tors ~aggs ...] builds the
    paper's baseline: [tors] ToR switches with [hosts_per_tor] hosts each,
    ToRs split evenly across [aggs] aggregation switches, all aggs on one
    core switch. Edge links run at [edge_rate_bps], ToR-Agg and Agg-Core at
    [fabric_rate_bps]. *)
val three_tier :
  Engine.t ->
  Counters.t ->
  hosts_per_tor:int ->
  tors:int ->
  aggs:int ->
  edge_rate_bps:float ->
  fabric_rate_bps:float ->
  link_delay_s:float ->
  qdisc:(rate_bps:float -> Queue_disc.t) ->
  t

(** [fat_tree engine counters ~k ...] builds a k-ary fat-tree ([k] even):
    [k] pods of [k/2] edge and [k/2] aggregation switches, [(k/2)^2] core
    switches, [k/2] hosts per edge switch — [k^3/4] hosts total. All links
    run at [rate_bps]; flows spread over the equal-cost paths by the
    network's per-flow ECMP hash. Edge switches populate [tors],
    aggregation switches [aggs]. *)
val fat_tree :
  Engine.t ->
  Counters.t ->
  k:int ->
  rate_bps:float ->
  link_delay_s:float ->
  qdisc:(rate_bps:float -> Queue_disc.t) ->
  t
