(** Unidirectional link: a queue discipline drained at a fixed rate, followed
    by a propagation delay. Store-and-forward: a packet's transmission takes
    [8 * size / rate] seconds, after which it arrives [delay] seconds later
    at the receiving end's [deliver] callback. *)

type t

val create :
  Engine.t ->
  qdisc:Queue_disc.t ->
  rate_bps:float ->
  delay_s:float ->
  deliver:(Packet.t -> unit) ->
  t

(** [send t pkt] enqueues [pkt] and starts the transmitter if idle. *)
val send : t -> Packet.t -> unit

val rate_bps : t -> float
val delay_s : t -> float
val qdisc : t -> Queue_disc.t

(** Total bytes fully transmitted so far (utilization accounting). *)
val bytes_txed : t -> int

val busy : t -> bool
