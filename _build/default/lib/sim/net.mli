(** Network glue: nodes, links, static routing, and per-flow delivery.

    Build a network with [add_host]/[add_switch]/[connect], then call
    [finalize] to compute shortest-path routing tables. After that, hosts
    inject packets with [send] and receive them through handlers registered
    with [register_flow]. *)

type t

type node_kind = Host | Switch

val create : Engine.t -> Counters.t -> t
val engine : t -> Engine.t
val counters : t -> Counters.t

val add_host : t -> int
val add_switch : t -> int
val node_kind : t -> int -> node_kind
val node_count : t -> int

(** [connect t a b ~rate_bps ~delay_s ~qdisc] creates the two directed links
    [a -> b] and [b -> a], each with its own queue discipline obtained from
    [qdisc ()]. Must be called before [finalize]. *)
val connect :
  t -> int -> int -> rate_bps:float -> delay_s:float ->
  qdisc:(unit -> Queue_disc.t) -> unit

(** Compute routing tables (BFS shortest paths, keeping {e all} equal-cost
    next hops; flows are spread across them by a per-flow hash — ECMP).
    Must be called once, after all [connect]s. *)
val finalize : t -> unit

(** [send t pkt] injects [pkt] at its source host. *)
val send : t -> Packet.t -> unit

(** [register_flow t ~host ~flow f] routes packets of [flow] arriving at
    [host] to [f]. *)
val register_flow : t -> host:int -> flow:int -> (Packet.t -> unit) -> unit

val unregister_flow : t -> host:int -> flow:int -> unit

(** [route t ?flow ~src ~dst ()] is the node path [flow]'s packets take
    from [src] to [dst], inclusive (flows hash onto one of the equal-cost
    shortest paths). *)
val route : t -> ?flow:int -> src:int -> dst:int -> unit -> int list

(** Number of distinct shortest paths between two nodes. *)
val path_count : t -> src:int -> dst:int -> int

(** [link_from t a b] is the directed link [a -> b], if the nodes are
    adjacent. *)
val link_from : t -> int -> int -> Link.t option

(** All directed links as [(from, to, link)]. *)
val links : t -> (int * int * Link.t) list
