type kind = Data | Ack | Probe | Probe_ack | Ctrl

type t = {
  id : int;
  flow : int;
  src : int;
  dst : int;
  kind : kind;
  size : int;
  seq : int;
  ack : int;
  sack : int;
  mutable prio : float;
  mutable tos : int;
  mutable ecn_capable : bool;
  mutable ecn_ce : bool;
  ecn_echo : bool;
  sent_at : float;
}

let header_bytes = 40
let ack_bytes = 40
let probe_bytes = 40
let ctrl_bytes = 64

let next_id = ref 0
let reset_ids () = next_id := 0

let make ~flow ~src ~dst ~kind ~size ~seq ?(ack = -1) ?(sack = -1) ?(prio = 0.)
    ?(tos = 0) ?(ecn_capable = true) ?(ecn_echo = false) ~sent_at () =
  let id = !next_id in
  incr next_id;
  {
    id;
    flow;
    src;
    dst;
    kind;
    size;
    seq;
    ack;
    sack;
    prio;
    tos;
    ecn_capable;
    ecn_ce = false;
    ecn_echo;
    sent_at;
  }

let kind_str = function
  | Data -> "data"
  | Ack -> "ack"
  | Probe -> "probe"
  | Probe_ack -> "probe-ack"
  | Ctrl -> "ctrl"

let pp fmt p =
  Format.fprintf fmt "#%d %s flow=%d %d->%d seq=%d ack=%d size=%d tos=%d prio=%g"
    p.id (kind_str p.kind) p.flow p.src p.dst p.seq p.ack p.size p.tos p.prio
