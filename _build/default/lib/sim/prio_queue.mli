(** Strict-priority multi-band queue (commodity-switch PRIO/CBQ model).

    [bands] FIFO bands share one buffer pool of [limit_pkts] packets; band 0
    has the highest priority and is always drained first. Each band applies
    DCTCP-style CE marking when its own instantaneous occupancy reaches
    [mark_threshold].

    Overflow policy models dynamic shared-buffer management: when the pool is
    full, an arriving packet pushes out a queued packet from the
    lowest-priority non-empty band strictly below its own band; if no such
    band exists the arrival is dropped. *)

val create :
  Counters.t ->
  bands:int ->
  limit_pkts:int ->
  mark_threshold:int ->
  Queue_disc.t

(** [band_occupancy q i] — packets currently queued in band [i] of a queue
    created by {!create}. Only valid on the most recently created instance
    passed back via the returned closure record; exposed for tests through
    {!create_with_inspect}. *)

val create_with_inspect :
  Counters.t ->
  bands:int ->
  limit_pkts:int ->
  mark_threshold:int ->
  Queue_disc.t * (int -> int)
