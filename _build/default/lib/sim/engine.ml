type event = { fn : unit -> unit; mutable live : bool }

type t = {
  heap : event Eheap.t;
  mutable time : float;
  mutable seq : int;
  mutable processed : int;
  mutable stopped : bool;
}

type cancel = unit -> unit

let create () =
  { heap = Eheap.create (); time = 0.; seq = 0; processed = 0; stopped = false }

let now t = t.time

let schedule_at t ~time fn =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.time);
  let e = { fn; live = true } in
  Eheap.add t.heap ~time ~seq:t.seq e;
  t.seq <- t.seq + 1

let schedule t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.time +. delay) fn

let schedule_cancellable t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let e = { fn; live = true } in
  Eheap.add t.heap ~time:(t.time +. delay) ~seq:t.seq e;
  t.seq <- t.seq + 1;
  fun () -> e.live <- false

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && not t.stopped do
    match Eheap.pop t.heap with
    | None -> continue := false
    | Some (time, e) ->
        if not e.live then ()
        else begin
          (match until with
          | Some horizon when time > horizon ->
              (* Push the event back and stop: it belongs to the future. *)
              let seq = t.seq in
              t.seq <- seq + 1;
              Eheap.add t.heap ~time ~seq e;
              continue := false
          | _ ->
              t.time <- time;
              t.processed <- t.processed + 1;
              e.fn ();
              decr budget;
              if !budget <= 0 then continue := false)
        end
  done

let stop t = t.stopped <- true
let events_processed t = t.processed
let pending t = Eheap.size t.heap
