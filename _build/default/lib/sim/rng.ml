type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to OCaml's native non-negative int range (Int64.to_int wraps). *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod n

(* 53 uniformly distributed mantissa bits in [0, 1). *)
let unit_float t =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let float t x =
  if x <= 0. then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. x

let uniform t a b =
  if a >= b then invalid_arg "Rng.uniform: empty interval";
  a +. (unit_float t *. (b -. a))

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. unit_float t in
  -.mean *. log u

let bool t = Int64.logand (bits64 t) 1L = 1L
