lib/sim/eheap.mli:
