lib/sim/queue_disc.ml: Counters Packet Queue
