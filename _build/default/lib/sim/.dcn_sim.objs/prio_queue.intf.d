lib/sim/prio_queue.mli: Counters Queue_disc
