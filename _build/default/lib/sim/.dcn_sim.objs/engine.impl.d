lib/sim/engine.ml: Eheap Printf
