lib/sim/net.mli: Counters Engine Link Packet Queue_disc
