lib/sim/engine.mli:
