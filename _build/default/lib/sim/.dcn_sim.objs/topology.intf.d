lib/sim/topology.mli: Counters Engine Net Queue_disc
