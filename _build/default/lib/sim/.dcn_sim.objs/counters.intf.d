lib/sim/counters.mli:
