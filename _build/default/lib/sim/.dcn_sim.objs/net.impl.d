lib/sim/net.ml: Array Counters Engine Hashtbl Int64 Link List Packet Queue
