lib/sim/pfabric_queue.ml: Array Packet Queue_disc
