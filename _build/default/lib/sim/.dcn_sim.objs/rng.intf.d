lib/sim/rng.mli:
