lib/sim/topology.ml: Array Link List Net Packet
