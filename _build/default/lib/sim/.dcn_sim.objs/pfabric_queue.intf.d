lib/sim/pfabric_queue.mli: Counters Queue_disc
