lib/sim/telemetry.ml: Engine Float Link List Queue_disc
