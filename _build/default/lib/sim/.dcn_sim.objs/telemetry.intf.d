lib/sim/telemetry.mli: Engine Link
