lib/sim/prio_queue.ml: Array Counters Packet Queue Queue_disc
