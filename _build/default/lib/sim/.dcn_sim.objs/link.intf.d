lib/sim/link.mli: Engine Packet Queue_disc
