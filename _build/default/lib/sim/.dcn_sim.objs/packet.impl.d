lib/sim/packet.ml: Format
