lib/sim/queue_disc.mli: Counters Packet
