lib/sim/counters.ml:
