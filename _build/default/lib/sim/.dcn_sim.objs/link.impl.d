lib/sim/link.ml: Engine Packet Queue_disc
