type t = {
  enqueue : Packet.t -> unit;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;
  bytes : unit -> int;
}

let count_drop (c : Counters.t) (pkt : Packet.t) =
  c.dropped_pkts <- c.dropped_pkts + 1;
  c.dropped_bytes <- c.dropped_bytes + pkt.size;
  match pkt.kind with
  | Packet.Data -> c.dropped_data_pkts <- c.dropped_data_pkts + 1
  | Packet.Ack | Packet.Probe | Packet.Probe_ack | Packet.Ctrl -> ()

let count_enqueue (c : Counters.t) (pkt : Packet.t) =
  c.enqueued_pkts <- c.enqueued_pkts + 1;
  c.enqueued_bytes <- c.enqueued_bytes + pkt.size

let count_dequeue (c : Counters.t) (pkt : Packet.t) =
  c.dequeued_pkts <- c.dequeued_pkts + 1;
  c.dequeued_bytes <- c.dequeued_bytes + pkt.size

let fifo counters ~limit_pkts ~mark_threshold =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let enqueue pkt =
    if Queue.length q >= limit_pkts then count_drop counters pkt
    else begin
      (match mark_threshold with
      | Some k when pkt.Packet.ecn_capable && Queue.length q >= k ->
          pkt.Packet.ecn_ce <- true;
          counters.Counters.ecn_marked_pkts <-
            counters.Counters.ecn_marked_pkts + 1
      | _ -> ());
      Queue.push pkt q;
      bytes := !bytes + pkt.Packet.size;
      count_enqueue counters pkt
    end
  in
  let dequeue () =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
        bytes := !bytes - pkt.Packet.size;
        count_dequeue counters pkt;
        Some pkt
  in
  { enqueue; dequeue; pkts = (fun () -> Queue.length q); bytes = (fun () -> !bytes) }

let droptail counters ~limit_pkts = fifo counters ~limit_pkts ~mark_threshold:None

let red_ecn counters ~limit_pkts ~mark_threshold =
  fifo counters ~limit_pkts ~mark_threshold:(Some mark_threshold)
