(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from an explicit [t]
    so that a simulation is reproducible from its seed alone. *)

type t

(** [create seed] returns a generator whose stream is fully determined by
    [seed]. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing [t]. *)
val split : t -> t

(** [bits64 t] returns the next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t n] draws uniformly from [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** [float t x] draws uniformly from [0, x). Requires [x > 0]. *)
val float : t -> float -> float

(** [uniform t a b] draws uniformly from [a, b). Requires [a < b]. *)
val uniform : t -> float -> float -> float

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool
