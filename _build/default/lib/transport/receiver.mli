(** Per-flow receiver: tracks received segments, answers data with
    (cumulative + selective) acks that echo ECN marks, and answers probes
    with probe-acks stating whether the probed segment has arrived. *)

type t

(** [create net ~flow ~ack_tos ()] registers the receiver at [flow.dst].
    [ack_tos] is the priority band stamped on acks (acks are header-only and
    ride the highest band in PASE). [ack_prio] is the pFabric priority for
    acks (default 0 = most important). *)
val create : Net.t -> flow:Flow.t -> ?ack_tos:int -> ?ack_prio:float -> unit -> t

(** First segment index not yet received. *)
val cum_ack : t -> int

(** Total distinct segments received. *)
val received_pkts : t -> int

(** Unregister the receiver's handler. *)
val stop : t -> unit
