let conf ?(init_rtt = 0.0003) () =
  {
    Sender_base.default_conf with
    Sender_base.init_cwnd = 10.;
    min_rto = 0.010;
    init_rtt;
    ecn_capable = true;
  }

let create net ~flow ?conf:(c = conf ()) ~on_complete () =
  let st = Ecn_cc.create_state () in
  let hooks =
    Ecn_cc.hooks st
      ~increase_weight:(fun _ -> 1.)
      ~cut_multiplier:(fun st _ -> 1. -. (Ecn_cc.alpha st /. 2.))
  in
  Sender_base.create net ~flow ~conf:c ~hooks ~on_complete ()
