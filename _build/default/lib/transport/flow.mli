(** Flow descriptors shared by every transport. *)

type t = {
  id : int;
  src : int;  (** source host node id *)
  dst : int;  (** destination host node id *)
  size_pkts : int;  (** flow size in MSS segments; [max_int] = long-lived *)
  start_time : float;
  deadline : float option;  (** relative deadline in seconds, if any *)
}

(** Size treated as "long-lived / runs forever". *)
val long_lived_size : int

val is_long_lived : t -> bool

val make :
  id:int -> src:int -> dst:int -> size_pkts:int -> start_time:float ->
  ?deadline:float -> unit -> t

(** Absolute deadline, if any. *)
val absolute_deadline : t -> float option

(** [size_pkts_of_bytes ~mss bytes] converts a byte size to segments. *)
val size_pkts_of_bytes : mss:int -> int -> int
