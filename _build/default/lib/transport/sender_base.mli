(** Shared sender machinery for window- and rate-based transports.

    The base owns reliability (per-segment state, cumulative + selective
    acks, duplicate-ack fast retransmit, RTO with exponential backoff, RTT
    estimation) and the send loop (ack-clocked by default, paced when the
    protocol supplies a rate). Protocols supply congestion control and
    packet stamping through {!hooks}. *)

type t

type hooks = {
  stamp : t -> Packet.t -> unit;
      (** set [tos]/[prio]/ECN on every outgoing data or probe packet *)
  on_ack : t -> ecn:bool -> newly_acked:int -> unit;
      (** congestion-control reaction to an (s)ack; [ecn] is the echo bit *)
  on_fast_retransmit : t -> unit;
      (** loss inferred from 3 duplicate acks (at most once per window) *)
  on_timeout : t -> [ `Default | `Handled ];
      (** RTO fired. [`Default] runs {!default_timeout_action}; [`Handled]
          means the protocol did its own recovery (e.g. PASE probes). The
          base always backs off and re-arms the timer afterwards. *)
  allow_send : t -> bool;  (** gate for new transmissions (reorder guard) *)
  pacing_rate : t -> float option;
      (** [Some bps]: paced sending at that rate; [None]: ack-clocked *)
  base_rto : t -> float;  (** protocol RTO floor (may vary over time) *)
}

type conf = {
  mss : int;  (** payload bytes per segment *)
  init_cwnd : float;
  max_cwnd : float;
  init_ssthresh : float;
  min_rto : float;
  max_rto : float;
  init_rtt : float;  (** seeds the RTT estimator *)
  ecn_capable : bool;
}

val default_conf : conf

(** Hooks implementing a plain protocol: stamp nothing, constant window,
    default timeout. Building block for real protocols via record update. *)
val default_hooks : hooks

val create :
  Net.t ->
  flow:Flow.t ->
  conf:conf ->
  ?hooks:hooks ->
  on_complete:(t -> fct:float -> unit) ->
  unit ->
  t

(** Register the flow handler and send the initial window. *)
val start : t -> unit

(** Kick the send loop (call after changing cwnd, gates, or pacing rate). *)
val try_send : t -> unit

(** Abort the flow: cancel timers and unregister handlers. *)
val cancel : t -> unit

(** Send a header-only probe for the first unacked segment (stamped via
    [hooks.stamp]). At most one probe is outstanding at a time. *)
val send_probe : t -> unit

(** The standard timeout action: mark all in-flight segments lost, collapse
    cwnd to 1 (ssthresh halved), and retransmit. *)
val default_timeout_action : t -> unit

(** {2 Accessors used by protocol hooks} *)

val net : t -> Net.t
val engine : t -> Engine.t
val flow : t -> Flow.t
val conf : t -> conf
val set_hooks : t -> hooks -> unit
val cwnd : t -> float
val set_cwnd : t -> float -> unit
val ssthresh : t -> float
val set_ssthresh : t -> float -> unit
val srtt : t -> float
val acked_pkts : t -> int

(** [size - acked], >= 0; huge for long flows. *)
val remaining_pkts : t -> int

(** Highest segment index ever sent + 1. *)
val sent_new_pkts : t -> int

val cum_ack : t -> int
val inflight : t -> int
val completed : t -> bool
val consecutive_timeouts : t -> int
