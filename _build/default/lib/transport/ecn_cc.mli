(** Shared DCTCP-style ECN congestion control (paper §3.2 control laws).

    Maintains the EWMA fraction [alpha] of CE-marked acks per window and
    applies a multiplicative cut at most once per window of data. DCTCP,
    D2TCP and L2DCT differ only in the cut exponent and the additive
    increase weight, supplied as closures. *)

type state

val create_state : unit -> state

(** Current EWMA marking fraction in [0, 1]. *)
val alpha : state -> float

(** [hooks state ~increase_weight ~cut_multiplier] builds sender hooks.

    [increase_weight t] scales congestion-avoidance growth: cwnd increases
    by [w * newly_acked / cwnd] per ack (1.0 = standard).

    [cut_multiplier state t] is the factor applied to cwnd on an ECN-echo
    ack (e.g. [1 - alpha/2] for DCTCP). Applied at most once per window. *)
val hooks :
  state ->
  increase_weight:(Sender_base.t -> float) ->
  cut_multiplier:(state -> Sender_base.t -> float) ->
  Sender_base.hooks

(** EWMA gain [g] used for alpha (DCTCP recommends 1/16). *)
val gain : float

(** {2 Primitives for protocols with bespoke window laws (e.g. PASE)} *)

(** [observe state t ~ecn ~weight] does the per-ack alpha bookkeeping only:
    counts (marked) acks and folds the fraction into alpha once per window
    of data. *)
val observe : state -> Sender_base.t -> ecn:bool -> weight:int -> unit

(** [try_cut state t ~multiplier] applies [cwnd <- cwnd * multiplier] if no
    cut has happened in the current window of data yet. Returns whether the
    cut was applied. *)
val try_cut : state -> Sender_base.t -> multiplier:float -> bool
