let probe_after = 5

let conf ?(init_rtt = 0.0003) ?(init_cwnd = 38.) ?(min_rto = 0.001) () =
  {
    Sender_base.default_conf with
    Sender_base.init_cwnd;
    max_cwnd = init_cwnd;
    min_rto;
    init_rtt;
    ecn_capable = false;
  }

let create net ~flow ?conf:(c = conf ()) ~on_complete () =
  let stamp t (pkt : Packet.t) =
    pkt.Packet.prio <- float_of_int (Sender_base.remaining_pkts t);
    pkt.Packet.tos <- 0
  in
  let on_ack t ~ecn:_ ~newly_acked =
    (* Leaving probe mode: an ack means capacity freed up; resume full rate. *)
    if newly_acked > 0 && Sender_base.cwnd t < c.Sender_base.init_cwnd then
      Sender_base.set_cwnd t c.Sender_base.init_cwnd
  in
  let on_timeout t =
    Sender_base.default_timeout_action t;
    if Sender_base.consecutive_timeouts t < probe_after then
      Sender_base.set_cwnd t c.Sender_base.init_cwnd;
    Sender_base.try_send t;
    `Handled
  in
  let hooks =
    { Sender_base.default_hooks with Sender_base.stamp; on_ack; on_timeout }
  in
  Sender_base.create net ~flow ~conf:c ~hooks ~on_complete ()
