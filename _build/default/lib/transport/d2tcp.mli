(** D2TCP (Vamanan et al., SIGCOMM'12): deadline-aware DCTCP. The backoff is
    gamma-corrected by the deadline-imminence factor [d = Tc / D], clamped to
    [0.5, 2]: far-deadline flows back off more, near-deadline flows less. *)

val conf : ?init_rtt:float -> unit -> Sender_base.conf

(** Deadline-imminence factor for the sender's flow (exposed for tests). *)
val imminence : Sender_base.t -> float

val create :
  Net.t ->
  flow:Flow.t ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  Sender_base.t
