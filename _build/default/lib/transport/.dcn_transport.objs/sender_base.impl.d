lib/transport/sender_base.ml: Engine Float Flow Hashtbl Net Packet Seg_store
