lib/transport/d2tcp.ml: Dctcp Ecn_cc Engine Float Flow Sender_base
