lib/transport/sender_base.mli: Engine Flow Net Packet
