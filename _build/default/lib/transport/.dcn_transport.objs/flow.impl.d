lib/transport/flow.ml:
