lib/transport/pfabric_host.ml: Packet Sender_base
