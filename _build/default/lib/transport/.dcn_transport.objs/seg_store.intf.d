lib/transport/seg_store.mli:
