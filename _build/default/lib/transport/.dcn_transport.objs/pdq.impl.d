lib/transport/pdq.ml: Array Counters Engine Float Flow Hashtbl Link List Net Sender_base
