lib/transport/receiver.ml: Engine Flow Net Packet Seg_store
