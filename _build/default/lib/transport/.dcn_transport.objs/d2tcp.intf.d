lib/transport/d2tcp.mli: Flow Net Sender_base
