lib/transport/d3.mli: Flow Net Sender_base
