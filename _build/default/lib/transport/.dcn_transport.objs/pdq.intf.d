lib/transport/pdq.mli: Flow Net Sender_base
