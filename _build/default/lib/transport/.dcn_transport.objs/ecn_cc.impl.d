lib/transport/ecn_cc.ml: Float Sender_base
