lib/transport/flow.mli:
