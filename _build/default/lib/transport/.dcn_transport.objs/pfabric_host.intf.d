lib/transport/pfabric_host.mli: Flow Net Sender_base
