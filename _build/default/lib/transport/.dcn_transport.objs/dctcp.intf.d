lib/transport/dctcp.mli: Flow Net Sender_base
