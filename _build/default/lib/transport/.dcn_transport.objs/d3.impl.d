lib/transport/d3.ml: Counters Engine Float Flow Hashtbl Link List Net Sender_base
