lib/transport/dctcp.ml: Ecn_cc Sender_base
