lib/transport/ecn_cc.mli: Sender_base
