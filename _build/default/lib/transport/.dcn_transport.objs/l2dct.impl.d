lib/transport/l2dct.ml: Dctcp Ecn_cc Float Sender_base
