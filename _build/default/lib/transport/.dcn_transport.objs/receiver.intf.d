lib/transport/receiver.mli: Flow Net
