lib/transport/l2dct.mli: Flow Net Sender_base
