lib/transport/seg_store.ml: Bytes
