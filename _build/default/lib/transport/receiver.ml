type t = {
  net : Net.t;
  flow : Flow.t;
  ack_tos : int;
  ack_prio : float;
  received : Seg_store.t;  (* Acked = received *)
  mutable cum : int;
  mutable received_count : int;
}

let cum_ack t = t.cum
let received_pkts t = t.received_count

let send_reply t ~kind ~seq ~sack ~ecn_echo =
  let pkt =
    Packet.make ~flow:t.flow.Flow.id ~src:t.flow.Flow.dst ~dst:t.flow.Flow.src
      ~kind ~size:Packet.ack_bytes ~seq ~ack:t.cum ~sack
      ~prio:t.ack_prio ~tos:t.ack_tos ~ecn_capable:false ~ecn_echo
      ~sent_at:(Engine.now (Net.engine t.net)) ()
  in
  Net.send t.net pkt

let handle t (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Data ->
      let seq = pkt.Packet.seq in
      if Seg_store.get t.received seq <> Seg_store.Acked then begin
        Seg_store.set t.received seq Seg_store.Acked;
        t.received_count <- t.received_count + 1;
        while Seg_store.get t.received t.cum = Seg_store.Acked do
          t.cum <- t.cum + 1
        done
      end;
      send_reply t ~kind:Packet.Ack ~seq ~sack:seq ~ecn_echo:pkt.Packet.ecn_ce
  | Packet.Probe ->
      let seq = pkt.Packet.seq in
      let got = Seg_store.get t.received seq = Seg_store.Acked in
      send_reply t ~kind:Packet.Probe_ack ~seq
        ~sack:(if got then seq else -1)
        ~ecn_echo:pkt.Packet.ecn_ce
  | Packet.Ack | Packet.Probe_ack | Packet.Ctrl -> ()

let create net ~flow ?(ack_tos = 0) ?(ack_prio = 0.) () =
  let t =
    {
      net;
      flow;
      ack_tos;
      ack_prio;
      received = Seg_store.create ();
      cum = 0;
      received_count = 0;
    }
  in
  Net.register_flow net ~host:flow.Flow.dst ~flow:flow.Flow.id (handle t);
  t

let stop t = Net.unregister_flow t.net ~host:t.flow.Flow.dst ~flow:t.flow.Flow.id
