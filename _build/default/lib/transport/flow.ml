type t = {
  id : int;
  src : int;
  dst : int;
  size_pkts : int;
  start_time : float;
  deadline : float option;
}

let long_lived_size = max_int / 2
let is_long_lived t = t.size_pkts >= long_lived_size

let make ~id ~src ~dst ~size_pkts ~start_time ?deadline () =
  if size_pkts <= 0 then invalid_arg "Flow.make: size must be positive";
  { id; src; dst; size_pkts; start_time; deadline }

let absolute_deadline t =
  match t.deadline with None -> None | Some d -> Some (t.start_time +. d)

let size_pkts_of_bytes ~mss bytes =
  if bytes <= 0 then invalid_arg "Flow.size_pkts_of_bytes: non-positive size";
  (bytes + mss - 1) / mss
