let conf = Dctcp.conf

let clamp lo hi v = Float.max lo (Float.min hi v)

let imminence t =
  let flow = Sender_base.flow t in
  match Flow.absolute_deadline flow with
  | None -> 1.
  | Some abs_deadline ->
      let now = Engine.now (Sender_base.engine t) in
      let time_left = abs_deadline -. now in
      if time_left <= 0. then 2.
      else
        (* Tc: time to finish at the current rate cwnd / srtt. *)
        let tc =
          float_of_int (Sender_base.remaining_pkts t)
          *. Sender_base.srtt t /. Float.max 1. (Sender_base.cwnd t)
        in
        clamp 0.5 2. (tc /. time_left)

let create net ~flow ?conf:(c = conf ()) ~on_complete () =
  let st = Ecn_cc.create_state () in
  let hooks =
    Ecn_cc.hooks st
      ~increase_weight:(fun _ -> 1.)
      ~cut_multiplier:(fun st t ->
        (* p = alpha^d: d > 1 (urgent) shrinks p, gentler backoff. *)
        let p = Ecn_cc.alpha st ** imminence t in
        1. -. (p /. 2.))
  in
  Sender_base.create net ~flow ~conf:c ~hooks ~on_complete ()
