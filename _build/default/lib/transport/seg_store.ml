type status = Unsent | Inflight | Acked | Lost

type t = { mutable buf : Bytes.t }

let create () = { buf = Bytes.make 256 '\000' }

let code = function Unsent -> '\000' | Inflight -> '\001' | Acked -> '\002' | Lost -> '\003'

let decode = function
  | '\000' -> Unsent
  | '\001' -> Inflight
  | '\002' -> Acked
  | '\003' -> Lost
  | _ -> assert false

let ensure t i =
  let n = Bytes.length t.buf in
  if i >= n then begin
    let m = max (2 * n) (i + 1) in
    let nb = Bytes.make m '\000' in
    Bytes.blit t.buf 0 nb 0 n;
    t.buf <- nb
  end

let get t i = if i >= Bytes.length t.buf then Unsent else decode (Bytes.get t.buf i)

let set t i s =
  ensure t i;
  Bytes.set t.buf i (code s)
