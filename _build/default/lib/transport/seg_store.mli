(** Growable per-segment state store for senders. Constant-time get/set with
    amortized growth; unset segments read as {!Unsent}. *)

type status = Unsent | Inflight | Acked | Lost

type t

val create : unit -> t
val get : t -> int -> status
val set : t -> int -> status -> unit
