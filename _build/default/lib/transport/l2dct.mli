(** L2DCT (Munir et al., INFOCOM'13): size-aware DCTCP. Flows that have sent
    little data grow faster and back off less than heavy flows,
    approximating least-attained-service scheduling on top of ECN.

    The weight schedule here linearly interpolates between [w_max] (a flow
    that has sent nothing) and [w_min] (a flow past [ref_bytes]), which
    matches the shape of the published per-bin weights. *)

val conf : ?init_rtt:float -> unit -> Sender_base.conf

val w_min : float
val w_max : float
val ref_bytes : int

(** Increase weight for a flow that has sent [sent] bytes. *)
val weight_of_sent : int -> float

val create :
  Net.t ->
  flow:Flow.t ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  Sender_base.t
