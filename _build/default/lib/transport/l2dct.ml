let conf = Dctcp.conf

let w_min = 0.125
let w_max = 2.5
let ref_bytes = 1_000_000

let weight_of_sent sent =
  let frac = Float.min 1. (float_of_int sent /. float_of_int ref_bytes) in
  w_max -. ((w_max -. w_min) *. frac)

let sent_bytes t =
  Sender_base.acked_pkts t * (Sender_base.conf t).Sender_base.mss

let create net ~flow ?conf:(c = conf ()) ~on_complete () =
  let st = Ecn_cc.create_state () in
  let hooks =
    Ecn_cc.hooks st
      ~increase_weight:(fun t -> weight_of_sent (sent_bytes t))
      ~cut_multiplier:(fun st t ->
        (* Heavy flows take the full DCTCP cut; light flows a gentler one,
           scaled by how much of the reference size they have sent. *)
        let sent_frac =
          Float.min 1. (float_of_int (sent_bytes t) /. float_of_int ref_bytes)
        in
        let b = 0.5 +. (0.5 *. sent_frac) in
        1. -. (Ecn_cc.alpha st *. b /. 2.))
  in
  Sender_base.create net ~flow ~conf:c ~hooks ~on_complete ()
