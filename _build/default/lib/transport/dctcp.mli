(** DCTCP (Alizadeh et al., SIGCOMM'10): ECN-fraction-proportional backoff,
    fair sharing. The deployment-friendly baseline of the paper. *)

(** Default sender configuration (Table 3: min RTO 10 ms). *)
val conf : ?init_rtt:float -> unit -> Sender_base.conf

val create :
  Net.t ->
  flow:Flow.t ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  Sender_base.t
