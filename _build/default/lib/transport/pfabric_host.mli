(** pFabric end-host (Alizadeh et al., SIGCOMM'13): minimal rate control.

    Flows start at a fixed window of one BDP, stamp every packet with the
    flow's remaining size as its in-network priority, and rely on
    {!Pfabric_queue} for scheduling and dropping. Loss recovery uses a small
    RTO; after [probe_after] consecutive timeouts the flow enters probe mode
    (window 1) until an ack gets through. *)

val probe_after : int

(** Table 3: init cwnd 38 segments (= BDP), min RTO 1 ms. *)
val conf : ?init_rtt:float -> ?init_cwnd:float -> ?min_rto:float -> unit -> Sender_base.conf

val create :
  Net.t ->
  flow:Flow.t ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  Sender_base.t
