let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile p xs =
  if xs = [] then invalid_arg "Summary.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let min = function
  | [] -> nan
  | x :: xs -> List.fold_left Stdlib.min x xs

let max = function
  | [] -> nan
  | x :: xs -> List.fold_left Stdlib.max x xs

let cdf ?(points = 100) xs =
  if xs = [] then []
  else begin
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    List.init points (fun i ->
        let q = float_of_int (i + 1) /. float_of_int points in
        let idx = Stdlib.min (n - 1) (int_of_float (q *. float_of_int n) - 1) in
        (a.(Stdlib.max 0 idx), q))
  end
