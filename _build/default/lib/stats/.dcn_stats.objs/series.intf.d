lib/stats/series.mli:
