lib/stats/fct.mli:
