lib/stats/summary.mli:
