lib/stats/summary.ml: Array List Stdlib
