lib/stats/series.ml: Array List Printf String
