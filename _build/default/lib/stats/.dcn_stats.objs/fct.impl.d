lib/stats/fct.ml: Float Hashtbl List Summary
