type t = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (float * float list) list;
}

let make ~title ~x_label ~columns ~rows =
  List.iter
    (fun (_, ys) ->
      if List.length ys <> List.length columns then
        invalid_arg "Series.make: row arity mismatch")
    rows;
  { title; x_label; columns; rows }

let render_table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  print_endline (line header);
  print_endline sep;
  List.iter (fun row -> print_endline (line row)) rows

let print ?(fmt_y = Printf.sprintf "%.3f") t =
  Printf.printf "\n== %s ==\n" t.title;
  let header = t.x_label :: t.columns in
  let rows =
    List.map
      (fun (x, ys) -> Printf.sprintf "%g" x :: List.map fmt_y ys)
      t.rows
  in
  render_table header rows;
  print_newline ()

let print_table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  render_table header rows;
  print_newline ()
