(** Pretty-printing of benchmark series as aligned text tables, matching the
    "one row per x-value, one column per scheme" layout of the paper's
    figures. *)

type t = {
  title : string;
  x_label : string;
  columns : string list;  (** column (scheme) names *)
  rows : (float * float list) list;  (** x value, one y per column *)
}

val make :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> t

(** Render with a given y formatter (defaults to [%.3f]). *)
val print : ?fmt_y:(float -> string) -> t -> unit

(** Render a raw string table (for Tables 1-3). *)
val print_table : title:string -> header:string list -> string list list -> unit
