(** Small numeric helpers over float samples. *)

val mean : float list -> float

(** [percentile p xs] with [p] in [0, 100]; nearest-rank on the sorted
    sample. Raises [Invalid_argument] on an empty list. *)
val percentile : float -> float list -> float

val min : float list -> float
val max : float list -> float

(** Empirical CDF: for each of [points] evenly spaced quantiles q in (0,1],
    the pair [(value at q, q)]. *)
val cdf : ?points:int -> float list -> (float * float) list
