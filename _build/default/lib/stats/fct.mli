(** Flow-completion-time collection. *)

type record = {
  flow : int;
  size_pkts : int;
  start_time : float;
  fct : float;  (** seconds; for censored flows, time until the horizon *)
  deadline : float option;  (** relative deadline, if any *)
  censored : bool;  (** did not finish before the simulation horizon *)
  ideal : float option;
      (** the flow's zero-load FCT (base RTT + serialization), if known *)
  task : int option;  (** task (query) id, for task-completion metrics *)
}

type t

val create : unit -> t

val add :
  t ->
  flow:int ->
  size_pkts:int ->
  start_time:float ->
  fct:float ->
  ?deadline:float ->
  ?censored:bool ->
  ?ideal:float ->
  ?task:int ->
  unit ->
  unit

val records : t -> record list
val count : t -> int
val censored_count : t -> int

(** FCTs (seconds) of completed, non-censored flows. *)
val completed_fcts : t -> float list

(** Average FCT over non-censored flows (seconds). *)
val afct : t -> float

(** [percentile t p] over non-censored flows. *)
val percentile : t -> float -> float

(** Fraction of deadline-carrying flows that finished within their deadline
    (censored flows count as missed). [nan] if no flow had a deadline. *)
val deadline_met_fraction : t -> float

(** Average FCT of completed flows whose size (in segments) lies in
    [lo, hi). [nan] if the bucket is empty. *)
val bucket_afct : t -> lo:int -> hi:int -> float

(** Number of completed flows in the size bucket [lo, hi). *)
val bucket_count : t -> lo:int -> hi:int -> int

(** Mean slowdown (FCT / zero-load FCT) over completed flows that carry an
    [ideal]; [nan] if none do. *)
val mean_slowdown : t -> float

(** 99th-percentile slowdown; [nan] if no flow carries an [ideal]. *)
val p99_slowdown : t -> float

(** Completion time of each task (last member finish minus first member
    start), over tasks with no censored member. *)
val task_completion_times : t -> float list
