lib/core/pase_host.ml: Config Ecn_cc Float Flow Hierarchy Packet Sender_base
