lib/core/arbitration.ml: Float List
