lib/core/pase_host.mli: Config Flow Hierarchy Net Sender_base
