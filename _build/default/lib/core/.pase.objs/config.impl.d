lib/core/config.ml:
