lib/core/arbitration.mli:
