lib/core/arbitrator.ml: Arbitration Array Hashtbl List
