lib/core/hierarchy.mli: Arbitrator Config Counters Engine Flow Topology
