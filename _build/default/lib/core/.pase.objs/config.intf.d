lib/core/config.mli:
