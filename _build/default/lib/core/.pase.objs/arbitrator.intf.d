lib/core/arbitrator.mli:
