lib/core/hierarchy.ml: Arbitrator Array Config Counters Engine Float Flow Hashtbl Link List Net Rng Stdlib Topology
