(** Algorithm 1 (paper §3.1.1), as a pure function over a priority-sorted
    flow list. Kept separate from {!Arbitrator} state so the algorithm's
    invariants can be property-tested in isolation. *)

type input = {
  flow : int;
  criterion : float;  (** sort key: remaining size (SRPT) or deadline (EDF) *)
  demand_bps : float;  (** max rate the source can use *)
}

type output = {
  out_flow : int;
  queue : int;  (** 0 = highest-priority queue *)
  rref_bps : float;  (** reference rate *)
}

(** [assign ~capacity_bps ~num_queues ~base_rate_bps flows] computes, for
    every flow, its priority queue and reference rate.

    Flows are processed in increasing [(criterion, flow)] order. Let ADH be
    the aggregate demand of strictly higher-priority flows:
    - ADH < C: queue 0 and [rref = min demand (C - ADH)];
    - otherwise queue [floor(ADH/C)] capped at [num_queues - 1], with
      [rref = base_rate_bps] (one packet per RTT). *)
val assign :
  capacity_bps:float ->
  num_queues:int ->
  base_rate_bps:float ->
  input list ->
  output list
