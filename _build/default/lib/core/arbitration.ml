type input = { flow : int; criterion : float; demand_bps : float }
type output = { out_flow : int; queue : int; rref_bps : float }

let assign ~capacity_bps ~num_queues ~base_rate_bps flows =
  if capacity_bps <= 0. then invalid_arg "Arbitration.assign: capacity";
  if num_queues <= 0 then invalid_arg "Arbitration.assign: num_queues";
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.criterion b.criterion in
        if c <> 0 then c else compare a.flow b.flow)
      flows
  in
  let adh = ref 0. in
  List.map
    (fun f ->
      let out =
        if !adh < capacity_bps then
          {
            out_flow = f.flow;
            queue = 0;
            rref_bps = Float.min f.demand_bps (capacity_bps -. !adh);
          }
        else
          (* Queue k serves aggregate higher-priority demand in
             [kC, (k+1)C): a flow behind exactly C of demand goes to the
             second queue, keeping strict priority between a saturating
             flow and its successor. *)
          let q = int_of_float (Float.floor (!adh /. capacity_bps)) in
          {
            out_flow = f.flow;
            queue = min q (num_queues - 1);
            rref_bps = base_rate_bps;
          }
      in
      adh := !adh +. f.demand_bps;
      out)
    sorted
