type scheduling = Srpt | Edf | Task_aware

type t = {
  num_queues : int;
  arb_period : float;
  early_pruning : bool;
  prune_top_k : int;
  delegation : bool;
  delegation_period : float;
  local_only : bool;
  use_probes : bool;
  use_ref_rate : bool;
  scheduling : scheduling;
  rto_top : float;
  rto_low : float;
  ctrl_proc_delay : float;
  ctrl_loss_prob : float;
  state_expiry_rounds : int;
  queue_limit_pkts : int;
  mark_threshold : int;
}

let default =
  {
    num_queues = 8;
    arb_period = 0.0003;
    early_pruning = true;
    prune_top_k = 2;
    delegation = true;
    delegation_period = 0.0009;
    local_only = false;
    use_probes = true;
    use_ref_rate = true;
    scheduling = Srpt;
    rto_top = 0.010;
    rto_low = 0.200;
    ctrl_proc_delay = 0.00001;
    ctrl_loss_prob = 0.;
    state_expiry_rounds = 20;
    queue_limit_pkts = 500;
    mark_threshold = 20;
  }

let switch_survey =
  [
    ("BCM56820", "Broadcom", 10, true);
    ("G8264", "IBM", 8, true);
    ("7050S", "Arista", 7, true);
    ("EX3300", "Juniper", 5, false);
    ("S4810", "Dell", 3, true);
  ]
