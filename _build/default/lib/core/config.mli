(** PASE parameters (paper Table 3 and §3) and static survey data. *)

type scheduling =
  | Srpt  (** shortest remaining size first *)
  | Edf  (** earliest deadline first *)
  | Task_aware
      (** tasks (e.g. partition-aggregate queries) scheduled FIFO by task
          arrival, all flows of a task sharing one criterion (§3.1.1's
          task-id criterion, after Baraat) *)

type t = {
  num_queues : int;  (** priority queues in switches (default 8) *)
  arb_period : float;  (** seconds between arbitration rounds (≈ 1 RTT) *)
  early_pruning : bool;
  prune_top_k : int;
      (** flows outside the top [k] queues stop propagating upward (§3.1.2;
          the paper finds k = 2 the sweet spot) *)
  delegation : bool;
  delegation_period : float;  (** virtual-link capacity rebalance interval *)
  local_only : bool;  (** arbitrate access links only (Fig 12a ablation) *)
  use_probes : bool;  (** probe-based loss recovery in low queues (§3.2) *)
  use_ref_rate : bool;  (** guided rate control; false = PASE-DCTCP (Fig 13a) *)
  scheduling : scheduling;
  rto_top : float;  (** min RTO for top-queue flows (10 ms) *)
  rto_low : float;  (** min RTO for lower-queue flows (200 ms) *)
  ctrl_proc_delay : float;  (** arbitrator per-message processing delay *)
  ctrl_loss_prob : float;
      (** probability that one arbitration contact's messages are lost in a
          round (failure injection; soft state + expiry keep the system
          correct) *)
  state_expiry_rounds : int;
      (** arbitrator entries not refreshed for this many rounds are dropped
          (soft-state expiry for dead or unreachable sources) *)
  queue_limit_pkts : int;  (** shared prio-queue buffer (500 pkts) *)
  mark_threshold : int;  (** per-band ECN threshold K *)
}

val default : t

(** Commodity top-of-rack switch survey (paper Table 2):
    (model, vendor, priority queues per interface, ECN support). *)
val switch_survey : (string * string * int * bool) list
