type t = { sample : Rng.t -> float; mean : float; name : string }

let uniform a b =
  if a > b then invalid_arg "Dist.uniform: empty interval";
  {
    sample = (fun rng -> if a = b then a else Rng.uniform rng a b);
    mean = (a +. b) /. 2.;
    name = Printf.sprintf "U[%g,%g]" a b;
  }

let constant v =
  { sample = (fun _ -> v); mean = v; name = Printf.sprintf "const %g" v }

let exponential ~mean =
  {
    sample = (fun rng -> Rng.exponential rng ~mean);
    mean;
    name = Printf.sprintf "Exp(%g)" mean;
  }

let choice xs =
  match xs with
  | [] -> invalid_arg "Dist.choice: empty"
  | _ ->
      let arr = Array.of_list xs in
      {
        sample = (fun rng -> arr.(Rng.int rng (Array.length arr)));
        mean = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs);
        name = "choice";
      }

let sample_int t rng = int_of_float (Float.round (t.sample rng))

let piecewise ~name points =
  (match points with
  | [] | [ _ ] -> invalid_arg "Dist.piecewise: need at least two points"
  | (_, p0) :: _ ->
      if p0 <> 0. then invalid_arg "Dist.piecewise: first probability must be 0");
  let rec validate = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        if v2 < v1 || p2 < p1 then
          invalid_arg "Dist.piecewise: breakpoints must be non-decreasing";
        validate rest
    | [ (_, plast) ] ->
        if plast <> 1. then
          invalid_arg "Dist.piecewise: last probability must be 1"
    | [] -> ()
  in
  validate points;
  let arr = Array.of_list points in
  let sample rng =
    let u = Rng.float rng 1.0 in
    (* Find the segment [p_i, p_{i+1}) containing u. *)
    let rec seg i =
      if i >= Array.length arr - 2 then Array.length arr - 2
      else if u < snd arr.(i + 1) then i
      else seg (i + 1)
    in
    let i = seg 0 in
    let v1, p1 = arr.(i) and v2, p2 = arr.(i + 1) in
    if p2 = p1 then v1 else v1 +. ((v2 -. v1) *. (u -. p1) /. (p2 -. p1))
  in
  (* Mean of the piecewise-linear interpolation: each segment contributes
     its probability mass times its midpoint. *)
  let mean = ref 0. in
  for i = 0 to Array.length arr - 2 do
    let v1, p1 = arr.(i) and v2, p2 = arr.(i + 1) in
    mean := !mean +. ((p2 -. p1) *. (v1 +. v2) /. 2.)
  done;
  { sample; mean = !mean; name }

(* Piecewise approximations of the flow-size CDFs used throughout the
   data-center transport literature (DCTCP production cluster and VL2). *)
let web_search_bytes =
  piecewise ~name:"web-search"
    [
      (1_000., 0.0);
      (10_000., 0.15);
      (20_000., 0.25);
      (30_000., 0.35);
      (50_000., 0.45);
      (100_000., 0.53);
      (300_000., 0.60);
      (1_000_000., 0.70);
      (2_000_000., 0.80);
      (5_000_000., 0.90);
      (10_000_000., 0.97);
      (30_000_000., 1.0);
    ]

let data_mining_bytes =
  piecewise ~name:"data-mining"
    [
      (100., 0.0);
      (180., 0.10);
      (250., 0.20);
      (560., 0.30);
      (900., 0.40);
      (1_100., 0.50);
      (60_000., 0.60);
      (380_000., 0.70);
      (2_500_000., 0.80);
      (10_000_000., 0.90);
      (100_000_000., 1.0);
    ]
