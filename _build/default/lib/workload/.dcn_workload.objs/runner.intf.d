lib/workload/runner.mli: Config Fct Scenario
