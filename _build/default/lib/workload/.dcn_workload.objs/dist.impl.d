lib/workload/dist.ml: Array Float List Printf Rng
