lib/workload/dist.mli: Rng
