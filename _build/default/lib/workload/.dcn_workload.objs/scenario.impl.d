lib/workload/scenario.ml: Array Dist List Printf Rng Topology
