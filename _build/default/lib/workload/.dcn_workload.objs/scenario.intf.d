lib/workload/scenario.mli: Counters Dist Engine Queue_disc Topology
