(** Workload distributions with known means (so scenarios can convert an
    offered load into a Poisson arrival rate analytically). *)

type t = { sample : Rng.t -> float; mean : float; name : string }

(** Uniform on [a, b]. *)
val uniform : float -> float -> t

val constant : float -> t
val exponential : mean:float -> t

(** Uniform over an explicit choice list (equal weights). *)
val choice : float list -> t

(** [piecewise ~name points] builds a distribution from an empirical CDF
    given as [(value, cumulative probability)] breakpoints, sampled by
    inverse-transform with linear interpolation between breakpoints. The
    first point must have probability 0 and the last probability 1, with
    both coordinates non-decreasing. The mean is the exact mean of the
    interpolated distribution. *)
val piecewise : name:string -> (float * float) list -> t

(** The DCTCP/pFabric "web search" flow-size distribution (bytes):
    mice-heavy with a long multi-megabyte tail. Approximates the published
    CDF with piecewise-linear breakpoints. *)
val web_search_bytes : t

(** The VL2/pFabric "data mining" flow-size distribution (bytes): more than
    half the flows are tiny, most bytes live in >1 MB flows. *)
val data_mining_bytes : t

val sample_int : t -> Rng.t -> int
