module Router = struct
  type entry = { flow : int; mutable request_bps : float; arrival : int }

  type t = {
    capacity_bps : float;
    entries : (int, entry) Hashtbl.t;
    mutable next_arrival : int;
  }

  let create ~capacity_bps =
    { capacity_bps; entries = Hashtbl.create 32; next_arrival = 0 }

  let update t ~flow ~request_bps =
    match Hashtbl.find_opt t.entries flow with
    | Some e -> e.request_bps <- Float.max 0. request_bps
    | None ->
        Hashtbl.replace t.entries flow
          { flow; request_bps = Float.max 0. request_bps; arrival = t.next_arrival };
        t.next_arrival <- t.next_arrival + 1

  let remove t ~flow = Hashtbl.remove t.entries flow
  let flows t = Hashtbl.length t.entries

  (* Router crash / link outage: reservations at this router are lost and
     rebuilt from the hosts' per-RTT rate requests. [next_arrival] keeps
     counting so re-registered flows queue behind surviving FCFS order. *)
  let clear t = Hashtbl.reset t.entries

  let allocation t ~flow =
    let n = Hashtbl.length t.entries in
    if n = 0 then 0.
    else begin
      let sorted =
        Det_tbl.fold (fun _ e acc -> e :: acc) t.entries []
        |> List.sort (fun a b -> compare a.arrival b.arrival)
      in
      (* FCFS greedy satisfaction of reservations. *)
      let avail = ref t.capacity_bps in
      let granted = Hashtbl.create n in
      List.iter
        (fun e ->
          let g = Float.min e.request_bps !avail in
          Hashtbl.replace granted e.flow g;
          avail := !avail -. g)
        sorted;
      let fair = Float.max 0. !avail /. float_of_int n in
      match Hashtbl.find_opt granted flow with
      | Some g -> g +. fair
      | None -> 0.
    end
end

type host = {
  sender : Sender_base.t;
  routers : Router.t list;
  rtt : float;
  nic_bps : float;
  rate : float ref;
  stopped : bool ref;
  mutable tick_timer : Engine.timer option;  (* per-RTT refresh loop *)
}

let conf ?(init_rtt = 0.0003) () =
  {
    Sender_base.default_conf with
    Sender_base.init_cwnd = 1000.;
    max_cwnd = 1000.;
    min_rto = 0.010;
    init_rtt;
    ecn_capable = false;
  }

let sender h = h.sender
let current_rate h = !(h.rate)

let mss_bits h = float_of_int (8 * (Sender_base.conf h.sender).Sender_base.mss)

let counters h = Net.counters (Sender_base.net h.sender)

(* The rate that finishes the flow exactly at its deadline. *)
let desired_rate h =
  match Flow.absolute_deadline (Sender_base.flow h.sender) with
  | None -> 0.
  | Some abs_deadline ->
      let now = Engine.now (Sender_base.engine h.sender) in
      let left = abs_deadline -. now in
      let remaining_bits =
        float_of_int (Sender_base.remaining_pkts h.sender) *. mss_bits h
      in
      if left <= 0. then h.nic_bps else Float.min h.nic_bps (remaining_bits /. left)

let refresh h =
  if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
    let flow = (Sender_base.flow h.sender).Flow.id in
    let request = desired_rate h in
    List.iter
      (fun r ->
        Router.update r ~flow ~request_bps:request;
        let c = counters h in
        c.Counters.ctrl_msgs <- c.Counters.ctrl_msgs + 2)
      h.routers;
    let alloc =
      List.fold_left
        (fun acc r -> Float.min acc (Router.allocation r ~flow))
        h.nic_bps h.routers
    in
    (* Rate returns in the header one one-way delay later. *)
    Engine.schedule ~label:"d3-apply"
      (Sender_base.engine h.sender)
      ~delay:(h.rtt /. 2.)
      (fun () ->
        if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
          h.rate := alloc;
          if Trace.on () then
            Trace.emit (Trace.Rate { flow; rate_bps = alloc });
          Sender_base.try_send h.sender
        end)
  end

(* The per-RTT refresh loop rides one reschedulable engine timer per flow
   instead of allocating a closure every round. *)
let rec tick h =
  if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
    refresh h;
    let tm =
      match h.tick_timer with
      | Some tm -> tm
      | None ->
          let tm =
            Engine.timer ~label:"d3-tick"
              (Sender_base.engine h.sender)
              (fun () -> tick h)
          in
          h.tick_timer <- Some tm;
          tm
    in
    Engine.timer_schedule (Sender_base.engine h.sender) tm ~delay:h.rtt
  end

let create net ~flow ~routers ~rtt ?conf:(c = conf ()) ~on_complete () =
  let stopped = ref false in
  let rate = ref 0. in
  let nic_bps =
    match Net.route net ~flow:flow.Flow.id ~src:flow.Flow.src ~dst:flow.Flow.dst () with
    | a :: b :: _ -> (
        match Net.link_from net a b with
        | Some l -> Link.rate_bps l
        | None -> 1e9)
    | _ -> 1e9
  in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.pacing_rate = (fun _ -> Some !rate);
    }
  in
  let engine = Net.engine net in
  let on_complete sender ~fct =
    stopped := true;
    Engine.schedule engine ~delay:(rtt /. 2.) (fun () ->
        List.iter (fun r -> Router.remove r ~flow:flow.Flow.id) routers);
    on_complete sender ~fct
  in
  let sender = Sender_base.create net ~flow ~conf:c ~hooks ~on_complete () in
  { sender; routers; rtt; nic_bps; rate; stopped; tick_timer = None }

let start h =
  Sender_base.start h.sender;
  tick h
