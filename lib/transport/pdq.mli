(** PDQ (Hong et al., SIGCOMM'12): preemptive distributed quick flow
    scheduling via explicit rates.

    Every directed link has an {!Arbiter} that keeps per-flow state (sorted
    by the scheduling criterion — remaining size, or deadline when present)
    and allocates the link capacity to the most critical flows; the rest are
    paused (rate 0). Senders refresh their state at every RTT and apply the
    allocated rate one RTT later, which reproduces PDQ's flow-switching
    overhead (≈1–2 RTT per preemption, §2.1 of the paper).

    Early Start is modelled: a flow expected to drain within [es_rtts] RTTs
    does not count against the capacity offered to the next flow in line,
    letting the successor begin before the current flow fully finishes. *)

module Arbiter : sig
  type t

  val create : capacity_bps:float -> t

  (** [update t ~flow ~remaining_pkts ~nic_bps ~usable_bps ~deadline]
      inserts or refreshes a flow's entry. [usable_bps] is the flow's
      bottleneck rate on its {e other} links (suppressed demand): this link
      reserves no more than that for the flow, so capacity a flow cannot
      use stays available to the flows behind it. *)
  val update :
    t -> flow:int -> remaining_pkts:int -> nic_bps:float ->
    usable_bps:float -> deadline:float option -> unit

  val remove : t -> flow:int -> unit
  val flows : t -> int

  (** Drop all flow state (switch crash / link outage); hosts repopulate
      it through their per-RTT refresh headers. *)
  val clear : t -> unit

  (** [allocation t ~flow ~rtt ~mss_bits] is the rate granted to [flow],
      0 if paused. *)
  val allocation : t -> flow:int -> rtt:float -> mss_bits:float -> float
end

(** RTTs of lookahead for Early Start. *)
val es_rtts : float

type host

(** [create net ~flow ~arbiters ~rtt ...] — [arbiters] are the arbiters of
    every link on the flow's forward path; [rtt] is the base RTT used for
    the update period and rate-application delay. Control-plane messages
    are counted in the net's {!Counters.t} ([ctrl_msgs]). *)
val create :
  Net.t ->
  flow:Flow.t ->
  arbiters:Arbiter.t list ->
  rtt:float ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  host

val start : host -> unit
val sender : host -> Sender_base.t
val current_rate : host -> float

val conf : ?init_rtt:float -> unit -> Sender_base.conf
