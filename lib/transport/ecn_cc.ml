type state = {
  mutable alpha : float;
  mutable acked_in_window : int;
  mutable marked_in_window : int;
  mutable window_end : int;
  mutable cut_end : int;
}

let gain = 1. /. 16.

let create_state () =
  { alpha = 0.; acked_in_window = 0; marked_in_window = 0; window_end = 0; cut_end = 0 }

let alpha st = st.alpha

let observe st t ~ecn ~weight =
  let w = max 1 weight in
  st.acked_in_window <- st.acked_in_window + w;
  if ecn then st.marked_in_window <- st.marked_in_window + w;
  (* One window of data acked: fold the observed fraction into alpha. *)
  if Sender_base.cum_ack t >= st.window_end then begin
    let f =
      if st.acked_in_window = 0 then 0.
      else float_of_int st.marked_in_window /. float_of_int st.acked_in_window
    in
    st.alpha <- ((1. -. gain) *. st.alpha) +. (gain *. f);
    if Trace.on () then
      Trace.emit
        (Trace.Alpha
           { flow = (Sender_base.flow t).Flow.id; alpha = st.alpha });
    st.acked_in_window <- 0;
    st.marked_in_window <- 0;
    st.window_end <- Sender_base.sent_new_pkts t
  end

let try_cut st t ~multiplier =
  (* Cut at most once per window of data. *)
  if Sender_base.cum_ack t >= st.cut_end then begin
    let m = Float.max 0. (Float.min 1. multiplier) in
    Sender_base.set_cwnd t (Sender_base.cwnd t *. m);
    Sender_base.set_ssthresh t (Sender_base.cwnd t);
    st.cut_end <- Sender_base.sent_new_pkts t;
    true
  end
  else false

let hooks st ~increase_weight ~cut_multiplier =
  let on_ack t ~ecn ~newly_acked =
    observe st t ~ecn ~weight:newly_acked;
    if ecn then ignore (try_cut st t ~multiplier:(cut_multiplier st t))
    else if newly_acked > 0 then begin
      let cwnd = Sender_base.cwnd t in
      if cwnd < Sender_base.ssthresh t then
        (* Slow start: one segment per newly acked segment. *)
        Sender_base.set_cwnd t (cwnd +. float_of_int newly_acked)
      else
        Sender_base.set_cwnd t
          (cwnd +. (increase_weight t *. float_of_int newly_acked /. cwnd))
    end
  in
  let on_fast_retransmit t =
    Sender_base.set_ssthresh t (Sender_base.cwnd t /. 2.);
    Sender_base.set_cwnd t (Sender_base.cwnd t /. 2.)
  in
  {
    Sender_base.default_hooks with
    Sender_base.on_ack;
    Sender_base.on_fast_retransmit;
  }
