type conf = {
  mss : int;
  init_cwnd : float;
  max_cwnd : float;
  init_ssthresh : float;
  min_rto : float;
  max_rto : float;
  init_rtt : float;
  ecn_capable : bool;
}

type t = {
  net : Net.t;
  engine : Engine.t;
  flow : Flow.t;
  conf : conf;
  mutable hooks : hooks;
  status : Seg_store.t;
  inflight_times : (int, float * bool) Hashtbl.t;  (* seq -> sent_at, retx *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable next_new : int;  (* next never-transmitted segment *)
  mutable cum_ack : int;  (* first unacked segment *)
  mutable acked_count : int;
  mutable inflight : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable backoff : int;
  mutable consecutive_timeouts : int;
  mutable dupacks : int;
  mutable recover_until : int;  (* suppress fast-rtx until cum_ack passes *)
  mutable in_recovery : bool;
  mutable rto_timer : Engine.timer option;  (* created on first arm *)
  mutable probe_outstanding : bool;
  mutable pace_scheduled : bool;
  mutable next_pace_at : float;
  mutable completed : bool;
  on_complete : t -> fct:float -> unit;
}

and hooks = {
  stamp : t -> Packet.t -> unit;
  on_ack : t -> ecn:bool -> newly_acked:int -> unit;
  on_fast_retransmit : t -> unit;
  on_timeout : t -> [ `Default | `Handled ];
  allow_send : t -> bool;
  pacing_rate : t -> float option;
  base_rto : t -> float;
}

let default_conf =
  {
    mss = 1460;
    init_cwnd = 2.;
    max_cwnd = 10_000.;
    init_ssthresh = 1000.;
    min_rto = 0.010;
    max_rto = 2.0;
    init_rtt = 0.0003;
    ecn_capable = true;
  }

let net t = t.net
let engine t = t.engine
let flow t = t.flow
let conf t = t.conf
let set_hooks t h = t.hooks <- h
let cwnd t = t.cwnd

let set_cwnd t w =
  t.cwnd <- Float.min t.conf.max_cwnd (Float.max 1. w);
  if Trace.on () then
    Trace.emit
      (Trace.Cwnd
         { flow = t.flow.Flow.id; cwnd = t.cwnd; ssthresh = t.ssthresh })
let ssthresh t = t.ssthresh
let set_ssthresh t v = t.ssthresh <- Float.max 2. v
let srtt t = t.srtt
let acked_pkts t = t.acked_count
let remaining_pkts t = max 0 (t.flow.Flow.size_pkts - t.acked_count)
let sent_new_pkts t = t.next_new
let cum_ack t = t.cum_ack
let inflight t = t.inflight
let completed t = t.completed
let consecutive_timeouts t = t.consecutive_timeouts

let window t = max 1 (int_of_float t.cwnd)

let rto_value t =
  let base = Float.max (t.hooks.base_rto t) (t.srtt +. (4. *. t.rttvar)) in
  let backed = base *. (2. ** float_of_int t.backoff) in
  Float.min t.conf.max_rto backed

let cancel_timer t =
  match t.rto_timer with
  | Some tm -> Engine.timer_cancel t.engine tm
  | None -> ()

(* Attribution probe: is the transport blocked by its protocol hooks — an
   arbitration assignment still pending, or a pacing grant spacing sends
   out — rather than by loss recovery? Only consulted when [Delay.on]. *)
let delay_gated t =
  (not (t.hooks.allow_send t))
  ||
  match t.hooks.pacing_rate t with
  | Some _ -> true
  | None -> false

(* Forward declarations resolved through mutual recursion. The RTO rides a
   single reschedulable engine timer for the life of the flow: every ack
   resets it in place instead of allocating a fresh event record. *)
let rec arm_timer t =
  if not t.completed then
    match t.rto_timer with
    | Some tm ->
        if not (Engine.timer_pending tm) then
          Engine.timer_schedule t.engine tm ~delay:(rto_value t)
    | None ->
        let tm =
          Engine.timer ~label:"rto" t.engine (fun () -> handle_timeout t)
        in
        t.rto_timer <- Some tm;
        Engine.timer_schedule t.engine tm ~delay:(rto_value t)

and reset_timer t =
  cancel_timer t;
  if t.inflight > 0 || t.cum_ack < t.next_new then arm_timer t

and handle_timeout t =
  if t.completed then ()
  else begin
    if Delay.on () then
      Delay.before_timeout ~flow:t.flow.Flow.id ~now:(Engine.now t.engine);
    t.consecutive_timeouts <- t.consecutive_timeouts + 1;
    if Trace.on () then
      Trace.emit
        (Trace.Flow_timeout { flow = t.flow.Flow.id; backoff = t.backoff });
    (match t.hooks.on_timeout t with
    | `Handled -> ()
    | `Default -> default_timeout_action t);
    t.backoff <- min 8 (t.backoff + 1);
    arm_timer t;
    if Delay.on () && not t.completed then
      Delay.sync ~flow:t.flow.Flow.id ~inflight:t.inflight
        ~gated:(delay_gated t) ~now:(Engine.now t.engine)
  end

and default_timeout_action t =
  (* Go-back-N on RTO: everything unacked and in flight is presumed lost. *)
  for s = t.cum_ack to t.next_new - 1 do
    if Seg_store.get t.status s = Seg_store.Inflight then begin
      Seg_store.set t.status s Seg_store.Lost;
      t.inflight <- t.inflight - 1
    end
  done;
  Hashtbl.reset t.inflight_times;
  t.in_recovery <- false;
  set_ssthresh t (t.cwnd /. 2.);
  set_cwnd t 1.;
  try_send t

and next_to_send t =
  (* Lost segments (retransmissions) take precedence over new data. *)
  let rec scan s =
    if s >= t.next_new then None
    else if Seg_store.get t.status s = Seg_store.Lost then Some (s, true)
    else scan (s + 1)
  in
  match scan t.cum_ack with
  | Some _ as r -> r
  | None ->
      if t.next_new < t.flow.Flow.size_pkts then Some (t.next_new, false)
      else None

and send_segment t seq ~retx =
  if not retx then t.next_new <- max t.next_new (seq + 1);
  Seg_store.set t.status seq Seg_store.Inflight;
  t.inflight <- t.inflight + 1;
  if Delay.on () then
    Delay.on_send ~flow:t.flow.Flow.id ~now:(Engine.now t.engine);
  Hashtbl.replace t.inflight_times seq (Engine.now t.engine, retx);
  let pkt =
    Packet.make ~flow:t.flow.Flow.id ~src:t.flow.Flow.src ~dst:t.flow.Flow.dst
      ~kind:Packet.Data
      ~size:(t.conf.mss + Packet.header_bytes)
      ~seq ~ecn_capable:t.conf.ecn_capable ~sent_at:(Engine.now t.engine) ()
  in
  t.hooks.stamp t pkt;
  Net.send t.net pkt;
  arm_timer t

and try_send t =
  if t.completed then ()
  else
    match t.hooks.pacing_rate t with
    | None ->
        let continue = ref true in
        while !continue do
          if t.inflight < window t && t.hooks.allow_send t then
            match next_to_send t with
            | Some (seq, retx) -> send_segment t seq ~retx
            | None -> continue := false
          else continue := false
        done
    | Some rate -> if rate > 0. then schedule_pace t rate

and schedule_pace t _rate =
  if (not t.pace_scheduled) && not t.completed then begin
    let now = Engine.now t.engine in
    let at = Float.max now t.next_pace_at in
    t.pace_scheduled <- true;
    Engine.schedule_at ~label:"pace" t.engine ~time:at (fun () ->
        t.pace_scheduled <- false;
        if not t.completed then begin
          (match t.hooks.pacing_rate t with
          | Some rate when rate > 0. ->
              if t.inflight < window t && t.hooks.allow_send t then begin
                match next_to_send t with
                | Some (seq, retx) ->
                    send_segment t seq ~retx;
                    t.next_pace_at <-
                      Engine.now t.engine
                      +. (float_of_int (8 * (t.conf.mss + Packet.header_bytes))
                         /. rate);
                    schedule_pace t rate
                | None -> ()
              end
              else begin
                (* Window-blocked: retry after the current pacing gap. *)
                t.next_pace_at <-
                  Engine.now t.engine
                  +. (float_of_int (8 * (t.conf.mss + Packet.header_bytes)) /. rate);
                schedule_pace t rate
              end
          | _ -> ())
        end)
  end

let send_probe t =
  if (not t.probe_outstanding) && not t.completed then begin
    t.probe_outstanding <- true;
    let pkt =
      Packet.make ~flow:t.flow.Flow.id ~src:t.flow.Flow.src
        ~dst:t.flow.Flow.dst ~kind:Packet.Probe ~size:Packet.probe_bytes
        ~seq:t.cum_ack ~ecn_capable:false ~sent_at:(Engine.now t.engine) ()
    in
    t.hooks.stamp t pkt;
    Net.send t.net pkt
  end

let complete t =
  if not t.completed then begin
    t.completed <- true;
    cancel_timer t;
    Net.unregister_flow t.net ~host:t.flow.Flow.src ~flow:t.flow.Flow.id;
    let fct = Engine.now t.engine -. t.flow.Flow.start_time in
    if Delay.on () then
      Delay.complete ~flow:t.flow.Flow.id ~now:(Engine.now t.engine) ~fct;
    if Trace.on () then
      Trace.emit (Trace.Flow_finish { flow = t.flow.Flow.id; fct });
    t.on_complete t ~fct
  end

let cancel t =
  t.completed <- true;
  cancel_timer t;
  if Delay.on () then Delay.discard ~flow:t.flow.Flow.id;
  Net.unregister_flow t.net ~host:t.flow.Flow.src ~flow:t.flow.Flow.id

let update_rtt t sample =
  if t.srtt <= 0. then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.
  end
  else begin
    let alpha = 0.125 and beta = 0.25 in
    t.rttvar <-
      ((1. -. beta) *. t.rttvar) +. (beta *. Float.abs (t.srtt -. sample));
    t.srtt <- ((1. -. alpha) *. t.srtt) +. (alpha *. sample)
  end

let mark_acked t seq newly =
  match Seg_store.get t.status seq with
  | Seg_store.Acked -> ()
  | prev ->
      if prev = Seg_store.Inflight then t.inflight <- t.inflight - 1;
      Seg_store.set t.status seq Seg_store.Acked;
      t.acked_count <- t.acked_count + 1;
      incr newly;
      (match Hashtbl.find_opt t.inflight_times seq with
      | Some (sent_at, retx) ->
          if not retx then update_rtt t (Engine.now t.engine -. sent_at);
          Hashtbl.remove t.inflight_times seq
      | None -> ());
      (* A segment the receiver has cannot be "new" anymore. *)
      if seq >= t.next_new then t.next_new <- seq + 1

let mark_lost t seq =
  if Seg_store.get t.status seq = Seg_store.Inflight then begin
    Seg_store.set t.status seq Seg_store.Lost;
    t.inflight <- t.inflight - 1;
    Hashtbl.remove t.inflight_times seq
  end

let handle_ack_like t (pkt : Packet.t) =
  if t.completed then ()
  else begin
    t.probe_outstanding <- false;
    if Delay.on () then
      Delay.on_activity ~flow:t.flow.Flow.id ~now:(Engine.now t.engine);
    let newly = ref 0 in
    if pkt.Packet.sack >= 0 then mark_acked t pkt.Packet.sack newly;
    if pkt.Packet.ack > t.cum_ack then begin
      for s = t.cum_ack to pkt.Packet.ack - 1 do
        mark_acked t s newly
      done;
      t.cum_ack <- pkt.Packet.ack;
      t.dupacks <- 0;
      t.backoff <- 0;
      t.consecutive_timeouts <- 0;
      if t.in_recovery then begin
        if t.cum_ack >= t.recover_until then t.in_recovery <- false
        else
          (* NewReno partial ack: the next hole is also lost; retransmit it
             without waiting for three more duplicates. *)
          mark_lost t t.cum_ack
      end;
      reset_timer t
    end
    else if pkt.Packet.kind = Packet.Ack && pkt.Packet.sack >= t.cum_ack then begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 && t.cum_ack >= t.recover_until then begin
        mark_lost t t.cum_ack;
        t.recover_until <- t.next_new;
        t.in_recovery <- true;
        t.hooks.on_fast_retransmit t
      end
    end;
    (* A probe answered "segment missing": it was dropped, not parked. An
       expired RTO plus a confirmed hole is a timeout-grade loss signal, so
       go back N like [default_timeout_action] — marking only the probed
       segment would leave any other blackholed segment [Inflight] forever,
       pinning [inflight] above zero. *)
    if
      pkt.Packet.kind = Packet.Probe_ack
      && pkt.Packet.sack < 0
      && pkt.Packet.seq >= t.cum_ack
    then begin
      for s = t.cum_ack to t.next_new - 1 do
        mark_lost t s
      done;
      t.in_recovery <- false
    end;
    t.hooks.on_ack t ~ecn:pkt.Packet.ecn_echo ~newly_acked:!newly;
    if t.cum_ack >= t.flow.Flow.size_pkts then complete t
    else begin
      try_send t;
      if Delay.on () && not t.completed then
        Delay.sync ~flow:t.flow.Flow.id ~inflight:t.inflight
          ~gated:(delay_gated t) ~now:(Engine.now t.engine)
    end
  end

let default_hooks =
  {
    stamp = (fun _ _ -> ());
    on_ack = (fun _ ~ecn:_ ~newly_acked:_ -> ());
    on_fast_retransmit = (fun _ -> ());
    on_timeout = (fun _ -> `Default);
    allow_send = (fun _ -> true);
    pacing_rate = (fun _ -> None);
    base_rto = (fun t -> t.conf.min_rto);
  }

let create net ~flow ~conf ?(hooks = default_hooks) ~on_complete () =
  (* Register with the attribution machine here, not in [start]: hosts may
     push data through the sender before calling [start] (PASE applies the
     initial arbitration assignment first), and those sends must be seen.
     The hooks cannot be probed yet (host back-references are only wired
     after [create] returns), so the initial mode is provisional; [start]
     re-syncs it. *)
  if Delay.on () then
    Delay.flow_start ~flow:flow.Flow.id ~now:flow.Flow.start_time ~gated:false;
  {
    net;
    engine = Net.engine net;
    flow;
    conf;
    hooks;
    status = Seg_store.create ();
    inflight_times = Hashtbl.create 64;
    cwnd = Float.min conf.max_cwnd (Float.max 1. conf.init_cwnd);
    ssthresh = conf.init_ssthresh;
    next_new = 0;
    cum_ack = 0;
    acked_count = 0;
    inflight = 0;
    srtt = conf.init_rtt;
    rttvar = conf.init_rtt /. 2.;
    backoff = 0;
    consecutive_timeouts = 0;
    dupacks = 0;
    recover_until = 0;
    in_recovery = false;
    rto_timer = None;
    probe_outstanding = false;
    pace_scheduled = false;
    next_pace_at = 0.;
    completed = false;
    on_complete;
  }

let start t =
  if Trace.on () then
    Trace.emit
      (Trace.Flow_start
         {
           flow = t.flow.Flow.id;
           src = t.flow.Flow.src;
           dst = t.flow.Flow.dst;
           size_pkts = t.flow.Flow.size_pkts;
           deadline = Flow.absolute_deadline t.flow;
         });
  Net.register_flow t.net ~host:t.flow.Flow.src ~flow:t.flow.Flow.id (fun pkt ->
      match pkt.Packet.kind with
      | Packet.Ack | Packet.Probe_ack -> handle_ack_like t pkt
      | Packet.Data | Packet.Probe | Packet.Ctrl -> ());
  if Delay.on () then
    Delay.sync ~flow:t.flow.Flow.id ~inflight:t.inflight
      ~gated:(delay_gated t) ~now:(Engine.now t.engine);
  try_send t
