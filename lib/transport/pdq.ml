let es_rtts = 1.

module Arbiter = struct
  type entry = {
    flow : int;
    mutable remaining_pkts : int;
    mutable nic_bps : float;  (* line rate: cap on any grant *)
    mutable usable_bps : float;
        (* what the flow can actually use given its other links (suppressed
           demand): capacity reserved for a flow never exceeds this *)
    deadline : float option;
  }

  type t = { capacity_bps : float; entries : (int, entry) Hashtbl.t }

  let create ~capacity_bps = { capacity_bps; entries = Hashtbl.create 32 }

  let update t ~flow ~remaining_pkts ~nic_bps ~usable_bps ~deadline =
    match Hashtbl.find_opt t.entries flow with
    | Some e ->
        e.remaining_pkts <- remaining_pkts;
        e.nic_bps <- nic_bps;
        e.usable_bps <- usable_bps
    | None ->
        Hashtbl.replace t.entries flow
          { flow; remaining_pkts; nic_bps; usable_bps; deadline }

  let remove t ~flow = Hashtbl.remove t.entries flow
  let flows t = Hashtbl.length t.entries

  (* Switch crash / link outage: flow state at this switch is lost; hosts
     repopulate it through their per-RTT refresh headers. *)
  let clear t = Hashtbl.reset t.entries

  (* Criticality order: earliest deadline first, then shortest remaining,
     then flow id for determinism (PDQ's EDF+SJF tie-breaking). *)
  let compare_entries a b =
    match (a.deadline, b.deadline) with
    | Some da, Some db when da <> db -> compare da db
    | Some _, None -> -1
    | None, Some _ -> 1
    | _ ->
        let c = compare a.remaining_pkts b.remaining_pkts in
        if c <> 0 then c else compare a.flow b.flow

  (* The rate this link would grant [flow]: walk flows in criticality
     order; each higher-priority flow consumes only what it can use
     (suppressed demand), and a flow about to finish cedes its slot to the
     next in line (Early Start). *)
  let allocation t ~flow ~rtt ~mss_bits =
    let sorted =
      Det_tbl.fold (fun _ e acc -> e :: acc) t.entries []
      |> List.sort compare_entries
    in
    let rec walk avail = function
      | [] -> 0.
      | e :: rest ->
          let grant = Float.min e.nic_bps avail in
          if e.flow = flow then grant
          else
            let consumed = Float.min grant e.usable_bps in
            let finish_time =
              if consumed > 0. then
                float_of_int e.remaining_pkts *. mss_bits /. consumed
              else infinity
            in
            let consumed = if finish_time < es_rtts *. rtt then 0. else consumed in
            walk (Float.max 0. (avail -. consumed)) rest
    in
    walk t.capacity_bps sorted
end

type host = {
  sender : Sender_base.t;
  arbiters : Arbiter.t array;
  last_grants : float array;  (* most recent grant per path link *)
  rtt : float;
  nic_bps : float;
  rate : float ref;  (* currently applied rate *)
  stopped : bool ref;
  mutable tick_timer : Engine.timer option;  (* per-RTT refresh loop *)
}

let conf ?(init_rtt = 0.0003) () =
  {
    Sender_base.default_conf with
    Sender_base.init_cwnd = 1000.;
    max_cwnd = 1000.;
    min_rto = 0.010;
    init_rtt;
    ecn_capable = false;
  }

let sender h = h.sender
let current_rate h = !(h.rate)

let mss_bits h = float_of_int (8 * (Sender_base.conf h.sender).Sender_base.mss)

let counters h = Net.counters (Sender_base.net h.sender)

(* What this flow could use on link [j], namely the minimum of the other
   links' last grants (its bottleneck elsewhere). *)
let usable_elsewhere h j =
  let m = ref h.nic_bps in
  Array.iteri (fun k g -> if k <> j then m := Float.min !m g) h.last_grants;
  !m

let refresh h =
  if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
    let flow = (Sender_base.flow h.sender).Flow.id in
    let deadline = Flow.absolute_deadline (Sender_base.flow h.sender) in
    let remaining = Sender_base.remaining_pkts h.sender in
    Array.iteri
      (fun j a ->
        Arbiter.update a ~flow ~remaining_pkts:remaining ~nic_bps:h.nic_bps
          ~usable_bps:(usable_elsewhere h j) ~deadline;
        (* One rate-request header processed per link, one response. *)
        let c = counters h in
        c.Counters.ctrl_msgs <- c.Counters.ctrl_msgs + 2)
      h.arbiters;
    Array.iteri
      (fun j a ->
        h.last_grants.(j) <-
          Arbiter.allocation a ~flow ~rtt:h.rtt ~mss_bits:(mss_bits h))
      h.arbiters;
    let alloc = Array.fold_left Float.min h.nic_bps h.last_grants in
    (* A rate change rides back in the returning header: one one-way delay.
       Unpausing costs a full extra RTT on top (explicit pause/unpause
       signalling, the 1-2 RTT flow-switching overhead of §2.1). *)
    let delay =
      if !(h.rate) = 0. && alloc > 0. then 1.5 *. h.rtt else h.rtt /. 2.
    in
    Engine.schedule ~label:"pdq-apply"
      (Sender_base.engine h.sender)
      ~delay
      (fun () ->
        if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
          h.rate := alloc;
          if Trace.on () then
            Trace.emit (Trace.Rate { flow; rate_bps = alloc });
          Sender_base.try_send h.sender
        end)
  end

(* The per-RTT refresh loop rides one reschedulable engine timer per flow
   instead of allocating a closure every round. *)
let rec tick h =
  if (not !(h.stopped)) && not (Sender_base.completed h.sender) then begin
    refresh h;
    let tm =
      match h.tick_timer with
      | Some tm -> tm
      | None ->
          let tm =
            Engine.timer ~label:"pdq-tick"
              (Sender_base.engine h.sender)
              (fun () -> tick h)
          in
          h.tick_timer <- Some tm;
          tm
    in
    Engine.timer_schedule (Sender_base.engine h.sender) tm ~delay:h.rtt
  end

let create net ~flow ~arbiters ~rtt ?conf:(c = conf ()) ~on_complete () =
  let stopped = ref false in
  let rate = ref 0. in
  let nic_bps =
    match Net.route net ~flow:flow.Flow.id ~src:flow.Flow.src ~dst:flow.Flow.dst () with
    | a :: b :: _ -> (
        match Net.link_from net a b with
        | Some l -> Link.rate_bps l
        | None -> 1e9)
    | _ -> 1e9
  in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.pacing_rate = (fun _ -> Some !rate);
    }
  in
  let engine = Net.engine net in
  let arbiters = Array.of_list arbiters in
  let on_complete sender ~fct =
    stopped := true;
    (* Termination header propagates one-way before arbiters release. *)
    Engine.schedule engine ~delay:(rtt /. 2.) (fun () ->
        Array.iter (fun a -> Arbiter.remove a ~flow:flow.Flow.id) arbiters);
    on_complete sender ~fct
  in
  let sender = Sender_base.create net ~flow ~conf:c ~hooks ~on_complete () in
  {
    sender;
    arbiters;
    last_grants = Array.make (Array.length arbiters) nic_bps;
    rtt;
    nic_bps;
    rate;
    stopped;
    tick_timer = None;
  }

let start h =
  Sender_base.start h.sender;
  tick h
