(** D3 (Wilson et al., SIGCOMM'11): deadline-driven explicit rate control —
    the paper's other arbitration example (Table 1).

    Each RTT a sender asks the routers on its path for the rate that
    finishes its flow exactly at its deadline ([remaining / time-left]);
    routers grant requests greedily in {e arrival order} (FCFS) and split
    the leftover capacity equally among all flows as fair share. Flows
    without deadlines request nothing and live off the fair share.

    The FCFS grant order is D3's published behaviour and its known weakness
    (priority inversion: an early-arriving far-deadline flow can starve a
    late-arriving near-deadline one) — kept deliberately, since PDQ and PASE
    are evaluated against exactly that behaviour. *)

module Router : sig
  type t

  val create : capacity_bps:float -> t

  (** [update t ~flow ~request_bps] refreshes a flow's reservation request
      (0 for no-deadline flows). New flows are appended in arrival order. *)
  val update : t -> flow:int -> request_bps:float -> unit

  val remove : t -> flow:int -> unit
  val flows : t -> int

  (** Drop all reservations (router crash / link outage); hosts rebuild
      them with their per-RTT rate requests. FCFS arrival numbering keeps
      counting across the outage. *)
  val clear : t -> unit

  (** Rate granted to [flow]: its satisfied reservation (FCFS) plus an
      equal share of the unreserved capacity. *)
  val allocation : t -> flow:int -> float
end

type host

val create :
  Net.t ->
  flow:Flow.t ->
  routers:Router.t list ->
  rtt:float ->
  ?conf:Sender_base.conf ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  host

val start : host -> unit
val sender : host -> Sender_base.t
val current_rate : host -> float
val conf : ?init_rtt:float -> unit -> Sender_base.conf
