(** The explain layer behind [pase_sim report]: joins one run's result JSON
    with its optional attribution JSONL and fabric-series JSONL spills (and
    optionally a second result to diff against) and renders, as JSON or
    human tables, the p99 flow's delay breakdown, component totals checked
    against the AFCT, top-k hot links/queues, and a protocol-vs-protocol
    attribution diff. Deterministic: equal inputs produce byte-identical
    output. Schema in DESIGN.md §14. *)

type t

val build :
  run:Json.t ->
  ?attrib_lines:Json.t list ->
  ?series_lines:Json.t list ->
  ?vs:Json.t ->
  ?top:int ->
  unit ->
  t
(** Assemble a report from parsed inputs. [top] (default 5) bounds the
    hot-link and hot-queue tables. *)

val of_files :
  result:string ->
  ?attrib:string ->
  ?series:string ->
  ?vs:string ->
  ?top:int ->
  unit ->
  t
(** Like {!build} but reading files: [result]/[vs] are result JSON files,
    [attrib]/[series] are JSONL spills. Raises [Failure] with the offending
    path on unreadable or unparsable input. *)

val to_json : t -> string
(** Single deterministic JSON object:
    [{"report":1,"run":{..},"attribution":{..},"series":{..},"vs":{..}}],
    with the optional sections omitted when their inputs are absent. *)

val print : t -> unit
(** Human-readable tables on stdout. *)
