(** Parallel experiment runner: fans individual {!Runner.run} configurations
    out to a [Unix.fork]-based worker pool and streams the results back over
    pipes (via {!Result_codec}), with an on-disk cache keyed by a digest of
    the full configuration plus the running binary, so re-runs of unchanged
    configurations are free.

    Results come back in input order and are bit-for-bit identical to a
    serial [List.map (Runner.run)] over the same jobs: each simulation is
    seeded and self-contained, so fan-out only changes wall-clock time. *)

(** One simulation: a protocol on a scenario. *)
type job = Runner.protocol * Scenario.t

(** Worker-pool width: the [PASE_JOBS] environment variable if it parses to
    a positive integer, otherwise the number of online cores. *)
val default_jobs : unit -> int

(** Cache directory: [PASE_CACHE_DIR] if set ([""], ["0"] and ["none"]
    disable caching), otherwise [".pase-cache"] under the current
    directory. *)
val default_cache_dir : unit -> string option

(** [job_key ?horizon proto scenario] is a stable hex digest identifying the
    configuration: protocol (including the full PASE parameter set), scenario
    pattern and workload parameters, seed, horizon, codec version, and a
    digest of the running executable (so rebuilding the code invalidates the
    cache). *)
val job_key :
  ?horizon:float ->
  ?profile:bool ->
  ?stats:[ `Exact | `Streaming ] ->
  ?attrib:bool ->
  ?hybrid:Runner.hybrid ->
  Runner.protocol ->
  Scenario.t ->
  string

(** [run_jobs jobs_list] executes every job and returns the results in input
    order.

    - [jobs]: worker-pool width (default {!default_jobs}; [1] runs serially
      in-process).
    - [cache_dir]: on-disk cache location; [None] disables the cache
      (default {!default_cache_dir}).
    - [horizon]: forwarded to {!Runner.run}.
    - [profile]: forwarded to {!Runner.run}; profiled results cache under a
      distinct key (their [sched_profile] differs).
    - [stats]: forwarded to {!Runner.run}; exact and streaming results embed
      different [Fct] payloads and cache under distinct keys.
    - [attrib]: forwarded to {!Runner.run}; attributed results embed the
      {!Attrib} aggregate and cache under distinct keys. (Per-record
      [on_attrib] spilling and the fabric sampler are in-process-only
      concerns — use {!Runner.run} directly for those.)
    - [hybrid]: forwarded to {!Runner.run}; hybrid-configured results (even
      with [enabled = false] — the classifier tag lands in every record)
      cache under distinct keys per threshold.
    - [on_result i ~cached ~wall r] fires once per job as results become
      available (completion order under parallelism); [cached] tells whether
      the result was served from the cache, [wall] is the worker wall-clock
      in seconds.

    Duplicate configurations in the input are simulated once and the result
    is shared. A worker that dies (non-zero exit, or an unreadable result
    stream) fails the whole call with [Failure]; remaining workers are
    reaped first. *)
val run_jobs :
  ?jobs:int ->
  ?cache_dir:string option ->
  ?horizon:float ->
  ?profile:bool ->
  ?stats:[ `Exact | `Streaming ] ->
  ?attrib:bool ->
  ?hybrid:Runner.hybrid ->
  ?on_result:(int -> cached:bool -> wall:float -> Runner.result -> unit) ->
  job list ->
  Runner.result list

(** [merged_fct results] folds the per-job FCT collections into one with
    {!Fct.merge}, left to right in input order. Because results come back in
    input order regardless of worker scheduling, the merged collection is
    byte-identical whether the jobs ran serially or forked. Raises
    [Invalid_argument] on the empty list or on mixed collection modes. *)
val merged_fct : Runner.result list -> Fct.t
