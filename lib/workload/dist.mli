(** Workload distributions with known means (so scenarios can convert an
    offered load into a Poisson arrival rate analytically). *)

type t = {
  sample : Rng.t -> float;
  mean : float;
  name : string;
  icdf : (float -> float) option;
      (** Inverse CDF (quantile function) when the distribution was built
          from an empirical CDF table; [None] for parametric families.
          Clamps its argument to [0, 1]. *)
}

(** Uniform on [a, b]. *)
val uniform : float -> float -> t

val constant : float -> t
val exponential : mean:float -> t

(** Uniform over an explicit choice list (equal weights). *)
val choice : float list -> t

(** [piecewise ~name points] builds a distribution from an empirical CDF
    given as [(value, cumulative probability)] breakpoints, sampled by
    inverse-transform with linear interpolation between breakpoints. The
    first point must have probability 0 and the last probability 1, with
    both coordinates non-decreasing. The mean is the exact mean of the
    interpolated distribution. The segment lookup is a binary search whose
    interpolation arithmetic matches a linear scan bit for bit, so samples
    are byte-stable across table sizes, reruns and forked workers. *)
val piecewise : name:string -> (float * float) list -> t

(** The DCTCP/pFabric "web search" flow-size distribution (bytes):
    mice-heavy with a long multi-megabyte tail. Approximates the published
    CDF with piecewise-linear breakpoints. *)
val web_search_bytes : t

(** The VL2/pFabric "data mining" flow-size distribution (bytes): more than
    half the flows are tiny, most bytes live in >1 MB flows. *)
val data_mining_bytes : t

(** MapReduce-cluster flow sizes (Facebook-style Hadoop trace shape): mostly
    sub-2 KB control flows with a shuffle/output tail into the hundreds of
    megabytes. *)
val hadoop_bytes : t

(** Built-in empirical CDFs by canonical name:
    [websearch], [datamining], [hadoop]. *)
val builtins : (string * t) list

(** [builtin name] looks a built-in CDF up by name, ignoring case, dashes
    and underscores (so ["web-search"], ["websearch"] and ["Web_Search"]
    all resolve). *)
val builtin : string -> t option

(** [of_cdf_points ~name points] validates [(value, cumulative probability)]
    rows and builds the piecewise distribution, as {!piecewise} but with
    [Error] instead of exceptions. A first row with positive mass is
    interpreted as an atom at that value (a zero-probability anchor is
    prepended). Values must be positive and finite, probabilities within
    [0, 1] and non-decreasing, and the last probability exactly 1. *)
val of_cdf_points : name:string -> (float * float) list -> (t, string) result

(** [of_cdf_file path] parses a whitespace-separated two-column
    ["<bytes> <cum-prob>"] table ([#] comments and blank lines ignored) and
    builds the distribution via {!of_cdf_points}. Errors carry the file name
    and line number. *)
val of_cdf_file : string -> (t, string) result

val sample_int : t -> Rng.t -> int
