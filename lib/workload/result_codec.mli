(** Versioned serialization of {!Runner.result}, used by the parallel runner
    to stream results from worker processes over pipes and to persist them in
    the on-disk result cache.

    Two encodings:
    - a binary one (OCaml [Marshal] behind a magic + version header) that
      round-trips the full record, per-flow FCT samples included;
    - a one-way JSON export of the summary metrics for external tooling. *)

(** Bumped whenever {!Runner.result} (or anything it embeds) changes shape,
    invalidating previously cached blobs. *)
val version : int

(** [encode r] is a self-describing binary blob. Encoding is deterministic:
    equal results produce equal blobs. *)
val encode : Runner.result -> string

(** [decode s] recovers a result, or [Error reason] on a truncated blob, a
    foreign payload, or a version mismatch. *)
val decode : string -> (Runner.result, string) result

(** [to_json ?records ?extra r] renders the summary metrics as a JSON object
    ([nan]/infinite floats become [null]). Always includes a ["stats"]
    object describing the collection mode (and, for streaming results, the
    sketch parameters and p99 rank-error bound). With [~records:true] the
    per-flow FCT records are included under ["flows"]. [extra] appends
    caller-supplied [(key, rendered-json-value)] pairs — the CLI uses it to
    fold trace summaries into the output without polluting the cached
    result. *)
val to_json :
  ?records:bool -> ?extra:(string * string) list -> Runner.result -> string

(** One FCT record as a single-line JSON object — the CLI's
    [--stream-results] sink writes one per line (JSONL). *)
val record_to_json : Fct.record -> string

(** One per-flow delay-attribution record as a single-line JSON object —
    the CLI's [--attrib] sink writes one per line (JSONL), and
    [pase_sim report] reads them back. *)
val attrib_record_to_json : size_pkts:int -> Delay.record -> string
