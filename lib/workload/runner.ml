type protocol = Dctcp | D2tcp | L2dct | Pfabric | Pdq | D3 | Pase of Config.t

let name = function
  | Dctcp -> "DCTCP"
  | D2tcp -> "D2TCP"
  | L2dct -> "L2DCT"
  | Pfabric -> "pFabric"
  | Pdq -> "PDQ"
  | D3 -> "D3"
  | Pase cfg ->
      if not cfg.Config.use_ref_rate then "PASE-DCTCP"
      else if cfg.Config.local_only then "PASE-local"
      else if cfg.Config.scheduling = Config.Task_aware then "PASE-task"
      else "PASE"

let pase = Pase Config.default

(* Hybrid fidelity: which protocols may carry fluid (flow-level) traffic.
   ECN-based transports converge to a fair share on long flows, which is
   exactly what the max-min fluid model computes; PASE's rate assignment is
   approximated by the same fair share while a flow is fluid (arbitration
   re-engages at demotion). pFabric/PDQ/D3 schedule packets by remaining
   size or explicit per-flow rates — collapsing them to a fair share would
   change the very mechanism under study, so they stay packet-level. *)
let fluid_capable = function
  | Dctcp | D2tcp | L2dct | Pase _ -> true
  | Pfabric | Pdq | D3 -> false

type hybrid = { enabled : bool; fluid_threshold : int }

let default_fluid_threshold = 32768

type hybrid_stats = {
  hybrid_on : bool;
  threshold_bytes : int;
  fluid_flows : int;  (* classifier sent to the fluid tier *)
  fluid_demotions : int;  (* total demotions to packet level *)
  fault_demotions : int;  (* demotions forced by path faults *)
  fluid_recomputes : int;  (* rate-allocation passes *)
  fluid_bytes : float;  (* bytes advanced analytically *)
  short_p99 : float;  (* p99 FCT of flows the classifier left packet-level *)
}

type result = {
  scenario : string;
  protocol : string;
  load : float;
  fct : Fct.t;
  afct : float;
  p99 : float;
  p999 : float;
  app_throughput : float;
  loss_rate : float;
  ctrl_msgs : int;
  ctrl_msg_rate : float;
  duration : float;
  events : int;
  completed : int;
  censored : int;
  stray_pkts : int;
  (* Fault plane: all zero / nan for fault-free runs. *)
  faults_injected : int;
  blackholed_pkts : int;
  ctrl_lost_msgs : int;
  link_downtime_s : float;
  recovery_s : float;  (* nan when no crash recovered *)
  afct_baseline : float;  (* fault-free AFCT of the same scenario; nan if n/a *)
  afct_inflation : float;  (* afct /. afct_baseline; nan if n/a *)
  attrib : Attrib.t option;
      (* per-flow delay attribution aggregate; None unless run ~attrib *)
  hybrid : hybrid_stats option;
      (* hybrid fidelity accounting; None unless run ~hybrid *)
  coflow : Coflow.t option;
      (* coflow (task-group) CCT aggregate; None when no spec carries a
         task id *)
  peak_heap : int;
  sched_profile : (string * int) list;
  (* GC deltas over the run, profiling runs only (zero otherwise). Like
     wall_s they depend on process state: never byte-compare them. *)
  gc_minor_words : float;
  gc_promoted_words : float;
  gc_major_collections : int;
}

(* Running state of one task group (incast query or coflow job) while its
   member records stream in; folded into the Coflow aggregate at the end of
   the run, in sorted task-id order. *)
type group = {
  mutable first_start : float;
  mutable last_end : float;
  mutable members : int;
  mutable any_censored : bool;
  mutable group_deadline : float option;  (* min over member deadlines *)
}

let mss = 1460

(* ECN marking threshold K, scaled with link speed as in the DCTCP
   guidelines (65 packets at 10 Gbps, 20 at 1 Gbps). *)
let mark_threshold_for rate_bps = if rate_bps >= 5e9 then 65 else 20

let qdisc_for protocol counters ~rtt =
  (* Packets of one edge-link (1 Gbps) bandwidth-delay product. *)
  let bdp_pkts rate_bps =
    rate_bps *. rtt /. float_of_int (8 * (mss + Packet.header_bytes))
  in
  match protocol with
  | Dctcp | D2tcp | L2dct ->
      fun ~rate_bps ->
        Queue_disc.red_ecn counters ~limit_pkts:225
          ~mark_threshold:(mark_threshold_for rate_bps)
  | Pfabric ->
      (* Table 3 verbatim: 76-packet ports (= 2 x the BDP the paper sizes
         against). *)
      fun ~rate_bps:_ -> Pfabric_queue.create counters ~limit_pkts:76
  | Pdq ->
      (* PDQ argues for (and depends on) near-empty queues: it provisions
         only a little over one BDP of buffering. Rate-update staleness
         under heavy churn then surfaces as drops + RTOs, the flow-switching
         cost Fig 2 measures. *)
      fun ~rate_bps ->
        let scale = if rate_bps >= 5e9 then 10. else 1. in
        let limit = max 12 (int_of_float (1.6 *. scale *. bdp_pkts 1e9)) in
        Queue_disc.droptail counters ~limit_pkts:limit
  | D3 -> fun ~rate_bps:_ -> Queue_disc.droptail counters ~limit_pkts:225
  | Pase cfg ->
      fun ~rate_bps ->
        Prio_queue.create counters ~bands:cfg.Config.num_queues
          ~limit_pkts:cfg.Config.queue_limit_pkts
          ~mark_threshold:(mark_threshold_for rate_bps)

let rec run ?(profile = false) ?horizon ?(stats = `Exact) ?on_record
    ?(attrib = false) ?on_attrib ?series ?hybrid protocol scenario =
  (match hybrid with
  | Some h when h.fluid_threshold <= 0 ->
      invalid_arg "Runner.run: fluid threshold must be positive"
  | _ -> ());
  (* Fault-free baseline for AFCT inflation, run first so the faulted run's
     process-global state (packet ids, trace clock) is the fresh one.
     Skipped under tracing: the baseline's events would pollute the sinks.
     The baseline inherits [stats] and [hybrid] (same memory and fidelity
     profile) but never spills records, never samples and never attributes:
     only the measured run's flows belong in the stream (and Delay is
     process-global, like Trace). *)
  let afct_baseline =
    if scenario.Scenario.faults = [] || Trace.on () then nan
    else
      (run ?horizon ~stats ?hybrid protocol (Scenario.with_faults scenario []))
        .afct
  in
  let attrib_agg = if attrib then Some (Attrib.create ()) else None in
  if attrib then Delay.enable ();
  Packet.reset_ids ();
  let engine = Engine.create () in
  Engine.set_profiling engine profile;
  let counters = Counters.create () in
  let qdisc = qdisc_for protocol counters ~rtt:(Scenario.nominal_rtt scenario) in
  let plan = Scenario.build scenario engine counters ~qdisc in
  let topo = plan.Scenario.topo in
  let net = topo.Topology.net in
  (* The fluid tier exists only when hybrid is enabled for a whitelisted
     protocol; with [None] every coupling hook below compiles to a
     pattern-match on a constant and the packet path is untouched. *)
  let hybrid_on =
    match hybrid with
    | Some h -> h.enabled && fluid_capable protocol
    | None -> false
  in
  let fluid_tier =
    if hybrid_on then
      match hybrid with
      | Some h ->
          (* DCTCP-family fluid flows hold ~K (the marking threshold) of
             standing backlog at their bottleneck; packet-tier traffic
             waits behind it in the full engine, so the fluid tier pushes
             the equivalent latency. PASE's arbitration paces senders to
             allocated rates and keeps queues near-empty: no term. *)
          let standing_of =
            match protocol with
            | Dctcp | D2tcp | L2dct ->
                (* 3/4 K: the sawtooth oscillates below the threshold, so
                   the time-average backlog sits under K (calibrated on the
                   fat-tree accuracy harness; see DESIGN.md §15). *)
                fun rate_bps ->
                  0.75
                  *. float_of_int (mark_threshold_for rate_bps)
                  *. float_of_int (8 * (mss + Packet.header_bytes))
                  /. rate_bps
            | Pase _ | Pfabric | Pdq | D3 -> fun _ -> 0.
          in
          Some
            (Fluid.create engine net
               ~demote_bytes:(float_of_int h.fluid_threshold)
               ~standing_of
               (* One pass per topology RTT: congestion control cannot
                  re-converge faster anyway, and it decouples allocation
                  cost from the flow churn rate at scale. *)
               ~min_interval:(Scenario.nominal_rtt scenario) ())
      | None -> None
    else None
  in
  let fct =
    match stats with
    | `Exact -> Fct.create ()
    | `Streaming -> Fct.create_streaming ~seed:scenario.Scenario.seed ()
  in
  (* Task groups (incast queries, coflow jobs) under construction: keyed by
     task id, folded into the Coflow aggregate after the run. *)
  let coflow_groups : (int, group) Hashtbl.t = Hashtbl.create 64 in
  let coflow_track (r : Fct.record) =
    match r.Fct.task with
    | None -> ()
    | Some tid ->
        let g =
          match Hashtbl.find_opt coflow_groups tid with
          | Some g -> g
          | None ->
              let g =
                {
                  first_start = infinity;
                  last_end = neg_infinity;
                  members = 0;
                  any_censored = false;
                  group_deadline = None;
                }
              in
              Hashtbl.replace coflow_groups tid g;
              g
        in
        g.members <- g.members + 1;
        if r.Fct.start_time < g.first_start then g.first_start <- r.Fct.start_time;
        let finish = r.Fct.start_time +. r.Fct.fct in
        if finish > g.last_end then g.last_end <- finish;
        if r.Fct.censored then g.any_censored <- true;
        (match r.Fct.deadline with
        | Some d ->
            g.group_deadline <-
              Some
                (match g.group_deadline with
                | None -> d
                | Some d0 -> Float.min d0 d)
        | None -> ())
  in
  (* Every record goes through here: aggregate, then spill to the caller's
     sink (the CLI's JSONL stream) if one is attached. *)
  let record r =
    Fct.add_record fct r;
    coflow_track r;
    match on_record with Some f -> f r | None -> ()
  in
  let hierarchy =
    match protocol with
    | Pase cfg ->
        let base_rate_bps = 8. *. float_of_int (mss + Packet.header_bytes) /. plan.Scenario.rtt in
        (* Arbitration runs once per RTT (sec 3.1); track the topology's. *)
        let cfg =
          { cfg with Config.arb_period = Float.min cfg.Config.arb_period plan.Scenario.rtt }
        in
        let h = Hierarchy.create engine counters cfg topo ~base_rate_bps in
        Hierarchy.start h;
        Some h
    | Dctcp | D2tcp | L2dct | Pfabric | Pdq | D3 -> None
  in
  let pdq_arbs : (int * int, Pdq.Arbiter.t) Hashtbl.t = Hashtbl.create 32 in
  let d3_routers : (int * int, D3.Router.t) Hashtbl.t = Hashtbl.create 32 in
  let fault_plane =
    match scenario.Scenario.faults with
    | [] -> None
    | events ->
        let on_crash node =
          (match hierarchy with
          | Some h -> Hierarchy.fail_node h node
          | None -> ());
          (* A crashed switch also loses any PDQ/D3 control state it runs
             (arbiters/routers of its outgoing links). *)
          Det_tbl.iter
            (fun (a, _) arb -> if a = node then Pdq.Arbiter.clear arb)
            pdq_arbs;
          Det_tbl.iter
            (fun (a, _) r -> if a = node then D3.Router.clear r)
            d3_routers
        in
        let on_restart node =
          match hierarchy with
          | Some h -> Hierarchy.recover_node h node
          | None -> ()
        in
        let on_ctrl_loss p =
          match hierarchy with
          | Some h -> Hierarchy.set_ctrl_loss_override h p
          | None -> ()
        in
        let on_link a b ~up =
          (* A down link demotes every fluid flow crossing it: loss and
             recovery behaviour need the packet engine. *)
          (match fluid_tier with
          | Some fl -> Fluid.on_link_change fl a b ~up
          | None -> ());
          if not up then
            List.iter
              (fun key ->
                (match Hashtbl.find_opt pdq_arbs key with
                | Some arb -> Pdq.Arbiter.clear arb
                | None -> ());
                match Hashtbl.find_opt d3_routers key with
                | Some r -> D3.Router.clear r
                | None -> ())
              [ (a, b); (b, a) ]
        in
        Some (Fault.create topo ~on_crash ~on_restart ~on_ctrl_loss ~on_link events)
  in
  let d3_routers_for ~flow src dst =
    let rec links acc = function
      | a :: (b :: _ as rest) ->
          let router =
            match Hashtbl.find_opt d3_routers (a, b) with
            | Some r -> r
            | None ->
                let link =
                  match Net.link_from net a b with
                  | Some l -> l
                  | None -> assert false
                in
                let r = D3.Router.create ~capacity_bps:(Link.rate_bps link) in
                Hashtbl.replace d3_routers (a, b) r;
                r
          in
          links (router :: acc) rest
      | _ -> List.rev acc
    in
    links [] (Net.route net ~flow ~src ~dst ())
  in
  let pdq_arbiters_for ~flow src dst =
    let rec links acc = function
      | a :: (b :: _ as rest) ->
          let arb =
            match Hashtbl.find_opt pdq_arbs (a, b) with
            | Some arb -> arb
            | None ->
                let link =
                  match Net.link_from net a b with
                  | Some l -> l
                  | None -> assert false
                in
                let arb = Pdq.Arbiter.create ~capacity_bps:(Link.rate_bps link) in
                Hashtbl.replace pdq_arbs (a, b) arb;
                arb
          in
          links (arb :: acc) rest
      | _ -> List.rev acc
    in
    links [] (Net.route net ~flow ~src ~dst ())
  in
  let measured =
    List.filter (fun s -> not s.Scenario.long_lived) plan.Scenario.specs
  in
  let total_measured = List.length measured in
  let completed = ref 0 in
  (* Flows still open at the horizon: spec plus the launch-time size and
     zero-load FCT, so censored records carry the same [ideal] and [task]
     fields as completed ones. *)
  let open_flows : (int, Scenario.flow_spec * int * float) Hashtbl.t =
    Hashtbl.create 256
  in
  let next_id = ref 0 in
  (* Fidelity tag: the classifier decision, recorded even when hybrid is
     configured but disabled, so a packet-only comparison run cuts the
     identical short-flow subset (see Fct.packet_tier_percentile). *)
  let classify (spec : Scenario.flow_spec) =
    match hybrid with
    | Some h ->
        fluid_capable protocol
        && Scenario.fluid_eligible ~threshold_bytes:h.fluid_threshold spec
    | None -> false
  in
  let launch (spec : Scenario.flow_spec) =
    let id = !next_id in
    incr next_id;
    let size_pkts =
      if spec.Scenario.long_lived then Flow.long_lived_size
      else Flow.size_pkts_of_bytes ~mss spec.Scenario.size_bytes
    in
    let launched_at = Engine.now engine in
    let init_rtt =
      Topology.base_rtt topo ~src:spec.Scenario.src ~dst:spec.Scenario.dst
        ~data_bytes:(mss + Packet.header_bytes)
    in
    (* Zero-load FCT: base RTT plus serialization of the remaining train at
       the edge rate (slowdown denominator). *)
    let ideal =
      init_rtt
      +. float_of_int ((size_pkts - 1) * 8 * (mss + Packet.header_bytes))
         /. topo.Topology.edge_rate_bps
    in
    if not spec.Scenario.long_lived then
      Hashtbl.replace open_flows id (spec, size_pkts, ideal);
    let fluid_tag = classify spec in
    (* Start — or restart, after fluid demotion — the packet-level life of
       the flow. For a never-fluid flow the arguments are the full size and
       original deadline and this is exactly the pre-hybrid launch path. *)
    let start_packet ~remaining_pkts ~deadline ~init_cwnd () =
      let flow =
        Flow.make ~id ~src:spec.Scenario.src ~dst:spec.Scenario.dst
          ~size_pkts:remaining_pkts ~start_time:(Engine.now engine) ?deadline ()
      in
      let recv = Receiver.create net ~flow ~ack_tos:0 ~ack_prio:0. () in
      let on_complete _sender ~fct:_ =
        Receiver.stop recv;
        (match fluid_tier with
        | Some fl -> Fluid.unregister_packet fl ~id
        | None -> ());
        if not spec.Scenario.long_lived then begin
          Hashtbl.remove open_flows id;
          record
            {
              Fct.flow = id;
              size_pkts;
              start_time = launched_at;
              (* Full span, covering any fluid phase of a demoted flow. For
                 a never-fluid flow this is bit-identical to the sender's
                 reported fct: same subtraction, same operands. *)
              fct = Engine.now engine -. launched_at;
              deadline = spec.Scenario.deadline;
              censored = false;
              ideal = Some ideal;
              task = spec.Scenario.task;
              fluid = fluid_tag;
            };
          (match attrib_agg with
          | Some agg -> (
              match Delay.take ~flow:id with
              | Some r ->
                  Attrib.add agg ~size_pkts r;
                  (match on_attrib with
                  | Some f -> f ~size_pkts r
                  | None -> ())
              | None -> ())
          | None -> ());
          incr completed;
          if !completed = total_measured then Engine.stop engine
        end
      in
      (match fluid_tier with
      | Some fl ->
          Fluid.register_packet fl ~id ~src:spec.Scenario.src
            ~dst:spec.Scenario.dst
      | None -> ());
      match protocol with
      | Dctcp ->
          let conf = Dctcp.conf ~init_rtt () in
          let conf =
            match init_cwnd with
            | Some w -> { conf with Sender_base.init_cwnd = w }
            | None -> conf
          in
          Sender_base.start (Dctcp.create net ~flow ~conf ~on_complete ())
      | D2tcp ->
          let conf = D2tcp.conf ~init_rtt () in
          let conf =
            match init_cwnd with
            | Some w -> { conf with Sender_base.init_cwnd = w }
            | None -> conf
          in
          Sender_base.start (D2tcp.create net ~flow ~conf ~on_complete ())
      | L2dct ->
          let conf = L2dct.conf ~init_rtt () in
          let conf =
            match init_cwnd with
            | Some w -> { conf with Sender_base.init_cwnd = w }
            | None -> conf
          in
          Sender_base.start (L2dct.create net ~flow ~conf ~on_complete ())
      | Pfabric ->
          (* Table 3 verbatim: flows start at a 38-segment window (line rate
             for over an RTT on every topology evaluated). *)
          Sender_base.start
            (Pfabric_host.create net ~flow
               ~conf:(Pfabric_host.conf ~init_rtt ~init_cwnd:38. ())
               ~on_complete ())
      | Pdq ->
          let arbiters =
            pdq_arbiters_for ~flow:id spec.Scenario.src spec.Scenario.dst
          in
          Pdq.start
            (Pdq.create net ~flow ~arbiters ~rtt:init_rtt
               ~conf:(Pdq.conf ~init_rtt ()) ~on_complete ())
      | D3 ->
          let routers =
            d3_routers_for ~flow:id spec.Scenario.src spec.Scenario.dst
          in
          D3.start
            (D3.create net ~flow ~routers ~rtt:init_rtt
               ~conf:(D3.conf ~init_rtt ()) ~on_complete ())
      | Pase cfg ->
          let h = match hierarchy with Some h -> h | None -> assert false in
          (* Task-aware scheduling: all flows of a task share one criterion,
             tasks served in arrival order (task ids are assigned in arrival
             order by the scenario). *)
          let criterion_override =
            match (cfg.Config.scheduling, spec.Scenario.task) with
            | Config.Task_aware, Some task -> Some (fun () -> float_of_int task)
            | (Config.Task_aware | Config.Srpt | Config.Edf), _ -> None
          in
          Pase_host.start
            (Pase_host.create net h ~flow ~cfg ~rtt:init_rtt
               ~nic_bps:topo.Topology.edge_rate_bps ?criterion_override
               ~on_complete ())
    in
    match fluid_tier with
    | Some fl when fluid_tag ->
        (* Fluid phase first; [on_demote] fires exactly once (synchronously
           when the size is already at the boundary) and hands the packet
           tail over with the settled remaining bytes and last fluid rate. *)
        let bytes =
          if spec.Scenario.long_lived then infinity
          else float_of_int spec.Scenario.size_bytes
        in
        Fluid.admit fl ~id ~src:spec.Scenario.src ~dst:spec.Scenario.dst ~bytes
          ~on_demote:(fun ~remaining_bytes ~rate_bps ->
            let now = Engine.now engine in
            let remaining_pkts =
              (* A fault can demote a long-lived flow with infinite
                 remaining bytes: it continues long-lived at packet level. *)
              if remaining_bytes >= 1e15 then Flow.long_lived_size
              else
                Flow.size_pkts_of_bytes ~mss
                  (max 1 (int_of_float (ceil remaining_bytes)))
            in
            let deadline =
              Option.map
                (fun d -> Float.max 1e-6 (d -. (now -. launched_at)))
                spec.Scenario.deadline
            in
            (* Seed the demoted window near the fluid rate so the packet
               tail resumes at speed instead of slow-starting. *)
            let init_cwnd =
              if rate_bps <= 0. then None
              else
                Some
                  (Float.max 2.
                     (rate_bps *. init_rtt
                     /. float_of_int (8 * (mss + Packet.header_bytes))))
            in
            start_packet ~remaining_pkts ~deadline ~init_cwnd ())
    | Some _ | None ->
        start_packet ~remaining_pkts:size_pkts ~deadline:spec.Scenario.deadline
          ~init_cwnd:None ()
  in
  List.iter
    (fun spec ->
      Engine.schedule_at ~label:"flow-launch" engine ~time:spec.Scenario.start
        (fun () -> launch spec))
    plan.Scenario.specs;
  let last_arrival =
    List.fold_left (fun acc s -> Float.max acc s.Scenario.start) 0.
      plan.Scenario.specs
  in
  let horizon =
    match horizon with Some h -> h | None -> last_arrival +. 5.0
  in
  (match fault_plane with Some fp -> Fault.arm fp | None -> ());
  (* Fabric sampler: observes the finalized topology's links at a fixed
     sim-time cadence, plus arbitration-plane counters. Pure observation —
     results are unchanged whether or not it runs. *)
  let sampler =
    match series with
    | None -> None
    | Some (store, interval) ->
        let links =
          List.map
            (fun (a, b, l) -> (Printf.sprintf "%d-%d" a b, l))
            (Net.links net)
        in
        let extra () =
          let base =
            [
              ("ctrl.msgs", float_of_int counters.Counters.ctrl_msgs);
              ("ctrl.lost", float_of_int counters.Counters.ctrl_lost);
            ]
          in
          match hierarchy with
          | Some h ->
              ("arb.rounds", float_of_int (Hierarchy.rounds h))
              :: ("arb.count", float_of_int (Hierarchy.arbitrator_count h))
              :: base
          | None -> base
        in
        Some (Sampler.start engine ~store ~interval ~links ~extra ())
  in
  Engine.run ~until:horizon engine;
  (match sampler with Some s -> Sampler.stop s | None -> ());
  (match hierarchy with Some h -> Hierarchy.stop h | None -> ());
  (match fault_plane with Some fp -> Fault.finish fp | None -> ());
  let end_time = Engine.now engine in
  (* Flows still open at the horizon are censored. Sorted traversal: the
     record order below is the record order in the published result. *)
  Det_tbl.iter
    (fun id ((spec : Scenario.flow_spec), size_pkts, ideal) ->
      record
        {
          Fct.flow = id;
          size_pkts;
          start_time = spec.Scenario.start;
          fct = Float.max 0. (end_time -. spec.Scenario.start);
          deadline = spec.Scenario.deadline;
          censored = true;
          ideal = Some ideal;
          task = spec.Scenario.task;
          fluid = classify spec;
        })
    open_flows;
  let prof = Engine.profile engine in
  let afct = Fct.afct fct in
  let link_downtime_s =
    match fault_plane with
    | Some fp -> (Fault.stats fp).Fault.downtime_s
    | None -> 0.
  in
  let recovery_s =
    match hierarchy with
    | Some h -> (
        match Hierarchy.recovery_s h with Some s -> s | None -> nan)
    | None -> nan
  in
  if attrib then Delay.disable ();
  (* All-workers-finish: CCT spans the group's first start to its last
     member's finish. Sorted task order makes t-digest insertion — and so
     every published quantile — byte-stable across runs and processes. *)
  let coflow_agg =
    if Hashtbl.length coflow_groups = 0 then None
    else begin
      let agg = Coflow.create () in
      Det_tbl.iter
        (fun _tid g ->
          Coflow.observe agg
            ~cct:(Float.max 0. (g.last_end -. g.first_start))
            ~width:g.members ~censored:g.any_censored
            ~deadline:g.group_deadline)
        coflow_groups;
      Some agg
    end
  in
  let hybrid_stats =
    match hybrid with
    | None -> None
    | Some h ->
        let fs =
          match fluid_tier with
          | Some fl ->
              (* Settle censored fluid flows to the end time so the
                 analytic byte count covers the whole run. *)
              Fluid.flush fl;
              Fluid.stats fl
          | None ->
              {
                Fluid.admitted = 0;
                demotions = 0;
                fault_demotions = 0;
                recomputes = 0;
                bytes_advanced = 0.;
                live = 0;
              }
        in
        Some
          {
            hybrid_on;
            threshold_bytes = h.fluid_threshold;
            fluid_flows = fs.Fluid.admitted;
            fluid_demotions = fs.Fluid.demotions;
            fault_demotions = fs.Fluid.fault_demotions;
            fluid_recomputes = fs.Fluid.recomputes;
            fluid_bytes = fs.Fluid.bytes_advanced;
            short_p99 = Fct.packet_tier_percentile fct 99.;
          }
  in
  {
    scenario = scenario.Scenario.name;
    protocol = name protocol;
    load = scenario.Scenario.load;
    fct;
    afct;
    p99 = Fct.percentile fct 99.;
    p999 = Fct.percentile fct 99.9;
    app_throughput = Fct.deadline_met_fraction fct;
    loss_rate = Counters.loss_rate counters;
    ctrl_msgs = counters.Counters.ctrl_msgs;
    ctrl_msg_rate =
      (if end_time > 0. then float_of_int counters.Counters.ctrl_msgs /. end_time
       else 0.);
    duration = end_time;
    events = Engine.events_processed engine;
    completed = !completed;
    censored = Fct.censored_count fct;
    stray_pkts = counters.Counters.stray_pkts;
    faults_injected = Fault.count scenario.Scenario.faults;
    blackholed_pkts = counters.Counters.blackholed_pkts;
    ctrl_lost_msgs = counters.Counters.ctrl_lost;
    link_downtime_s;
    recovery_s;
    afct_baseline;
    afct_inflation = afct /. afct_baseline;
    attrib = attrib_agg;
    hybrid = hybrid_stats;
    coflow = coflow_agg;
    peak_heap = prof.Engine.peak_heap;
    sched_profile = prof.Engine.sites;
    gc_minor_words = prof.Engine.minor_words;
    gc_promoted_words = prof.Engine.promoted_words;
    gc_major_collections = prof.Engine.major_collections;
  }
