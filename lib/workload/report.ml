(* The "explain" layer behind [pase_sim report]: joins a result JSON with
   the optional per-flow attribution JSONL and fabric-series JSONL spills
   from the same run (plus, optionally, a second result to diff against)
   and renders the story — where did the p99 flow's time go, which links
   and queues ran hot, and how two protocols' delay budgets differ.

   Everything here is a pure function of the parsed inputs: rows are sorted
   with explicit comparators and floats printed with fixed formats, so the
   same inputs always produce byte-identical output (CI diffs it). *)

let components =
  [ "serialization"; "propagation"; "queueing"; "arb_wait"; "rto_stall" ]

type flow_rec = {
  flow : int;
  size_pkts : int;
  fct : float;
  comps : (string * float) list;  (* in [components] order *)
  timeouts : int;
}

type link_stat = {
  label : string;
  mean_util : float;
  peak_util : float;
  peak_pkts : float;
  drops : float;
}

type t = {
  run : Json.t;
  flows : flow_rec list;  (* attribution records, input order *)
  links : link_stat list;  (* per-link series rollup, label order *)
  series_samples : int;
  vs : Json.t option;
  top : int;
}

(* ---- input loading ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)

let parse_lines path =
  let text = read_file path in
  let lines = String.split_on_char '\n' text in
  List.filteri
    (fun i line ->
      match String.trim line with
      | "" -> false
      | _ -> ignore i; true)
    lines
  |> List.map (fun line ->
         match Json.parse line with
         | Ok v -> v
         | Error e -> failwith (Printf.sprintf "%s: %s" path e))

(* ---- attribution rollup ------------------------------------------------- *)

let flow_of_json j =
  let num key = Option.value ~default:nan (Json.float_member key j) in
  {
    flow = int_of_float (Option.value ~default:(-1.) (Json.float_member "flow" j));
    size_pkts =
      int_of_float (Option.value ~default:0. (Json.float_member "size_pkts" j));
    fct = num "fct";
    comps = List.map (fun c -> (c, num c)) components;
    timeouts =
      int_of_float (Option.value ~default:0. (Json.float_member "timeouts" j));
  }

let comp_total flows c =
  List.fold_left
    (fun acc f -> acc +. List.assoc c f.comps)
    0. flows

(* Nearest-rank percentile by FCT over the attribution records. *)
let flow_at_percentile flows p =
  match flows with
  | [] -> None
  | _ ->
      let arr = Array.of_list flows in
      Array.sort (fun a b -> Float.compare a.fct b.fct) arr;
      let n = Array.length arr in
      let rank =
        max 0 (min (n - 1) (int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1))
      in
      Some arr.(rank)

let max_flow_residual flows =
  List.fold_left
    (fun acc f ->
      let sum =
        List.fold_left (fun s (_, v) -> s +. v) 0. f.comps
      in
      Float.max acc (Float.abs (f.fct -. sum)))
    0. flows

(* ---- series rollup ------------------------------------------------------ *)

(* Metric names: link.<label>.util | q.<label>.pkts | q.<label>.drops | ... *)
let split_metric m =
  match String.split_on_char '.' m with
  | "link" :: rest when List.length rest >= 2 ->
      let label =
        String.concat "." (List.filteri (fun i _ -> i < List.length rest - 1) rest)
      in
      Some (label, `Util)
  | "q" :: rest when List.length rest >= 2 -> (
      let label =
        String.concat "." (List.filteri (fun i _ -> i < List.length rest - 1) rest)
      in
      match List.nth rest (List.length rest - 1) with
      | "pkts" when not (String.contains label '.') -> Some (label, `Pkts)
      | "drops" -> Some (label, `Drops)
      | _ -> None)
  | _ -> None

let rollup_series samples =
  let tbl : (string, float ref * int ref * float ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* util_sum, util_n, util_peak, pkts_peak, drops_sum per label *)
  let cell label =
    match Hashtbl.find_opt tbl label with
    | Some c -> c
    | None ->
        let c = (ref 0., ref 0, ref 0., ref 0., ref 0.) in
        Hashtbl.replace tbl label c;
        c
  in
  List.iter
    (fun s ->
      match Json.string_member "metric" s with
      | None -> ()
      | Some m -> (
          let v = Option.value ~default:0. (Json.float_member "v" s) in
          match split_metric m with
          | Some (label, `Util) ->
              let usum, un, upeak, _, _ = cell label in
              usum := !usum +. v;
              incr un;
              upeak := Float.max !upeak v
          | Some (label, `Pkts) ->
              let _, _, _, ppeak, _ = cell label in
              ppeak := Float.max !ppeak v
          | Some (label, `Drops) ->
              let _, _, _, _, d = cell label in
              d := !d +. v
          | None -> ()))
    samples;
  let stats =
    Det_tbl.fold ~cmp:String.compare
      (fun label (usum, un, upeak, ppeak, drops) acc ->
        {
          label;
          mean_util = (if !un = 0 then 0. else !usum /. float_of_int !un);
          peak_util = !upeak;
          peak_pkts = !ppeak;
          drops = !drops;
        }
        :: acc)
      tbl []
  in
  List.rev stats

(* ---- assembly ----------------------------------------------------------- *)

let build ~run ?attrib_lines ?series_lines ?vs ?(top = 5) () =
  let flows =
    match attrib_lines with
    | None -> []
    | Some lines -> List.map flow_of_json lines
  in
  let links, series_samples =
    match series_lines with
    | None -> ([], 0)
    | Some lines -> (rollup_series lines, List.length lines)
  in
  { run; flows; links; series_samples; vs; top }

let of_files ~result ?attrib ?series ?vs ?top () =
  build ~run:(parse_file result)
    ?attrib_lines:(Option.map parse_lines attrib)
    ?series_lines:(Option.map parse_lines series)
    ?vs:(Option.map parse_file vs)
    ?top ()

(* ---- rendering helpers -------------------------------------------------- *)

let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.17g" f

let json_of_result_field run key =
  match Json.member key run with
  | Some (Json.Str s) -> Printf.sprintf "%S" s
  | Some (Json.Num f) -> json_float f
  | Some (Json.Bool b) -> string_of_bool b
  | Some Json.Null | None -> "null"
  | Some (Json.Arr _ | Json.Obj _) -> "null"

let take n xs =
  List.filteri (fun i _ -> i < n) xs

let top_links t =
  let by_util =
    List.stable_sort
      (fun a b ->
        match Float.compare b.mean_util a.mean_util with
        | 0 -> String.compare a.label b.label
        | c -> c)
      t.links
  in
  take t.top by_util

let top_queues t =
  let by_depth =
    List.stable_sort
      (fun a b ->
        match Float.compare b.peak_pkts a.peak_pkts with
        | 0 -> String.compare a.label b.label
        | c -> c)
      t.links
  in
  take t.top by_depth

(* Coflow aggregate embedded in a v8 result; None for pre-coflow runs. *)
let coflow_obj run =
  match Json.member "coflow" run with
  | Some (Json.Obj _ as c) -> Some c
  | _ -> None

let coflow_num c key = Option.value ~default:nan (Json.float_member key c)

let vs_mean run component =
  (* mean of one component over the "all" band of a result's attrib object *)
  let ( >>= ) o f = Option.bind o f in
  Json.member "attrib" run >>= Json.member "bands" >>= Json.to_list
  >>= List.find_opt (fun b -> Json.string_member "band" b = Some "all")
  >>= Json.member "components" >>= Json.member component
  >>= Json.float_member "mean"

(* ---- JSON output -------------------------------------------------------- *)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf {|{"report":1,"run":{|};
  List.iteri
    (fun i key ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|"%s":%s|} key (json_of_result_field t.run key)))
    [ "scenario"; "protocol"; "load"; "afct"; "p99"; "completed"; "censored" ];
  Buffer.add_char buf '}';
  (match t.flows with
  | [] -> ()
  | flows ->
      let n = List.length flows in
      let fct_sum = List.fold_left (fun acc f -> acc +. f.fct) 0. flows in
      let comp_sum = List.map (fun c -> (c, comp_total flows c)) components in
      Buffer.add_string buf
        (Printf.sprintf {|,"attribution":{"flows":%d,"components":{|} n);
      List.iteri
        (fun i (c, total) ->
          if i > 0 then Buffer.add_char buf ',';
          let share = if fct_sum > 0. then total /. fct_sum else nan in
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"total":%s,"share":%s}|} c
               (json_float total) (json_float share)))
        comp_sum;
      Buffer.add_string buf
        (Printf.sprintf
           {|},"check":{"afct":%s,"afct_from_components":%s,"max_flow_residual":%s}|}
           (json_of_result_field t.run "afct")
           (json_float
              (if n = 0 then nan
               else
                 List.fold_left
                   (fun acc f ->
                     acc
                     +. List.fold_left (fun s (_, v) -> s +. v) 0. f.comps)
                   0. flows
                 /. float_of_int n))
           (json_float (max_flow_residual flows)));
      (match flow_at_percentile flows 99. with
      | None -> ()
      | Some f ->
          Buffer.add_string buf
            (Printf.sprintf
               {|,"p99_flow":{"flow":%d,"size_pkts":%d,"fct":%s,"timeouts":%d,"components":{|}
               f.flow f.size_pkts (json_float f.fct) f.timeouts);
          List.iteri
            (fun i (c, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf {|"%s":{"seconds":%s,"share":%s}|} c
                   (json_float v)
                   (json_float (if f.fct > 0. then v /. f.fct else nan))))
            f.comps;
          Buffer.add_string buf "}}");
      Buffer.add_char buf '}');
  (match t.links with
  | [] -> ()
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf {|,"series":{"samples":%d,"hot_links":[|}
           t.series_samples);
      List.iteri
        (fun i l ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               {|{"link":"%s","mean_util":%s,"peak_util":%s}|} l.label
               (json_float l.mean_util) (json_float l.peak_util)))
        (top_links t);
      Buffer.add_string buf {|],"hot_queues":[|};
      List.iteri
        (fun i l ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|{"link":"%s","peak_pkts":%s,"drops":%s}|}
               l.label (json_float l.peak_pkts) (json_float l.drops)))
        (top_queues t);
      Buffer.add_string buf
        (Printf.sprintf {|],"total_drops":%s}|}
           (json_float
              (List.fold_left (fun acc l -> acc +. l.drops) 0. t.links))));
  (match coflow_obj t.run with
  | None -> ()
  | Some c ->
      Buffer.add_string buf {|,"coflow":{|};
      List.iteri
        (fun i key ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|"%s":%s|} key (json_float (coflow_num c key))))
        [
          "coflows"; "completed"; "censored"; "flows"; "cct_mean"; "cct_p50";
          "cct_p90"; "cct_p99"; "deadline_met"; "deadline_total";
          "deadline_met_frac";
        ];
      Buffer.add_char buf '}');
  (match t.vs with
  | None -> ()
  | Some other ->
      Buffer.add_string buf
        (Printf.sprintf {|,"vs":{"protocol":%s,"other_protocol":%s,"components":{|}
           (json_of_result_field t.run "protocol")
           (json_of_result_field other "protocol"));
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          let a = Option.value ~default:nan (vs_mean t.run c) in
          let b = Option.value ~default:nan (vs_mean other c) in
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"mean":%s,"other_mean":%s,"delta":%s}|} c
               (json_float a) (json_float b)
               (json_float (a -. b))))
        components;
      Buffer.add_string buf "}}");
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- human output ------------------------------------------------------- *)

let pct x = Printf.sprintf "%5.1f%%" (100. *. x)
let us x = Printf.sprintf "%.1fus" (1e6 *. x)

let print t =
  let str_field key =
    match Json.member key t.run with
    | Some (Json.Str s) -> s
    | Some (Json.Num f) -> Printf.sprintf "%g" f
    | _ -> "?"
  in
  Printf.printf "run: %s on %s (load %s) — afct %s, p99 %s, completed %s\n"
    (str_field "protocol") (str_field "scenario") (str_field "load")
    (str_field "afct") (str_field "p99") (str_field "completed");
  (match t.flows with
  | [] -> ()
  | flows ->
      let fct_sum = List.fold_left (fun acc f -> acc +. f.fct) 0. flows in
      Series.print_table ~title:"Delay attribution (all completed flows)"
        ~header:[ "component"; "total"; "share" ]
        (List.map
           (fun c ->
             let total = comp_total flows c in
             [
               c;
               Printf.sprintf "%.6fs" total;
               (if fct_sum > 0. then pct (total /. fct_sum) else "-");
             ])
           components);
      (match flow_at_percentile flows 99. with
      | None -> ()
      | Some f ->
          Series.print_table
            ~title:
              (Printf.sprintf
                 "p99 flow breakdown (flow %d, %d pkts, fct %s, %d timeouts)"
                 f.flow f.size_pkts (us f.fct) f.timeouts)
            ~header:[ "component"; "seconds"; "share" ]
            (List.map
               (fun (c, v) ->
                 [ c; us v; (if f.fct > 0. then pct (v /. f.fct) else "-") ])
               f.comps)));
  (match t.links with
  | [] -> ()
  | _ ->
      Series.print_table
        ~title:(Printf.sprintf "Hot links (top %d by mean utilization)" t.top)
        ~header:[ "link"; "mean util"; "peak util" ]
        (List.map
           (fun l -> [ l.label; pct l.mean_util; pct l.peak_util ])
           (top_links t));
      Series.print_table
        ~title:(Printf.sprintf "Hot queues (top %d by peak depth)" t.top)
        ~header:[ "link"; "peak pkts"; "drops" ]
        (List.map
           (fun l ->
             [ l.label; Printf.sprintf "%.0f" l.peak_pkts;
               Printf.sprintf "%.0f" l.drops ])
           (top_queues t)));
  (match coflow_obj t.run with
  | None -> ()
  | Some c ->
      let n k = coflow_num c k in
      let ms x =
        if Float.is_nan x then "-" else Printf.sprintf "%.3fms" (1e3 *. x)
      in
      Series.print_table ~title:"Coflow completion (all-workers-finish)"
        ~header:[ "metric"; "value" ]
        [
          [
            "coflows";
            Printf.sprintf "%.0f (%.0f censored)" (n "coflows") (n "censored");
          ];
          [ "member flows"; Printf.sprintf "%.0f" (n "flows") ];
          [ "cct mean"; ms (n "cct_mean") ];
          [ "cct p50"; ms (n "cct_p50") ];
          [ "cct p99"; ms (n "cct_p99") ];
          [
            "deadline met";
            (if Float.is_nan (n "deadline_met_frac") then "-"
             else
               Printf.sprintf "%.0f/%.0f (%.1f%%)" (n "deadline_met")
                 (n "deadline_total")
                 (100. *. n "deadline_met_frac"));
          ];
        ]);
  match t.vs with
  | None -> ()
  | Some other ->
      let title =
        Printf.sprintf "Attribution diff: %s vs %s (mean per flow)"
          (match Json.string_member "protocol" t.run with
          | Some s -> s
          | None -> "?")
          (match Json.string_member "protocol" other with
          | Some s -> s
          | None -> "?")
      in
      if List.for_all (fun c -> vs_mean other c = None) components then
        Printf.printf
          "\n== %s ==\n(no attribution in the --vs result; rerun it with \
           --attrib)\n"
          title
      else
        Series.print_table ~title
          ~header:[ "component"; "mean"; "other"; "delta" ]
          (List.map
             (fun c ->
               let a = Option.value ~default:nan (vs_mean t.run c) in
               let b = Option.value ~default:nan (vs_mean other c) in
               [ c; us a; us b; us (a -. b) ])
             components)
