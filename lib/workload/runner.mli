(** Experiment runner: materialise a scenario, attach one transport per
    flow, simulate, and collect the paper's metrics. *)

type protocol =
  | Dctcp
  | D2tcp
  | L2dct
  | Pfabric
  | Pdq
  | D3
  | Pase of Config.t

val name : protocol -> string

(** PASE with the paper's default configuration. *)
val pase : protocol

(** Hybrid fidelity: which protocols may carry fluid (flow-level) traffic.
    DCTCP-family transports and PASE converge to fair shares on long flows
    (PASE's arbitration is approximated by the max-min share while a flow
    is fluid); pFabric/PDQ/D3 schedule by remaining size or explicit rates
    and stay packet-level. *)
val fluid_capable : protocol -> bool

(** Hybrid-engine configuration. [enabled = false] keeps every flow at
    packet level but still tags records with the classifier decision, so a
    comparison run cuts the identical short-flow subset as the hybrid run
    with the same [fluid_threshold] (bytes). *)
type hybrid = { enabled : bool; fluid_threshold : int }

val default_fluid_threshold : int

type hybrid_stats = {
  hybrid_on : bool;  (** fluid tier active (enabled and whitelisted) *)
  threshold_bytes : int;
  fluid_flows : int;  (** flows the classifier sent to the fluid tier *)
  fluid_demotions : int;  (** total demotions to packet level *)
  fault_demotions : int;  (** demotions forced by path faults *)
  fluid_recomputes : int;  (** max-min rate-allocation passes *)
  fluid_bytes : float;  (** bytes advanced analytically *)
  short_p99 : float;
      (** p99 FCT of completed flows the classifier left packet-level — the
          hybrid accuracy metric (see {!Fct.packet_tier_percentile}) *)
}

type result = {
  scenario : string;
  protocol : string;
  load : float;
  fct : Fct.t;  (** per-flow records (completed + censored) *)
  afct : float;  (** seconds, over completed flows *)
  p99 : float;  (** 99th-percentile FCT, seconds; [nan] if none completed *)
  p999 : float;
      (** 99.9th-percentile FCT, seconds; [nan] if none completed. Under
          streaming stats, both percentiles are t-digest estimates within
          [Fct.quantile_rank_error] of the exact rank *)
  app_throughput : float;  (** deadline-met fraction; [nan] if no deadlines *)
  loss_rate : float;
  ctrl_msgs : int;
  ctrl_msg_rate : float;  (** control messages per simulated second *)
  duration : float;  (** simulated time at the end of the run *)
  events : int;
  completed : int;
  censored : int;
  stray_pkts : int;
      (** packets delivered with no registered handler or routed into a dead
          end — nonzero means misrouted traffic, which should fail loudly *)
  faults_injected : int;  (** events in the scenario's fault schedule *)
  blackholed_pkts : int;  (** packets lost to down links *)
  ctrl_lost_msgs : int;
      (** control messages lost to injected loss or crashed arbitrators *)
  link_downtime_s : float;
      (** total link downtime, summed per undirected pair *)
  recovery_s : float;
      (** time from the first arbitrator-node recovery to its first
          re-served allocation; [nan] when no crash recovered *)
  afct_baseline : float;
      (** AFCT of the fault-free run of the same scenario; [nan] for
          fault-free or traced runs (the baseline sub-run is skipped under
          tracing so its events don't pollute the sinks) *)
  afct_inflation : float;  (** [afct /. afct_baseline]; [nan] if n/a *)
  attrib : Attrib.t option;
      (** per-flow delay attribution aggregate (see {!Delay} and
          {!Attrib}); [None] unless [run ~attrib:true]. For demoted flows
          the attribution covers the packet-level phase only *)
  hybrid : hybrid_stats option;
      (** hybrid fidelity accounting; [None] unless [run ~hybrid] *)
  coflow : Coflow.t option;
      (** coflow (task-group) completion aggregate with all-workers-finish
          semantics: one group per task id (incast queries and
          {!Scenario.with_coflows} jobs), CCT = last member finish − first
          member start, group deadline = min over member deadlines. [None]
          when no spec carries a task id. Groups are finalised in sorted
          task-id order, so the aggregate is byte-stable across runs and
          processes. *)
  peak_heap : int;  (** peak engine event-heap depth over the run *)
  sched_profile : (string * int) list;
      (** executions per schedule-site label (see {!Engine.profile});
          empty unless [run ~profile:true]. Deterministic, unlike wall
          time, so it is safe inside the byte-compared result. *)
  gc_minor_words : float;
      (** minor-heap words allocated during the run; zero unless
          [run ~profile:true]. GC deltas depend on process state (heap
          history, fork vs. serial): byte-compare profiled results only
          after stripping them. *)
  gc_promoted_words : float;  (** words promoted to the major heap *)
  gc_major_collections : int;  (** major GC cycles during the run *)
}

(** [run ?profile ?horizon ?stats ?on_record protocol scenario] executes
    one simulation. The run ends when every measured flow completes or at
    [horizon] (default: last arrival + 5 s); unfinished measured flows are
    recorded as censored. [profile] (default false) enables per-site engine
    profiling.

    [stats] selects the FCT collection mode: [`Exact] (default) retains
    every per-flow record, byte-identical to the historical results;
    [`Streaming] aggregates online ({!Fct.create_streaming}, reservoir
    seeded from the scenario seed) so the run's memory stays bounded in the
    flow count. [on_record] is invoked once per record (completed and
    censored) in result order — the CLI's [--stream-results] uses it to
    spill records to disk incrementally.

    A non-empty [scenario.faults] schedule is armed on the engine before
    the run and first triggers an unprofiled fault-free sub-run of the same
    scenario to measure [afct_baseline] (skipped while tracing).

    [attrib] (default false) turns on per-flow delay attribution ({!Delay})
    for the measured run (never the baseline sub-run): each completed flow's
    record lands in [result.attrib], and [on_attrib] (if given) sees every
    record as the flow completes, in completion order — the CLI's
    [--attrib] uses it to spill records as JSONL. [series], when given a
    [(store, interval)] pair, drives a {!Sampler} over the topology's links
    at [interval] seconds of sim time into [store]. Both are observation
    layers: the simulated outcome (FCTs, events, counters) is identical
    with them on or off.

    [hybrid] configures the hybrid fidelity engine (see DESIGN.md §15):
    with [enabled = true] and a whitelisted protocol, flows the classifier
    marks eligible ({!Scenario.fluid_eligible}) run as fluid rate shares
    until their remaining bytes reach [fluid_threshold] (or a fault touches
    their path), then finish packet-level; every record carries the
    classifier tag and [result.hybrid] reports the accounting. Omitting
    [hybrid] is byte-identical to the pre-hybrid runner. Raises
    [Invalid_argument] when [fluid_threshold <= 0]. *)
val run :
  ?profile:bool ->
  ?horizon:float ->
  ?stats:[ `Exact | `Streaming ] ->
  ?on_record:(Fct.record -> unit) ->
  ?attrib:bool ->
  ?on_attrib:(size_pkts:int -> Delay.record -> unit) ->
  ?series:Series.store * float ->
  ?hybrid:hybrid ->
  protocol ->
  Scenario.t ->
  result
