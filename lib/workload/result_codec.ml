let version = 8
let magic = "PASE-RES"
let header_len = String.length magic + 4

let encode (r : Runner.result) =
  Printf.sprintf "%s%04d%s" magic version
    (* lint: allow no-marshal — this module IS the blessed codec boundary *)
    (Marshal.to_string (r : Runner.result) [])

let decode s =
  if String.length s < header_len then Error "truncated header"
  else if String.sub s 0 (String.length magic) <> magic then
    Error "bad magic (not a PASE result blob)"
  else
    match int_of_string_opt (String.sub s (String.length magic) 4) with
    | None -> Error "unreadable version field"
    | Some v when v <> version ->
        Error (Printf.sprintf "version mismatch: blob v%d, codec v%d" v version)
    | Some _ -> (
        (* lint: allow no-marshal — this module IS the blessed codec boundary *)
        try Ok (Marshal.from_string s header_len : Runner.result)
        with exn ->
          Error (Printf.sprintf "corrupt payload: %s" (Printexc.to_string exn)))

(* ---- JSON export ------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no nan/inf; those become null. %.17g round-trips doubles. *)
let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.17g" f

let json_opt_float = function None -> "null" | Some f -> json_float f
let json_opt_int = function None -> "null" | Some i -> string_of_int i

let record_to_json (r : Fct.record) =
  Printf.sprintf
    {|{"flow":%d,"size_pkts":%d,"start":%s,"fct":%s,"deadline":%s,"censored":%b,"ideal":%s,"task":%s,"fluid":%b}|}
    r.Fct.flow r.Fct.size_pkts
    (json_float r.Fct.start_time)
    (json_float r.Fct.fct)
    (json_opt_float r.Fct.deadline)
    r.Fct.censored
    (json_opt_float r.Fct.ideal)
    (json_opt_int r.Fct.task)
    r.Fct.fluid

let attrib_record_to_json ~size_pkts (r : Delay.record) =
  Printf.sprintf
    {|{"flow":%d,"size_pkts":%d,"fct":%s,"serialization":%s,"propagation":%s,"queueing":%s,"arb_wait":%s,"rto_stall":%s,"timeouts":%d}|}
    r.Delay.flow size_pkts (json_float r.Delay.fct)
    (json_float r.Delay.serialization)
    (json_float r.Delay.propagation)
    (json_float r.Delay.queueing)
    (json_float r.Delay.arb_wait)
    (json_float r.Delay.rto_stall)
    r.Delay.timeouts

let to_json ?(records = false) ?(extra = []) (r : Runner.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"version":%d,"scenario":"%s","protocol":"%s","load":%s,"afct":%s,"p99":%s,"p999":%s,"app_throughput":%s,"loss_rate":%s,"ctrl_msgs":%d,"ctrl_msg_rate":%s,"duration":%s,"events":%d,"completed":%d,"censored":%d,"stray_pkts":%d,"peak_heap":%d|}
       version (json_escape r.Runner.scenario)
       (json_escape r.Runner.protocol)
       (json_float r.Runner.load) (json_float r.Runner.afct)
       (json_float r.Runner.p99)
       (json_float r.Runner.p999)
       (json_float r.Runner.app_throughput)
       (json_float r.Runner.loss_rate)
       r.Runner.ctrl_msgs
       (json_float r.Runner.ctrl_msg_rate)
       (json_float r.Runner.duration)
       r.Runner.events r.Runner.completed r.Runner.censored
       r.Runner.stray_pkts r.Runner.peak_heap);
  (* Fault-plane metrics: always emitted so the schema is stable; all-zero /
     null for fault-free runs. *)
  Buffer.add_string buf
    (Printf.sprintf
       {|,"blackholed_pkts":%d,"ctrl_lost":%d,"faults":{"injected":%d,"link_downtime_s":%s,"recovery_s":%s,"afct_baseline":%s,"afct_inflation":%s}|}
       r.Runner.blackholed_pkts r.Runner.ctrl_lost_msgs
       r.Runner.faults_injected
       (json_float r.Runner.link_downtime_s)
       (json_float r.Runner.recovery_s)
       (json_float r.Runner.afct_baseline)
       (json_float r.Runner.afct_inflation));
  (* Statistics mode: exact retains every record; streaming carries the
     sketch parameters and the p99 rank-error bound so downstream tooling
     can judge quantile accuracy without the raw sample. *)
  (match Fct.sketch_info r.Runner.fct with
  | None -> Buffer.add_string buf {|,"stats":{"mode":"exact"}|}
  | Some sk ->
      Buffer.add_string buf
        (Printf.sprintf
           {|,"stats":{"mode":"streaming","quantile_rank_error_p99":%s,"sketch":{"delta":%s,"centroids":%d,"reservoir_len":%d,"reservoir_seen":%d}}|}
           (json_float (Fct.quantile_rank_error r.Runner.fct 99.))
           (json_float sk.Fct.sk_delta)
           sk.Fct.sk_centroids sk.Fct.sk_reservoir_len
           sk.Fct.sk_reservoir_seen));
  (* Delay attribution aggregate (codec v6); absent unless run ~attrib. *)
  (match r.Runner.attrib with
  | None -> ()
  | Some a ->
      Buffer.add_string buf
        (Printf.sprintf {|,"attrib":%s|} (Attrib.to_json a)));
  (* Hybrid fidelity accounting (codec v7); absent unless run ~hybrid. *)
  (match r.Runner.hybrid with
  | None -> ()
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf
           {|,"hybrid":{"on":%b,"fluid_threshold":%d,"fluid_flows":%d,"demotions":%d,"fault_demotions":%d,"recomputes":%d,"fluid_bytes":%s,"short_p99":%s}|}
           h.Runner.hybrid_on h.Runner.threshold_bytes h.Runner.fluid_flows
           h.Runner.fluid_demotions h.Runner.fault_demotions
           h.Runner.fluid_recomputes
           (json_float h.Runner.fluid_bytes)
           (json_float h.Runner.short_p99)));
  (* Coflow (task-group) CCT aggregate (codec v8); absent when no spec
     carried a task id. *)
  (match r.Runner.coflow with
  | None -> ()
  | Some c ->
      Buffer.add_string buf
        (Printf.sprintf {|,"coflow":%s|} (Coflow.to_json c)));
  (match r.Runner.sched_profile with
  | [] -> ()
  | sites ->
      Buffer.add_string buf ",\"sched_profile\":{";
      List.iteri
        (fun i (label, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|"%s":%d|} (json_escape label) n))
        sites;
      Buffer.add_char buf '}');
  (* GC deltas (profiling runs only; all-zero otherwise). Nondeterministic
     across processes, like wall time: strip ".gc" before byte-comparing. *)
  if
    r.Runner.gc_minor_words <> 0.
    || r.Runner.gc_promoted_words <> 0.
    || r.Runner.gc_major_collections <> 0
  then
    Buffer.add_string buf
      (Printf.sprintf
         {|,"gc":{"minor_words":%s,"promoted_words":%s,"major_collections":%d}|}
         (json_float r.Runner.gc_minor_words)
         (json_float r.Runner.gc_promoted_words)
         r.Runner.gc_major_collections);
  List.iter
    (fun (key, value) ->
      Buffer.add_string buf
        (Printf.sprintf {|,"%s":%s|} (json_escape key) value))
    extra;
  if records then begin
    Buffer.add_string buf ",\"flows\":[";
    List.iteri
      (fun i rec_ ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (record_to_json rec_))
      (Fct.records r.Runner.fct);
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf
