(* Minimal JSON reader for the report layer.

   The repo writes all of its JSON by hand (Result_codec, Attrib, Series)
   and the container deliberately carries no JSON dependency, so the report
   subcommand reads its own output format with this small recursive-descent
   parser. It accepts standard JSON (RFC 8259): objects, arrays, strings
   with the usual escapes (\uXXXX included, surrogate pairs folded to
   UTF-8), numbers as OCaml floats, true/false/null. It is not streaming —
   inputs are whole result files or single JSONL lines, both small. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> error cur (Printf.sprintf "expected '%c', found '%c'" c d)
  | None -> error cur (Printf.sprintf "expected '%c', found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected '%s'" word)

let hex4 cur =
  if cur.pos + 4 > String.length cur.s then error cur "truncated \\u escape";
  let v = ref 0 in
  for i = cur.pos to cur.pos + 3 do
    let d =
      match cur.s.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> error cur "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  cur.pos <- cur.pos + 4;
  !v

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'; advance cur
        | Some '\\' -> Buffer.add_char buf '\\'; advance cur
        | Some '/' -> Buffer.add_char buf '/'; advance cur
        | Some 'b' -> Buffer.add_char buf '\b'; advance cur
        | Some 'f' -> Buffer.add_char buf '\012'; advance cur
        | Some 'n' -> Buffer.add_char buf '\n'; advance cur
        | Some 'r' -> Buffer.add_char buf '\r'; advance cur
        | Some 't' -> Buffer.add_char buf '\t'; advance cur
        | Some 'u' ->
            advance cur;
            let hi = hex4 cur in
            let code =
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* surrogate pair *)
                expect cur '\\';
                expect cur 'u';
                let lo = hex4 cur in
                if lo < 0xDC00 || lo > 0xDFFF then
                  error cur "unpaired surrogate"
                else 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else hi
            in
            add_utf8 buf code
        | Some c -> error cur (Printf.sprintf "bad escape '\\%c'" c)
        | None -> error cur "truncated escape");
        loop ())
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let accept () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance cur; true
    | Some _ | None -> false
  in
  while accept () do
    ()
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; members ((key, v) :: acc)
          | Some '}' -> advance cur; List.rev ((key, v) :: acc)
          | _ -> error cur "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; elements (v :: acc)
          | Some ']' -> advance cur; List.rev (v :: acc)
          | _ -> error cur "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number cur)
  | Some c -> error cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_float = function
  | Num f -> Some f
  | Null | Bool _ | Str _ | Arr _ | Obj _ -> None

let to_string = function
  | Str s -> Some s
  | Null | Bool _ | Num _ | Arr _ | Obj _ -> None

let to_list = function
  | Arr vs -> Some vs
  | Null | Bool _ | Num _ | Str _ | Obj _ -> None

let float_member key v = Option.bind (member key v) to_float
let string_member key v = Option.bind (member key v) to_string
