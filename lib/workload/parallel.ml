type job = Runner.protocol * Scenario.t

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* ---- defaults ---------------------------------------------------------- *)

let default_jobs () =
  match Sys.getenv_opt "PASE_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_cache_dir () =
  match Sys.getenv_opt "PASE_CACHE_DIR" with
  | Some ("" | "0" | "none") -> None
  | Some d -> Some d
  | None -> Some ".pase-cache"

(* ---- configuration digests --------------------------------------------- *)

(* A digest of the running binary stands in for a code version: any rebuild
   (simulator change, parameter-table change, ...) invalidates the cache. *)
let code_version =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ | Unix.Unix_error _ ->
       Printf.sprintf "codec-v%d-only" Result_codec.version)

let fl = Printf.sprintf "%.17g"

let scheduling_key = function
  | Config.Srpt -> "srpt"
  | Config.Edf -> "edf"
  | Config.Task_aware -> "task"

let config_key (c : Config.t) =
  String.concat ","
    [
      Printf.sprintf "queues=%d" c.Config.num_queues;
      Printf.sprintf "arb=%s" (fl c.Config.arb_period);
      Printf.sprintf "prune=%b/%d" c.Config.early_pruning c.Config.prune_top_k;
      Printf.sprintf "deleg=%b/%s" c.Config.delegation
        (fl c.Config.delegation_period);
      Printf.sprintf "local=%b" c.Config.local_only;
      Printf.sprintf "probes=%b" c.Config.use_probes;
      Printf.sprintf "ref=%b" c.Config.use_ref_rate;
      Printf.sprintf "sched=%s" (scheduling_key c.Config.scheduling);
      Printf.sprintf "rto=%s/%s" (fl c.Config.rto_top) (fl c.Config.rto_low);
      Printf.sprintf "proc=%s" (fl c.Config.ctrl_proc_delay);
      Printf.sprintf "ctrl-loss=%s" (fl c.Config.ctrl_loss_prob);
      Printf.sprintf "expiry=%d" c.Config.state_expiry_rounds;
      Printf.sprintf "qlim=%d" c.Config.queue_limit_pkts;
      Printf.sprintf "mark=%d" c.Config.mark_threshold;
    ]

let protocol_key = function
  | Runner.Pase cfg -> "PASE{" ^ config_key cfg ^ "}"
  | (Runner.Dctcp | Runner.D2tcp | Runner.L2dct | Runner.Pfabric | Runner.Pdq
    | Runner.D3) as p ->
      Runner.name p

let pattern_key = function
  | Scenario.Left_right -> "left-right"
  | Scenario.Intra_rack n -> Printf.sprintf "intra-rack:%d" n
  | Scenario.Incast { hosts; aggregators; fanin = None } ->
      Printf.sprintf "incast:%d/%d" hosts aggregators
  | Scenario.Incast { hosts; aggregators; fanin = Some d } ->
      Printf.sprintf "incast:%d/%d/fanin=%s/%s" hosts aggregators d.Dist.name
        (fl d.Dist.mean)
  | Scenario.Fat_tree k -> Printf.sprintf "fat-tree:%d" k
  | Scenario.Hotspot { k; hot_racks; hot_weight } ->
      Printf.sprintf "hotspot:%d/%d/%s" k hot_racks (fl hot_weight)
  | Scenario.Traffic_matrix { k } -> Printf.sprintf "traffic-matrix:%d" k
  | Scenario.Testbed -> "testbed"

let scenario_key (s : Scenario.t) =
  String.concat "|"
    [
      s.Scenario.name;
      pattern_key s.Scenario.pattern;
      "size=" ^ s.Scenario.size_bytes.Dist.name;
      "mean=" ^ fl s.Scenario.size_bytes.Dist.mean;
      (match s.Scenario.deadline_s with
      | None -> "deadline=-"
      | Some d -> Printf.sprintf "deadline=%s/%s" d.Dist.name (fl d.Dist.mean));
      "load=" ^ fl s.Scenario.load;
      Printf.sprintf "flows=%d" s.Scenario.num_flows;
      Printf.sprintf "bg=%d" s.Scenario.background_flows;
      Printf.sprintf "seed=%d" s.Scenario.seed;
      "faults=" ^ Fault.spec_key s.Scenario.faults;
      (match s.Scenario.coflow with
      | None -> "coflow=-"
      | Some { Scenario.width; deadline_s } ->
          Printf.sprintf "coflow=%s/%s/%s" width.Dist.name (fl width.Dist.mean)
            (match deadline_s with
            | None -> "-"
            | Some d -> Printf.sprintf "%s/%s" d.Dist.name (fl d.Dist.mean)));
    ]

let job_key ?horizon ?(profile = false) ?(stats = `Exact) ?(attrib = false)
    ?hybrid proto scenario =
  let descr =
    String.concat "\n"
      [
        Lazy.force code_version;
        Printf.sprintf "codec=%d" Result_codec.version;
        protocol_key proto;
        scenario_key scenario;
        (match horizon with None -> "horizon=-" | Some h -> "horizon=" ^ fl h);
        (* Profiled results embed sched_profile, so they cache separately. *)
        Printf.sprintf "profile=%b" profile;
        (* Exact and streaming results embed different Fct payloads (full
           record list vs. sketch + reservoir), so they cache separately. *)
        (match stats with
        | `Exact -> "stats=exact"
        | `Streaming -> "stats=streaming");
        (* Attributed results embed the Attrib aggregate, so they cache
           separately from plain runs of the same configuration. *)
        Printf.sprintf "attrib=%b" attrib;
        (* Hybrid runs (and hybrid-tagged packet runs — the classifier tag
           lands in every record) cache separately per threshold. *)
        (match (hybrid : Runner.hybrid option) with
        | None -> "hybrid=-"
        | Some h ->
            Printf.sprintf "hybrid=%b/%d" h.Runner.enabled
              h.Runner.fluid_threshold);
      ]
  in
  Digest.to_hex (Digest.string descr)

(* ---- on-disk cache ------------------------------------------------------ *)

let cache_path dir key = Filename.concat dir (key ^ ".res")

let cache_load dir key =
  let path = cache_path dir key in
  match
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic))))
    else None
  with
  | None -> None
  | Some blob -> (
      (* Stale or foreign blobs are treated as misses and overwritten. *)
      match Result_codec.decode blob with Ok r -> Some r | Error _ -> None)
  (* A cache entry that vanishes or truncates mid-read is a miss, nothing
     more; anything else (Out_of_memory, ...) must propagate. *)
  | exception (Sys_error _ | End_of_file | Unix.Unix_error _) -> None

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let cache_store dir key r =
  try
    mkdir_p dir;
    let path = cache_path dir key in
    (* Atomic publish: concurrent writers race benignly on the rename. *)
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Result_codec.encode r));
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()
  (* a cold cache is always safe: a full disk or permission error only
     costs a re-simulation next run *)

(* ---- worker pool -------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n =
      restart_on_eintr (fun () ->
          Unix.write_substring fd s !pos (len - !pos))
    in
    pos := !pos + n
  done

type worker = { pid : int; idx : int; buf : Buffer.t; started : float }

(* Fork one worker per pending job, at most [jobs] live at a time. Each
   worker simulates its configuration and streams the encoded result back
   over its pipe; the parent multiplexes reads with [select] so a worker
   never blocks on a full pipe buffer. *)
let run_pool ~jobs ~horizon ~profile ~stats ~attrib ~hybrid ~(arr : job array)
    pending ~on_done =
  let queue = ref pending in
  let active : (Unix.file_descr, worker) Hashtbl.t = Hashtbl.create jobs in
  let spawn idx =
    let rd, wr = Unix.pipe () in
    (* Flush before forking so buffered output is not emitted twice. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        Unix.close rd;
        let status =
          match
            let proto, scenario = arr.(idx) in
            let r =
              Runner.run ~profile ?horizon ~stats ~attrib ?hybrid proto scenario
            in
            write_all wr (Result_codec.encode r)
          with
          | () -> 0
          | exception exn ->
              Printf.eprintf "[parallel] worker for job %d died: %s\n%!" idx
                (Printexc.to_string exn);
              1
        in
        (try Unix.close wr with Unix.Unix_error _ -> ());
        (* _exit, not exit: at_exit in a fork would rerun the parent's
           teardown (and flush its channels) a second time. *)
        Unix._exit status
    | pid ->
        Unix.close wr;
        Hashtbl.replace active rd
          (* lint: allow no-wallclock — worker elapsed-time diagnostics only *)
          { pid; idx; buf = Buffer.create 8192; started = Unix.gettimeofday () }
  in
  let kill_all () =
    (* Best-effort teardown on the error path: descriptors may already be
       closed and children already reaped, so EBADF/ESRCH/ECHILD are
       expected here — but only Unix errors are. *)
    Det_tbl.iter
      (fun fd w ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (restart_on_eintr (fun () -> Unix.waitpid [] w.pid))
        with Unix.Unix_error _ -> ())
      active;
    Hashtbl.reset active
  in
  let reap fd =
    let w = Hashtbl.find active fd in
    Unix.close fd;
    Hashtbl.remove active fd;
    let _, status = restart_on_eintr (fun () -> Unix.waitpid [] w.pid) in
    (match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n ->
        failwith (Printf.sprintf "parallel worker for job %d exited with %d" w.idx n)
    | Unix.WSIGNALED n | Unix.WSTOPPED n ->
        failwith
          (Printf.sprintf "parallel worker for job %d killed by signal %d" w.idx n));
    match Result_codec.decode (Buffer.contents w.buf) with
    (* lint: allow no-wallclock — worker elapsed-time diagnostics only *)
    | Ok r -> on_done w.idx r (Unix.gettimeofday () -. w.started)
    | Error e ->
        failwith
          (Printf.sprintf "parallel worker for job %d sent an unreadable result: %s"
             w.idx e)
  in
  let chunk = Bytes.create 65536 in
  let step () =
    while Hashtbl.length active < jobs && !queue <> [] do
      match !queue with
      | [] -> ()
      | idx :: rest ->
          queue := rest;
          spawn idx
    done;
    if Hashtbl.length active > 0 then begin
      let fds = Det_tbl.fold (fun fd _ acc -> fd :: acc) active [] in
      let ready, _, _ =
        restart_on_eintr (fun () -> Unix.select fds [] [] (-1.))
      in
      List.iter
        (fun fd ->
          let w = Hashtbl.find active fd in
          let n =
            restart_on_eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk))
          in
          if n > 0 then Buffer.add_subbytes w.buf chunk 0 n else reap fd)
        ready
    end
  in
  Fun.protect
    ~finally:(fun () -> kill_all ())
    (fun () ->
      while Hashtbl.length active > 0 || !queue <> [] do
        step ()
      done)

(* ---- driver ------------------------------------------------------------- *)

let run_jobs ?jobs ?cache_dir ?horizon ?(profile = false) ?(stats = `Exact)
    ?(attrib = false) ?hybrid ?(on_result = fun _ ~cached:_ ~wall:_ _ -> ())
    pairs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> max 1 (default_jobs ())
  in
  let cache_dir =
    match cache_dir with Some c -> c | None -> default_cache_dir ()
  in
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  let keys =
    Array.map
      (fun (p, s) -> job_key ?horizon ~profile ~stats ~attrib ?hybrid p s)
      arr
  in
  let results : Runner.result option array = Array.make n None in
  let settle i ~cached ~wall r =
    results.(i) <- Some r;
    on_result i ~cached ~wall r
  in
  (* 1. Serve what the on-disk cache already has. *)
  (match cache_dir with
  | None -> ()
  | Some dir ->
      Array.iteri
        (fun i key ->
          match cache_load dir key with
          | Some r -> settle i ~cached:true ~wall:0. r
          | None -> ())
        keys);
  (* 2. Deduplicate the misses: identical configurations run once. *)
  let rep : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref [] in
  for i = n - 1 downto 0 do
    if Option.is_none results.(i) && not (Hashtbl.mem rep keys.(i)) then begin
      Hashtbl.replace rep keys.(i) i;
      pending := i :: !pending
    end
  done;
  let publish i r wall =
    settle i ~cached:false ~wall r;
    (match cache_dir with
    | Some dir -> cache_store dir keys.(i) r
    | None -> ())
  in
  (* 3. Simulate the representatives: in-process when [jobs = 1] (or for a
     single job), over the fork pool otherwise. *)
  (match !pending with
  | [] -> ()
  | [ i ] ->
      let proto, scenario = arr.(i) in
      (* lint: allow no-wallclock — job elapsed-time diagnostics only *)
      let t0 = Unix.gettimeofday () in
      let r =
        Runner.run ~profile ?horizon ~stats ~attrib ?hybrid proto scenario
      in
      (* lint: allow no-wallclock — job elapsed-time diagnostics only *)
      publish i r (Unix.gettimeofday () -. t0)
  | pending_list ->
      if jobs = 1 then
        List.iter
          (fun i ->
            let proto, scenario = arr.(i) in
            (* lint: allow no-wallclock — job elapsed-time diagnostics only *)
            let t0 = Unix.gettimeofday () in
            let r =
              Runner.run ~profile ?horizon ~stats ~attrib ?hybrid proto scenario
            in
            (* lint: allow no-wallclock — job elapsed-time diagnostics only *)
            publish i r (Unix.gettimeofday () -. t0))
          pending_list
      else
        run_pool ~jobs ~horizon ~profile ~stats ~attrib ~hybrid ~arr
          pending_list ~on_done:publish);
  (* 4. Fan shared results back out to duplicate configurations. *)
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some r -> r
         | None -> (
             match Hashtbl.find_opt rep keys.(i) with
             | Some j -> (
                 match results.(j) with
                 | Some r ->
                     settle i ~cached:true ~wall:0. r;
                     r
                 | None -> assert false)
             | None -> assert false))
       results)

(* ---- sweep-level aggregation -------------------------------------------- *)

let merged_fct = function
  | [] -> invalid_arg "Parallel.merged_fct: empty result list"
  | r :: rest ->
      List.fold_left
        (fun acc (r : Runner.result) -> Fct.merge acc r.Runner.fct)
        r.Runner.fct rest
