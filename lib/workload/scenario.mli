(** The paper's evaluation scenarios (§2, §4.1, §4.4): topology choice,
    traffic pattern, flow sizes/deadlines, and the load-to-arrival-rate
    conversion. A scenario is a pure description; {!build} materialises the
    topology and the (seeded, deterministic) flow schedule. *)

type pattern =
  | Left_right
      (** three-tier baseline; 80 left-subtree hosts send to right-subtree
          hosts through the 10 Gbps agg-core bottleneck (§4.2.1) *)
  | Intra_rack of int
      (** single rack of [n] hosts, uniformly random src/dst pairs *)
  | Incast of { hosts : int; aggregators : int; fanin : Dist.t option }
      (** single rack; query-driven search traffic: each query makes
          workers send one response flow each to an aggregator picked
          round-robin among the first [aggregators] hosts (Fig 10c's
          worker-aggregator pattern). With [fanin = None] every other host
          responds (full fan-in, n-1); with [fanin = Some d] each query
          samples its worker count from [d] (clamped to [1, n-1]) and picks
          that many distinct workers *)
  | Fat_tree of int
      (** k-ary fat-tree (extension): k^3/4 hosts, uniform random pairs,
          per-flow ECMP over the equal-cost core paths *)
  | Hotspot of { k : int; hot_racks : int; hot_weight : float }
      (** k-ary fat-tree with rack-level skew: destinations land in the
          first [hot_racks] racks with probability [hot_weight], uniform
          otherwise. Load is measured against the hot downlinks. *)
  | Traffic_matrix of { k : int }
      (** k-ary fat-tree driven by a seeded random rack-to-rack demand
          matrix (i.i.d. exponential weights, zero diagonal); pairs are
          drawn by inverse-CDF over the flattened matrix *)
  | Testbed
      (** 10-node 1 Gbps rack, 9 clients sending to 1 server (§4.4) *)

(** Coflow generation: jobs of [width] member flows that start together and
    share a task id; [deadline_s] samples a per-job deadline applied to
    every member (all-workers-finish semantics — see Stats.Coflow). *)
type coflow_conf = { width : Dist.t; deadline_s : Dist.t option }

type t = {
  name : string;
  pattern : pattern;
  size_bytes : Dist.t;
  deadline_s : Dist.t option;
  load : float;  (** offered load on the pattern's bottleneck, in (0, 1] *)
  num_flows : int;  (** measured (short) flows *)
  background_flows : int;  (** long-lived flows started at t = 0 *)
  seed : int;
  faults : Fault.event list;
      (** declarative fault schedule, armed by {!Runner.run}; empty for all
          builders — attach one with {!with_faults} *)
  coflow : coflow_conf option;
      (** when set, arrivals are coflow jobs instead of independent flows;
          [None] for all builders — attach with {!with_coflows} *)
}

(** [with_faults t events] is [t] with the fault schedule replaced. The
    schedule is part of the scenario identity: it feeds the result-cache
    key and the fault-free baseline is the same scenario with [[]]. *)
val with_faults : t -> Fault.event list -> t

(** [with_coflows t ~width ()] turns the scenario's arrivals into coflow
    jobs: Poisson job arrivals at [arrival_rate / E[width]], each launching
    [width]-many member flows at the same instant under one task id.
    [deadline_s] samples one deadline per job, shared by every member.
    Raises [Invalid_argument] on incast scenarios (queries are already
    task groups). Part of the scenario identity (cache key). *)
val with_coflows : t -> ?deadline_s:Dist.t -> width:Dist.t -> unit -> t

(** [with_sizes t dist] swaps the flow-size distribution (e.g. for
    [--workload]/[--cdf] overrides), appending the distribution name to the
    scenario name. *)
val with_sizes : t -> Dist.t -> t

type flow_spec = {
  src : int;
  dst : int;
  size_bytes : int;
  start : float;
  deadline : float option;
  long_lived : bool;
  task : int option;
      (** task id: set for [Incast] queries and coflow members, used by
          task-aware scheduling (paper §3.1.1's task-id criterion) and
          coflow aggregation *)
}

type plan = {
  topo : Topology.t;
  specs : flow_spec list;  (** background first, then arrivals by start *)
  rtt : float;  (** representative zero-load RTT across the topology *)
  bottleneck_bps : float;
  arrival_rate : float;  (** flows per second *)
}

(** {2 Paper scenarios} *)

(** Fig 9a/9b/10a/10b/11/12: left-right, sizes U[2 KB, 198 KB], two
    long background flows. *)
val left_right : ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Fig 1/9c: D2TCP §4.1.3 replica — 20-host rack, sizes U[100 KB, 500 KB],
    deadlines U[5 ms, 25 ms], two background flows. *)
val deadline_intra_rack : ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Fig 2/13a: same rack and sizes, no deadlines. *)
val intra_rack_medium : ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Fig 10c: search worker-aggregator rack with query-synchronised
    (round-robin aggregator) responses, sizes U[2 KB, 198 KB]. [fanin]
    samples per-query worker counts (default: full fan-in). *)
val worker_aggregator :
  ?hosts:int -> ?aggregators:int -> ?fanin:Dist.t -> ?num_flows:int ->
  ?seed:int -> load:float -> unit -> t

(** Fig 4: per-flow variant of the search workload — uniformly random
    worker/aggregator pairs with Poisson arrivals (no query
    synchronisation). *)
val worker_uniform :
  ?hosts:int -> ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Extension: all-to-all rack traffic with an empirical flow-size
    distribution (the literature's web-search / data-mining CDFs). *)
val empirical :
  dist:Dist.t -> ?hosts:int -> ?num_flows:int -> ?seed:int -> load:float ->
  unit -> t

val web_search :
  ?hosts:int -> ?num_flows:int -> ?seed:int -> load:float -> unit -> t

val data_mining :
  ?hosts:int -> ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Extension: k-ary fat-tree with uniform random pairs, U[2 KB, 198 KB]
    flows, two long background flows. *)
val fat_tree_uniform :
  ?k:int -> ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Extension: fat-tree with rack-level hot-spot skew — destinations land
    in the first [hot_racks] racks with probability [hot_weight] (default
    1 rack, weight 0.5). Load is measured against the hot downlinks. *)
val hotspot :
  ?k:int -> ?hot_racks:int -> ?hot_weight:float -> ?num_flows:int ->
  ?seed:int -> load:float -> unit -> t

(** Extension: fat-tree driven by a seeded random rack-to-rack demand
    matrix. *)
val traffic_matrix :
  ?k:int -> ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Fig 13b: testbed replica — 10 nodes, sizes U[100 KB, 500 KB], one
    background flow, 250 us RTT. *)
val testbed : ?num_flows:int -> ?seed:int -> load:float -> unit -> t

(** Hybrid-engine classifier: [true] when the flow is long-lived or at
    least [threshold_bytes] long. Deterministic and spec-only, so hybrid
    and packet-only runs cut the identical short-flow subset; the protocol
    whitelist is the runner's half of the decision. Under heavy-tailed
    empirical CDFs most bytes sit far above the threshold; near-threshold
    flows are handled by the fluid tier's admission slack. *)
val fluid_eligible : threshold_bytes:int -> flow_spec -> bool

(** Estimate of the zero-load RTT the pattern's topology yields (used to
    size BDP-proportional buffers before the topology exists). *)
val nominal_rtt : t -> float

(** [build t engine counters ~qdisc] materialises topology and schedule. *)
val build :
  t ->
  Engine.t ->
  Counters.t ->
  qdisc:(rate_bps:float -> Queue_disc.t) ->
  plan
