(** Minimal JSON reader for [pase_sim report].

    Parses the repo's own hand-written JSON output (results, attribution
    JSONL, series JSONL) back into a tree; the container carries no JSON
    library by design. Standard RFC 8259 input; numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; trailing non-whitespace is an error. *)

(** {1 Accessors} (all total; [None] on shape mismatch) *)

val member : string -> t -> t option
val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
val float_member : string -> t -> float option
val string_member : string -> t -> string option
