type pattern =
  | Left_right
  | Intra_rack of int
  | Incast of { hosts : int; aggregators : int; fanin : Dist.t option }
  | Fat_tree of int
  | Hotspot of { k : int; hot_racks : int; hot_weight : float }
  | Traffic_matrix of { k : int }
  | Testbed

type coflow_conf = { width : Dist.t; deadline_s : Dist.t option }

type t = {
  name : string;
  pattern : pattern;
  size_bytes : Dist.t;
  deadline_s : Dist.t option;
  load : float;
  num_flows : int;
  background_flows : int;
  seed : int;
  faults : Fault.event list;
  coflow : coflow_conf option;
}

let with_faults t faults = { t with faults }

let with_coflows t ?deadline_s ~width () =
  (match t.pattern with
  | Incast _ ->
      invalid_arg
        "Scenario.with_coflows: incast queries are already task groups"
  | _ -> ());
  { t with coflow = Some { width; deadline_s } }

let with_sizes t dist =
  {
    t with
    size_bytes = dist;
    name = Printf.sprintf "%s+%s" t.name dist.Dist.name;
  }

type flow_spec = {
  src : int;
  dst : int;
  size_bytes : int;
  start : float;
  deadline : float option;
  long_lived : bool;
  task : int option;  (* task (query/coflow) id for group semantics *)
}

type plan = {
  topo : Topology.t;
  specs : flow_spec list;
  rtt : float;
  bottleneck_bps : float;
  arrival_rate : float;
}

let gbps = 1e9

let left_right ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "left-right";
    pattern = Left_right;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let deadline_intra_rack ?(num_flows = 800) ?(seed = 1) ~load () =
  {
    name = "deadline-intra-rack";
    pattern = Intra_rack 20;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = Some (Dist.uniform 0.005 0.025);
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let intra_rack_medium ?(num_flows = 800) ?(seed = 1) ~load () =
  {
    name = "intra-rack-medium";
    pattern = Intra_rack 20;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let worker_aggregator ?(hosts = 40) ?aggregators ?fanin ?(num_flows = 1000)
    ?(seed = 1) ~load () =
  {
    name =
      (let base =
         match aggregators with
         | None -> "worker-aggregator"
         | Some a -> Printf.sprintf "worker-aggregator-a%d" a
       in
       match fanin with
       | None -> base
       | Some d -> Printf.sprintf "%s-fanin-%s" base d.Dist.name);
    pattern =
      Incast
        {
          hosts;
          aggregators = (match aggregators with Some a -> a | None -> hosts);
          fanin;
        };
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
    coflow = None;
  }

let worker_uniform ?(hosts = 40) ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "worker-uniform";
    pattern = Intra_rack hosts;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
    coflow = None;
  }

let empirical ~dist ?(hosts = 40) ?(num_flows = 400) ?(seed = 1) ~load () =
  {
    name = Printf.sprintf "empirical-%s" dist.Dist.name;
    pattern = Intra_rack hosts;
    size_bytes = dist;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
    coflow = None;
  }

let web_search ?hosts ?num_flows ?seed ~load () =
  empirical ~dist:Dist.web_search_bytes ?hosts ?num_flows ?seed ~load ()

let data_mining ?hosts ?num_flows ?seed ~load () =
  empirical ~dist:Dist.data_mining_bytes ?hosts ?num_flows ?seed ~load ()

let fat_tree_uniform ?(k = 4) ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = Printf.sprintf "fat-tree-k%d" k;
    pattern = Fat_tree k;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let hotspot ?(k = 4) ?(hot_racks = 1) ?(hot_weight = 0.5) ?(num_flows = 1000)
    ?(seed = 1) ~load () =
  let racks = k * k / 2 in
  if hot_racks < 1 || hot_racks > racks then
    invalid_arg "Scenario.hotspot: hot_racks out of range";
  if hot_weight <= 0. || hot_weight > 1. then
    invalid_arg "Scenario.hotspot: hot_weight must be in (0, 1]";
  {
    name = Printf.sprintf "hotspot-k%d-r%d" k hot_racks;
    pattern = Hotspot { k; hot_racks; hot_weight };
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let traffic_matrix ?(k = 4) ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = Printf.sprintf "traffic-matrix-k%d" k;
    pattern = Traffic_matrix { k };
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
    coflow = None;
  }

let testbed ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "testbed";
    pattern = Testbed;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 1;
    seed;
    faults = [];
    coflow = None;
  }

(* Bottleneck against which the offered load is measured:
   - left-right: the 10 Gbps agg-core link on the left half;
   - intra-rack all-to-all with n hosts: the n edge links in aggregate
     (uniform destinations load each access link at [load]);
   - hotspot: the hot racks' downlinks, which absorb a [hot_weight]
     fraction of all traffic (capped at the fabric's host capacity);
   - traffic-matrix: aggregate host capacity — the matrix skews per-rack
     load around that operating point by construction;
   - testbed: the server's 1 Gbps access link. *)
let bottleneck_of pattern =
  match pattern with
  | Left_right -> 10. *. gbps
  | Intra_rack n | Incast { hosts = n; _ } -> float_of_int n *. gbps
  | Fat_tree k | Traffic_matrix { k } -> float_of_int (k * k * k / 4) *. gbps
  | Hotspot { k; hot_racks; hot_weight } ->
      let hot = float_of_int (hot_racks * (k / 2)) *. gbps /. hot_weight in
      Float.min hot (float_of_int (k * k * k / 4) *. gbps)
  | Testbed -> gbps

let make_topology t engine counters ~qdisc =
  match t.pattern with
  | Left_right ->
      Topology.three_tier engine counters ~hosts_per_tor:40 ~tors:4 ~aggs:2
        ~edge_rate_bps:gbps ~fabric_rate_bps:(10. *. gbps)
        ~link_delay_s:25e-6 ~qdisc
  | Intra_rack n | Incast { hosts = n; _ } ->
      Topology.single_rack engine counters ~hosts:n ~rate_bps:gbps
        ~link_delay_s:25e-6 ~qdisc
  | Fat_tree k | Hotspot { k; _ } | Traffic_matrix { k } ->
      Topology.fat_tree engine counters ~k ~rate_bps:gbps ~link_delay_s:25e-6
        ~qdisc
  | Testbed ->
      (* 250 us propagation RTT: 4 link traversals per round trip. *)
      Topology.single_rack engine counters ~hosts:10 ~rate_bps:gbps
        ~link_delay_s:62.5e-6 ~qdisc

let pick_pair t (topo : Topology.t) rng =
  let hosts = topo.Topology.hosts in
  match t.pattern with
  | Left_right ->
      (* Left subtree = first two racks (80 hosts), right = the rest. *)
      let src = hosts.(Rng.int rng 80) in
      let dst = hosts.(80 + Rng.int rng (Array.length hosts - 80)) in
      (src, dst)
  | Intra_rack n | Incast { hosts = n; _ } ->
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d = hosts.(Rng.int rng n) in
        if d = src then pick () else d
      in
      (src, pick ())
  | Fat_tree _ ->
      let n = Array.length hosts in
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d = hosts.(Rng.int rng n) in
        if d = src then pick () else d
      in
      (src, pick ())
  | Hotspot { k; hot_racks; hot_weight } ->
      (* Fat-tree hosts are laid out rack by rack, so the hot set is the
         first [hot_racks * k/2] hosts. Sources are uniform; destinations
         land in the hot set with probability [hot_weight]. *)
      let n = Array.length hosts in
      let hot_hosts = hot_racks * (k / 2) in
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d =
          if Rng.float rng 1.0 < hot_weight then hosts.(Rng.int rng hot_hosts)
          else hosts.(Rng.int rng n)
        in
        if d = src then pick () else d
      in
      (src, pick ())
  | Traffic_matrix _ ->
      (* Replaced by the matrix-driven picker in [build]. *)
      let n = Array.length hosts in
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d = hosts.(Rng.int rng n) in
        if d = src then pick () else d
      in
      (src, pick ())
  | Testbed ->
      (* Clients 0..8 send to the server (host 9). *)
      (hosts.(Rng.int rng 9), hosts.(9))

(* Hybrid-engine classifier: a flow is fluid-eligible when it is long-lived
   or at least [threshold_bytes] long. Deterministic, spec-only — the same
   spec classifies the same way in every run and process, which is what
   makes hybrid and packet-only runs directly comparable on the packet-tier
   (short-flow) subset. Heavy-tailed empirical CDFs (web-search, hadoop)
   put most bytes far above any sane threshold, so the comparison holds
   there too; flows barely above the threshold are absorbed by the fluid
   tier's admission slack (Fluid.admit). Protocol whitelisting is the
   runner's half of the decision (Runner.fluid_capable). *)
let fluid_eligible ~threshold_bytes (s : flow_spec) =
  s.long_lived || s.size_bytes >= threshold_bytes

(* Propagation plus one data serialization per hop, rounded generously;
   matches Topology.base_rtt within ~10%. *)
let nominal_rtt t =
  match t.pattern with
  | Left_right -> 0.00033
  | Intra_rack _ | Incast _ -> 0.000125
  | Fat_tree _ | Hotspot _ | Traffic_matrix _ -> 0.00037
  | Testbed -> 0.000275

(* Rack-to-rack demand matrix for the traffic-matrix pattern: i.i.d.
   exponential weights off the diagonal, drawn from a dedicated RNG stream
   so matrix size never perturbs arrival sampling. Pairs are picked by
   inverse-CDF over the flattened matrix, then uniform hosts within each
   rack. *)
let matrix_picker ~k (topo : Topology.t) rng =
  let hosts = topo.Topology.hosts in
  let racks = k * k / 2 in
  let per_rack = k / 2 in
  let mrng = Rng.split rng in
  let cum = Array.make (racks * racks) 0. in
  let acc = ref 0. in
  for i = 0 to (racks * racks) - 1 do
    let w =
      if i / racks = i mod racks then 0. else Rng.exponential mrng ~mean:1.
    in
    acc := !acc +. w;
    cum.(i) <- !acc
  done;
  let total = !acc in
  fun rng ->
    let u = Rng.float rng total in
    let lo = ref 0 and hi = ref ((racks * racks) - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < cum.(mid) then hi := mid else lo := mid + 1
    done;
    let src_rack = !lo / racks and dst_rack = !lo mod racks in
    let src = hosts.((src_rack * per_rack) + Rng.int rng per_rack) in
    let dst = hosts.((dst_rack * per_rack) + Rng.int rng per_rack) in
    (src, dst)

let build t engine counters ~qdisc =
  if t.load <= 0. || t.load > 1. then invalid_arg "Scenario.build: load";
  let topo = make_topology t engine counters ~qdisc in
  let rng = Rng.create (t.seed * 7919) in
  let mean_bits = 8. *. t.size_bytes.Dist.mean in
  let bottleneck_bps = bottleneck_of t.pattern in
  let arrival_rate = t.load *. bottleneck_bps /. mean_bits in
  let picker =
    match t.pattern with
    | Traffic_matrix { k } -> matrix_picker ~k topo rng
    | _ -> fun rng -> pick_pair t topo rng
  in
  let background =
    List.init t.background_flows (fun _ ->
        let src, dst = picker rng in
        {
          src;
          dst;
          size_bytes = max_int;
          start = 0.;
          deadline = None;
          long_lived = true;
          task = None;
        })
  in
  let clock = ref 0. in
  let sample_deadline () =
    match t.deadline_s with
    | None -> None
    | Some d -> Some (d.Dist.sample rng)
  in
  let arrivals =
    match t.pattern with
    | Incast { hosts = n; aggregators; fanin = None } ->
        (* Query-driven search traffic (§2.1, Fig 4): each query makes every
           other host in the rack send one response flow to the aggregator;
           aggregators rotate round-robin over the first [aggregators]
           hosts. A query occupies the aggregator's downlink for (n-1)
           flows; with [a] aggregators the sustainable query rate at [load]
           is load * a * C / ((n-1) * mean_bits). *)
        let fanout = n - 1 in
        let queries = max 1 (t.num_flows / fanout) in
        let query_rate =
          t.load *. float_of_int aggregators *. gbps
          /. (float_of_int fanout *. mean_bits)
        in
        let hosts = topo.Topology.hosts in
        List.concat
          (List.init queries (fun q ->
               clock := !clock +. Rng.exponential rng ~mean:(1. /. query_rate);
               let agg = hosts.(q mod aggregators) in
               List.filter_map
                 (fun src ->
                   if src = agg then None
                   else
                     Some
                       {
                         src;
                         dst = agg;
                         size_bytes = max 1 (Dist.sample_int t.size_bytes rng);
                         start = !clock;
                         deadline = sample_deadline ();
                         long_lived = false;
                         task = Some q;
                       })
                 (Array.to_list hosts)))
    | Incast { hosts = n; aggregators; fanin = Some d } ->
        (* Variable fan-in: each query samples its worker count from [d]
           (clamped to [1, n-1]) and picks that many distinct workers via a
           partial Fisher–Yates shuffle. The query rate is sized against the
           mean fan-in so the aggregator downlinks still run at [load]. *)
        let mean_fanout =
          Float.max 1. (Float.min (float_of_int (n - 1)) d.Dist.mean)
        in
        let queries =
          max 1
            (int_of_float
               (Float.round (float_of_int t.num_flows /. mean_fanout)))
        in
        let query_rate =
          t.load *. float_of_int aggregators *. gbps
          /. (mean_fanout *. mean_bits)
        in
        let hosts = topo.Topology.hosts in
        List.concat
          (List.init queries (fun q ->
               clock := !clock +. Rng.exponential rng ~mean:(1. /. query_rate);
               let agg = hosts.(q mod aggregators) in
               let workers =
                 Array.of_seq
                   (Seq.filter (fun h -> h <> agg) (Array.to_seq hosts))
               in
               let w = min (Array.length workers) (max 1 (Dist.sample_int d rng)) in
               for i = 0 to w - 1 do
                 let j = i + Rng.int rng (Array.length workers - i) in
                 let tmp = workers.(i) in
                 workers.(i) <- workers.(j);
                 workers.(j) <- tmp
               done;
               List.init w (fun i ->
                   {
                     src = workers.(i);
                     dst = agg;
                     size_bytes = max 1 (Dist.sample_int t.size_bytes rng);
                     start = !clock;
                     deadline = sample_deadline ();
                     long_lived = false;
                     task = Some q;
                   })))
    | Left_right | Intra_rack _ | Fat_tree _ | Hotspot _ | Traffic_matrix _
    | Testbed -> (
        match t.coflow with
        | Some { width; deadline_s } ->
            (* Coflow mode: jobs arrive Poisson at arrival_rate / E[width];
               each job launches all its member flows at the same instant,
               sharing one task id and one (job-level) deadline. Whole jobs
               are generated until at least [num_flows] members exist. *)
            let mean_width = Float.max 1. width.Dist.mean in
            let job_rate = arrival_rate /. mean_width in
            let rec jobs j produced acc =
              if produced >= t.num_flows then List.rev acc
              else begin
                clock := !clock +. Rng.exponential rng ~mean:(1. /. job_rate);
                let w = max 1 (Dist.sample_int width rng) in
                let deadline =
                  match deadline_s with
                  | Some d -> Some (d.Dist.sample rng)
                  | None -> sample_deadline ()
                in
                let members =
                  List.init w (fun _ ->
                      let src, dst = picker rng in
                      {
                        src;
                        dst;
                        size_bytes = max 1 (Dist.sample_int t.size_bytes rng);
                        start = !clock;
                        deadline;
                        long_lived = false;
                        task = Some j;
                      })
                in
                jobs (j + 1) (produced + w) (members :: acc)
              end
            in
            List.concat (jobs 0 0 [])
        | None ->
            List.init t.num_flows (fun _ ->
                clock := !clock +. Rng.exponential rng ~mean:(1. /. arrival_rate);
                let src, dst = picker rng in
                let size = max 1 (Dist.sample_int t.size_bytes rng) in
                {
                  src;
                  dst;
                  size_bytes = size;
                  start = !clock;
                  deadline = sample_deadline ();
                  long_lived = false;
                  task = None;
                }))
  in
  let rtt =
    let hosts = topo.Topology.hosts in
    let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
    Topology.base_rtt topo ~src ~dst ~data_bytes:1500
  in
  { topo; specs = background @ arrivals; rtt; bottleneck_bps; arrival_rate }
