type pattern =
  | Left_right
  | Intra_rack of int
  | Incast of { hosts : int; aggregators : int }
  | Fat_tree of int
  | Testbed

type t = {
  name : string;
  pattern : pattern;
  size_bytes : Dist.t;
  deadline_s : Dist.t option;
  load : float;
  num_flows : int;
  background_flows : int;
  seed : int;
  faults : Fault.event list;
}

let with_faults t faults = { t with faults }

type flow_spec = {
  src : int;
  dst : int;
  size_bytes : int;
  start : float;
  deadline : float option;
  long_lived : bool;
  task : int option;  (* task (query) id for task-aware scheduling *)
}

type plan = {
  topo : Topology.t;
  specs : flow_spec list;
  rtt : float;
  bottleneck_bps : float;
  arrival_rate : float;
}

let gbps = 1e9

let left_right ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "left-right";
    pattern = Left_right;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
  }

let deadline_intra_rack ?(num_flows = 800) ?(seed = 1) ~load () =
  {
    name = "deadline-intra-rack";
    pattern = Intra_rack 20;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = Some (Dist.uniform 0.005 0.025);
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
  }

let intra_rack_medium ?(num_flows = 800) ?(seed = 1) ~load () =
  {
    name = "intra-rack-medium";
    pattern = Intra_rack 20;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
  }

let worker_aggregator ?(hosts = 40) ?aggregators ?(num_flows = 1000) ?(seed = 1)
    ~load () =
  {
    name =
      (match aggregators with
      | None -> "worker-aggregator"
      | Some a -> Printf.sprintf "worker-aggregator-a%d" a);
    pattern =
      Incast
        { hosts; aggregators = (match aggregators with Some a -> a | None -> hosts) };
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
  }

let worker_uniform ?(hosts = 40) ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "worker-uniform";
    pattern = Intra_rack hosts;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
  }

let empirical ~dist ?(hosts = 40) ?(num_flows = 400) ?(seed = 1) ~load () =
  {
    name = Printf.sprintf "empirical-%s" dist.Dist.name;
    pattern = Intra_rack hosts;
    size_bytes = dist;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 0;
    seed;
    faults = [];
  }

let web_search ?hosts ?num_flows ?seed ~load () =
  empirical ~dist:Dist.web_search_bytes ?hosts ?num_flows ?seed ~load ()

let data_mining ?hosts ?num_flows ?seed ~load () =
  empirical ~dist:Dist.data_mining_bytes ?hosts ?num_flows ?seed ~load ()

let fat_tree_uniform ?(k = 4) ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = Printf.sprintf "fat-tree-k%d" k;
    pattern = Fat_tree k;
    size_bytes = Dist.uniform 2e3 198e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 2;
    seed;
    faults = [];
  }

let testbed ?(num_flows = 1000) ?(seed = 1) ~load () =
  {
    name = "testbed";
    pattern = Testbed;
    size_bytes = Dist.uniform 100e3 500e3;
    deadline_s = None;
    load;
    num_flows;
    background_flows = 1;
    seed;
    faults = [];
  }

(* Bottleneck against which the offered load is measured:
   - left-right: the 10 Gbps agg-core link on the left half;
   - intra-rack all-to-all with n hosts: the n edge links in aggregate
     (uniform destinations load each access link at [load]);
   - testbed: the server's 1 Gbps access link. *)
let bottleneck_of pattern =
  match pattern with
  | Left_right -> 10. *. gbps
  | Intra_rack n | Incast { hosts = n; _ } -> float_of_int n *. gbps
  | Fat_tree k -> float_of_int (k * k * k / 4) *. gbps
  | Testbed -> gbps

let make_topology t engine counters ~qdisc =
  match t.pattern with
  | Left_right ->
      Topology.three_tier engine counters ~hosts_per_tor:40 ~tors:4 ~aggs:2
        ~edge_rate_bps:gbps ~fabric_rate_bps:(10. *. gbps)
        ~link_delay_s:25e-6 ~qdisc
  | Intra_rack n | Incast { hosts = n; _ } ->
      Topology.single_rack engine counters ~hosts:n ~rate_bps:gbps
        ~link_delay_s:25e-6 ~qdisc
  | Fat_tree k ->
      Topology.fat_tree engine counters ~k ~rate_bps:gbps ~link_delay_s:25e-6
        ~qdisc
  | Testbed ->
      (* 250 us propagation RTT: 4 link traversals per round trip. *)
      Topology.single_rack engine counters ~hosts:10 ~rate_bps:gbps
        ~link_delay_s:62.5e-6 ~qdisc

let pick_pair t (topo : Topology.t) rng =
  let hosts = topo.Topology.hosts in
  match t.pattern with
  | Left_right ->
      (* Left subtree = first two racks (80 hosts), right = the rest. *)
      let src = hosts.(Rng.int rng 80) in
      let dst = hosts.(80 + Rng.int rng (Array.length hosts - 80)) in
      (src, dst)
  | Intra_rack n | Incast { hosts = n; _ } ->
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d = hosts.(Rng.int rng n) in
        if d = src then pick () else d
      in
      (src, pick ())
  | Fat_tree _ ->
      let n = Array.length hosts in
      let src = hosts.(Rng.int rng n) in
      let rec pick () =
        let d = hosts.(Rng.int rng n) in
        if d = src then pick () else d
      in
      (src, pick ())
  | Testbed ->
      (* Clients 0..8 send to the server (host 9). *)
      (hosts.(Rng.int rng 9), hosts.(9))

(* Hybrid-engine classifier: a flow is fluid-eligible when it is long-lived
   or at least [threshold_bytes] long. Deterministic, spec-only — the same
   spec classifies the same way in every run and process, which is what
   makes hybrid and packet-only runs directly comparable on the packet-tier
   (short-flow) subset. Protocol whitelisting is the runner's half of the
   decision (Runner.fluid_capable). *)
let fluid_eligible ~threshold_bytes (s : flow_spec) =
  s.long_lived || s.size_bytes >= threshold_bytes

(* Propagation plus one data serialization per hop, rounded generously;
   matches Topology.base_rtt within ~10%. *)
let nominal_rtt t =
  match t.pattern with
  | Left_right -> 0.00033
  | Intra_rack _ | Incast _ -> 0.000125
  | Fat_tree _ -> 0.00037
  | Testbed -> 0.000275

let build t engine counters ~qdisc =
  if t.load <= 0. || t.load > 1. then invalid_arg "Scenario.build: load";
  let topo = make_topology t engine counters ~qdisc in
  let rng = Rng.create (t.seed * 7919) in
  let mean_bits = 8. *. t.size_bytes.Dist.mean in
  let bottleneck_bps = bottleneck_of t.pattern in
  let arrival_rate = t.load *. bottleneck_bps /. mean_bits in
  let background =
    List.init t.background_flows (fun _ ->
        let src, dst = pick_pair t topo rng in
        {
          src;
          dst;
          size_bytes = max_int;
          start = 0.;
          deadline = None;
          long_lived = true;
          task = None;
        })
  in
  let clock = ref 0. in
  let sample_deadline () =
    match t.deadline_s with
    | None -> None
    | Some d -> Some (d.Dist.sample rng)
  in
  let arrivals =
    match t.pattern with
    | Incast { hosts = n; aggregators } ->
        (* Query-driven search traffic (§2.1, Fig 4): each query makes every
           other host in the rack send one response flow to the aggregator;
           aggregators rotate round-robin over the first [aggregators]
           hosts. A query occupies the aggregator's downlink for (n-1)
           flows; with [a] aggregators the sustainable query rate at [load]
           is load * a * C / ((n-1) * mean_bits). *)
        let fanout = n - 1 in
        let queries = max 1 (t.num_flows / fanout) in
        let query_rate =
          t.load *. float_of_int aggregators *. gbps
          /. (float_of_int fanout *. mean_bits)
        in
        let hosts = topo.Topology.hosts in
        List.concat
          (List.init queries (fun q ->
               clock := !clock +. Rng.exponential rng ~mean:(1. /. query_rate);
               let agg = hosts.(q mod aggregators) in
               List.filter_map
                 (fun src ->
                   if src = agg then None
                   else
                     Some
                       {
                         src;
                         dst = agg;
                         size_bytes = max 1 (Dist.sample_int t.size_bytes rng);
                         start = !clock;
                         deadline = sample_deadline ();
                         long_lived = false;
                         task = Some q;
                       })
                 (Array.to_list hosts)))
    | Left_right | Intra_rack _ | Fat_tree _ | Testbed ->
        List.init t.num_flows (fun _ ->
            clock := !clock +. Rng.exponential rng ~mean:(1. /. arrival_rate);
            let src, dst = pick_pair t topo rng in
            let size = max 1 (Dist.sample_int t.size_bytes rng) in
            {
              src;
              dst;
              size_bytes = size;
              start = !clock;
              deadline = sample_deadline ();
              long_lived = false;
              task = None;
            })
  in
  let rtt =
    let hosts = topo.Topology.hosts in
    let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
    Topology.base_rtt topo ~src ~dst ~data_bytes:1500
  in
  { topo; specs = background @ arrivals; rtt; bottleneck_bps; arrival_rate }
