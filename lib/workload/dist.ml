type t = {
  sample : Rng.t -> float;
  mean : float;
  name : string;
  icdf : (float -> float) option;
}

let uniform a b =
  if a > b then invalid_arg "Dist.uniform: empty interval";
  {
    sample = (fun rng -> if a = b then a else Rng.uniform rng a b);
    mean = (a +. b) /. 2.;
    name = Printf.sprintf "U[%g,%g]" a b;
    icdf = None;
  }

let constant v =
  {
    sample = (fun _ -> v);
    mean = v;
    name = Printf.sprintf "const %g" v;
    icdf = None;
  }

let exponential ~mean =
  {
    sample = (fun rng -> Rng.exponential rng ~mean);
    mean;
    name = Printf.sprintf "Exp(%g)" mean;
    icdf = None;
  }

let choice xs =
  match xs with
  | [] -> invalid_arg "Dist.choice: empty"
  | _ ->
      let arr = Array.of_list xs in
      {
        sample = (fun rng -> arr.(Rng.int rng (Array.length arr)));
        mean = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs);
        name = "choice";
        icdf = None;
      }

let sample_int t rng = int_of_float (Float.round (t.sample rng))

let piecewise ~name points =
  (match points with
  | [] | [ _ ] -> invalid_arg "Dist.piecewise: need at least two points"
  | (_, p0) :: _ ->
      if p0 <> 0. then invalid_arg "Dist.piecewise: first probability must be 0");
  let rec validate = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        if v2 < v1 || p2 < p1 then
          invalid_arg "Dist.piecewise: breakpoints must be non-decreasing";
        validate rest
    | [ (_, plast) ] ->
        if plast <> 1. then
          invalid_arg "Dist.piecewise: last probability must be 1"
    | [] -> ()
  in
  validate points;
  let arr = Array.of_list points in
  let n = Array.length arr in
  (* Inverse CDF: the segment index is the smallest i with u < p_{i+1}
     (clamped to the last segment), found by binary search over the
     monotone breakpoint probabilities. The interpolation arithmetic is
     identical to a linear scan, so samples are byte-stable regardless of
     table size. *)
  let inv u =
    let u = if u < 0. then 0. else if u > 1. then 1. else u in
    let lo = ref 0 and hi = ref (n - 2) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < snd arr.(mid + 1) then hi := mid else lo := mid + 1
    done;
    let v1, p1 = arr.(!lo) and v2, p2 = arr.(!lo + 1) in
    if p2 = p1 then v1 else v1 +. ((v2 -. v1) *. (u -. p1) /. (p2 -. p1))
  in
  let sample rng = inv (Rng.float rng 1.0) in
  (* Mean of the piecewise-linear interpolation: each segment contributes
     its probability mass times its midpoint. *)
  let mean = ref 0. in
  for i = 0 to n - 2 do
    let v1, p1 = arr.(i) and v2, p2 = arr.(i + 1) in
    mean := !mean +. ((p2 -. p1) *. (v1 +. v2) /. 2.)
  done;
  { sample; mean = !mean; name; icdf = Some inv }

(* Piecewise approximations of the flow-size CDFs used throughout the
   data-center transport literature (DCTCP production cluster and VL2). *)
let web_search_bytes =
  piecewise ~name:"web-search"
    [
      (1_000., 0.0);
      (10_000., 0.15);
      (20_000., 0.25);
      (30_000., 0.35);
      (50_000., 0.45);
      (100_000., 0.53);
      (300_000., 0.60);
      (1_000_000., 0.70);
      (2_000_000., 0.80);
      (5_000_000., 0.90);
      (10_000_000., 0.97);
      (30_000_000., 1.0);
    ]

let data_mining_bytes =
  piecewise ~name:"data-mining"
    [
      (100., 0.0);
      (180., 0.10);
      (250., 0.20);
      (560., 0.30);
      (900., 0.40);
      (1_100., 0.50);
      (60_000., 0.60);
      (380_000., 0.70);
      (2_500_000., 0.80);
      (10_000_000., 0.90);
      (100_000_000., 1.0);
    ]

(* MapReduce-cluster flow sizes (Facebook-style Hadoop trace shape): the
   bulk of flows are shuffle-control sized (sub-2 KB), with a shuffle/output
   tail reaching hundreds of megabytes. *)
let hadoop_bytes =
  piecewise ~name:"hadoop"
    [
      (150., 0.0);
      (300., 0.12);
      (580., 0.30);
      (1_000., 0.50);
      (2_000., 0.63);
      (10_000., 0.70);
      (100_000., 0.80);
      (1_000_000., 0.90);
      (10_000_000., 0.97);
      (400_000_000., 1.0);
    ]

let builtins =
  [
    ("websearch", web_search_bytes);
    ("datamining", data_mining_bytes);
    ("hadoop", hadoop_bytes);
  ]

let builtin name =
  let canon =
    String.lowercase_ascii name
    |> String.split_on_char '-' |> String.concat ""
    |> String.split_on_char '_' |> String.concat ""
  in
  List.assoc_opt canon builtins

let of_cdf_points ~name points =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match points with
  | [] -> err "empty CDF table"
  | (v0, p0) :: _ -> (
      (* A table whose first row has positive mass is interpreted as an atom
         at the first value: prepend a zero-probability anchor there. *)
      let points = if p0 > 0. then (v0, 0.) :: points else points in
      match points with
      | [] | [ _ ] -> err "CDF table needs at least two points"
      | _ -> (
          let rec check prev = function
            | [] -> Ok ()
            | (v, p) :: rest -> (
                if not (Float.is_finite v) || v <= 0. then
                  err "flow size %g: sizes must be positive and finite" v
                else if p < 0. || p > 1. then
                  err "cumulative probability %g outside [0,1]" p
                else
                  match prev with
                  | Some (pv, pp) when v < pv || p < pp ->
                      err
                        "breakpoints must be non-decreasing: (%g, %g) after \
                         (%g, %g)"
                        v p pv pp
                  | _ -> check (Some (v, p)) rest)
          in
          match check None points with
          | Error _ as e -> e
          | Ok () ->
              let _, plast = List.nth points (List.length points - 1) in
              if plast <> 1. then
                err "last cumulative probability must be 1, got %g" plast
              else Ok (piecewise ~name points)))

let of_cdf_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec loop lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line -> (
                let line =
                  match String.index_opt line '#' with
                  | Some i -> String.sub line 0 i
                  | None -> line
                in
                let fields =
                  String.map (fun c -> if c = '\t' then ' ' else c) line
                  |> String.split_on_char ' '
                  |> List.filter (fun s -> s <> "")
                in
                match fields with
                | [] -> loop (lineno + 1) acc
                | [ v; p ] -> (
                    match (float_of_string_opt v, float_of_string_opt p) with
                    | Some v, Some p when Float.is_finite v && Float.is_finite p
                      ->
                        loop (lineno + 1) ((v, p) :: acc)
                    | _ ->
                        Error
                          (Printf.sprintf
                             "%s:%d: expected two numeric fields, got %S" path
                             lineno (String.trim line)))
                | _ ->
                    Error
                      (Printf.sprintf
                         "%s:%d: expected \"<bytes> <cum-prob>\", got %S" path
                         lineno (String.trim line)))
          in
          match loop 1 [] with
          | Error _ as e -> e
          | Ok points -> (
              (* Table-level validation errors name the file too. *)
              match
                of_cdf_points ~name:("cdf:" ^ Filename.basename path) points
              with
              | Error e -> Error (Printf.sprintf "%s: %s" path e)
              | Ok _ as ok -> ok))
