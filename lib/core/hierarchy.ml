type contact = {
  arbs : Arbitrator.t list;
  msgs : int;  (* control messages this contact costs per round *)
  latency : float;  (* delay before the source can apply the response *)
}

type flow_state = {
  flow : Flow.t;
  contacts : contact array;
  criterion : unit -> float;
  demand : unit -> float;
  apply : queue:int -> rref_bps:float -> unit;
  unreachable : (bool -> unit) option;
      (* notified when remote arbitration becomes (un)reachable *)
  mutable last_queue : int;
  mutable contacted : bool array;  (* per-contact: consulted this round *)
  mutable pruned : bool;  (* some contact was skipped this round *)
  mutable remote_tried : bool;  (* attempted a msgs>0 contact this round *)
  mutable remote_heard : bool;  (* ... and at least one answered *)
  mutable is_unreachable : bool;
  mutable first_round : bool;
      (* a new flow applies partial decisions as responses arrive instead of
         waiting for the farthest arbitrator (§3.1.2: "a flow starts as soon
         as it receives arbitration information from the child arbitrator") *)
}

type t = {
  engine : Engine.t;
  counters : Counters.t;
  cfg : Config.t;
  topo : Topology.t;
  base_rate_bps : float;
  real : (int * int, Arbitrator.t) Hashtbl.t;
  virtuals : (int * int * int, Arbitrator.t) Hashtbl.t;
      (* (parent_from, parent_to, delegate_tor) -> virtual arbitrator *)
  virtual_groups : (int * int, (int * Arbitrator.t) list ref) Hashtbl.t;
      (* parent link -> delegated children *)
  flows : (int, flow_state) Hashtbl.t;
  rng : Rng.t;  (* drives control-plane loss injection only *)
  crashed : bool array;  (* per node: arbitration soft state dropped *)
  mutable ctrl_loss_override : float option;
      (* fault-plane loss window; supersedes [cfg.ctrl_loss_prob] while set *)
  mutable last_restart : float;  (* nan until a node restarts *)
  mutable restarted_node : int;  (* -1 when no recovery is being timed *)
  mutable first_grant_s : float;  (* nan until the restarted node regrants *)
  mutable level_of : int array;
  mutable rounds : int;
  mutable running : bool;
  mutable next_rebalance : float;
  mutable tick_timer : Engine.timer option;  (* the arb-round loop *)
}

let node_levels (topo : Topology.t) =
  let n = Net.node_count topo.Topology.net in
  let lv = Array.make n 0 in
  Array.iter (fun h -> lv.(h) <- 0) topo.Topology.hosts;
  Array.iter (fun s -> lv.(s) <- 1) topo.Topology.tors;
  Array.iter (fun s -> lv.(s) <- 2) topo.Topology.aggs;
  Array.iter (fun s -> lv.(s) <- 3) topo.Topology.cores;
  lv

let create engine counters cfg topo ~base_rate_bps =
  {
    engine;
    counters;
    cfg;
    topo;
    base_rate_bps;
    real = Hashtbl.create 64;
    virtuals = Hashtbl.create 16;
    virtual_groups = Hashtbl.create 8;
    flows = Hashtbl.create 256;
    rng = Rng.create 0x9a5e;
    crashed = Array.make (Net.node_count topo.Topology.net) false;
    ctrl_loss_override = None;
    last_restart = Float.nan;
    restarted_node = -1;
    first_grant_s = Float.nan;
    level_of = node_levels topo;
    rounds = 0;
    running = false;
    next_rebalance = 0.;
    tick_timer = None;
  }

let overbook = 1.6

let rounds t = t.rounds
let arbitrator_count t = Hashtbl.length t.real + Hashtbl.length t.virtuals

let real_arb t a b =
  match Hashtbl.find_opt t.real (a, b) with
  | Some arb -> arb
  | None ->
      let link =
        match Net.link_from t.topo.Topology.net a b with
        | Some l -> l
        | None -> invalid_arg "Hierarchy: no such link"
      in
      let arb =
        Arbitrator.create ~link:(a, b) ~owner:a
          ~capacity_bps:(Link.rate_bps link) ()
      in
      Hashtbl.replace t.real (a, b) arb;
      arb

let arbitrator_of_link t a b = Hashtbl.find_opt t.real (a, b)

(* Virtual link: the slice of parent link (a, b) delegated to [tor]'s
   arbitrator. Created with an equal share of the parent capacity. *)
let virtual_arb t (a, b) tor =
  match Hashtbl.find_opt t.virtuals (a, b, tor) with
  | Some arb -> arb
  | None ->
      let link =
        match Net.link_from t.topo.Topology.net a b with
        | Some l -> l
        | None -> invalid_arg "Hierarchy: no such parent link"
      in
      let group =
        match Hashtbl.find_opt t.virtual_groups (a, b) with
        | Some g -> g
        | None ->
            let g = ref [] in
            Hashtbl.replace t.virtual_groups (a, b) g;
            g
      in
      let members = 1 + List.length !group in
      let arb =
        Arbitrator.create ~link:(a, b) ~owner:tor
          ~capacity_bps:
            (Float.min (Link.rate_bps link)
               (Link.rate_bps link /. float_of_int members *. overbook))
          ()
      in
      Hashtbl.replace t.virtuals (a, b, tor) arb;
      group := (tor, arb) :: !group;
      arb

(* Rebalance delegated capacities: each child's share is proportional to
   the aggregate demand it currently sees, so children carrying
   high-priority traffic get more of the parent link (§3.1.2). *)
let rebalance t =
  Det_tbl.iter
    (fun (a, b) group ->
      let link =
        match Net.link_from t.topo.Topology.net a b with
        | Some l -> l
        | None -> assert false
      in
      let weights =
        List.map (fun (_, arb) -> 1e6 +. Arbitrator.total_demand arb) !group
      in
      let total = List.fold_left ( +. ) 0. weights in
      let members = float_of_int (List.length !group) in
      if total > 0. then
        List.iter2
          (fun (tor, arb) w ->
            (* Virtual links overbook: reference rates are not binding and
               the self-adjusting endpoints absorb transient over-admission
               (§2.2), so a burst at one child need not wait for the next
               rebalance. Every child also keeps at least its equal share -
               demand weighting only grants extra, so a quiet child is never
               starved by a heavy sibling. *)
            let frac = Float.max (1. /. members) (w /. total) in
            let share = Link.rate_bps link *. frac *. overbook in
            let share = Float.min (Link.rate_bps link) share in
            Arbitrator.set_capacity arb share;
            if Trace.on () then
              Trace.emit
                (Trace.Delegate { parent = (a, b); tor; share_bps = share });
            (* Aggregate report from child to parent and response. *)
            t.counters.Counters.ctrl_msgs <- t.counters.Counters.ctrl_msgs + 2)
          !group weights)
    t.virtual_groups

(* Build the ordered contact list for a path. See the .mli for the cost
   model. The list runs: source-local, source half ascending, then
   destination-local, destination half ascending — pruning walks it in that
   order and stops contacting once the flow leaves the top queues. *)
let build_contacts t ~(flow : Flow.t) =
  let net = t.topo.Topology.net in
  let path = Array.of_list (Net.route net ~flow:flow.Flow.id ~src:flow.Flow.src ~dst:flow.Flow.dst ()) in
  let n = Array.length path in
  let delay = t.topo.Topology.link_delay_s in
  let proc = t.cfg.Config.ctrl_proc_delay in
  let one_way = float_of_int (n - 1) *. delay in
  let lv i = t.level_of.(path.(i)) in
  let src_side = ref [] and dst_side = ref [] and src_local = ref [] and dst_local = ref [] in
  for i = 0 to n - 2 do
    let a = path.(i) and b = path.(i + 1) in
    let ascending = lv (i + 1) > lv i in
    if i = 0 then src_local := [ real_arb t a b ]
    else if i + 1 = n - 1 then dst_local := [ real_arb t a b ]
    else if ascending then begin
      (* Source half. Arbitrator at the lower node [a], height i above src. *)
      let is_core_link = lv (i + 1) = 3 in
      if t.cfg.Config.delegation && (not t.cfg.Config.local_only) && is_core_link
      then begin
        (* Delegated to the source's ToR-level contact (height 1). *)
        let tor = path.(1) in
        let arb = virtual_arb t (a, b) tor in
        src_side := (1, arb) :: !src_side
      end
      else src_side := (i, real_arb t a b) :: !src_side
    end
    else begin
      (* Destination half. Arbitrator at the lower node [b], height
         (n - 1 - (i + 1)) above dst. *)
      let h = n - 1 - (i + 1) in
      let is_core_link = lv i = 3 in
      if t.cfg.Config.delegation && (not t.cfg.Config.local_only) && is_core_link
      then begin
        let tor = path.(n - 2) in
        let arb = virtual_arb t (a, b) tor in
        dst_side := (1, arb) :: !dst_side
      end
      else dst_side := (h, real_arb t a b) :: !dst_side
    end
  done;
  (* Merge same-height contacts (e.g. a delegated virtual link rides the
     ToR contact for free). *)
  let merge side ~extra_latency =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (h, arb) ->
        let cur = try Hashtbl.find tbl h with Not_found -> [] in
        Hashtbl.replace tbl h (arb :: cur))
      side;
    Det_tbl.fold
      (fun h arbs acc ->
        {
          arbs;
          msgs = 2;
          latency = extra_latency +. (2. *. float_of_int h *. delay) +. proc;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.latency b.latency)
  in
  let local arbs ~latency =
    match arbs with [] -> [] | l -> [ { arbs = l; msgs = 0; latency } ]
  in
  let contacts =
    local !src_local ~latency:proc
    @ merge !src_side ~extra_latency:0.
    @ local !dst_local ~latency:(one_way +. proc)
    @ merge !dst_side ~extra_latency:one_way
  in
  let contacts =
    if t.cfg.Config.local_only then List.filter (fun c -> c.msgs = 0) contacts
    else contacts
  in
  Array.of_list contacts

let all_arbitrators t =
  let acc = ref [] in
  Det_tbl.iter (fun _ a -> acc := a :: !acc) t.real;
  Det_tbl.iter (fun _ a -> acc := a :: !acc) t.virtuals;
  !acc

(* ---- fault plane hooks -------------------------------------------------- *)

let arb_alive t arb =
  let o = Arbitrator.owner arb in
  o < 0 || not t.crashed.(o)

(* A crashed node loses every arbitrator it runs: the real arbitrators of
   its outgoing links and any virtual (delegated) arbitrators it owns. The
   objects survive — emptied — so flow contact lists stay valid; while the
   node is down, refreshes are not accepted and no allocations are served. *)
let fail_node t node =
  if node >= 0 && node < Array.length t.crashed && not t.crashed.(node) then begin
    t.crashed.(node) <- true;
    Det_tbl.iter
      (fun (a, _) arb -> if a = node then Arbitrator.clear arb)
      t.real;
    Det_tbl.iter
      (fun (_, _, tor) arb -> if tor = node then Arbitrator.clear arb)
      t.virtuals
  end

let recover_node t node =
  if node >= 0 && node < Array.length t.crashed && t.crashed.(node) then begin
    t.crashed.(node) <- false;
    (* Time-to-first-grant is measured for the first recovery only. *)
    if Float.is_nan t.first_grant_s && t.restarted_node < 0 then begin
      t.restarted_node <- node;
      t.last_restart <- Engine.now t.engine
    end
  end

let set_ctrl_loss_override t p = t.ctrl_loss_override <- p

let recovery_s t =
  if Float.is_nan t.first_grant_s then None else Some t.first_grant_s

let ctrl_loss_prob t =
  match t.ctrl_loss_override with
  | Some p -> p
  | None -> t.cfg.Config.ctrl_loss_prob

(* One arbitration round: refresh (phase A), re-arbitrate (phase B), combine
   and deliver (phase C). Pruning decisions use the previous round's queue
   assignments, matching the one-round information lag of real messages. *)
let round t =
  t.rounds <- t.rounds + 1;
  let now = Engine.now t.engine in
  (* Phase A: refresh arbitrator state along each flow's contact chain.
     Sorted traversal: flow-id order fixes the RNG draw sequence for
     control-loss injection and the ctrl_msgs accounting order. *)
  Det_tbl.iter
    (fun _ fs ->
      let criterion = fs.criterion () in
      let demand = fs.demand () in
      fs.pruned <- false;
      fs.remote_tried <- false;
      fs.remote_heard <- false;
      let q_acc = ref 0 in
      Array.iteri
        (fun i ct ->
          let pruned =
            t.cfg.Config.early_pruning && !q_acc >= t.cfg.Config.prune_top_k
          in
          if pruned then begin
            fs.contacted.(i) <- false;
            fs.pruned <- true;
            (* Stop holding state upstream: emulate soft-state expiry. *)
            List.iter
              (fun arb ->
                if Arbitrator.mem arb ~flow:fs.flow.Flow.id then
                  Arbitrator.remove arb ~flow:fs.flow.Flow.id)
              ct.arbs
          end
          else begin
            t.counters.Counters.ctrl_msgs <-
              t.counters.Counters.ctrl_msgs + ct.msgs;
            if ct.msgs > 0 && Trace.on () then
              Trace.emit
                (Trace.Ctrl { flow = fs.flow.Flow.id; msgs = ct.msgs });
            if ct.msgs > 0 then fs.remote_tried <- true;
            let live = List.filter (arb_alive t) ct.arbs in
            if live = [] then begin
              (* Every arbitrator behind this contact is crashed: the
                 request is sent but never answered. Previously established
                 soft state was dropped with the crash. *)
              fs.contacted.(i) <- false;
              if ct.msgs > 0 then
                t.counters.Counters.ctrl_lost <-
                  t.counters.Counters.ctrl_lost + ct.msgs
            end
            else begin
              (* Failure injection: a lost request or response simply means
                 this contact contributes nothing this round; the soft state
                 it previously established survives until expiry. *)
              let p = ctrl_loss_prob t in
              let lost = ct.msgs > 0 && p > 0. && Rng.float t.rng 1.0 < p in
              if lost then begin
                fs.contacted.(i) <- false;
                t.counters.Counters.ctrl_lost <-
                  t.counters.Counters.ctrl_lost + ct.msgs
              end
              else begin
                fs.contacted.(i) <- true;
                if ct.msgs > 0 then fs.remote_heard <- true;
                List.iter
                  (fun arb ->
                    Arbitrator.upsert arb ~flow:fs.flow.Flow.id ~criterion
                      ~demand_bps:demand ~now;
                    match Arbitrator.cached arb ~flow:fs.flow.Flow.id with
                    | Some (q, _) -> q_acc := max !q_acc q
                    | None -> ())
                  live
              end
            end
          end)
        fs.contacts;
      (* Remote arbitration reachability: a flow that tried remote contacts
         and heard from none falls back to unguided (DCTCP) rate control
         until a response gets through again. *)
      let unreach = fs.remote_tried && not fs.remote_heard in
      if unreach <> fs.is_unreachable then begin
        fs.is_unreachable <- unreach;
        match fs.unreachable with Some cb -> cb unreach | None -> ()
      end)
    t.flows;
  (* Phase B: expire soft state that stopped being refreshed, then every
     arbitrator re-runs Algorithm 1 over its flow set. *)
  let max_age =
    float_of_int t.cfg.Config.state_expiry_rounds *. t.cfg.Config.arb_period
  in
  List.iter
    (fun arb ->
      if arb_alive t arb then begin
        Arbitrator.expire arb ~now ~max_age;
        Arbitrator.arbitrate arb ~num_queues:t.cfg.Config.num_queues
          ~base_rate_bps:t.base_rate_bps
      end)
    (all_arbitrators t);
  (* Recovery metric: first round after the (first) restart in which the
     restarted node serves an allocation again. *)
  (if t.restarted_node >= 0 && Float.is_nan t.first_grant_s then
     let regranted =
       List.exists
         (fun arb ->
           Arbitrator.owner arb = t.restarted_node
           && Arbitrator.allocations arb > 0)
         (all_arbitrators t)
     in
     if regranted then t.first_grant_s <- now -. t.last_restart);
  (* Phase C: combine per-link decisions and deliver after control latency.
     Sorted traversal: apply callbacks are scheduled here, so flow-id order
     fixes the engine's FIFO tie-break for same-time events. *)
  Det_tbl.iter
    (fun _ fs ->
      (* A pruned flow has no fresh upstream info: it keeps (at least) its
         previous queue. Fully-arbitrated flows take the fresh decision, so
         they can be promoted when higher-priority flows drain. *)
      let finalize q =
        let q = if fs.pruned then max q fs.last_queue else q in
        min q (t.cfg.Config.num_queues - 1)
      in
      let flow_id = fs.flow.Flow.id in
      (* Collect per-contact results ordered by response latency. *)
      let responses =
        let acc = ref [] in
        Array.iteri
          (fun i ct ->
            if fs.contacted.(i) then begin
              let cq = ref 0 and cr = ref infinity in
              List.iter
                (fun arb ->
                  match Arbitrator.cached arb ~flow:fs.flow.Flow.id with
                  | Some (ql, rl) ->
                      cq := max !cq ql;
                      cr := Float.min !cr rl
                  | None -> ())
                ct.arbs;
              acc := (ct.latency, !cq, !cr) :: !acc
            end)
          fs.contacts;
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) !acc
      in
      let schedule_apply ~delay ~queue ~rref ~final =
        let rref = if rref = infinity then t.base_rate_bps else rref in
        Engine.schedule ~label:"arb-apply" t.engine ~delay (fun () ->
            match Hashtbl.find_opt t.flows flow_id with
            | Some fs ->
                if final then fs.last_queue <- queue;
                fs.apply ~queue ~rref_bps:rref
            | None -> ())
      in
      (match responses with
      | [] -> ()
      | _ ->
          let n = List.length responses in
          if fs.first_round then begin
            (* Progressive refinement: apply the cumulative decision as each
               response arrives; only the last one is sticky. *)
            fs.first_round <- false;
            let cq = ref 0 and cr = ref infinity in
            List.iteri
              (fun i (lat, q, r) ->
                cq := max !cq q;
                cr := Float.min !cr r;
                let final = i = n - 1 in
                schedule_apply ~delay:lat ~queue:(finalize !cq) ~rref:!cr ~final)
              responses
          end
          else begin
            let lat, cq, cr =
              List.fold_left
                (fun (lat, cq, cr) (l, q, r) ->
                  (Float.max lat l, Stdlib.max cq q, Float.min cr r))
                (0., 0, infinity) responses
            in
            schedule_apply ~delay:lat ~queue:(finalize cq) ~rref:cr ~final:true
          end))
    t.flows

(* The arbitration round loop rides one reschedulable engine timer instead
   of allocating a closure per period; the rebalance deadline lives on [t]
   rather than being threaded through each closure. *)
let rec tick t =
  if t.running then begin
    round t;
    if t.cfg.Config.delegation && Engine.now t.engine >= t.next_rebalance
    then begin
      rebalance t;
      t.next_rebalance <- Engine.now t.engine +. t.cfg.Config.delegation_period
    end;
    let tm =
      match t.tick_timer with
      | Some tm -> tm
      | None ->
          let tm = Engine.timer ~label:"arb-round" t.engine (fun () -> tick t) in
          t.tick_timer <- Some tm;
          tm
    in
    Engine.timer_schedule t.engine tm ~delay:t.cfg.Config.arb_period
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.next_rebalance <- Engine.now t.engine +. t.cfg.Config.delegation_period;
    tick t
  end

let stop t = t.running <- false

let add_flow t ~flow ~criterion ~demand ?unreachable ~apply () =
  let contacts = build_contacts t ~flow in
  let fs =
    {
      flow;
      contacts;
      criterion;
      demand;
      apply;
      unreachable;
      last_queue = 0;
      contacted = Array.make (Array.length contacts) false;
      pruned = false;
      remote_tried = false;
      remote_heard = false;
      is_unreachable = false;
      first_round = true;
    }
  in
  Hashtbl.replace t.flows flow.Flow.id fs;
  (* Immediate local decision so the flow starts without waiting (§3.1.2):
     consult only the source-local contact synchronously. *)
  (match Array.length contacts with
  | 0 -> apply ~queue:0 ~rref_bps:t.base_rate_bps
  | _ ->
      let ct = contacts.(0) in
      let now = Engine.now t.engine in
      let q = ref 0 and rref = ref infinity in
      List.iter
        (fun arb ->
          Arbitrator.upsert arb ~flow:flow.Flow.id ~criterion:(criterion ())
            ~demand_bps:(demand ()) ~now;
          Arbitrator.arbitrate arb ~num_queues:t.cfg.Config.num_queues
            ~base_rate_bps:t.base_rate_bps;
          match Arbitrator.cached arb ~flow:flow.Flow.id with
          | Some (ql, rl) ->
              q := max !q ql;
              rref := Float.min !rref rl
          | None -> ())
        (List.filter (arb_alive t) ct.arbs);
      fs.last_queue <- !q;
      let rref = if !rref = infinity then t.base_rate_bps else !rref in
      apply ~queue:!q ~rref_bps:rref)

let remove_flow t ~flow_id =
  match Hashtbl.find_opt t.flows flow_id with
  | None -> ()
  | Some fs ->
      Array.iter
        (fun ct -> List.iter (fun arb -> Arbitrator.remove arb ~flow:flow_id) ct.arbs)
        fs.contacts;
      Hashtbl.remove t.flows flow_id
