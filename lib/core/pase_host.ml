type t = {
  sender : Sender_base.t;
  hierarchy : Hierarchy.t;
  cfg : Config.t;
  criterion_override : (unit -> float) option;
  rtt : float;
  nic_bps : float;
  ecn : Ecn_cc.state;
  mutable queue : int;
  mutable rref_bps : float;
  mutable is_inter : bool;  (* already running DCTCP laws in a middle queue *)
  mutable pending : (int * float) option;  (* promotion awaiting drain *)
  mutable probes_sent : int;
  mutable guided : bool;
      (* false while remote arbitration is unreachable (crash / lost
         control messages): windows fall back to plain DCTCP laws instead
         of trusting a stale reference rate *)
  mutable started : bool;
}

let sender t = t.sender
let queue t = t.queue
let rref_bps t = t.rref_bps
let probes_sent t = t.probes_sent
let guided t = t.guided

let mss_bits t =
  float_of_int (8 * (Sender_base.conf t.sender).Sender_base.mss)

let rref_pkts t = Float.max 1. (t.rref_bps *. t.rtt /. mss_bits t)

let is_bottom t q = q >= t.cfg.Config.num_queues - 1
let is_top q = q = 0

(* Set the window for the queue just entered (Algorithm 2, per-assignment
   part). With [use_ref_rate] off (PASE-DCTCP, Fig 13a) windows evolve by
   plain DCTCP laws and only the packet priority follows arbitration. *)
let apply_window_policy t =
  if t.cfg.Config.use_ref_rate && t.guided then begin
    if is_top t.queue then begin
      Sender_base.set_cwnd t.sender (rref_pkts t);
      t.is_inter <- false
    end
    else if is_bottom t t.queue then begin
      Sender_base.set_cwnd t.sender 1.;
      t.is_inter <- false
    end
    else if not t.is_inter then begin
      Sender_base.set_cwnd t.sender 1.;
      t.is_inter <- true
    end
  end

let really_apply t (q, rref) =
  t.queue <- q;
  t.rref_bps <- rref;
  if Trace.on () then
    Trace.emit
      (Trace.Queue_assign
         {
           flow = (Sender_base.flow t.sender).Flow.id;
           queue = q;
           rref_bps = rref;
         });
  apply_window_policy t;
  Sender_base.try_send t.sender

let apply_assignment t ~queue:q ~rref_bps:rref =
  if Sender_base.completed t.sender then ()
  else if q < t.queue && Sender_base.inflight t.sender > 0 then
    (* Promotion with packets still out at the old priority: hold new
       transmissions until they drain (reordering guard, §3.2). *)
    t.pending <- Some (q, rref)
  else begin
    t.pending <- None;
    really_apply t (q, rref)
  end

let on_ack t sender ~ecn ~newly_acked =
  Ecn_cc.observe t.ecn sender ~ecn ~weight:newly_acked;
  (* Reordering guard release: old-priority packets have drained. *)
  (match t.pending with
  | Some (q, rref) when Sender_base.inflight sender = 0 ->
      t.pending <- None;
      really_apply t (q, rref)
  | _ -> ());
  if ecn then
    ignore
      (Ecn_cc.try_cut t.ecn sender
         ~multiplier:(1. -. (Ecn_cc.alpha t.ecn /. 2.)))
  else if newly_acked > 0 then begin
    if t.cfg.Config.use_ref_rate && t.guided then begin
      if is_top t.queue then Sender_base.set_cwnd sender (rref_pkts t)
      else if is_bottom t t.queue then Sender_base.set_cwnd sender 1.
      else begin
        (* DCTCP increase laws: slow start below ssthresh, then additive.
           This is how intermediate queues stay work-conserving — when the
           band above drains, the flow ramps into the spare capacity. *)
        let cwnd = Sender_base.cwnd sender in
        if cwnd < Sender_base.ssthresh sender then
          Sender_base.set_cwnd sender (cwnd +. float_of_int newly_acked)
        else
          Sender_base.set_cwnd sender
            (cwnd +. (float_of_int newly_acked /. cwnd))
      end
    end
    else begin
      (* PASE-DCTCP, or arbitration unreachable: standard DCTCP increase. *)
      let cwnd = Sender_base.cwnd sender in
      if cwnd < Sender_base.ssthresh sender then
        Sender_base.set_cwnd sender (cwnd +. float_of_int newly_acked)
      else
        Sender_base.set_cwnd sender
          (cwnd +. (float_of_int newly_acked /. cwnd))
    end
  end

let demand t () =
  if Sender_base.completed t.sender then 0.
  else
    let remaining_bits =
      float_of_int (Sender_base.remaining_pkts t.sender) *. mss_bits t
    in
    Float.min t.nic_bps (remaining_bits /. Float.max t.rtt (Sender_base.srtt t.sender))

let criterion t () =
  match t.criterion_override with
  | Some f -> f ()
  | None -> (
      match t.cfg.Config.scheduling with
      | Config.Srpt | Config.Task_aware ->
          (* Task_aware without an override degrades to SRPT. *)
          float_of_int (Sender_base.remaining_pkts t.sender)
      | Config.Edf -> (
          match Flow.absolute_deadline (Sender_base.flow t.sender) with
          | Some d -> d
          | None -> infinity))

let create net hierarchy ~flow ~cfg ~rtt ~nic_bps ?criterion_override ~on_complete () =
  let conf =
    {
      Sender_base.default_conf with
      Sender_base.init_cwnd = 1.;
      min_rto = cfg.Config.rto_top;
      init_rtt = rtt;
      ecn_capable = true;
    }
  in
  let ecn = Ecn_cc.create_state () in
  (* Hooks fire only after [start], by which time [self_ref] is set. *)
  let self_ref = ref None in
  let self () =
    match !self_ref with Some s -> s | None -> assert false
  in
  let stamp _ (pkt : Packet.t) =
    let t = self () in
    pkt.Packet.tos <- t.queue;
    pkt.Packet.prio <- float_of_int (Sender_base.remaining_pkts t.sender)
  in
  let hooks =
    {
      Sender_base.default_hooks with
      Sender_base.stamp;
      on_ack = (fun s ~ecn ~newly_acked -> on_ack (self ()) s ~ecn ~newly_acked);
      on_fast_retransmit =
        (fun s -> ignore (Ecn_cc.try_cut (self ()).ecn s ~multiplier:0.5));
      on_timeout =
        (fun s ->
          let t = self () in
          if is_top t.queue || (not t.cfg.Config.use_probes) || not t.guided
          then begin
            (* The RTO path presumes every outstanding old-priority packet
               lost (go-back-N), so the promotion reordering guard has
               nothing left to wait for. Release it here: with zero packets
               in flight no ack will ever fire the [on_ack] release, and a
               held guard blocks the retransmissions via [allow_send]. *)
            (match t.pending with
            | Some (q, rref) ->
                t.pending <- None;
                really_apply t (q, rref)
            | None -> ());
            `Default
          end
          else begin
            (* Parked or lost? Ask with a header-only probe. *)
            t.probes_sent <- t.probes_sent + 1;
            Sender_base.send_probe s;
            `Handled
          end);
      allow_send = (fun _ -> (self ()).pending = None);
      base_rto =
        (fun _ ->
          let t = self () in
          (* Unguided flows keep the aggressive RTO: with arbitration down
             they must detect blackholed packets themselves. *)
          if is_top t.queue || not t.guided then t.cfg.Config.rto_top
          else t.cfg.Config.rto_low);
    }
  in
  let on_complete sender ~fct =
    Hierarchy.remove_flow hierarchy ~flow_id:flow.Flow.id;
    on_complete sender ~fct
  in
  let sender = Sender_base.create net ~flow ~conf ~hooks ~on_complete () in
  let mss_bits = float_of_int (8 * conf.Sender_base.mss) in
  let t =
    {
      sender;
      hierarchy;
      cfg;
      criterion_override;
      rtt;
      nic_bps;
      ecn;
      queue = cfg.Config.num_queues - 1;
      rref_bps = mss_bits /. rtt;
      is_inter = false;
      pending = None;
      probes_sent = 0;
      guided = true;
      started = false;
    }
  in
  self_ref := Some t;
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Hierarchy.add_flow t.hierarchy ~flow:(Sender_base.flow t.sender)
      ~criterion:(criterion t) ~demand:(demand t)
      ~unreachable:(fun lost -> t.guided <- not lost)
      ~apply:(fun ~queue ~rref_bps -> apply_assignment t ~queue ~rref_bps)
      ();
    Sender_base.start t.sender
  end
