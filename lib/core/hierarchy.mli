(** PASE's bottom-up arbitration control plane (paper §3.1.2).

    One {!Arbitrator.t} per directed link. Every [arb_period] the hierarchy
    runs a round: each active flow refreshes its state with the arbitrators
    along its path (subject to early pruning), every arbitrator re-runs
    Algorithm 1, and each flow's combined decision — its bottleneck queue
    and minimum reference rate — is delivered to the source after the
    modelled control latency of the farthest arbitrator contacted.

    Contact cost model (arbitrators are co-located with switches):
    - a host's own access links: local, no messages, no latency;
    - a switch-level arbitrator at height [h] above the initiating host:
      2 control messages per round, round-trip latency [2h] link delays;
    - destination-half contacts additionally pay the one-way source to
      destination latency before the source learns the result.

    Early pruning stops contacting higher arbitrators once a flow's queue
    (from the previous round) falls outside the top [prune_top_k] queues.
    Delegation replaces Agg-Core arbitrators with per-ToR virtual links
    whose capacities are rebalanced every [delegation_period]. *)

type t

val create :
  Engine.t ->
  Counters.t ->
  Config.t ->
  Topology.t ->
  base_rate_bps:float ->
  t

(** Begin periodic arbitration rounds. *)
val start : t -> unit

(** Stop scheduling further rounds. *)
val stop : t -> unit

(** [add_flow t ~flow ~criterion ~demand ?unreachable ~apply ()] registers a
    flow. [criterion]/[demand] are sampled every round; [apply] delivers
    each (queue, reference-rate) decision. An immediate local-only decision
    is applied synchronously (flows start without waiting for the network,
    §3.1.2). [unreachable] is called with [true] when the flow tries remote
    contacts and none answers (all crashed or every message lost) — the
    host should fall back to unguided DCTCP rate control — and with [false]
    once a response gets through again. *)
val add_flow :
  t ->
  flow:Flow.t ->
  criterion:(unit -> float) ->
  demand:(unit -> float) ->
  ?unreachable:(bool -> unit) ->
  apply:(queue:int -> rref_bps:float -> unit) ->
  unit ->
  unit

(** Deregister a finished flow from all its arbitrators. *)
val remove_flow : t -> flow_id:int -> unit

(** Rounds executed so far. *)
val rounds : t -> int

(** Number of live (real + virtual) arbitrators — for tests/benches. *)
val arbitrator_count : t -> int

(** The arbitrator of directed link [a -> b], if it exists yet. *)
val arbitrator_of_link : t -> int -> int -> Arbitrator.t option

(** {1 Fault plane}

    Hooks the fault-injection subsystem drives ({!Fault}). A crashed node
    drops all arbitration soft state it owns (the real arbitrators of its
    outgoing links and any delegated virtual arbitrators); while down it
    accepts no refreshes and serves no allocations, so host re-requests
    rebuild its state only after recovery. *)

(** Mark a node crashed, dropping the soft state of every arbitrator it
    owns. Idempotent. *)
val fail_node : t -> int -> unit

(** Mark a crashed node live again. The first recovery starts the
    time-to-first-grant clock read by {!recovery_s}. Idempotent. *)
val recover_node : t -> int -> unit

(** [set_ctrl_loss_override t (Some p)] makes control messages drop with
    probability [p] (superseding [Config.ctrl_loss_prob]) until
    [set_ctrl_loss_override t None]. Sampling uses the hierarchy's own
    seeded stream, so runs replay deterministically. *)
val set_ctrl_loss_override : t -> float option -> unit

(** Seconds from the first node recovery to the first arbitration round in
    which that node served an allocation again; [None] if no recovery
    happened (or none was needed). *)
val recovery_s : t -> float option
