(** Per-link arbitrator: soft state about the flows crossing one (real or
    delegated virtual) link, refreshed every arbitration round, plus the
    cached result of the last {!arbitrate} pass. *)

type t

val create : ?link:int * int -> ?owner:int -> capacity_bps:float -> unit -> t
(** [link] names the (real or virtual) link being arbitrated and [owner]
    the arbitrating delegate's node id; both only feed trace events
    ([(-1, -1)] / [-1] when unknown). *)

(** Current capacity (changes for delegated virtual links). *)
val capacity_bps : t -> float

val set_capacity : t -> float -> unit

(** [upsert t ~flow ~criterion ~demand_bps ~now] refreshes a flow's entry. *)
val upsert : t -> flow:int -> criterion:float -> demand_bps:float -> now:float -> unit

val remove : t -> flow:int -> unit
val flows : t -> int
val mem : t -> flow:int -> bool

(** The arbitrating delegate's node id ([-1] if anonymous). *)
val owner : t -> int

(** Number of flows with a cached allocation from the last [arbitrate]. *)
val allocations : t -> int

(** Drop all soft state (flow entries, cached allocations) — the effect of
    a crash of the owning node. Hosts rebuild it via periodic re-requests. *)
val clear : t -> unit

(** Drop entries not refreshed since [now - max_age] (soft-state expiry for
    lost sources). *)
val expire : t -> now:float -> max_age:float -> unit

(** Run Algorithm 1 over the current flow set and cache the results. *)
val arbitrate : t -> num_queues:int -> base_rate_bps:float -> unit

(** Cached result of the last [arbitrate] for [flow]: [(queue, rref)]. *)
val cached : t -> flow:int -> (int * float) option

(** Number of flows mapped to queues [< k] in the last [arbitrate] pass. *)
val in_top_queues : t -> k:int -> int

(** Sum of the demands of all currently registered flows (bps). *)
val total_demand : t -> float
