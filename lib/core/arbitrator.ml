type entry = {
  mutable criterion : float;
  mutable demand_bps : float;
  mutable refreshed : float;
}

type t = {
  mutable capacity_bps : float;
  entries : (int, entry) Hashtbl.t;
  results : (int, int * float) Hashtbl.t;
  mutable top_counts : int array;  (* per-queue flow counts from last pass *)
  link : int * int;  (* the (real or virtual) link arbitrated, for tracing *)
  owner : int;  (* node id of the arbitrating delegate, -1 if anonymous *)
}

let create ?(link = (-1, -1)) ?(owner = -1) ~capacity_bps () =
  if capacity_bps <= 0. then invalid_arg "Arbitrator.create: capacity";
  {
    capacity_bps;
    entries = Hashtbl.create 64;
    results = Hashtbl.create 64;
    top_counts = [||];
    link;
    owner;
  }

let capacity_bps t = t.capacity_bps
let set_capacity t c = if c > 0. then t.capacity_bps <- c

let upsert t ~flow ~criterion ~demand_bps ~now =
  match Hashtbl.find_opt t.entries flow with
  | Some e ->
      e.criterion <- criterion;
      e.demand_bps <- demand_bps;
      e.refreshed <- now
  | None ->
      Hashtbl.replace t.entries flow { criterion; demand_bps; refreshed = now }

let remove t ~flow =
  Hashtbl.remove t.entries flow;
  Hashtbl.remove t.results flow

let flows t = Hashtbl.length t.entries
let mem t ~flow = Hashtbl.mem t.entries flow
let owner t = t.owner
let allocations t = Hashtbl.length t.results

(* Crash: all soft state vanishes — flow entries and cached allocations.
   Hosts rebuild it through their periodic re-requests. *)
let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.results;
  t.top_counts <- [||]

let expire t ~now ~max_age =
  let stale =
    Det_tbl.fold
      (fun flow e acc -> if now -. e.refreshed > max_age then flow :: acc else acc)
      t.entries []
  in
  List.iter (fun flow -> remove t ~flow) stale

let arbitrate t ~num_queues ~base_rate_bps =
  Hashtbl.reset t.results;
  let inputs =
    Det_tbl.fold
      (fun flow e acc ->
        { Arbitration.flow; criterion = e.criterion; demand_bps = e.demand_bps }
        :: acc)
      t.entries []
  in
  let outs =
    Arbitration.assign ~capacity_bps:t.capacity_bps ~num_queues ~base_rate_bps
      inputs
  in
  let counts = Array.make num_queues 0 in
  List.iter
    (fun o ->
      Hashtbl.replace t.results o.Arbitration.out_flow
        (o.Arbitration.queue, o.Arbitration.rref_bps);
      counts.(o.Arbitration.queue) <- counts.(o.Arbitration.queue) + 1;
      if Trace.on () then
        Trace.emit
          (Trace.Arb_alloc
             {
               link = t.link;
               delegate = t.owner;
               flow = o.Arbitration.out_flow;
               queue = o.Arbitration.queue;
               rref_bps = o.Arbitration.rref_bps;
             }))
    outs;
  t.top_counts <- counts;
  if Trace.on () then
    Trace.emit
      (Trace.Arb
         {
           link = t.link;
           delegate = t.owner;
           flows = Hashtbl.length t.entries;
           top_flows = (if num_queues > 0 then counts.(0) else 0);
         })

let cached t ~flow = Hashtbl.find_opt t.results flow

let total_demand t =
  Det_tbl.fold (fun _ e acc -> acc +. e.demand_bps) t.entries 0.

let in_top_queues t ~k =
  let n = Array.length t.top_counts in
  let acc = ref 0 in
  for i = 0 to min k n - 1 do
    acc := !acc + t.top_counts.(i)
  done;
  !acc
