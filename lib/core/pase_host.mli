(** PASE end-host transport (paper §3.2, Algorithm 2).

    Rate control is guided by the arbitration decision: top-queue flows set
    their window straight from the reference rate, intermediate-queue flows
    run DCTCP laws from a window of one, bottom-queue flows stay at one
    segment per RTT, and every flow applies the DCTCP alpha cut on ECN
    echoes. Loss recovery is priority-aware: top-queue flows use a normal
    RTO; lower-queue flows use a long RTO and header-only probes to tell
    "lost" apart from "parked behind higher-priority traffic". On promotion
    to a higher-priority queue the sender drains in-flight packets before
    sending at the new priority (reordering guard). *)

type t

(** [create net hierarchy ~flow ~cfg ~rtt ~nic_bps ~on_complete ()] builds
    the host agent and registers the flow with the arbitration [hierarchy].
    [rtt] is the flow's base RTT (used for the one-packet-per-RTT base rate
    and reference-rate-to-window conversion); [nic_bps] caps the advertised
    demand. *)
val create :
  Net.t ->
  Hierarchy.t ->
  flow:Flow.t ->
  cfg:Config.t ->
  rtt:float ->
  nic_bps:float ->
  ?criterion_override:(unit -> float) ->
  on_complete:(Sender_base.t -> fct:float -> unit) ->
  unit ->
  t

val start : t -> unit
val sender : t -> Sender_base.t

(** Current priority queue (0 = top). *)
val queue : t -> int

(** Current reference rate in bits/s. *)
val rref_bps : t -> float

(** Number of probes this host sent (for the probing ablation). *)
val probes_sent : t -> int

(** [false] while remote arbitration is unreachable (crashed arbitrators or
    total control-message loss): the host then ignores its stale reference
    rate and runs plain DCTCP laws with the aggressive RTO until a response
    gets through again. *)
val guided : t -> bool
