(** Coflow (task-group) completion aggregates with all-workers-finish
    semantics: a coflow completes when its last member flow does, so the
    coflow completion time (CCT) is max(start + fct) over the members minus
    the group's first start. A group is censored when any member is; a
    group with a deadline meets it when it completed within the deadline.

    Bounded memory: a Welford accumulator for moments/extremes and a
    t-digest for CCT quantiles. Closure-free (Marshal/fork-safe) like
    {!Attrib}; [merge] is deterministic in operand order. The runner
    finalises groups in sorted task-id order, so t-digest insertion order —
    and therefore every quantile — is byte-stable across runs and
    processes. *)

type t

val create : unit -> t

(** [observe t ~cct ~width ~censored ~deadline] folds one finished (or
    censored) group in. [width] is the member-flow count; [deadline] is the
    group deadline in seconds, if any. Censored groups contribute to counts
    but not to the CCT moments or quantiles. *)
val observe :
  t -> cct:float -> width:int -> censored:bool -> deadline:float option -> unit

val coflows : t -> int
(** total groups observed (completed + censored) *)

val completed : t -> int
val censored : t -> int

val flows : t -> int
(** member flows across all observed groups *)

val cct_mean : t -> float
val cct_quantile : t -> float -> float
val deadline_met : t -> int
val deadline_total : t -> int

val deadline_met_frac : t -> float
(** [nan] when no group carried a deadline *)

val merge : t -> t -> t

(** Fixed key order, [%.17g] floats (nan/inf → [null]); collapses to
    [{"coflows":0}] when nothing was observed. *)
val to_json : t -> string
