(* Aggregation of per-flow delay-attribution records (Delay.record) into
   per-band, per-component summaries: a Welford accumulator for moments and
   extremes, a t-digest for quantiles, and a running sum so attribution
   totals can be reconciled against the AFCT (sum of fct components over
   completed flows = sum of fcts, exactly, by the Delay invariant).

   Bands follow the paper's workload taxonomy by flow size in segments:
   short < 10, medium < 100, long >= 100, plus an "all" band. The structure
   is closure-free so it survives Marshal across the fork-parallel runner,
   and [merge] is deterministic in operand order. *)

type comp_agg = { moments : Welford.t; digest : Tdigest.t; mutable sum : float }

type band_agg = {
  band : string;
  lo : int;
  hi : int;  (* size_pkts in [lo, hi) falls in this band; max_int = open *)
  comps : comp_agg array;
}

type t = { bands : band_agg array }

let components =
  [| "serialization"; "propagation"; "queueing"; "arb_wait"; "rto_stall"; "fct" |]

let n_components = Array.length components

let band_specs =
  [| ("all", 0, max_int); ("short", 0, 10); ("medium", 10, 100); ("long", 100, max_int) |]

let create () =
  {
    bands =
      Array.map
        (fun (band, lo, hi) ->
          {
            band;
            lo;
            hi;
            comps =
              Array.init n_components (fun _ ->
                  { moments = Welford.create (); digest = Tdigest.create (); sum = 0. });
          })
        band_specs;
  }

let comp_values (r : Delay.record) =
  [|
    r.Delay.serialization;
    r.Delay.propagation;
    r.Delay.queueing;
    r.Delay.arb_wait;
    r.Delay.rto_stall;
    r.Delay.fct;
  |]

let add t ~size_pkts (r : Delay.record) =
  let vs = comp_values r in
  Array.iter
    (fun b ->
      if size_pkts >= b.lo && size_pkts < b.hi then
        Array.iteri
          (fun i c ->
            let v = vs.(i) in
            Welford.add c.moments v;
            Tdigest.add c.digest v;
            c.sum <- c.sum +. v)
          b.comps)
    t.bands

let flows t =
  (* every record lands in band 0 ("all"); any component's count works *)
  Welford.count t.bands.(0).comps.(0).moments

let merge a b =
  {
    bands =
      Array.map2
        (fun ba bb ->
          {
            ba with
            comps =
              Array.map2
                (fun ca cb ->
                  {
                    moments = Welford.merge ca.moments cb.moments;
                    digest = Tdigest.merge ca.digest cb.digest;
                    sum = ca.sum +. cb.sum;
                  })
                ba.comps bb.comps;
          })
        a.bands b.bands;
  }

let component_sum t ~band ~component =
  let bi = Array.to_list t.bands in
  match List.find_opt (fun b -> b.band = band) bi with
  | None -> nan
  | Some b -> (
      match Array.find_index (fun c -> c = component) components with
      | None -> nan
      | Some i -> b.comps.(i).sum)

(* JSON with fixed key order and %.17g floats (nan -> null), matching the
   conventions of Result_codec so the attrib object slots into codec v6. *)

let json_float x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.17g" x

let comp_json c =
  let n = Welford.count c.moments in
  if n = 0 then {|{"count":0}|}
  else
    Printf.sprintf
      {|{"count":%d,"sum":%s,"mean":%s,"min":%s,"max":%s,"p50":%s,"p90":%s,"p99":%s}|}
      n (json_float c.sum)
      (json_float (Welford.mean c.moments))
      (json_float (Welford.min c.moments))
      (json_float (Welford.max c.moments))
      (json_float (Tdigest.quantile c.digest 0.5))
      (json_float (Tdigest.quantile c.digest 0.9))
      (json_float (Tdigest.quantile c.digest 0.99))

let band_json b =
  let flows = Welford.count b.comps.(0).moments in
  let comps =
    String.concat ","
      (List.init n_components (fun i ->
           Printf.sprintf {|"%s":%s|} components.(i) (comp_json b.comps.(i))))
  in
  Printf.sprintf {|{"band":"%s","flows":%d,"components":{%s}}|} b.band flows
    comps

let to_json t =
  Printf.sprintf {|{"bands":[%s]}|}
    (String.concat "," (Array.to_list (Array.map band_json t.bands)))
