(** Seeded reservoir sample: a bounded, uniformly drawn subset of a stream,
    kept as the exact-sample fallback next to the sketch aggregates.

    Algorithm R over an explicit {!Rng.t}: a given [(seed, stream)] pair
    always produces the same sample, so reservoir-bearing results stay
    byte-identical across reruns and across the serial/forked runners. *)

type 'a t

(** [create ~k ~seed] holds at most [k] elements ([Invalid_argument] if
    [k <= 0]). *)
val create : k:int -> seed:int -> 'a t

val add : 'a t -> 'a -> unit

(** Elements currently retained, in slot order (deterministic, not sorted
    and not stream order once the reservoir has overflowed). *)
val sample : 'a t -> 'a list

(** Number of elements offered so far. *)
val seen : 'a t -> int

(** Reservoir capacity [k]. *)
val capacity : 'a t -> int

(** [merge a b] draws a fresh [k]-reservoir from the two retained samples,
    weighting each side by its [seen] count. Deterministic in operand
    order (the merge RNG is derived from both seeds); the operands are not
    mutated. The result is an approximately uniform subsample of the
    union — exact enough for its diagnostic fallback role, and documented
    as such. Requires equal capacities. *)
val merge : 'a t -> 'a t -> 'a t
