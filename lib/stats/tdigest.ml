type t = {
  delta : float;
  mutable means : float array;  (* centroid means, nondecreasing *)
  mutable weights : float array;  (* parallel to [means] *)
  mutable n : int;  (* live centroids *)
  mutable total : float;  (* weight held in centroids *)
  buf : float array;  (* pending raw values *)
  mutable buf_n : int;
  mutable lo : float;
  mutable hi : float;
}

let create ?(delta = 200.) () =
  if delta < 10. then invalid_arg "Tdigest.create: delta must be >= 10";
  {
    delta;
    means = [||];
    weights = [||];
    n = 0;
    total = 0.;
    buf = Array.make (8 * int_of_float delta) 0.;
    buf_n = 0;
    lo = infinity;
    hi = neg_infinity;
  }

let count t = int_of_float t.total + t.buf_n
let delta t = t.delta
let min t = if count t = 0 then nan else t.lo
let max t = if count t = 0 then nan else t.hi

let pi = 4. *. atan 1.

(* k1 scale function: k(q) = delta/(2pi) * asin(2q - 1). A cluster may
   span at most one unit of k, so cluster rank-width shrinks like
   sqrt(q(1-q)) toward the tails. *)
let k_scale t q =
  let q = Float.min 1. (Float.max 0. q) in
  t.delta /. (2. *. pi) *. asin ((2. *. q) -. 1.)

(* Compress a weight-ordered stream of (mean, weight) pairs, delivered by
   [iter_pairs] in nondecreasing mean order summing to [total], into
   [t.means]/[t.weights]. Greedy single-pass merge: grow the current
   cluster while it stays within one unit of the scale function. *)
let compress_into t ~total ~cap iter_pairs =
  let out_m = Array.make (Stdlib.max cap 1) 0. in
  let out_w = Array.make (Stdlib.max cap 1) 0. in
  let out_n = ref 0 in
  let cur_m = ref 0. and cur_w = ref 0. in
  let emitted = ref 0. in
  let k_lo = ref 0. in
  let push m w =
    if !cur_w = 0. then begin
      cur_m := m;
      cur_w := w;
      k_lo := k_scale t (!emitted /. total)
    end
    else if k_scale t ((!emitted +. !cur_w +. w) /. total) -. !k_lo <= 1.
    then begin
      (* fold into the current cluster: weighted incremental mean *)
      cur_w := !cur_w +. w;
      cur_m := !cur_m +. (w /. !cur_w *. (m -. !cur_m))
    end
    else begin
      out_m.(!out_n) <- !cur_m;
      out_w.(!out_n) <- !cur_w;
      incr out_n;
      emitted := !emitted +. !cur_w;
      cur_m := m;
      cur_w := w;
      k_lo := k_scale t (!emitted /. total)
    end
  in
  iter_pairs push;
  if !cur_w > 0. then begin
    out_m.(!out_n) <- !cur_m;
    out_w.(!out_n) <- !cur_w;
    incr out_n
  end;
  t.means <- Array.sub out_m 0 !out_n;
  t.weights <- Array.sub out_w 0 !out_n;
  t.n <- !out_n;
  t.total <- total

let flush t =
  if t.buf_n > 0 then begin
    let pending = Array.sub t.buf 0 t.buf_n in
    Array.sort Float.compare pending;
    t.buf_n <- 0;
    let np = Array.length pending in
    let total = t.total +. float_of_int np in
    let old_m = t.means and old_w = t.weights and old_n = t.n in
    compress_into t ~total ~cap:(old_n + np) (fun push ->
        let i = ref 0 and j = ref 0 in
        while !i < old_n || !j < np do
          if
            !j >= np
            || (!i < old_n && Float.compare old_m.(!i) pending.(!j) <= 0)
          then begin
            push old_m.(!i) old_w.(!i);
            incr i
          end
          else begin
            push pending.(!j) 1.;
            incr j
          end
        done)
  end

let add t x =
  if Float.is_nan x then invalid_arg "Tdigest.add: nan sample";
  if t.buf_n = Array.length t.buf then flush t;
  t.buf.(t.buf_n) <- x;
  t.buf_n <- t.buf_n + 1;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let centroids t =
  flush t;
  List.init t.n (fun i -> (t.means.(i), t.weights.(i)))

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Tdigest.quantile: q out of range";
  flush t;
  if t.n = 0 then nan
  else if t.n = 1 then t.means.(0)
  else begin
    (* Centroid i represents weight w_i centred at cumulative midpoint
       c_i; interpolate linearly between adjacent (c, mean) anchors, with
       the exact min/max anchoring the extremes. *)
    let target = q *. t.total in
    let res = ref t.hi in
    (try
       let cum = ref 0. in
       let prev_c = ref 0. and prev_m = ref t.lo in
       for i = 0 to t.n - 1 do
         let c = !cum +. (t.weights.(i) /. 2.) in
         if target <= c then begin
           let span = c -. !prev_c in
           let frac =
             if span <= 0. then 1. else (target -. !prev_c) /. span
           in
           res := !prev_m +. (frac *. (t.means.(i) -. !prev_m));
           raise Exit
         end;
         cum := !cum +. t.weights.(i);
         prev_c := c;
         prev_m := t.means.(i)
       done;
       let span = t.total -. !prev_c in
       let frac = if span <= 0. then 1. else (target -. !prev_c) /. span in
       res := !prev_m +. (frac *. (t.hi -. !prev_m))
     with Exit -> ());
    Float.max t.lo (Float.min t.hi !res)
  end

let rank_error t q =
  let n = count t in
  if n = 0 then nan
  else
    let q = Float.min 1. (Float.max 0. q) in
    Float.max
      (1. /. float_of_int n)
      (4. *. pi *. sqrt (q *. (1. -. q)) /. t.delta)

let merge a b =
  if a.delta <> b.delta then invalid_arg "Tdigest.merge: delta mismatch";
  flush a;
  flush b;
  let t = create ~delta:a.delta () in
  if a.n + b.n > 0 then begin
    t.lo <- Float.min a.lo b.lo;
    t.hi <- Float.max a.hi b.hi;
    compress_into t ~total:(a.total +. b.total) ~cap:(a.n + b.n)
      (fun push ->
        let i = ref 0 and j = ref 0 in
        while !i < a.n || !j < b.n do
          if
            !j >= b.n
            || (!i < a.n && Float.compare a.means.(!i) b.means.(!j) <= 0)
          then begin
            push a.means.(!i) a.weights.(!i);
            incr i
          end
          else begin
            push b.means.(!j) b.weights.(!j);
            incr j
          end
        done)
  end;
  t
