(** Deterministic fabric sampler.

    An engine-timer loop snapshotting tracked links into a {!Series.store}
    at a fixed sim-time interval: per-link utilization over the interval,
    instantaneous qdisc occupancy (packets/bytes, per-band packets for
    banded disciplines), drops per interval, plus caller-supplied extra
    metrics (arbitration-plane state). Pure observation: enabling the
    sampler never changes simulation results, and the sample stream is a
    deterministic function of the run. See DESIGN.md §14. *)

type t

val start :
  Engine.t ->
  store:Series.store ->
  interval:float ->
  links:(string * Link.t) list ->
  ?extra:(unit -> (string * float) list) ->
  unit ->
  t
(** First sample fires at [interval]; [links] order fixes the metric
    emission order within a tick. [extra] returns fully-named metrics
    appended after the link metrics each tick. Raises [Invalid_argument]
    on a non-positive interval. *)

val stop : t -> unit
(** Stop sampling; the already-scheduled next tick fires but records
    nothing. *)

val ticks : t -> int
(** Sampling instants elapsed so far. *)
