(** Online mean/variance accumulator (Welford's algorithm).

    Constant memory in the sample count, numerically stable, and
    deterministic: feeding the same values in the same order always yields
    bit-identical state, and {!merge} is a pure function of its operands
    (Chan et al.'s parallel combination), so chunked accumulation is
    reproducible as long as the chunk order is fixed. *)

type t

val create : unit -> t

(** [add t x] folds [x] into the accumulator. Raises [Invalid_argument] on
    [nan] — a silent nan would poison the mean irrecoverably. *)
val add : t -> float -> unit

val count : t -> int

(** Running mean; [nan] when empty. *)
val mean : t -> float

(** Population variance (M2/n); [nan] when empty. *)
val variance : t -> float

(** [sqrt (variance t)]; [nan] when empty. *)
val stddev : t -> float

(** Smallest value seen; [nan] when empty. *)
val min : t -> float

(** Largest value seen; [nan] when empty. *)
val max : t -> float

(** [merge a b] is a fresh accumulator equivalent to feeding [a]'s stream
    then [b]'s. Deterministic in operand order; neither operand is
    mutated. *)
val merge : t -> t -> t
