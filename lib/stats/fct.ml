type record = {
  flow : int;
  size_pkts : int;
  start_time : float;
  fct : float;
  deadline : float option;
  censored : bool;
  ideal : float option;
  task : int option;
  fluid : bool;
      (* hybrid fidelity tag: the classifier marked this flow fluid-eligible
         (part of its bytes may have been advanced analytically). Always
         false outside hybrid-configured runs. *)
}

(* Streaming aggregates: constant memory in the flow count. Completed
   (non-censored) FCTs and slowdowns each get an exact Welford accumulator
   plus a t-digest for quantiles; a seeded reservoir of whole records is
   the exact-sample fallback; deadline and task aggregates are maintained
   incrementally (both are exact). No closures anywhere: the whole value
   must survive Result_codec's Marshal round-trip. *)
type stream = {
  fcts : Welford.t;
  fct_sketch : Tdigest.t;
  slow : Welford.t;
  slow_sketch : Tdigest.t;
  sample : record Reservoir.t;
  mutable deadline_met : int;
  mutable deadline_total : int;
  (* task id -> (first member start, last member end, any member censored) *)
  tasks : (int, float * float * bool) Hashtbl.t;
}

type store = Exact of { mutable records : record list } | Stream of stream
type t = { store : store; mutable n : int; mutable censored_n : int }

let create () = { store = Exact { records = [] }; n = 0; censored_n = 0 }

let default_reservoir = 2048
let default_delta = 200.
let default_seed = 0x7a5e

let create_streaming ?(reservoir = default_reservoir) ?(delta = default_delta)
    ?(seed = default_seed) () =
  {
    store =
      Stream
        {
          fcts = Welford.create ();
          fct_sketch = Tdigest.create ~delta ();
          slow = Welford.create ();
          slow_sketch = Tdigest.create ~delta ();
          sample = Reservoir.create ~k:reservoir ~seed;
          deadline_met = 0;
          deadline_total = 0;
          tasks = Hashtbl.create 16;
        };
    n = 0;
    censored_n = 0;
  }

let mode t = match t.store with Exact _ -> `Exact | Stream _ -> `Streaming

let stream_observe s r =
  Reservoir.add s.sample r;
  (match r.deadline with
  | Some d ->
      s.deadline_total <- s.deadline_total + 1;
      if (not r.censored) && r.fct <= d then s.deadline_met <- s.deadline_met + 1
  | None -> ());
  if not r.censored then begin
    Welford.add s.fcts r.fct;
    Tdigest.add s.fct_sketch r.fct;
    match r.ideal with
    | Some ideal when ideal > 0. ->
        Welford.add s.slow (r.fct /. ideal);
        Tdigest.add s.slow_sketch (r.fct /. ideal)
    | _ -> ()
  end;
  match r.task with
  | None -> ()
  | Some task ->
      let first_start, last_end, censored =
        try Hashtbl.find s.tasks task
        with Not_found -> (infinity, neg_infinity, false)
      in
      Hashtbl.replace s.tasks task
        ( Float.min first_start r.start_time,
          Float.max last_end (r.start_time +. r.fct),
          censored || r.censored )

let add_record t r =
  (match t.store with
  | Exact e -> e.records <- r :: e.records
  | Stream s -> stream_observe s r);
  t.n <- t.n + 1;
  if r.censored then t.censored_n <- t.censored_n + 1

let add t ~flow ~size_pkts ~start_time ~fct ?deadline ?(censored = false)
    ?ideal ?task ?(fluid = false) () =
  add_record t
    { flow; size_pkts; start_time; fct; deadline; censored; ideal; task; fluid }

let records t =
  match t.store with
  | Exact e -> List.rev e.records
  | Stream s ->
      (* The reservoir's retained sample, in flow order for stable output. *)
      List.sort
        (fun a b -> Int.compare a.flow b.flow)
        (Reservoir.sample s.sample)

let count t = t.n
let censored_count t = t.censored_n

let completed_fcts t =
  match t.store with
  | Exact e ->
      List.filter_map (fun r -> if r.censored then None else Some r.fct) e.records
  | Stream _ ->
      List.filter_map
        (fun r -> if r.censored then None else Some r.fct)
        (records t)

let afct t =
  match t.store with
  | Exact _ -> Summary.mean (completed_fcts t)
  | Stream s -> Welford.mean s.fcts

let percentile t p =
  match t.store with
  | Exact _ -> Summary.percentile p (completed_fcts t)
  | Stream s ->
      if p < 0. || p > 100. then
        invalid_arg "Fct.percentile: p out of range";
      if Tdigest.count s.fct_sketch = 0 then nan
      else Tdigest.quantile s.fct_sketch (p /. 100.)

(* Short-flow accuracy metric for the hybrid engine: a percentile over the
   completed flows the classifier left entirely at packet level. The tag is
   assigned by the classifier (not by what the engine actually did), so a
   hybrid run and a pure packet run with the same threshold cut the same
   subset and their percentiles are directly comparable. Exact mode scans
   all records; streaming mode estimates from the reservoir sample. *)
let packet_tier_percentile t p =
  Summary.percentile p
    (List.filter_map
       (fun r -> if r.censored || r.fluid then None else Some r.fct)
       (records t))

let cdf ?(points = 100) t =
  match t.store with
  | Exact _ -> Summary.cdf ~points (completed_fcts t)
  | Stream s ->
      if Tdigest.count s.fct_sketch = 0 then []
      else
        List.init points (fun i ->
            let q = float_of_int (i + 1) /. float_of_int points in
            (Tdigest.quantile s.fct_sketch q, q))

let quantile_rank_error t p =
  match t.store with
  | Exact _ -> 0.
  | Stream s ->
      if Tdigest.count s.fct_sketch = 0 then nan
      else Tdigest.rank_error s.fct_sketch (p /. 100.)

let deadline_met_fraction t =
  match t.store with
  | Exact e ->
      let met, total =
        List.fold_left
          (fun (met, total) r ->
            match r.deadline with
            | None -> (met, total)
            | Some d ->
                let ok = (not r.censored) && r.fct <= d in
                ((met + if ok then 1 else 0), total + 1))
          (0, 0) e.records
      in
      if total = 0 then nan else float_of_int met /. float_of_int total
  | Stream s ->
      if s.deadline_total = 0 then nan
      else float_of_int s.deadline_met /. float_of_int s.deadline_total

let bucket_fcts t ~lo ~hi =
  let from_records rs =
    List.filter_map
      (fun r ->
        if (not r.censored) && r.size_pkts >= lo && r.size_pkts < hi then
          Some r.fct
        else None)
      rs
  in
  match t.store with
  | Exact e -> from_records e.records
  | Stream _ -> from_records (records t)

let bucket_afct t ~lo ~hi = Summary.mean (bucket_fcts t ~lo ~hi)
let bucket_count t ~lo ~hi = List.length (bucket_fcts t ~lo ~hi)

let slowdowns t =
  let from_records rs =
    List.filter_map
      (fun r ->
        match r.ideal with
        | Some ideal when (not r.censored) && ideal > 0. -> Some (r.fct /. ideal)
        | _ -> None)
      rs
  in
  match t.store with
  | Exact e -> from_records e.records
  | Stream _ -> from_records (records t)

let mean_slowdown t =
  match t.store with
  | Exact _ -> Summary.mean (slowdowns t)
  | Stream s -> Welford.mean s.slow

let p99_slowdown t =
  match t.store with
  | Exact _ -> (
      match slowdowns t with [] -> nan | xs -> Summary.percentile 99. xs)
  | Stream s ->
      if Tdigest.count s.slow_sketch = 0 then nan
      else Tdigest.quantile s.slow_sketch 0.99

let task_times_of_tbl groups =
  Det_tbl.fold
    (fun _ (first_start, last_end, censored) acc ->
      if censored then acc else (last_end -. first_start) :: acc)
    groups []

let task_completion_times t =
  match t.store with
  | Exact e ->
      let groups = Hashtbl.create 16 in
      List.iter
        (fun r ->
          match r.task with
          | None -> ()
          | Some task ->
              let prev =
                try Hashtbl.find groups task
                with Not_found -> (infinity, neg_infinity, false)
              in
              let first_start, last_end, censored = prev in
              Hashtbl.replace groups task
                ( Float.min first_start r.start_time,
                  Float.max last_end (r.start_time +. r.fct),
                  censored || r.censored ))
        e.records;
      task_times_of_tbl groups
  | Stream s -> task_times_of_tbl s.tasks

type sketch_info = {
  sk_delta : float;
  sk_centroids : int;
  sk_reservoir_len : int;
  sk_reservoir_seen : int;
}

let sketch_info t =
  match t.store with
  | Exact _ -> None
  | Stream s ->
      Some
        {
          sk_delta = Tdigest.delta s.fct_sketch;
          sk_centroids = List.length (Tdigest.centroids s.fct_sketch);
          sk_reservoir_len = List.length (Reservoir.sample s.sample);
          sk_reservoir_seen = Reservoir.seen s.sample;
        }

let merge a b =
  match (a.store, b.store) with
  | Exact ea, Exact eb ->
      (* Internal lists are newest-first; concatenating b-then-a yields
         a's records followed by b's once [records] reverses. *)
      {
        store = Exact { records = eb.records @ ea.records };
        n = a.n + b.n;
        censored_n = a.censored_n + b.censored_n;
      }
  | Stream sa, Stream sb ->
      let tasks = Hashtbl.copy sa.tasks in
      Det_tbl.iter
        (fun task (fs, le, c) ->
          let fs', le', c' =
            try Hashtbl.find tasks task
            with Not_found -> (infinity, neg_infinity, false)
          in
          Hashtbl.replace tasks task
            (Float.min fs fs', Float.max le le', c || c'))
        sb.tasks;
      {
        store =
          Stream
            {
              fcts = Welford.merge sa.fcts sb.fcts;
              fct_sketch = Tdigest.merge sa.fct_sketch sb.fct_sketch;
              slow = Welford.merge sa.slow sb.slow;
              slow_sketch = Tdigest.merge sa.slow_sketch sb.slow_sketch;
              sample = Reservoir.merge sa.sample sb.sample;
              deadline_met = sa.deadline_met + sb.deadline_met;
              deadline_total = sa.deadline_total + sb.deadline_total;
              tasks;
            };
        n = a.n + b.n;
        censored_n = a.censored_n + b.censored_n;
      }
  | Exact _, Stream _ | Stream _, Exact _ ->
      invalid_arg "Fct.merge: cannot merge exact and streaming collections"
