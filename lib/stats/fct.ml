type record = {
  flow : int;
  size_pkts : int;
  start_time : float;
  fct : float;
  deadline : float option;
  censored : bool;
  ideal : float option;
  task : int option;
}

type t = { mutable records : record list; mutable n : int; mutable censored_n : int }

let create () = { records = []; n = 0; censored_n = 0 }

let add t ~flow ~size_pkts ~start_time ~fct ?deadline ?(censored = false)
    ?ideal ?task () =
  t.records <-
    { flow; size_pkts; start_time; fct; deadline; censored; ideal; task }
    :: t.records;
  t.n <- t.n + 1;
  if censored then t.censored_n <- t.censored_n + 1

let records t = List.rev t.records
let count t = t.n
let censored_count t = t.censored_n

let completed_fcts t =
  List.filter_map
    (fun r -> if r.censored then None else Some r.fct)
    t.records

let afct t = Summary.mean (completed_fcts t)
let percentile t p = Summary.percentile p (completed_fcts t)

let deadline_met_fraction t =
  let met, total =
    List.fold_left
      (fun (met, total) r ->
        match r.deadline with
        | None -> (met, total)
        | Some d ->
            let ok = (not r.censored) && r.fct <= d in
            ((met + if ok then 1 else 0), total + 1))
      (0, 0) t.records
  in
  if total = 0 then nan else float_of_int met /. float_of_int total

let bucket_fcts t ~lo ~hi =
  List.filter_map
    (fun r ->
      if (not r.censored) && r.size_pkts >= lo && r.size_pkts < hi then
        Some r.fct
      else None)
    t.records

let bucket_afct t ~lo ~hi = Summary.mean (bucket_fcts t ~lo ~hi)
let bucket_count t ~lo ~hi = List.length (bucket_fcts t ~lo ~hi)

let slowdowns t =
  List.filter_map
    (fun r ->
      match r.ideal with
      | Some ideal when (not r.censored) && ideal > 0. -> Some (r.fct /. ideal)
      | _ -> None)
    t.records

let mean_slowdown t = Summary.mean (slowdowns t)

let p99_slowdown t =
  match slowdowns t with [] -> nan | xs -> Summary.percentile 99. xs

let task_completion_times t =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r.task with
      | None -> ()
      | Some task ->
          let prev =
            try Hashtbl.find groups task with Not_found -> (infinity, neg_infinity, false)
          in
          let first_start, last_end, censored = prev in
          Hashtbl.replace groups task
            ( Float.min first_start r.start_time,
              Float.max last_end (r.start_time +. r.fct),
              censored || r.censored ))
    t.records;
  Det_tbl.fold
    (fun _ (first_start, last_end, censored) acc ->
      if censored then acc else (last_end -. first_start) :: acc)
    groups []
