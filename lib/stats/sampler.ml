(* Deterministic fabric sampler: an engine-timer loop that snapshots every
   tracked link at a fixed sim-time interval into a Series store. Sampling
   is pure observation — it never mutates link or queue state — so enabling
   it cannot perturb simulation results; it only adds "sampler" events to
   the schedule. Metric names are precomputed per link at [start] so the
   per-tick cost is field reads and store appends, with no allocation of
   metric strings on the hot path.

   Per directed link [label] (caller-chosen, e.g. "3-7"):
     link.<label>.util        bytes transmitted this interval / capacity
     q.<label>.pkts           instantaneous qdisc occupancy, packets
     q.<label>.bytes          instantaneous qdisc occupancy, bytes
     q.<label>.drops          drops recorded this interval
     q.<label>.band<i>.pkts   per-band occupancy (banded disciplines only)

   Plus whatever the [extra] callback reports (full metric names), sampled
   at the same instants — the runner uses it for arbitration-plane state. *)

type tracked = {
  link : Link.t;
  util_m : string;
  pkts_m : string;
  bytes_m : string;
  drops_m : string;
  band_ms : string array;
  mutable last_bytes : int;
  mutable last_drops : int;
}

type t = {
  engine : Engine.t;
  store : Series.store;
  interval : float;
  links : tracked list;
  extra : unit -> (string * float) list;
  mutable running : bool;
  mutable ticks : int;
}

let track (label, link) =
  let disc = Link.qdisc link in
  {
    link;
    util_m = Printf.sprintf "link.%s.util" label;
    pkts_m = Printf.sprintf "q.%s.pkts" label;
    bytes_m = Printf.sprintf "q.%s.bytes" label;
    drops_m = Printf.sprintf "q.%s.drops" label;
    band_ms =
      Array.init
        (Array.length (disc.Queue_disc.bands ()))
        (Printf.sprintf "q.%s.band%d.pkts" label);
    last_bytes = Link.bytes_txed link;
    last_drops = disc.Queue_disc.drops ();
  }

let sample_link t tr now =
  let bytes = Link.bytes_txed tr.link in
  let delta = bytes - tr.last_bytes in
  tr.last_bytes <- bytes;
  let cap_bytes = Link.rate_bps tr.link *. t.interval /. 8. in
  let util =
    if cap_bytes <= 0. then 0.
    else Float.min 1. (float_of_int delta /. cap_bytes)
  in
  Series.add t.store ~t:now ~metric:tr.util_m ~v:util;
  let disc = Link.qdisc tr.link in
  Series.add t.store ~t:now ~metric:tr.pkts_m
    ~v:(float_of_int (disc.Queue_disc.pkts ()));
  Series.add t.store ~t:now ~metric:tr.bytes_m
    ~v:(float_of_int (disc.Queue_disc.bytes ()));
  let drops = disc.Queue_disc.drops () in
  Series.add t.store ~t:now ~metric:tr.drops_m
    ~v:(float_of_int (drops - tr.last_drops));
  tr.last_drops <- drops;
  let bands = disc.Queue_disc.bands () in
  Array.iteri
    (fun i (pk, _bytes) ->
      Series.add t.store ~t:now ~metric:tr.band_ms.(i) ~v:(float_of_int pk))
    bands

let rec tick t () =
  if t.running then begin
    let now = Engine.now t.engine in
    t.ticks <- t.ticks + 1;
    List.iter (fun tr -> sample_link t tr now) t.links;
    List.iter
      (fun (metric, v) -> Series.add t.store ~t:now ~metric ~v)
      (t.extra ());
    Engine.schedule ~label:"sampler" t.engine ~delay:t.interval (tick t)
  end

let start engine ~store ~interval ~links ?(extra = fun () -> []) () =
  if interval <= 0. then
    invalid_arg "Sampler.start: interval must be positive";
  let t =
    {
      engine;
      store;
      interval;
      links = List.map track links;
      extra;
      running = true;
      ticks = 0;
    }
  in
  Engine.schedule ~label:"sampler" engine ~delay:interval (tick t);
  t

let stop t = t.running <- false
let ticks t = t.ticks
