type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  if Float.is_nan x then invalid_arg "Welford.add: nan sample";
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n = 0 then nan else t.m2 /. float_of_int t.n
let stddev t = if t.n = 0 then nan else sqrt (variance t)
let min t = if t.n = 0 then nan else t.lo
let max t = if t.n = 0 then nan else t.hi

(* Chan, Golub & LeVeque's pairwise update: exact in n, stable in m2. *)
let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = na +. nb in
    let delta = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }
  end
