(** Small numeric helpers over float samples. *)

val mean : float list -> float

(** [percentile p xs] with [p] in [0, 100]; nearest-rank on the sample
    sorted with [Float.compare] (total order: nans sort first). [nan] on
    the empty list — an all-censored collection is a degenerate result,
    not a programming error. Raises [Invalid_argument] only when [p] is
    out of range. *)
val percentile : float -> float list -> float

val min : float list -> float
val max : float list -> float

(** Empirical CDF: for each of [points] evenly spaced quantiles q in (0,1],
    the pair [(value at q, q)]. Uses the same nearest-rank convention as
    {!percentile}, so [cdf ~points:100] at q = 0.99 equals
    [percentile 99.]. *)
val cdf : ?points:int -> float list -> (float * float) list
