let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Nearest-rank index for quantile q in (0,1] over n sorted samples,
   clamped to the valid range. [percentile] and [cdf] share this so the two
   can never disagree about where a quantile falls. *)
let nearest_rank_idx ~n q =
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1))

(* Float.compare, not polymorphic compare: a total order with defined nan
   placement (nans sort first), and no generic-compare dispatch in the hot
   sort. *)
let sorted_array xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  match xs with
  | [] -> nan
  | xs ->
      let a = sorted_array xs in
      a.(nearest_rank_idx ~n:(Array.length a) (p /. 100.))

let min = function
  | [] -> nan
  | x :: xs -> List.fold_left Stdlib.min x xs

let max = function
  | [] -> nan
  | x :: xs -> List.fold_left Stdlib.max x xs

let cdf ?(points = 100) xs =
  match xs with
  | [] -> []
  | xs ->
      let a = sorted_array xs in
      let n = Array.length a in
      List.init points (fun i ->
          let q = float_of_int (i + 1) /. float_of_int points in
          (a.(nearest_rank_idx ~n q), q))
