type t = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (float * float list) list;
}

let make ~title ~x_label ~columns ~rows =
  List.iter
    (fun (_, ys) ->
      if List.length ys <> List.length columns then
        invalid_arg "Series.make: row arity mismatch")
    rows;
  { title; x_label; columns; rows }

let render_table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  print_endline (line header);
  print_endline sep;
  List.iter (fun row -> print_endline (line row)) rows

let print ?(fmt_y = Printf.sprintf "%.3f") t =
  Printf.printf "\n== %s ==\n" t.title;
  let header = t.x_label :: t.columns in
  let rows =
    List.map
      (fun (x, ys) -> Printf.sprintf "%g" x :: List.map fmt_y ys)
      t.rows
  in
  render_table header rows;
  print_newline ()

let print_table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  render_table header rows;
  print_newline ()

(* Bounded time-series store: a flat ring of (time, metric, value) samples
   fed by the fabric sampler. The ring keeps the most recent [capacity]
   samples; everything is also forwarded to the optional [spill] callback as
   it arrives, so a JSONL spill file sees every sample even when the
   in-memory window wraps. *)

type sample = { t : float; metric : string; v : float }

type store = {
  cap : int;
  ring : sample array;
  mutable next : int;
  mutable seen : int;
  spill : (sample -> unit) option;
}

let nil_sample = { t = 0.; metric = ""; v = 0. }

let store ?(capacity = 65536) ?spill () =
  if capacity <= 0 then invalid_arg "Series.store: capacity must be positive";
  { cap = capacity; ring = Array.make capacity nil_sample; next = 0; seen = 0; spill }

let add st ~t ~metric ~v =
  let s = { t; metric; v } in
  (match st.spill with Some f -> f s | None -> ());
  st.ring.(st.next) <- s;
  st.next <- (st.next + 1) mod st.cap;
  st.seen <- st.seen + 1

let seen st = st.seen
let capacity st = st.cap
let dropped st = max 0 (st.seen - st.cap)

let samples st =
  let n = min st.seen st.cap in
  let start = (st.next - n + st.cap) mod st.cap in
  List.init n (fun i -> st.ring.((start + i) mod st.cap))

let sample_json { t; metric; v } =
  let num x =
    if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
      "null"
    else Printf.sprintf "%.17g" x
  in
  Printf.sprintf {|{"t":%s,"metric":"%s","v":%s}|} (num t) metric (num v)
