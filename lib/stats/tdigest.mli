(** Deterministic merging t-digest (Dunning & Ertl) for bounded-memory
    quantile estimation.

    Values are buffered and periodically compressed into at most
    O(delta) weighted centroids under the arcsine ("k1") scale function,
    which concentrates resolution in the tails. Memory is bounded by the
    compression parameter [delta] and the internal buffer, independent of
    how many values are added.

    {b Error bound.} The quantile-{e rank} error at quantile [q] is bounded
    by [rank_error t q] = max(1/n, 4π·√(q(1−q))/delta): the value returned
    by [quantile t q] is guaranteed to lie between the exact quantiles at
    ranks [q ± rank_error]. (The 4π constant is the conservative single-pass
    merging-digest bound — clusters may reach twice the k1 size limit.)
    With the default [delta = 200] that is ≤ 0.63% of rank at p99 and
    ≤ 0.2% at p99.9, tightening toward the extremes; the median is the
    worst case at ≤ 3.2%.

    {b Determinism.} All state transitions are pure float arithmetic over
    arrays ordered by [Float.compare]; the same insertion sequence yields
    bit-identical digests, and {!merge} is deterministic in operand order.
    There is no randomness anywhere in the structure. *)

type t

(** [create ?delta ()] returns an empty digest. [delta] (default 200) is
    the compression: larger is more accurate and more memory. Raises
    [Invalid_argument] if [delta < 10]. *)
val create : ?delta:float -> unit -> t

(** [add t x] inserts [x] with unit weight. Raises [Invalid_argument] on
    [nan]. Amortised O(log delta); worst case one buffer compression. *)
val add : t -> float -> unit

(** Number of values added. *)
val count : t -> int

val delta : t -> float

(** [quantile t q] with [q] in [0, 1]: an estimate of the [q]-quantile,
    clamped to the exact observed [min, max]. [nan] when empty. Raises
    [Invalid_argument] if [q] is outside [0, 1]. *)
val quantile : t -> float -> float

(** [rank_error t q] is the documented bound on the rank error of
    [quantile t q] (see above); [nan] when empty. *)
val rank_error : t -> float -> float

(** Exact smallest / largest value added; [nan] when empty. *)
val min : t -> float

val max : t -> float

(** [merge a b] is a fresh digest summarising both inputs' streams.
    Requires equal [delta] ([Invalid_argument] otherwise). Deterministic in
    operand order; the operands are canonicalised (buffered values
    compressed) but semantically unchanged. *)
val merge : t -> t -> t

(** Current centroids as [(mean, weight)] in nondecreasing mean order,
    after compressing any buffered values. For tests and diagnostics. *)
val centroids : t -> (float * float) list
