type 'a t = {
  k : int;
  seed : int;
  rng : Rng.t;
  mutable items : 'a array;
  mutable len : int;
  mutable seen : int;
}

let create ~k ~seed =
  if k <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
  { k; seed; rng = Rng.create seed; items = [||]; len = 0; seen = 0 }

let add t x =
  t.seen <- t.seen + 1;
  if t.len < t.k then begin
    if t.len = Array.length t.items then begin
      let cap = Stdlib.min t.k (Stdlib.max 8 (2 * t.len)) in
      let items = Array.make cap x in
      Array.blit t.items 0 items 0 t.len;
      t.items <- items
    end;
    t.items.(t.len) <- x;
    t.len <- t.len + 1
  end
  else begin
    (* Algorithm R: element [seen] replaces a random slot with prob k/seen.
       One draw per overflow element keeps the stream position / RNG state
       correspondence exact, hence deterministic merges of reruns. *)
    let j = Rng.int t.rng t.seen in
    if j < t.k then t.items.(j) <- x
  end

let sample t = Array.to_list (Array.sub t.items 0 t.len)
let seen t = t.seen
let capacity t = t.k

let merge a b =
  if a.k <> b.k then invalid_arg "Reservoir.merge: capacity mismatch";
  let seed = a.seed lxor (b.seed * 0x9E3779B9) lxor 0x5DEECE66 in
  let t = create ~k:a.k ~seed in
  let rng = Rng.create seed in
  let total = a.seen + b.seen in
  let ia = ref 0 and ib = ref 0 in
  (* Fill slots by a population-weighted coin per slot, falling back to
     whichever side still has elements. Approximately uniform; exactly
     deterministic. *)
  while t.len < t.k && (!ia < a.len || !ib < b.len) do
    let from_a =
      if !ia >= a.len then false
      else if !ib >= b.len then true
      else if total = 0 then true
      else Rng.int rng total < a.seen
    in
    let x =
      if from_a then begin
        let x = a.items.(!ia) in
        incr ia;
        x
      end
      else begin
        let x = b.items.(!ib) in
        incr ib;
        x
      end
    in
    t.items <-
      (if t.len = Array.length t.items then begin
         let cap = Stdlib.min t.k (Stdlib.max 8 (2 * t.len)) in
         let items = Array.make cap x in
         Array.blit t.items 0 items 0 t.len;
         items
       end
       else t.items);
    t.items.(t.len) <- x;
    t.len <- t.len + 1
  done;
  t.seen <- total;
  t
