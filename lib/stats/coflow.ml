(* Aggregation of coflow (task-group) completions into all-workers-finish
   metrics: the coflow completion time (CCT) is max(start + fct) over the
   members minus the group's first start, a group is censored when any
   member is, and the group deadline is met when every member finished and
   the CCT is within the (shared) deadline.

   Moments and extremes come from a Welford accumulator, quantiles from a
   t-digest over per-group CCTs. Like Attrib, the structure is closure-free
   so it survives Marshal across the fork-parallel runner, and [merge] is
   deterministic in operand order (the runner finalises groups in sorted
   task-id order, so t-digest insertion order is byte-stable too). *)

type t = {
  cct : Welford.t;  (* over completed (non-censored) groups *)
  digest : Tdigest.t;
  mutable flows : int;  (* member flows across all observed groups *)
  mutable censored : int;  (* groups with at least one censored member *)
  mutable deadline_met : int;
  mutable deadline_total : int;  (* groups that carried a deadline *)
}

let create () =
  {
    cct = Welford.create ();
    digest = Tdigest.create ();
    flows = 0;
    censored = 0;
    deadline_met = 0;
    deadline_total = 0;
  }

let observe t ~cct ~width ~censored ~deadline =
  t.flows <- t.flows + width;
  if censored then t.censored <- t.censored + 1
  else begin
    Welford.add t.cct cct;
    Tdigest.add t.digest cct
  end;
  match deadline with
  | None -> ()
  | Some d ->
      t.deadline_total <- t.deadline_total + 1;
      if (not censored) && cct <= d then t.deadline_met <- t.deadline_met + 1

let completed t = Welford.count t.cct
let coflows t = completed t + t.censored
let censored t = t.censored
let flows t = t.flows
let cct_mean t = Welford.mean t.cct
let cct_quantile t q = Tdigest.quantile t.digest q
let deadline_met t = t.deadline_met
let deadline_total t = t.deadline_total

let deadline_met_frac t =
  if t.deadline_total = 0 then nan
  else float_of_int t.deadline_met /. float_of_int t.deadline_total

let merge a b =
  {
    cct = Welford.merge a.cct b.cct;
    digest = Tdigest.merge a.digest b.digest;
    flows = a.flows + b.flows;
    censored = a.censored + b.censored;
    deadline_met = a.deadline_met + b.deadline_met;
    deadline_total = a.deadline_total + b.deadline_total;
  }

(* JSON with fixed key order and %.17g floats (nan -> null), matching the
   conventions of Result_codec so the coflow object slots into codec v8. *)

let json_float x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.17g" x

let to_json t =
  let n = coflows t in
  if n = 0 then {|{"coflows":0}|}
  else
    Printf.sprintf
      {|{"coflows":%d,"completed":%d,"censored":%d,"flows":%d,"cct_mean":%s,"cct_min":%s,"cct_max":%s,"cct_p50":%s,"cct_p90":%s,"cct_p99":%s,"deadline_met":%d,"deadline_total":%d,"deadline_met_frac":%s}|}
      n (completed t) t.censored t.flows
      (json_float (Welford.mean t.cct))
      (json_float (Welford.min t.cct))
      (json_float (Welford.max t.cct))
      (json_float (Tdigest.quantile t.digest 0.5))
      (json_float (Tdigest.quantile t.digest 0.9))
      (json_float (Tdigest.quantile t.digest 0.99))
      t.deadline_met t.deadline_total
      (json_float (deadline_met_frac t))
