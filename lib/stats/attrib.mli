(** Aggregation of per-flow delay-attribution records ({!Delay.record})
    into per-band, per-component summaries (Welford moments + t-digest
    quantiles + running sums).

    Bands by flow size in segments: ["all"], ["short"] (< 10), ["medium"]
    (10–99), ["long"] (>= 100). Components, in fixed order:
    [serialization], [propagation], [queueing], [arb_wait], [rto_stall],
    plus the whole [fct] aggregated alongside for reconciliation.

    Closure-free (Marshal-safe across the fork runner); {!merge} is
    deterministic in operand order. *)

type t

val create : unit -> t
val add : t -> size_pkts:int -> Delay.record -> unit

val flows : t -> int
(** Number of records added. *)

val merge : t -> t -> t
(** Fresh aggregate equivalent to feeding both inputs' streams. *)

val component_sum : t -> band:string -> component:string -> float
(** Running sum of one component over one band; [nan] for unknown names. *)

val components : string array
(** Component names in JSON emission order. *)

val to_json : t -> string
(** Deterministic JSON: [{"bands":[{"band":..,"flows":..,"components":
    {"serialization":{"count":..,"sum":..,"mean":..,"min":..,"max":..,
    "p50":..,"p90":..,"p99":..},...}},...]}]. Floats as [%.17g], nan as
    [null]; empty components collapse to [{"count":0}]. *)
