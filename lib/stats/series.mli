(** Pretty-printing of benchmark series as aligned text tables, matching the
    "one row per x-value, one column per scheme" layout of the paper's
    figures. *)

type t = {
  title : string;
  x_label : string;
  columns : string list;  (** column (scheme) names *)
  rows : (float * float list) list;  (** x value, one y per column *)
}

val make :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> t

(** Render with a given y formatter (defaults to [%.3f]). *)
val print : ?fmt_y:(float -> string) -> t -> unit

(** Render a raw string table (for Tables 1-3). *)
val print_table : title:string -> header:string list -> string list list -> unit

(** {1 Bounded time-series store}

    Backing storage for the fabric sampler ({!Sampler}): a ring of the most
    recent [capacity] (time, metric, value) samples. Every sample is also
    forwarded to the optional [spill] callback on arrival, so a JSONL spill
    sees the full stream even after the in-memory window wraps. *)

type sample = { t : float; metric : string; v : float }
type store

val store : ?capacity:int -> ?spill:(sample -> unit) -> unit -> store
(** Default capacity 65536. Raises [Invalid_argument] on capacity <= 0. *)

val add : store -> t:float -> metric:string -> v:float -> unit

val samples : store -> sample list
(** Retained window, oldest first. *)

val seen : store -> int
(** Total samples ever added. *)

val dropped : store -> int
(** Samples evicted from the in-memory window: [max 0 (seen - capacity)]. *)

val capacity : store -> int

val sample_json : sample -> string
(** One JSONL line: [{"t":..,"metric":"..","v":..}], floats as [%.17g],
    nan/inf as [null]. *)
