(** Flow-completion-time collection.

    Two storage modes behind one interface:

    - {b exact} ({!create}, the default): every record is retained and each
      metric is computed from the full sample, byte-identical to the
      historical behaviour;
    - {b streaming} ({!create_streaming}): constant memory in the flow
      count. Means/variances are exact ({!Welford}), quantiles come from a
      {!Tdigest} with the documented rank-error bound
      ({!quantile_rank_error}), deadline and task aggregates are exact, and
      a seeded {!Reservoir} of whole records is retained as the
      exact-sample fallback ({!records} returns it).

    Both modes are deterministic and free of closures, so a collection
    survives [Result_codec]'s serialisation in either mode. *)

type record = {
  flow : int;
  size_pkts : int;
  start_time : float;
  fct : float;  (** seconds; for censored flows, time until the horizon *)
  deadline : float option;  (** relative deadline, if any *)
  censored : bool;  (** did not finish before the simulation horizon *)
  ideal : float option;
      (** the flow's zero-load FCT (base RTT + serialization), if known *)
  task : int option;  (** task (query) id, for task-completion metrics *)
  fluid : bool;
      (** hybrid fidelity tag: the classifier marked this flow
          fluid-eligible (part of its bytes may have been advanced
          analytically). Always [false] outside hybrid-configured runs. *)
}

type t

(** Exact collection: retains every record. *)
val create : unit -> t

(** Streaming collection: bounded memory. [reservoir] (default 2048) is the
    record-sample capacity, [delta] (default 200) the t-digest compression,
    [seed] the reservoir seed. *)
val create_streaming :
  ?reservoir:int -> ?delta:float -> ?seed:int -> unit -> t

val mode : t -> [ `Exact | `Streaming ]

val add :
  t ->
  flow:int ->
  size_pkts:int ->
  start_time:float ->
  fct:float ->
  ?deadline:float ->
  ?censored:bool ->
  ?ideal:float ->
  ?task:int ->
  ?fluid:bool ->
  unit ->
  unit

(** [add] with the record built by the caller (the runner uses this so it
    can also spill the record to a streaming sink). *)
val add_record : t -> record -> unit

(** Exact mode: every record, in insertion order. Streaming mode: the
    reservoir's retained sample, sorted by flow id. *)
val records : t -> record list

val count : t -> int
val censored_count : t -> int

(** FCTs (seconds) of completed, non-censored flows. Streaming mode:
    drawn from the reservoir sample, not the full population. *)
val completed_fcts : t -> float list

(** Average FCT over non-censored flows (seconds); [nan] if none
    completed. Exact in both modes (streaming uses Welford). *)
val afct : t -> float

(** [percentile t p] over non-censored flows; [nan] if none completed
    (e.g. an all-censored high-load run). Exact mode: nearest rank.
    Streaming mode: t-digest estimate, within {!quantile_rank_error} of
    the exact rank. Raises [Invalid_argument] if [p] is outside
    [0, 100]. *)
val percentile : t -> float -> float

(** [packet_tier_percentile t p] over completed flows the classifier left
    entirely at packet level ([not fluid]); [nan] if there are none. The
    hybrid accuracy metric: the tag follows the classifier decision, not
    engine behaviour, so a hybrid run and a pure packet run with the same
    threshold cut the identical subset. Streaming mode estimates from the
    reservoir sample. *)
val packet_tier_percentile : t -> float -> float

(** [cdf ?points t]: the completed-FCT distribution at [points] evenly
    spaced quantiles, nearest-rank in exact mode and sketch-interpolated
    in streaming mode; [[]] if no flow completed. *)
val cdf : ?points:int -> t -> (float * float) list

(** The rank-error bound on [percentile t p]: [0.] in exact mode, the
    t-digest bound (see {!Tdigest.rank_error}) in streaming mode ([nan]
    if empty). *)
val quantile_rank_error : t -> float -> float

(** Fraction of deadline-carrying flows that finished within their deadline
    (censored flows count as missed). [nan] if no flow had a deadline.
    Exact in both modes. *)
val deadline_met_fraction : t -> float

(** Average FCT of completed flows whose size (in segments) lies in
    [lo, hi). [nan] if the bucket is empty. Streaming mode: estimated from
    the reservoir sample. *)
val bucket_afct : t -> lo:int -> hi:int -> float

(** Number of completed flows in the size bucket [lo, hi). Streaming mode:
    a reservoir-sample count, not a population count. *)
val bucket_count : t -> lo:int -> hi:int -> int

(** Mean slowdown (FCT / zero-load FCT) over completed flows that carry an
    [ideal]; [nan] if none do. Exact in both modes. *)
val mean_slowdown : t -> float

(** 99th-percentile slowdown; [nan] if no flow carries an [ideal].
    Streaming mode: t-digest estimate. *)
val p99_slowdown : t -> float

(** Completion time of each task (last member finish minus first member
    start), over tasks with no censored member. Exact in both modes
    (streaming maintains per-task aggregates incrementally; memory is
    bounded by the task count, not the flow count). *)
val task_completion_times : t -> float list

(** Sketch parameters of a streaming collection, for result export. *)
type sketch_info = {
  sk_delta : float;
  sk_centroids : int;
  sk_reservoir_len : int;
  sk_reservoir_seen : int;
}

(** [None] in exact mode. *)
val sketch_info : t -> sketch_info option

(** [merge a b]: a fresh collection equivalent to [a]'s stream followed by
    [b]'s. Deterministic in operand order; the sweep aggregator uses it to
    combine per-job collections. Raises [Invalid_argument] when one side is
    exact and the other streaming, or on sketch-parameter mismatch. *)
val merge : t -> t -> t
