type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int; dummy : 'a entry }

(* Slots >= len are dead and must not retain entries: a popped event closure
   can capture packets and whole flows, so a stale reference keeps them alive
   for the life of the simulation. Dead slots hold [dummy] instead. Its value
   field is an immediate int, never read (the same technique as the stdlib's
   Dynarray); reading it would be a bug in this module. *)
let make_dummy () = { time = nan; seq = min_int; value = Obj.magic 0 }

let create () = { arr = [||]; len = 0; dummy = make_dummy () }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.arr in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let narr = Array.make ncap t.dummy in
  Array.blit t.arr 0 narr 0 t.len;
  t.arr <- narr

let add t ~time ~seq value =
  let e = { time; seq; value } in
  if t.len = Array.length t.arr then grow t;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.arr.(!i) t.arr.(parent) then begin
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      t.arr.(t.len) <- t.dummy;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.len && less t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.arr.(!smallest) in
          t.arr.(!smallest) <- t.arr.(!i);
          t.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end
    else t.arr.(0) <- t.dummy;
    Some (top.time, top.value)
  end

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time
let size t = t.len
let is_empty t = t.len = 0
