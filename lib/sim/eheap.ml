(* Structure-of-arrays min-heap. [times] is an unboxed float array (OCaml
   flat-float-array representation), [seqs] an int array, [vals] the payload
   array; slot [i] of each array together forms one heap element. Key
   comparisons never dereference a boxed entry, and sift-up/down move a hole
   instead of swapping: each level costs three array writes instead of six.

   Slots >= len are dead and must not retain values: a popped event closure
   can capture packets and whole flows, so a stale reference keeps them
   alive for the life of the simulation. Dead value slots hold the
   caller-supplied [dummy]. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy () =
  { times = [||]; seqs = [||]; vals = [||]; len = 0; dummy }

let grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let ntimes = Array.make ncap nan in
  let nseqs = Array.make ncap 0 in
  let nvals = Array.make ncap t.dummy in
  Array.blit t.times 0 ntimes 0 t.len;
  Array.blit t.seqs 0 nseqs 0 t.len;
  Array.blit t.vals 0 nvals 0 t.len;
  t.times <- ntimes;
  t.seqs <- nseqs;
  t.vals <- nvals

let add t ~time ~seq v =
  if t.len = Array.length t.times then grow t;
  (* Sift the hole up from the new last slot; parents shift down into it. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = t.times.(p) in
    if time < pt || (time = pt && seq < t.seqs.(p)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- v

(* Sift the element [(time, seq, v)] down from the hole at [i], with [len]
   live slots. Shared by [pop_min] and the heapify pass in [compact]. *)
let sift_down t ~len ~time ~seq v i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= len then continue := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < len
          && (t.times.(r) < t.times.(l)
             || (t.times.(r) = t.times.(l) && t.seqs.(r) < t.seqs.(l)))
        then r
        else l
      in
      let ct = t.times.(c) in
      if ct < time || (ct = time && t.seqs.(c) < seq) then begin
        t.times.(!i) <- ct;
        t.seqs.(!i) <- t.seqs.(c);
        t.vals.(!i) <- t.vals.(c);
        i := c
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- v

let[@inline] min_time t = t.times.(0)
let[@inline] min_seq t = t.seqs.(0)

let pop_min t =
  let v0 = t.vals.(0) in
  let last = t.len - 1 in
  t.len <- last;
  if last = 0 then begin
    t.times.(0) <- nan;
    t.vals.(0) <- t.dummy
  end
  else begin
    let time = t.times.(last) and seq = t.seqs.(last) in
    let v = t.vals.(last) in
    t.times.(last) <- nan;
    t.vals.(last) <- t.dummy;
    sift_down t ~len:last ~time ~seq v 0
  end;
  v0

let pop t =
  if t.len = 0 then None
  else
    let time = t.times.(0) in
    Some (time, pop_min t)

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let compact t ~keep =
  (* Partition survivors to the front, clear the tail, then Floyd-heapify:
     sift each internal node down, last parent first. Surviving keys are
     untouched, so the (time, seq) pop order is exactly what it was. *)
  let n = t.len in
  let w = ref 0 in
  for r = 0 to n - 1 do
    if keep ~seq:t.seqs.(r) t.vals.(r) then begin
      if !w <> r then begin
        t.times.(!w) <- t.times.(r);
        t.seqs.(!w) <- t.seqs.(r);
        t.vals.(!w) <- t.vals.(r)
      end;
      incr w
    end
  done;
  let len = !w in
  let cap = Array.length t.times in
  if cap > 64 && 4 * len < cap then begin
    (* Live occupancy is far below capacity: shrink the backing arrays to
       2x live (floor 64) so a long run's peak RSS is not pinned at the
       pre-compaction high-water mark. Strictly smaller than [cap] here
       because cap > max(64, 4*len). *)
    let ncap = max 64 (2 * len) in
    let ntimes = Array.make ncap nan in
    let nseqs = Array.make ncap 0 in
    let nvals = Array.make ncap t.dummy in
    Array.blit t.times 0 ntimes 0 len;
    Array.blit t.seqs 0 nseqs 0 len;
    Array.blit t.vals 0 nvals 0 len;
    t.times <- ntimes;
    t.seqs <- nseqs;
    t.vals <- nvals
  end
  else
    for i = len to n - 1 do
      t.times.(i) <- nan;
      t.vals.(i) <- t.dummy
    done;
  t.len <- len;
  for i = (len / 2) - 1 downto 0 do
    sift_down t ~len ~time:t.times.(i) ~seq:t.seqs.(i) t.vals.(i) i
  done

let size t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.times
