(** Structured tracing: a process-global event bus with typed events and
    pluggable sinks.

    Overhead contract: when no sink is attached the bus is disabled and every
    instrumentation site reduces to one read of a mutable bool ([on ()]) —
    no event value is constructed, nothing is allocated. Guard every call
    site as

    {[ if Trace.on () then Trace.emit (Trace.Drop { ... }) ]}

    The bus is process-global on purpose: forked parallel workers each
    inherit their own copy, so a worker's trace is exactly the trace the
    same job produces when run serially (byte-identical, given the engine
    determinism contract). *)

(** Event kinds, used for filtering and CLI parsing. *)
module Kind : sig
  type t =
    | Enqueue
    | Dequeue
    | Drop
    | Mark
    | Tx
    | Rx
    | Stray
    | Flow_start
    | Flow_finish
    | Flow_timeout
    | Cwnd
    | Rate
    | Queue_assign
    | Arb
    | Arb_alloc
    | Delegate
    | Ctrl
    | Alpha
    | Link_state
    | Blackhole

  val count : int
  val index : t -> int
  val name : t -> string
  val of_name : string -> t option
  val all : t list
end

(** Attachment point of a queue discipline: the directed link draining it.
    Fields are [-1] until [Net.connect] wires the discipline to a node pair. *)
type loc = { mutable from_node : int; mutable to_node : int }

val unattached_loc : unit -> loc

type event =
  | Enqueue of { pkt : Packet.t; link : int * int; qpkts : int }
  | Dequeue of { pkt : Packet.t; link : int * int; qpkts : int }
  | Drop of { pkt : Packet.t; link : int * int; qpkts : int }
  | Mark of { pkt : Packet.t; link : int * int; qpkts : int }
  | Tx of { pkt : Packet.t; link : int * int }
  | Rx of { pkt : Packet.t; node : int }
  | Stray of { pkt : Packet.t; node : int }
  | Flow_start of {
      flow : int;
      src : int;
      dst : int;
      size_pkts : int;
      deadline : float option;
    }
  | Flow_finish of { flow : int; fct : float }
  | Flow_timeout of { flow : int; backoff : int }
  | Cwnd of { flow : int; cwnd : float; ssthresh : float }
  | Rate of { flow : int; rate_bps : float }
  | Queue_assign of { flow : int; queue : int; rref_bps : float }
  | Arb of { link : int * int; delegate : int; flows : int; top_flows : int }
  | Arb_alloc of {
      link : int * int;
      delegate : int;
      flow : int;
      queue : int;
      rref_bps : float;
    }
  | Delegate of { parent : int * int; tor : int; share_bps : float }
  | Ctrl of { flow : int; msgs : int }
  | Alpha of { flow : int; alpha : float }
  | Link_state of { link : int * int; up : bool }
  | Blackhole of { pkt : Packet.t; link : int * int }

val kind_of : event -> Kind.t

val flow_of : event -> int
(** Flow id the event concerns, or [-1] for flowless events ([Arb],
    [Delegate], [Link_state]). Flowless events never pass a flow filter. *)

val link_of : event -> (int * int) option

val to_json : time:float -> event -> string
(** One JSON object (no trailing newline): [{"t":<float>,"kind":"<name>",...}].
    Floats are printed with [%.17g]; nan/inf become [null]. *)

val to_text : time:float -> event -> string
(** ns-2-style one-liner: packet events lead with the classic op character
    ([+] enqueue, [-] dequeue, [d] drop, [m] mark, [t] tx, [r] receive,
    [?] stray, [b] blackhole); other events lead with the kind name. *)

(** {1 Sinks} *)

type sink = { emit : float -> event -> unit; close : unit -> unit }

val jsonl_sink : out_channel -> sink
(** Writes [to_json] lines. [close] flushes but does not close the channel. *)

val text_sink : out_channel -> sink

type ring

val ring_sink : capacity:int -> ring * sink
(** Bounded in-memory sink keeping the most recent [capacity] events. *)

val ring_contents : ring -> (float * event) list
(** Retained events, oldest first. *)

val ring_length : ring -> int
(** Number of retained events ([<= capacity]). *)

val ring_seen : ring -> int
(** Total events ever delivered to the sink, including evicted ones. *)

val ring_dropped : ring -> int
(** Events evicted to make room: [max 0 (seen - capacity)]. *)

(** {1 The global bus} *)

val on : unit -> bool
(** Fast guard: true iff at least one sink is attached. *)

val emit : event -> unit
(** Deliver to all sinks if enabled and the event passes the filters.
    Call sites must still guard on [on ()] so the event value is only
    constructed when tracing is live. *)

val attach : sink -> unit
(** Attach a sink and enable the bus. *)

val reset : unit -> unit
(** Close all sinks, detach them, disable the bus, clear all filters and
    the emitted counter. *)

val set_clock : (unit -> float) -> unit
(** Timestamp source; [Net.create] and [Runner.run] point it at their
    engine's [Engine.now]. *)

val set_kind_filter : Kind.t list option -> unit
(** [Some kinds] passes only those kinds; [None] passes all (default). *)

val set_flow_filter : int list option -> unit
(** [Some flows] passes only events whose [flow_of] is listed; flowless
    events are excluded. [None] passes all (default). *)

val set_link_filter : (int * int) list option -> unit
(** [Some links] passes only events whose [link_of] is listed; linkless
    events are excluded. [None] passes all (default). *)

val emitted : unit -> int
(** Events that passed the filters and reached sinks since the last
    [reset]. *)
