(** Queue disciplines attached to link transmit sides.

    A discipline owns admission (it may drop on [enqueue]) and scheduling
    (the order [dequeue] returns packets). Drops and ECN marks are recorded
    in the supplied {!Counters.t} and, when tracing is live, emitted on the
    {!Trace} bus tagged with the discipline's {!loc}. *)

type t = {
  enqueue : Packet.t -> unit;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;  (** packets currently queued *)
  bytes : unit -> int;  (** bytes currently queued *)
  bands : unit -> (int * int) array;
      (** per-band (pkts, bytes) occupancy for banded disciplines
          (priority queues); [[||]] for unbanded ones *)
  drops : unit -> int;
      (** cumulative packets dropped by this discipline since creation
          (admission failures and priority evictions alike) *)
  set_cap_frac : float -> unit;
      (** hybrid coupling: fraction of link capacity left to the packet
          tier (1.0 = no fluid load). Marking disciplines rescale their ECN
          threshold to the residual drain rate; others ignore it. Called
          only at fluid control events, never per packet. *)
  loc : Trace.loc;
      (** the directed link this discipline drains; [Net.connect] fills it
          in so trace events carry the link identity *)
}

(** [droptail counters ~limit_pkts] is a FIFO that drops arrivals once
    [limit_pkts] packets are queued. *)
val droptail : Counters.t -> limit_pkts:int -> t

(** [red_ecn counters ~limit_pkts ~mark_threshold] is a FIFO with DCTCP-style
    marking: an arriving ECN-capable packet is CE-marked when the
    instantaneous queue length is at least [mark_threshold] packets
    (RED with min = max = K, as in the paper's implementation §3.3).
    Non-ECN-capable packets are dropped instead of marked only on overflow. *)
val red_ecn : Counters.t -> limit_pkts:int -> mark_threshold:int -> t

(** Helpers for other disciplines. Each records the event in [counters] and
    emits the corresponding trace event ([qpkts] is the queue depth at the
    moment of the event). *)

val count_drop : Trace.loc -> Counters.t -> qpkts:int -> Packet.t -> unit
val count_enqueue : Trace.loc -> Counters.t -> qpkts:int -> Packet.t -> unit
val count_dequeue : Trace.loc -> Counters.t -> qpkts:int -> Packet.t -> unit

(** [count_mark loc c ~qpkts pkt] CE-marks [pkt], counts it, and traces it. *)
val count_mark : Trace.loc -> Counters.t -> qpkts:int -> Packet.t -> unit

(** Shared empty [bands] value for unbanded disciplines. *)
val no_bands : unit -> (int * int) array

(** [scaled_threshold k frac] is a mark threshold rescaled to a capacity
    fraction: [max 1 (ceil (k * frac))]. Exactly [k] at [frac = 1.0]. *)
val scaled_threshold : int -> float -> int
