(** Global per-simulation counters used for loss-rate and overhead metrics. *)

type t = {
  mutable enqueued_pkts : int;
  mutable enqueued_bytes : int;
  mutable dequeued_pkts : int;
  mutable dequeued_bytes : int;
  mutable dropped_pkts : int;
  mutable dropped_bytes : int;
  mutable dropped_data_pkts : int;  (** drops of [Data] packets only *)
  mutable ecn_marked_pkts : int;
  mutable delivered_pkts : int;
  mutable ctrl_msgs : int;  (** arbitration / explicit-rate control messages *)
  mutable ctrl_lost : int;
      (** control messages lost to injected loss or a crashed arbitrator *)
  mutable stray_pkts : int;  (** packets delivered with no registered handler *)
  mutable blackholed_pkts : int;
      (** packets lost to a down link (in flight at failure, or transmitted
          into the outage) *)
}

val create : unit -> t
val reset : t -> unit

(** Fraction of enqueued data-plane packets that were dropped, in [0, 1]. *)
val loss_rate : t -> float
