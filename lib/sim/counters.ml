type t = {
  mutable enqueued_pkts : int;
  mutable enqueued_bytes : int;
  mutable dequeued_pkts : int;
  mutable dequeued_bytes : int;
  mutable dropped_pkts : int;
  mutable dropped_bytes : int;
  mutable dropped_data_pkts : int;
  mutable ecn_marked_pkts : int;
  mutable delivered_pkts : int;
  mutable ctrl_msgs : int;
  mutable ctrl_lost : int;
  mutable stray_pkts : int;
  mutable blackholed_pkts : int;
}

let create () =
  {
    enqueued_pkts = 0;
    enqueued_bytes = 0;
    dequeued_pkts = 0;
    dequeued_bytes = 0;
    dropped_pkts = 0;
    dropped_bytes = 0;
    dropped_data_pkts = 0;
    ecn_marked_pkts = 0;
    delivered_pkts = 0;
    ctrl_msgs = 0;
    ctrl_lost = 0;
    stray_pkts = 0;
    blackholed_pkts = 0;
  }

let reset t =
  t.enqueued_pkts <- 0;
  t.enqueued_bytes <- 0;
  t.dequeued_pkts <- 0;
  t.dequeued_bytes <- 0;
  t.dropped_pkts <- 0;
  t.dropped_bytes <- 0;
  t.dropped_data_pkts <- 0;
  t.ecn_marked_pkts <- 0;
  t.delivered_pkts <- 0;
  t.ctrl_msgs <- 0;
  t.ctrl_lost <- 0;
  t.stray_pkts <- 0;
  t.blackholed_pkts <- 0

let loss_rate t =
  let attempts = t.dropped_pkts + t.enqueued_pkts in
  if attempts = 0 then 0.
  else float_of_int t.dropped_pkts /. float_of_int attempts
