type kind = Data | Ack | Probe | Probe_ack | Ctrl

type t = {
  mutable id : int;
  mutable flow : int;
  mutable src : int;
  mutable dst : int;
  mutable kind : kind;
  mutable size : int;
  mutable seq : int;
  mutable ack : int;
  mutable sack : int;
  mutable prio : float;
  mutable tos : int;
  mutable ecn_capable : bool;
  mutable ecn_ce : bool;
  mutable ecn_echo : bool;
  mutable sent_at : float;
  mutable enq_at : float;  (* scratch: qdisc arrival time (Delay attribution) *)
}

let header_bytes = 40
let ack_bytes = 40
let probe_bytes = 40
let ctrl_bytes = 64

let next_id = ref 0

(* Free list of dead packets. [make] always reinitializes every field (with
   a fresh id), so reuse is invisible to simulation results; callers must
   only [free] packets the data path will never touch again, and must not
   free at all while the trace bus is on (a sink may retain live packets;
   see Trace). *)
let pool : t array ref = ref [||]
let pool_len = ref 0
let pool_cap = 4096

let reset_ids () =
  next_id := 0;
  pool := [||];
  pool_len := 0

let dummy () =
  {
    id = -1;
    flow = -1;
    src = -1;
    dst = -1;
    kind = Ctrl;
    size = 0;
    seq = -1;
    ack = -1;
    sack = -1;
    prio = 0.;
    tos = 0;
    ecn_capable = false;
    ecn_ce = false;
    ecn_echo = false;
    sent_at = 0.;
    enq_at = 0.;
  }

let free pkt =
  if !pool_len < pool_cap then begin
    if !pool_len = Array.length !pool then begin
      let ncap = max 64 (min pool_cap (2 * Array.length !pool)) in
      let np = Array.make ncap pkt in
      Array.blit !pool 0 np 0 !pool_len;
      pool := np
    end;
    !pool.(!pool_len) <- pkt;
    incr pool_len
  end

let make ~flow ~src ~dst ~kind ~size ~seq ?(ack = -1) ?(sack = -1) ?(prio = 0.)
    ?(tos = 0) ?(ecn_capable = true) ?(ecn_echo = false) ~sent_at () =
  let id = !next_id in
  incr next_id;
  if !pool_len > 0 then begin
    decr pool_len;
    let p = !pool.(!pool_len) in
    p.id <- id;
    p.flow <- flow;
    p.src <- src;
    p.dst <- dst;
    p.kind <- kind;
    p.size <- size;
    p.seq <- seq;
    p.ack <- ack;
    p.sack <- sack;
    p.prio <- prio;
    p.tos <- tos;
    p.ecn_capable <- ecn_capable;
    p.ecn_ce <- false;
    p.ecn_echo <- ecn_echo;
    p.sent_at <- sent_at;
    p.enq_at <- 0.;
    p
  end
  else
    {
      id;
      flow;
      src;
      dst;
      kind;
      size;
      seq;
      ack;
      sack;
      prio;
      tos;
      ecn_capable;
      ecn_ce = false;
      ecn_echo;
      sent_at;
      enq_at = 0.;
    }

let kind_str = function
  | Data -> "data"
  | Ack -> "ack"
  | Probe -> "probe"
  | Probe_ack -> "probe-ack"
  | Ctrl -> "ctrl"

let pp fmt p =
  Format.fprintf fmt "#%d %s flow=%d %d->%d seq=%d ack=%d size=%d tos=%d prio=%g"
    p.id (kind_str p.kind) p.flow p.src p.dst p.seq p.ack p.size p.tos p.prio
