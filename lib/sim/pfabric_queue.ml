(* Buffer as a growable array of packet options; holes are compacted lazily
   by swapping with the last live element on removal. Order information
   needed for starvation avoidance comes from packet seq numbers, not from
   buffer position. *)

type buf = { mutable items : Packet.t option array; mutable len : int }

let buf_create limit = { items = Array.make (max limit 1) None; len = 0 }

let buf_add b pkt =
  (* lint: allow pool-lifetime — ownership transfers to the shared buffer; freed on eviction or delivery *)
  b.items.(b.len) <- Some pkt;
  b.len <- b.len + 1

let buf_remove b i =
  let last = b.len - 1 in
  b.items.(i) <- b.items.(last);
  b.items.(last) <- None;
  b.len <- last

let buf_get b i = match b.items.(i) with Some p -> p | None -> assert false

(* Telemetry tiers for the continuous [prio] value (remaining flow size in
   segments): tier = min 7 (floor (log2 (1 + prio))), i.e. tier 0 holds
   prio < 1 (last segment in flight), tier k holds 2^k - 1 <= prio < 2^(k+1)
   - 1, tier 7 everything >= 127 segments remaining. *)
let tiers = 8

let tier_of prio =
  let p = Float.max 0. prio in
  let t = int_of_float (Float.log2 (1. +. p)) in
  if t < 0 then 0 else if t >= tiers then tiers - 1 else t

let create counters ~limit_pkts =
  let b = buf_create limit_pkts in
  let bytes = ref 0 in
  let drops = ref 0 in
  let loc = Trace.unattached_loc () in
  (* Index of the buffered packet with the worst (largest) priority value;
     ties broken toward later seq so we evict the youngest of the worst
     flow's packets first. *)
  let worst_index () =
    let best = ref (-1) in
    for i = 0 to b.len - 1 do
      let p = buf_get b i in
      match !best with
      | -1 -> best := i
      | j ->
          let q = buf_get b j in
          if
            p.Packet.prio > q.Packet.prio
            || (p.Packet.prio = q.Packet.prio && p.Packet.seq > q.Packet.seq)
          then best := i
    done;
    !best
  in
  let enqueue pkt =
    if b.len >= limit_pkts then begin
      let w = worst_index () in
      if w >= 0 && (buf_get b w).Packet.prio > pkt.Packet.prio then begin
        let victim = buf_get b w in
        buf_remove b w;
        bytes := !bytes - victim.Packet.size;
        incr drops;
        Queue_disc.count_drop loc counters ~qpkts:b.len victim;
        buf_add b pkt;
        bytes := !bytes + pkt.Packet.size;
        Queue_disc.count_enqueue loc counters ~qpkts:b.len pkt
      end
      else begin
        incr drops;
        Queue_disc.count_drop loc counters ~qpkts:b.len pkt
      end
    end
    else begin
      buf_add b pkt;
      bytes := !bytes + pkt.Packet.size;
      Queue_disc.count_enqueue loc counters ~qpkts:b.len pkt
    end
  in
  let dequeue () =
    if b.len = 0 then None
    else begin
      (* Find the most important packet, then the earliest segment of its
         flow (starvation avoidance keeps per-flow delivery in order). *)
      let best = ref 0 in
      for i = 1 to b.len - 1 do
        let p = buf_get b i and q = buf_get b !best in
        if
          p.Packet.prio < q.Packet.prio
          || (p.Packet.prio = q.Packet.prio && p.Packet.seq < q.Packet.seq)
        then best := i
      done;
      let chosen_flow = (buf_get b !best).Packet.flow in
      let pick = ref !best in
      for i = 0 to b.len - 1 do
        let p = buf_get b i in
        if p.Packet.flow = chosen_flow && p.Packet.seq < (buf_get b !pick).Packet.seq
        then pick := i
      done;
      let pkt = buf_get b !pick in
      buf_remove b !pick;
      bytes := !bytes - pkt.Packet.size;
      Queue_disc.count_dequeue loc counters ~qpkts:b.len pkt;
      Some pkt
    end
  in
  let band_occ () =
    let occ = Array.make tiers (0, 0) in
    for i = 0 to b.len - 1 do
      let p = buf_get b i in
      let t = tier_of p.Packet.prio in
      let pk, by = occ.(t) in
      occ.(t) <- (pk + 1, by + p.Packet.size)
    done;
    occ
  in
  {
    Queue_disc.enqueue;
    dequeue;
    pkts = (fun () -> b.len);
    bytes = (fun () -> !bytes);
    bands = band_occ;
    drops = (fun () -> !drops);
    (* pFabric has no marking and its priority dropping is size-based, not
       rate-calibrated; the fluid tier also never shares links with it
       (pFabric is not fluid-whitelisted), so the fraction is irrelevant. *)
    set_cap_frac = (fun _ -> ());
    loc;
  }
