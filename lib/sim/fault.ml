(* Deterministic fault injection: a declarative schedule of link outages,
   node crashes and control-plane loss windows, armed as ordinary engine
   events. The plane owns no randomness — control-plane loss only adjusts a
   probability that the arbitration layer samples from its own seeded
   stream — so a fault schedule replays byte-identically under the engine
   determinism contract. *)

type node_ref =
  | Host of int
  | Tor of int
  | Agg of int
  | Core of int
  | Node of int  (* raw node id, for hand-built topologies *)

type event =
  | Link_down of { a : node_ref; b : node_ref; at : float; up_at : float option }
  | Link_flap of {
      a : node_ref;
      b : node_ref;
      at : float;
      down_s : float;  (* hold time down, per flap *)
      up_s : float;  (* hold time up between flaps *)
      count : int;
    }
  | Crash of { node : node_ref; at : float; restart_at : float option }
  | Ctrl_loss of { at : float; until_s : float; prob : float }

type stats = {
  mutable transitions : int;  (* directed-link state changes applied *)
  mutable link_down_events : int;  (* undirected pairs taken down *)
  mutable crash_events : int;
  mutable downtime_s : float;  (* summed per undirected pair *)
}

type t = {
  topo : Topology.t;
  events : event list;
  on_crash : int -> unit;
  on_restart : int -> unit;
  on_ctrl_loss : float option -> unit;
  on_link : int -> int -> up:bool -> unit;
  crashed : (int, unit) Hashtbl.t;
  down_since : (int * int, float) Hashtbl.t;  (* normalized pair -> time *)
  stats : stats;
}

let node_ref_to_string = function
  | Host i -> Printf.sprintf "host%d" i
  | Tor i -> Printf.sprintf "tor%d" i
  | Agg i -> Printf.sprintf "agg%d" i
  | Core i -> Printf.sprintf "core%d" i
  | Node i -> Printf.sprintf "node%d" i

(* Canonical, locale-independent rendering: doubles as the cache-key
   contribution ([spec_key]), so it must round-trip floats exactly. *)
let event_to_string = function
  | Link_down { a; b; at; up_at } ->
      Printf.sprintf "down:a=%s,b=%s,at=%.17g%s" (node_ref_to_string a)
        (node_ref_to_string b) at
        (match up_at with
        | None -> ""
        | Some u -> Printf.sprintf ",up=%.17g" u)
  | Link_flap { a; b; at; down_s; up_s; count } ->
      Printf.sprintf "flap:a=%s,b=%s,at=%.17g,down=%.17g,up=%.17g,count=%d"
        (node_ref_to_string a) (node_ref_to_string b) at down_s up_s count
  | Crash { node; at; restart_at } ->
      Printf.sprintf "crash:node=%s,at=%.17g%s" (node_ref_to_string node) at
        (match restart_at with
        | None -> ""
        | Some r -> Printf.sprintf ",restart=%.17g" r)
  | Ctrl_loss { at; until_s; prob } ->
      Printf.sprintf "ctrl:at=%.17g,until=%.17g,p=%.17g" at until_s prob

let spec_key events = String.concat ";" (List.map event_to_string events)

let resolve topo r =
  let pick name (arr : int array) i =
    if i < 0 || i >= Array.length arr then
      invalid_arg
        (Printf.sprintf "Fault: no such node %s%d (have %d)" name i
           (Array.length arr))
    else arr.(i)
  in
  match r with
  | Host i -> pick "host" topo.Topology.hosts i
  | Tor i -> pick "tor" topo.Topology.tors i
  | Agg i -> pick "agg" topo.Topology.aggs i
  | Core i -> pick "core" topo.Topology.cores i
  | Node i ->
      if i < 0 || i >= Net.node_count topo.Topology.net then
        invalid_arg (Printf.sprintf "Fault: no such node node%d" i)
      else i

let validate topo ev =
  let non_neg what v =
    if v < 0. || Float.is_nan v then
      invalid_arg (Printf.sprintf "Fault: %s must be non-negative" what)
  in
  let positive what v =
    if v <= 0. || Float.is_nan v then
      invalid_arg (Printf.sprintf "Fault: %s must be positive" what)
  in
  let check_link a b =
    let na = resolve topo a and nb = resolve topo b in
    match Net.link_from topo.Topology.net na nb with
    | Some _ -> ()
    | None ->
        invalid_arg
          (Printf.sprintf "Fault: %s and %s are not adjacent"
             (node_ref_to_string a) (node_ref_to_string b))
  in
  match ev with
  | Link_down { a; b; at; up_at } ->
      check_link a b;
      non_neg "at" at;
      Option.iter
        (fun u ->
          if u <= at then invalid_arg "Fault: link up time must follow down")
        up_at
  | Link_flap { a; b; at; down_s; up_s; count } ->
      check_link a b;
      non_neg "at" at;
      positive "down hold" down_s;
      positive "up hold" up_s;
      if count < 1 then invalid_arg "Fault: flap count must be >= 1"
  | Crash { node; at; restart_at } ->
      ignore (resolve topo node);
      non_neg "at" at;
      Option.iter
        (fun r ->
          if r <= at then invalid_arg "Fault: restart time must follow crash")
        restart_at
  | Ctrl_loss { at; until_s; prob } ->
      non_neg "at" at;
      positive "until" until_s;
      if prob < 0. || prob > 1. || Float.is_nan prob then
        invalid_arg "Fault: loss probability must be in [0, 1]"

let create topo ?(on_crash = ignore) ?(on_restart = ignore)
    ?(on_ctrl_loss = ignore) ?(on_link = fun _ _ ~up:_ -> ()) events =
  List.iter (validate topo) events;
  {
    topo;
    events;
    on_crash;
    on_restart;
    on_ctrl_loss;
    on_link;
    crashed = Hashtbl.create 8;
    down_since = Hashtbl.create 8;
    stats = { transitions = 0; link_down_events = 0; crash_events = 0;
              downtime_s = 0. };
  }

let engine t = Net.engine t.topo.Topology.net

let set_direction t a b up =
  match Net.link_from t.topo.Topology.net a b with
  | None -> ()
  | Some l ->
      if Link.is_up l <> up then begin
        Link.set_up l up;
        t.stats.transitions <- t.stats.transitions + 1;
        if Trace.on () then Trace.emit (Trace.Link_state { link = (a, b); up })
      end

let set_link t a b up =
  let pair = (min a b, max a b) in
  let now = Engine.now (engine t) in
  (if up then (
     match Hashtbl.find_opt t.down_since pair with
     | Some since ->
         t.stats.downtime_s <- t.stats.downtime_s +. (now -. since);
         Hashtbl.remove t.down_since pair
     | None -> ())
   else if not (Hashtbl.mem t.down_since pair) then begin
     Hashtbl.replace t.down_since pair now;
     t.stats.link_down_events <- t.stats.link_down_events + 1
   end);
  set_direction t a b up;
  set_direction t b a up;
  t.on_link a b ~up

let crash t node =
  if not (Hashtbl.mem t.crashed node) then begin
    Hashtbl.replace t.crashed node ();
    t.stats.crash_events <- t.stats.crash_events + 1;
    t.on_crash node
  end

let restart t node =
  if Hashtbl.mem t.crashed node then begin
    Hashtbl.remove t.crashed node;
    t.on_restart node
  end

let arm t =
  let e = engine t in
  let at time f =
    Engine.schedule_at ~label:"fault" e ~time:(Float.max time (Engine.now e)) f
  in
  List.iter
    (fun ev ->
      match ev with
      | Link_down { a; b; at = t0; up_at } ->
          let na = resolve t.topo a and nb = resolve t.topo b in
          at t0 (fun () -> set_link t na nb false);
          Option.iter (fun u -> at u (fun () -> set_link t na nb true)) up_at
      | Link_flap { a; b; at = t0; down_s; up_s; count } ->
          let na = resolve t.topo a and nb = resolve t.topo b in
          for i = 0 to count - 1 do
            let base = t0 +. (float_of_int i *. (down_s +. up_s)) in
            at base (fun () -> set_link t na nb false);
            at (base +. down_s) (fun () -> set_link t na nb true)
          done
      | Crash { node; at = t0; restart_at } ->
          let n = resolve t.topo node in
          at t0 (fun () -> crash t n);
          Option.iter (fun r -> at r (fun () -> restart t n)) restart_at
      | Ctrl_loss { at = t0; until_s; prob } ->
          at t0 (fun () -> t.on_ctrl_loss (Some prob));
          at (t0 +. until_s) (fun () -> t.on_ctrl_loss None))
    t.events

(* Close open downtime intervals at the current virtual time so the metric
   covers crashes that never healed. Sorted traversal: float accumulation
   order must not depend on hash layout. *)
let finish t =
  let now = Engine.now (engine t) in
  Det_tbl.iter
    (fun _pair since -> t.stats.downtime_s <- t.stats.downtime_s +. (now -. since))
    t.down_since;
  Hashtbl.reset t.down_since

let stats t = t.stats
let count events = List.length events

(* ---- textual schedules -------------------------------------------------- *)

(* Grammar (semicolon-separated events, comma-separated key=value fields):
     down:a=<node>,b=<node>,at=<s>[,up=<s>]
     flap:a=<node>,b=<node>,at=<s>,down=<s>,up=<s>,count=<n>
     crash:node=<node>,at=<s>[,restart=<s>]
     ctrl:at=<s>,until=<s>,p=<prob>
   where <node> is host<i>, tor<i>, agg<i>, core<i> or node<i>. *)

let parse_node_ref s =
  let tagged tag mk =
    let n = String.length tag in
    if String.length s > n && String.sub s 0 n = tag then
      match int_of_string_opt (String.sub s n (String.length s - n)) with
      | Some i when i >= 0 -> Some (mk i)
      | Some _ | None -> None
    else None
  in
  let first_some l = List.find_map (fun f -> f ()) l in
  first_some
    [
      (fun () -> tagged "host" (fun i -> Host i));
      (fun () -> tagged "tor" (fun i -> Tor i));
      (fun () -> tagged "agg" (fun i -> Agg i));
      (fun () -> tagged "core" (fun i -> Core i));
      (fun () -> tagged "node" (fun i -> Node i));
    ]

let parse_fields s =
  List.fold_left
    (fun acc field ->
      match acc with
      | Error _ -> acc
      | Ok fields -> (
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "expected key=value, got %S" field)
          | Some i ->
              let k = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              Ok ((k, v) :: fields)))
    (Ok [])
    (String.split_on_char ',' s)

let field fields k = List.assoc_opt k fields

let float_field fields k =
  match field fields k with
  | None -> Error (Printf.sprintf "missing field %S" k)
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: bad number %S" k v))

let opt_float_field fields k =
  match field fields k with
  | None -> Ok None
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %S: bad number %S" k v))

let int_field fields k =
  match field fields k with
  | None -> Error (Printf.sprintf "missing field %S" k)
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: bad integer %S" k v))

let node_field fields k =
  match field fields k with
  | None -> Error (Printf.sprintf "missing field %S" k)
  | Some v -> (
      match parse_node_ref v with
      | Some r -> Ok r
      | None -> Error (Printf.sprintf "field %S: bad node ref %S" k v))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_event s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "expected <kind>:<fields>, got %S" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let* fields = parse_fields (String.sub s (i + 1) (String.length s - i - 1)) in
      match kind with
      | "down" ->
          let* a = node_field fields "a" in
          let* b = node_field fields "b" in
          let* at = float_field fields "at" in
          let* up_at = opt_float_field fields "up" in
          Ok (Link_down { a; b; at; up_at })
      | "flap" ->
          let* a = node_field fields "a" in
          let* b = node_field fields "b" in
          let* at = float_field fields "at" in
          let* down_s = float_field fields "down" in
          let* up_s = float_field fields "up" in
          let* count = int_field fields "count" in
          Ok (Link_flap { a; b; at; down_s; up_s; count })
      | "crash" ->
          let* node = node_field fields "node" in
          let* at = float_field fields "at" in
          let* restart_at = opt_float_field fields "restart" in
          Ok (Crash { node; at; restart_at })
      | "ctrl" ->
          let* at = float_field fields "at" in
          let* until_s = float_field fields "until" in
          let* prob = float_field fields "p" in
          Ok (Ctrl_loss { at; until_s; prob })
      | _ -> Error (Printf.sprintf "unknown fault kind %S" kind))

let parse s =
  let parts =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty fault schedule"
  else
    List.fold_left
      (fun acc p ->
        match acc with
        | Error _ -> acc
        | Ok evs -> (
            match parse_event p with
            | Ok ev -> Ok (ev :: evs)
            | Error e -> Error e))
      (Ok []) parts
    |> Result.map List.rev
