(** Simulated packets.

    Logically, only the fields that switches rewrite (ECN mark) or that the
    sender stamps per transmission (priority, queue band) are mutable; every
    field is physically mutable so dead packets can be recycled through a
    free list ({!free}/{!make}). Treat the others as immutable. *)

type kind =
  | Data  (** payload-carrying segment *)
  | Ack  (** acknowledgement; [ack]/[sack] carry cumulative and selective acks *)
  | Probe  (** header-only loss-recovery probe (PASE §3.2, pFabric probe mode) *)
  | Probe_ack  (** receiver response to a [Probe] *)
  | Ctrl  (** control-plane message (arbitration, PDQ rate updates) *)

type t = {
  mutable id : int;  (** globally unique per engine run *)
  mutable flow : int;  (** flow identifier *)
  mutable src : int;  (** originating host node id *)
  mutable dst : int;  (** destination host node id *)
  mutable kind : kind;
  mutable size : int;  (** bytes on the wire, headers included *)
  mutable seq : int;  (** data: segment index; probe: probed segment index *)
  mutable ack : int;  (** acks: cumulative ack (first unreceived segment index) *)
  mutable sack : int;  (** acks: the specific segment this ack acknowledges, or -1 *)
  mutable prio : float;
      (** in-network priority; lower is more important (pFabric: remaining
          size in segments) *)
  mutable tos : int;  (** priority-queue band index; 0 is the highest band *)
  mutable ecn_capable : bool;
  mutable ecn_ce : bool;  (** congestion-experienced mark, set by queues *)
  mutable ecn_echo : bool;  (** acks: echo of the data packet's CE mark *)
  mutable sent_at : float;  (** time the packet entered the network at its source *)
  mutable enq_at : float;
      (** scratch: time the packet entered its current qdisc, stamped by
          {!Queue_disc.count_enqueue} when {!Delay.on} (meaningless otherwise) *)
}

(** Header-only sizes in bytes. *)
val header_bytes : int

val ack_bytes : int
val probe_bytes : int
val ctrl_bytes : int

(** [reset_ids ()] restarts the id counter and empties the free list (call
    between independent runs for reproducibility of ids; behaviour never
    depends on ids). *)
val reset_ids : unit -> unit

val make :
  flow:int ->
  src:int ->
  dst:int ->
  kind:kind ->
  size:int ->
  seq:int ->
  ?ack:int ->
  ?sack:int ->
  ?prio:float ->
  ?tos:int ->
  ?ecn_capable:bool ->
  ?ecn_echo:bool ->
  sent_at:float ->
  unit ->
  t

(** [free pkt] returns a dead packet to the free list for reuse by a later
    {!make}. Only call once the data path is completely done with [pkt]
    (delivered to its final handler, or dropped), and never while the trace
    bus is on — trace sinks may retain packets past delivery. *)
val free : t -> unit

(** [dummy ()] makes an inert placeholder packet (id -1) without consuming
    an id. Used to fill empty slots in pools and rings; never sent. *)
val dummy : unit -> t

val kind_str : kind -> string
(** Short lowercase name ("data", "ack", ...), used by trace sinks. *)

val pp : Format.formatter -> t -> unit
