(** Deterministic fault injection.

    A fault plane turns a declarative schedule of events — link outages and
    flaps, node crash/restart, control-plane loss windows — into ordinary
    engine events on a topology. The plane owns no randomness: link and
    crash events fire at fixed virtual times, and control-plane loss only
    sets a probability that the arbitration layer samples from its own
    seeded [Rng] stream. A schedule therefore replays byte-identically
    across serial, parallel and chunked runs.

    Recovery semantics are delegated to callbacks so the simulation core
    stays layered: [Runner] wires [on_crash]/[on_restart] to
    {!Hierarchy.fail_node}/{!Hierarchy.recover_node}, [on_ctrl_loss] to
    {!Hierarchy.set_ctrl_loss_override} and [on_link] to PDQ/D3 arbiter
    state drops; the link data plane ({!Link.set_up}) is driven directly. *)

(** Symbolic node reference, resolved against a {!Topology.t}'s inventory
    arrays ([host0] is [topo.hosts.(0)], etc.). [Node] is a raw node id for
    hand-built networks. *)
type node_ref =
  | Host of int
  | Tor of int
  | Agg of int
  | Core of int
  | Node of int

type event =
  | Link_down of { a : node_ref; b : node_ref; at : float; up_at : float option }
  | Link_flap of {
      a : node_ref;
      b : node_ref;
      at : float;
      down_s : float;  (** hold time down, per flap *)
      up_s : float;  (** hold time up between flaps *)
      count : int;
    }
  | Crash of { node : node_ref; at : float; restart_at : float option }
  | Ctrl_loss of { at : float; until_s : float; prob : float }

type stats = {
  mutable transitions : int;  (** directed-link state changes applied *)
  mutable link_down_events : int;  (** undirected pairs taken down *)
  mutable crash_events : int;
  mutable downtime_s : float;
      (** total link downtime, summed per undirected pair; open intervals
          are closed at {!finish} time *)
}

type t

(** [create topo ?on_crash ?on_restart ?on_ctrl_loss ?on_link events]
    validates the schedule against the topology (node refs must resolve,
    link endpoints must be adjacent, times non-negative, probabilities in
    [0, 1]) and raises [Invalid_argument] otherwise. Callbacks default to
    no-ops. [on_ctrl_loss (Some p)] opens a loss window with probability
    [p]; [on_ctrl_loss None] closes it. *)
val create :
  Topology.t ->
  ?on_crash:(int -> unit) ->
  ?on_restart:(int -> unit) ->
  ?on_ctrl_loss:(float option -> unit) ->
  ?on_link:(int -> int -> up:bool -> unit) ->
  event list ->
  t

(** Schedule every event on the topology's engine. Call once, before
    [Engine.run]. Events in the past fire immediately. *)
val arm : t -> unit

(** Close open link-downtime intervals at the current virtual time. Call
    after the run completes, before reading {!stats}. *)
val finish : t -> unit

val stats : t -> stats

(** Number of events in a schedule (convenience for metrics). *)
val count : event list -> int

(** {1 Textual schedules}

    Grammar: semicolon-separated events with comma-separated [key=value]
    fields —
    [down:a=<node>,b=<node>,at=<s>[,up=<s>]],
    [flap:a=<node>,b=<node>,at=<s>,down=<s>,up=<s>,count=<n>],
    [crash:node=<node>,at=<s>[,restart=<s>]],
    [ctrl:at=<s>,until=<s>,p=<prob>], where [<node>] is [host<i>], [tor<i>],
    [agg<i>], [core<i>] or [node<i>]. *)

val parse : string -> (event list, string) result

val event_to_string : event -> string
(** Canonical rendering in the {!parse} grammar; floats use [%.17g] so the
    string round-trips exactly. *)

val spec_key : event list -> string
(** Canonical rendering of a whole schedule (cache-key contribution): the
    [event_to_string]s joined with [";"]. Empty for the empty schedule. *)
