(** Flow-level (fluid) fidelity tier of the hybrid engine.

    Designated flows are not simulated packet by packet: each one is a rate
    share on its routed path, advanced in bulk between control events. Rates
    are the max-min fair (water-filling) allocation over the links the fluid
    flows share, where each link offers the fluid tier a capacity slice
    proportional to its fluid/packet flow mix; the packet-level residual is
    coupled back through {!Link.set_fluid_bps}. Allocations are recomputed
    only at control events — fluid admission, demotion, packet-flow churn on
    a shared link, fault transitions — coalesced per timestamp through a
    zero-delay engine timer, plus a single boundary timer armed at the
    earliest moment any flow's remaining bytes reach the demotion boundary.

    A fluid flow is demoted to packet level when its remaining bytes drop to
    the boundary (so every flow finishes packet-level, with real FCT tail
    dynamics) or when a link on its cached path goes down (faults need
    packet-level loss/RTO behaviour). Demotion hands the runner the settled
    remaining bytes and last allocated rate.

    Determinism: every traversal is in sorted key order ({!Det_tbl}), so
    allocations, float-summation order and demotion order are byte-stable
    across runs and processes. See DESIGN.md §15. *)

type t

type stats = {
  admitted : int;  (** flows accepted into the fluid tier (incl. instant demotions) *)
  demotions : int;  (** total demotions to packet level *)
  fault_demotions : int;  (** demotions forced by a link-down on the path *)
  recomputes : int;  (** rate-allocation passes *)
  bytes_advanced : float;  (** bytes advanced analytically, all flows *)
  live : int;  (** flows currently in the fluid tier *)
}

(** [create engine net ~demote_bytes ()] makes an empty fluid tier.
    [demote_bytes] is the demotion boundary (the classifier threshold).
    [standing_of] maps a link rate (bps) to the standing-queue latency the
    fluid flows' congestion control maintains at a bottleneck of that rate
    (DCTCP-family: ~marking-threshold packets; default 0); it is pushed to
    bottleneck links via {!Link.set_standing_s} so packet-tier traffic
    waits behind the queue the full engine would have built.

    [min_interval] (seconds, default 0) floors the spacing between
    water-filling passes: churn marks the tier dirty and the pass fires no
    sooner than [min_interval] after the previous one. Demotions still
    land exactly on time (the boundary timer settles and demotes without
    reallocating), so the only staleness is rates lagging churn by up to
    the interval — the same lag real congestion control shows, which
    re-converges over RTTs. An RTT-scale interval makes allocation cost
    independent of the churn rate. The network must already be
    finalized. *)
val create :
  Engine.t ->
  Net.t ->
  demote_bytes:float ->
  ?standing_of:(float -> float) ->
  ?min_interval:float ->
  unit ->
  t

(** [admit t ~id ~src ~dst ~bytes ~on_demote] places flow [id] in the fluid
    tier with [bytes] to transfer ([infinity] for long-lived flows). The
    path is the same ECMP route the packet engine would hash the flow onto.
    [on_demote] is called exactly once — possibly synchronously, when
    [bytes] is already at or below the boundary — with the settled remaining
    bytes and the last allocated rate (0 if never allocated). *)
val admit :
  t ->
  id:int ->
  src:int ->
  dst:int ->
  bytes:float ->
  on_demote:(remaining_bytes:float -> rate_bps:float -> unit) ->
  unit

(** Packet-level flows sharing the fabric register their path so each link's
    fluid capacity slice tracks the fluid/packet mix. *)
val register_packet : t -> id:int -> src:int -> dst:int -> unit

val unregister_packet : t -> id:int -> unit

(** Fault-plane hook: a link changed administrative state. Down demotes
    every fluid flow whose cached path crosses it (either direction);
    both transitions trigger reallocation. *)
val on_link_change : t -> int -> int -> up:bool -> unit

(** Settle all fluid flows to the current sim time (end-of-run accounting
    for censored flows). *)
val flush : t -> unit

val stats : t -> stats
