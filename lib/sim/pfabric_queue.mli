(** pFabric switch port queue (Alizadeh et al., SIGCOMM'13).

    Scheduling: dequeue the packet whose flow holds the numerically lowest
    [prio] (most important) anywhere in the buffer, then — for starvation
    avoidance — transmit that flow's {e earliest} buffered segment.

    Dropping: when the buffer is full and the arriving packet has strictly
    lower [prio] (higher importance) than the worst buffered packet, the
    worst buffered packet is evicted; otherwise the arrival is dropped.

    The buffer is tiny in pFabric (≈ 2 × BDP), so linear scans are exact and
    cheap. *)

val create : Counters.t -> limit_pkts:int -> Queue_disc.t

(** Telemetry tiers quantizing the continuous [prio] (remaining flow size in
    segments) for the discipline's [bands] report: tier
    [min (tiers-1) (floor (log2 (1 + prio)))], so tier 0 is the last
    in-flight segment and tier [tiers-1] holds flows with >= 127 segments
    remaining. *)

val tiers : int

val tier_of : float -> int
