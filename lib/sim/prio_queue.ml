let create_with_inspect counters ~bands ~limit_pkts ~mark_threshold =
  if bands <= 0 then invalid_arg "Prio_queue.create: bands must be positive";
  let qs : Packet.t Queue.t array = Array.init bands (fun _ -> Queue.create ()) in
  let band_bytes = Array.make bands 0 in
  let total = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let loc = Trace.unattached_loc () in
  let band_of (pkt : Packet.t) =
    let b = pkt.Packet.tos in
    if b < 0 then 0 else if b >= bands then bands - 1 else b
  in
  (* Evict one packet from the lowest-priority non-empty band strictly below
     [band] (i.e., with a larger index). Returns true on success. *)
  let push_out_below band =
    let rec scan i =
      if i <= band then false
      else if not (Queue.is_empty qs.(i)) then begin
        (* Drop from the tail-most position we can reach cheaply: the band is
           FIFO, so dropping its most recent arrival preserves in-order
           delivery of older packets. Queue has no tail removal; rotate. *)
        let n = Queue.length qs.(i) in
        let victim = ref None in
        for j = 0 to n - 1 do
          let p = Queue.pop qs.(i) in
          (* lint: allow pool-lifetime — rotation returns still-owned packets to the same band queue *)
          if j = n - 1 then victim := Some p else Queue.push p qs.(i)
        done;
        (match !victim with
        | Some p ->
            total := !total - 1;
            bytes := !bytes - p.Packet.size;
            band_bytes.(i) <- band_bytes.(i) - p.Packet.size;
            incr drops;
            Queue_disc.count_drop loc counters ~qpkts:!total p
        | None -> assert false);
        true
      end
      else scan (i - 1)
    in
    scan (bands - 1)
  in
  let eff_mark = ref mark_threshold in
  let set_cap_frac frac =
    eff_mark := Queue_disc.scaled_threshold mark_threshold frac
  in
  let enqueue pkt =
    let band = band_of pkt in
    let admitted =
      if !total < limit_pkts then true
      else push_out_below band
    in
    if not admitted then begin
      incr drops;
      Queue_disc.count_drop loc counters ~qpkts:!total pkt
    end
    else begin
      if pkt.Packet.ecn_capable && Queue.length qs.(band) >= !eff_mark
      then Queue_disc.count_mark loc counters ~qpkts:!total pkt;
      (* lint: allow pool-lifetime — ownership transfers to the band queue; freed on drop or delivery *)
      Queue.push pkt qs.(band);
      total := !total + 1;
      bytes := !bytes + pkt.Packet.size;
      band_bytes.(band) <- band_bytes.(band) + pkt.Packet.size;
      Queue_disc.count_enqueue loc counters ~qpkts:!total pkt
    end
  in
  let dequeue () =
    let rec scan i =
      if i >= bands then None
      else
        match Queue.take_opt qs.(i) with
        | Some pkt ->
            total := !total - 1;
            bytes := !bytes - pkt.Packet.size;
            band_bytes.(i) <- band_bytes.(i) - pkt.Packet.size;
            Queue_disc.count_dequeue loc counters ~qpkts:!total pkt;
            Some pkt
        | None -> scan (i + 1)
    in
    scan 0
  in
  let band_occ () =
    Array.init bands (fun i -> (Queue.length qs.(i), band_bytes.(i)))
  in
  let disc =
    {
      Queue_disc.enqueue;
      dequeue;
      pkts = (fun () -> !total);
      bytes = (fun () -> !bytes);
      bands = band_occ;
      drops = (fun () -> !drops);
      set_cap_frac;
      loc;
    }
  in
  (disc, fun i -> Queue.length qs.(i))

let create counters ~bands ~limit_pkts ~mark_threshold =
  fst (create_with_inspect counters ~bands ~limit_pkts ~mark_threshold)
