(** Per-flow delay attribution.

    A process-global service (like {!Trace}) that decomposes each completed
    flow's FCT into five components with an exact-sum guarantee:

    {v
    serialization +. propagation +. arb_wait +. rto_stall +. queueing = fct
    v}

    evaluated left to right, with float equality. The transports drive a
    per-flow mode machine (in flight / gated on arbitration or a rate grant /
    waiting out a retransmission timer) and the data path reports measured
    per-hop queueing, serialization and propagation delays; at completion the
    in-flight wall time is split proportionally to the measured sums and the
    queueing share absorbs the float residual. See DESIGN.md §14. *)

type record = {
  flow : int;
  fct : float;
  serialization : float;  (** link transmit time across all hops *)
  propagation : float;  (** wire delay across all hops *)
  queueing : float;  (** qdisc residence (absorbs the float residual) *)
  arb_wait : float;  (** blocked on arbitration / rate grants *)
  rto_stall : float;  (** blocked on retransmission timers *)
  timeouts : int;  (** RTO firings over the flow's lifetime *)
}

(** {1 Lifecycle} *)

val on : unit -> bool
(** Cheap guard; all instrumentation must be dominated by [on () = true]. *)

val enable : unit -> unit
(** Turn attribution on and clear all per-flow state. *)

val disable : unit -> unit
(** Turn attribution off and clear all per-flow state. *)

val reset : unit -> unit
(** Clear per-flow state without changing the on/off switch. *)

val set_clock : (unit -> float) -> unit
(** Install the sim-time source; [Net.create] points this at its engine. *)

val now : unit -> float

(** {1 Transport hooks} (all no-ops for unknown flow ids) *)

val flow_start : flow:int -> now:float -> gated:bool -> unit
(** Register a flow at its start time. [gated] tells whether the transport
    is blocked on arbitration/pacing before the first send. *)

val on_send : flow:int -> now:float -> unit
(** A data segment entered the network: switch to in-flight mode. *)

val on_activity : flow:int -> now:float -> unit
(** Any packet of the flow arrived back at the sender (ack/probe-ack);
    advances the last-activity watermark used by {!before_timeout}. *)

val before_timeout : flow:int -> now:float -> unit
(** Called when the retransmission timer fires, before recovery: closes the
    current interval, retroactively reclassifying the silent tail of an
    in-flight period as RTO stall. *)

val sync : flow:int -> inflight:int -> gated:bool -> now:float -> unit
(** Reconcile the mode with transport state after an ack or timeout has
    been fully processed. *)

val complete : flow:int -> now:float -> fct:float -> unit
(** Finalize the flow's record; fetch it with {!take}. *)

val discard : flow:int -> unit
(** Drop all state for a cancelled flow. *)

val take : flow:int -> record option
(** Remove and return the finalized record of a completed flow. *)

(** {1 Data-path hook} (no-op for unknown flow ids) *)

val hop : flow:int -> queue:float -> ser:float -> prop:float -> unit
(** One delivered hop's measured components — qdisc residence, link
    transmit time, wire delay — accumulated with a single lookup. Called
    once per hop at delivery; packets that are dropped or blackholed
    mid-hop contribute nothing to the measured proportions. *)

(** {1 Invariant} *)

val check_sum : record -> bool
(** [check_sum r] is the exact-sum invariant above; always true for records
    produced by {!complete}. *)
