(* Max-min fair fluid tier. See the .mli for the model; here the load-bearing
   details are determinism (sorted traversal everywhere a float sum or a
   callback order could leak) and zero allocation churn on the steady path
   (per-link scratch lives inside the entry records, reused each pass). *)

type entry = {
  key : int * int;  (* directed (from, to) *)
  link : Link.t;
  mutable n_fluid : int;
  mutable n_pkt : int;
  (* water-filling scratch, valid only during one allocation pass *)
  mutable rem : float;  (* unallocated fluid capacity, bps *)
  mutable cnt : int;  (* unfrozen fluid flows crossing *)
  mutable bott : bool;  (* member of the current bottleneck set *)
  mutable bott_any : bool;  (* froze some flow this pass: holds a standing queue *)
  mutable fluid_bps : float;  (* summed allocation, pushed to the link *)
  mutable stale : bool;  (* had a nonzero push that must be reset *)
}

type fflow = {
  id : int;
  path : entry array;
  mutable remaining : float;  (* bytes; [infinity] = long-lived *)
  mutable rate : float;  (* bps, last allocation *)
  mutable last : float;  (* sim time [remaining] was settled at *)
  mutable frozen : bool;  (* water-filling scratch *)
  on_demote : remaining_bytes:float -> rate_bps:float -> unit;
}

type stats = {
  admitted : int;
  demotions : int;
  fault_demotions : int;
  recomputes : int;
  bytes_advanced : float;
  live : int;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  demote_bytes : float;
  standing_of : float -> float;
      (* link rate (bps) -> standing-queue latency (s) a fluid flow's
         congestion control maintains at a bottleneck of that rate *)
  min_interval : float;
      (* floor between water-filling passes: churn (admissions, demotions,
         packet-flow registration) marks the tier dirty and the recompute
         fires no sooner than [last_alloc + min_interval]. Real congestion
         control re-converges over RTTs, so an RTT-scale floor trades no
         modelled fidelity and keeps allocation cost independent of the
         churn rate. 0 = recompute at every control event. *)
  flows : (int, fflow) Hashtbl.t;
  entries : (int * int, entry) Hashtbl.t;
  pkt_paths : (int, entry array) Hashtbl.t;
  boundaries : fflow Eheap.t;
      (* per-flow demotion times under the current allocation; rebuilt at
         each water-filling pass (rates change every boundary), drained by
         the boundary timer. Seq keys are flow ids: the pop order is the
         unique (time, id) order, independent of insertion order. Entries
         for flows demoted out-of-band (faults) are dropped lazily on pop. *)
  mutable dirty : bool;
  mutable last_alloc : float;  (* sim time of the last water-filling pass *)
  mutable recompute_tm : Engine.timer option;
  mutable boundary_tm : Engine.timer option;
  mutable pushed : entry list;  (* entries whose link holds a nonzero push *)
  mutable admitted : int;
  mutable demotions : int;
  mutable fault_demotions : int;
  mutable recomputes : int;
  mutable bytes_advanced : float;
}

let key_cmp (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

(* Demote when remaining <= boundary + slack: the boundary timer inverts
   remaining = rate * dt / 8, so settling at its firing time can land a few
   ulps to either side of the boundary. Half a byte absorbs that without
   ever being observable at packet granularity. *)
let due t f = f.remaining <= t.demote_bytes +. 0.5

let settle_flow t f now =
  if f.rate > 0. && now > f.last then begin
    let adv = f.rate *. (now -. f.last) /. 8. in
    t.bytes_advanced <- t.bytes_advanced +. adv;
    if f.remaining < infinity then
      f.remaining <- Float.max 0. (f.remaining -. adv)
  end;
  f.last <- now

let settle_all t now = Det_tbl.iter (fun _ f -> settle_flow t f now) t.flows

let mark_dirty t =
  if not t.dirty then begin
    t.dirty <- true;
    match t.recompute_tm with
    | Some tm ->
        let now = Engine.now t.engine in
        Engine.timer_schedule_at t.engine tm
          ~time:(Float.max now (t.last_alloc +. t.min_interval))
    | None -> ()
  end

let demote t f ~fault =
  Hashtbl.remove t.flows f.id;
  Array.iter (fun e -> e.n_fluid <- e.n_fluid - 1) f.path;
  t.demotions <- t.demotions + 1;
  if fault then t.fault_demotions <- t.fault_demotions + 1;
  f.on_demote ~remaining_bytes:f.remaining ~rate_bps:f.rate

let demote_due t =
  let hit =
    List.rev
      (Det_tbl.fold (fun _ f acc -> if due t f then f :: acc else acc) t.flows [])
  in
  List.iter (fun f -> demote t f ~fault:false) hit

(* One water-filling pass over the live flows: repeatedly find the tightest
   link (smallest equal share among its unfrozen flows), freeze every
   unfrozen flow crossing a tightest link at that share, subtract, repeat.
   Bottleneck membership is snapshotted per iteration so the in-place
   subtraction cannot skew which flows freeze this round. *)
let allocate t =
  let fls = List.rev (Det_tbl.fold (fun _ f acc -> f :: acc) t.flows []) in
  List.iter
    (fun f ->
      f.frozen <- false;
      f.rate <- 0.)
    fls;
  let parts =
    List.rev
      (Det_tbl.fold ~cmp:key_cmp
         (fun _ e acc ->
           if e.n_fluid > 0 then begin
             let share =
               float_of_int e.n_fluid /. float_of_int (e.n_fluid + e.n_pkt)
             in
             e.rem <-
               (if Link.is_up e.link then Link.rate_bps e.link *. share else 0.);
             e.cnt <- e.n_fluid;
             e.bott <- false;
             e.bott_any <- false;
             e.fluid_bps <- 0.;
             e :: acc
           end
           else acc)
         t.entries [])
  in
  let unfrozen = ref (List.length fls) in
  while !unfrozen > 0 do
    let s =
      List.fold_left
        (fun acc e ->
          if e.cnt > 0 then Float.min acc (e.rem /. float_of_int e.cnt) else acc)
        infinity parts
    in
    if s = infinity then begin
      (* No constraining link (unreachable: every flow crosses links that
         count it). Freeze everything at zero to guarantee termination. *)
      List.iter (fun f -> f.frozen <- true) fls;
      unfrozen := 0
    end
    else begin
      let s = Float.max 0. s in
      List.iter
        (fun e ->
          if e.cnt > 0 && e.rem /. float_of_int e.cnt = s then begin
            e.bott <- true;
            e.bott_any <- true
          end)
        parts;
      List.iter
        (fun f ->
          if (not f.frozen) && Array.exists (fun e -> e.bott) f.path then begin
            f.frozen <- true;
            f.rate <- s;
            decr unfrozen;
            Array.iter
              (fun e ->
                e.rem <- Float.max 0. (e.rem -. s);
                e.cnt <- e.cnt - 1)
              f.path
          end)
        fls;
      List.iter (fun e -> e.bott <- false) parts
    end
  done;
  (* Per-link totals, summed in flow-id order (deterministic float sums),
     pushed to the links; links that lost their fluid load are reset. *)
  List.iter
    (fun f -> Array.iter (fun e -> e.fluid_bps <- e.fluid_bps +. f.rate) f.path)
    fls;
  let prev = t.pushed in
  t.pushed <- [];
  List.iter (fun e -> e.stale <- true) prev;
  List.iter
    (fun e ->
      if e.fluid_bps > 0. then begin
        Link.set_fluid_bps e.link e.fluid_bps;
        (* Only links that actually constrained (froze) a flow hold a
           standing queue; transit links a flow merely crosses stay clean. *)
        Link.set_standing_s e.link
          (if e.bott_any then t.standing_of (Link.rate_bps e.link) else 0.);
        e.stale <- false;
        t.pushed <- e :: t.pushed
      end)
    parts;
  List.iter
    (fun e ->
      if e.stale then begin
        Link.set_fluid_bps e.link 0.;
        Link.set_standing_s e.link 0.;
        e.stale <- false
      end)
    prev

let boundary_time t f =
  f.last +. ((f.remaining -. t.demote_bytes) *. 8. /. f.rate)

let heap_live t f =
  match Hashtbl.find_opt t.flows f.id with Some g -> g == f | None -> false

(* Rebuild the boundary schedule from scratch: rates just changed, so every
   previously computed demotion time is void. O(live), once per pass. *)
let rebuild_boundaries t =
  Eheap.compact t.boundaries ~keep:(fun ~seq:_ _ -> false);
  Det_tbl.iter
    (fun _ f ->
      if f.rate > 0. && f.remaining < infinity then
        Eheap.add t.boundaries ~time:(boundary_time t f) ~seq:f.id f)
    t.flows

let arm_boundary t now =
  match t.boundary_tm with
  | None -> ()
  | Some tm -> (
      match Eheap.peek_time t.boundaries with
      | Some next ->
          Engine.timer_schedule_at t.engine tm ~time:(Float.max now next)
      | None -> Engine.timer_cancel t.engine tm)

(* The allocation handler: settle, demote whatever is due, then reallocate
   and rebuild the boundary schedule. Demotion side effects (the demoted
   flow re-registers as a packet flow) may re-mark dirty; the extra pass —
   rate-limited by [min_interval] — is idempotent. *)
let do_recompute t =
  t.dirty <- false;
  t.recomputes <- t.recomputes + 1;
  let now = Engine.now t.engine in
  settle_all t now;
  demote_due t;
  allocate t;
  t.last_alloc <- now;
  rebuild_boundaries t;
  arm_boundary t now

(* The boundary handler: demotions must land on time (the demoted flow's
   packet tail starts here), but the water-filling pass they trigger may
   lag by [min_interval] — the freed share stays allocated to the departed
   flow until then, exactly as a real sender's competitors only claim freed
   bandwidth over the next RTTs. Draining the heap keeps the per-demotion
   cost at O(path + log live) instead of O(live x links). *)
let on_boundary t =
  let now = Engine.now t.engine in
  let demoted = ref false in
  let rec drain () =
    match Eheap.peek_time t.boundaries with
    | Some tm when tm <= now ->
        let f = Eheap.pop_min t.boundaries in
        if heap_live t f then begin
          settle_flow t f now;
          if due t f then begin
            demote t f ~fault:false;
            demoted := true
          end
          else
            (* Settled a few ulps short of the boundary: try again at the
               recomputed crossing (strictly later — remaining is more
               than half a byte above the boundary, and the rate is
               unchanged). *)
            Eheap.add t.boundaries ~time:(boundary_time t f) ~seq:f.id f
        end;
        drain ()
    | _ -> ()
  in
  drain ();
  if !demoted then mark_dirty t;
  arm_boundary t now

let create engine net ~demote_bytes ?(standing_of = fun _ -> 0.)
    ?(min_interval = 0.) () =
  if demote_bytes < 0. then invalid_arg "Fluid.create: negative boundary";
  if min_interval < 0. then invalid_arg "Fluid.create: negative interval";
  let dummy_fflow =
    {
      id = -1;
      path = [||];
      remaining = 0.;
      rate = 0.;
      last = 0.;
      frozen = false;
      on_demote = (fun ~remaining_bytes:_ ~rate_bps:_ -> ());
    }
  in
  let t =
    {
      engine;
      net;
      demote_bytes;
      standing_of;
      min_interval;
      flows = Hashtbl.create 512;
      entries = Hashtbl.create 512;
      pkt_paths = Hashtbl.create 512;
      boundaries = Eheap.create ~dummy:dummy_fflow ();
      dirty = false;
      last_alloc = neg_infinity;
      recompute_tm = None;
      boundary_tm = None;
      pushed = [];
      admitted = 0;
      demotions = 0;
      fault_demotions = 0;
      recomputes = 0;
      bytes_advanced = 0.;
    }
  in
  t.recompute_tm <-
    Some (Engine.timer ~label:"fluid-recompute" engine (fun () -> do_recompute t));
  t.boundary_tm <-
    Some (Engine.timer ~label:"fluid-boundary" engine (fun () -> on_boundary t));
  t

let entry_of t a b =
  let key = (a, b) in
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let link =
        match Net.link_from t.net a b with
        | Some l -> l
        | None -> invalid_arg "Fluid: path hop without a link"
      in
      let e =
        {
          key;
          link;
          n_fluid = 0;
          n_pkt = 0;
          rem = 0.;
          cnt = 0;
          bott = false;
          bott_any = false;
          fluid_bps = 0.;
          stale = false;
        }
      in
      Hashtbl.replace t.entries key e;
      e

let entries_of_route t ~id ~src ~dst =
  let nodes = Net.route t.net ~flow:id ~src ~dst () in
  let rec hops = function
    | a :: (b :: _ as rest) -> entry_of t a b :: hops rest
    | _ -> []
  in
  Array.of_list (hops nodes)

(* Admission slack: one full-size frame above the boundary. Heavy-tailed
   empirical CDFs (web-search, hadoop) put a dense band of flows barely
   above any byte threshold; a fluid phase shorter than one packet's worth
   of bytes advances nothing measurable yet still costs an allocation pass
   and a boundary-timer churn per flow, so such flows demote instantly. *)
let admit_slack_bytes = 1500.

let admit t ~id ~src ~dst ~bytes ~on_demote =
  if not (bytes > 0.) then invalid_arg "Fluid.admit: bytes must be positive";
  t.admitted <- t.admitted + 1;
  if bytes <= t.demote_bytes +. admit_slack_bytes then begin
    (* At (or within a frame of) the boundary: goes straight to the packet
       tier, with the same observable behaviour as never having been
       classified fluid. *)
    t.demotions <- t.demotions + 1;
    on_demote ~remaining_bytes:bytes ~rate_bps:0.
  end
  else begin
    let path = entries_of_route t ~id ~src ~dst in
    Array.iter (fun e -> e.n_fluid <- e.n_fluid + 1) path;
    let f =
      {
        id;
        path;
        remaining = bytes;
        rate = 0.;
        last = Engine.now t.engine;
        frozen = false;
        on_demote;
      }
    in
    Hashtbl.replace t.flows id f;
    mark_dirty t
  end

let register_packet t ~id ~src ~dst =
  let path = entries_of_route t ~id ~src ~dst in
  Hashtbl.replace t.pkt_paths id path;
  let shared = ref false in
  Array.iter
    (fun e ->
      e.n_pkt <- e.n_pkt + 1;
      if e.n_fluid > 0 then shared := true)
    path;
  if !shared then mark_dirty t

let unregister_packet t ~id =
  match Hashtbl.find_opt t.pkt_paths id with
  | None -> ()
  | Some path ->
      Hashtbl.remove t.pkt_paths id;
      let shared = ref false in
      Array.iter
        (fun e ->
          e.n_pkt <- e.n_pkt - 1;
          if e.n_fluid > 0 then shared := true)
        path;
      if !shared then mark_dirty t

let on_link_change t a b ~up =
  if not up then begin
    let hit =
      List.rev
        (Det_tbl.fold
           (fun _ f acc ->
             let crosses =
               Array.exists
                 (fun e ->
                   let ea, eb = e.key in
                   (ea = a && eb = b) || (ea = b && eb = a))
                 f.path
             in
             if crosses then f :: acc else acc)
           t.flows [])
    in
    List.iter (fun f -> demote t f ~fault:true) hit
  end;
  mark_dirty t

let flush t = settle_all t (Engine.now t.engine)

let stats t =
  {
    admitted = t.admitted;
    demotions = t.demotions;
    fault_demotions = t.fault_demotions;
    recomputes = t.recomputes;
    bytes_advanced = t.bytes_advanced;
    live = Hashtbl.length t.flows;
  }
