(* Per-flow delay attribution.

   Like Trace, this is a process-global service guarded by a cheap [on ()]
   boolean so the instrumentation in the data path and the transports costs
   one branch when attribution is off. While a flow is live we run a small
   mode machine over wall-to-wall sim time:

     Net          — data is in flight; time accrues to network service
     Blocked_gate — nothing in flight because the transport is gated
                    (arbitration pending, or a rate grant paces sends out);
                    time accrues to arbitration/rate-grant wait
     Blocked_loss — nothing in flight and not gated: everything we sent was
                    lost and we are waiting for the retransmission timer;
                    time accrues to RTO stall

   In parallel, the data path accumulates measured per-packet sums: queueing
   (qdisc residence, stamped via [Packet.enq_at]), serialization (link tx
   time) and propagation (link delay), for every packet of the flow that is
   actually delivered — data, ACKs and probes alike, since they share the
   flow id and the return path is part of perceived network service.

   At completion the wall-clock Net total is split into queueing /
   serialization / propagation proportionally to the measured sums (the
   measured sums themselves over-count wall time whenever transmissions
   pipeline, so only their ratio is trusted), and the queueing share is then
   recomputed as the exact float residual so that

     serialization +. propagation +. arb_wait +. rto_stall +. queueing
       = fct                                   (evaluated left to right)

   holds with float equality, not approximately. *)

type mode = Net | Blocked_gate | Blocked_loss

type state = {
  mutable mode : mode;
  mutable mode_since : float;
  mutable last_activity : float;
  mutable q_sum : float;
  mutable s_sum : float;
  mutable p_sum : float;
  mutable net : float;
  mutable arb : float;
  mutable rto : float;
  mutable timeouts : int;
}

type record = {
  flow : int;
  fct : float;
  serialization : float;
  propagation : float;
  queueing : float;
  arb_wait : float;
  rto_stall : float;
  timeouts : int;
}

let enabled = ref false
let on () = !enabled
let clock : (unit -> float) ref = ref (fun () -> 0.)
let set_clock f = clock := f
let now () = !clock ()
let live : (int, state) Hashtbl.t = Hashtbl.create 256
let finished : (int, record) Hashtbl.t = Hashtbl.create 256

let reset () =
  Hashtbl.reset live;
  Hashtbl.reset finished

let enable () =
  enabled := true;
  reset ()

let disable () =
  enabled := false;
  reset ()

let flow_start ~flow ~now ~gated =
  let st =
    {
      mode = (if gated then Blocked_gate else Blocked_loss);
      mode_since = now;
      last_activity = now;
      q_sum = 0.;
      s_sum = 0.;
      p_sum = 0.;
      net = 0.;
      arb = 0.;
      rto = 0.;
      timeouts = 0;
    }
  in
  Hashtbl.replace live flow st

(* Close the current mode interval at time [t]. *)
let settle st t =
  let d = t -. st.mode_since in
  (match st.mode with
  | Net -> st.net <- st.net +. d
  | Blocked_gate -> st.arb <- st.arb +. d
  | Blocked_loss -> st.rto <- st.rto +. d);
  st.mode_since <- t

let on_send ~flow ~now =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st ->
      if st.mode <> Net then begin
        settle st now;
        st.mode <- Net
      end;
      st.last_activity <- now

let on_activity ~flow ~now =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st -> st.last_activity <- now

let before_timeout ~flow ~now =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st -> (
      st.timeouts <- st.timeouts + 1;
      match st.mode with
      | Net ->
          (* The RTO fired with data nominally in flight: it was lost or
             blackholed. Network service only covers up to the last packet
             activity; the silence before the timer is the stall. *)
          let active =
            Float.max st.mode_since (Float.min st.last_activity now)
          in
          st.net <- st.net +. (active -. st.mode_since);
          st.rto <- st.rto +. (now -. active);
          st.mode_since <- now;
          st.last_activity <- now
      | Blocked_gate ->
          (* Gated when the timer fired: the grant never let us send
             anything, so what follows is loss recovery, not gating. *)
          settle st now;
          st.mode <- Blocked_loss
      | Blocked_loss -> settle st now)

let sync ~flow ~inflight ~gated ~now =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st ->
      let m =
        if inflight > 0 then Net
        else if gated then Blocked_gate
        else Blocked_loss
      in
      if st.mode <> m then begin
        settle st now;
        st.mode <- m
      end

(* One accumulation per delivered hop: a single table lookup charges all
   three measured components. The data path calls this once at delivery
   (Link.prop_done) instead of separate queue/serialization/propagation
   hooks at dequeue and tx completion — the hot path pays one guarded call
   per hop, not three. *)
let hop ~flow ~queue ~ser ~prop =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st ->
      st.q_sum <- st.q_sum +. queue;
      st.s_sum <- st.s_sum +. ser;
      st.p_sum <- st.p_sum +. prop

(* Largest-effort exact residual: find q such that [partial +. q = fct]
   with float equality, starting from the rounded difference and nudging by
   ulps. Both operands are non-negative, so the sum moves by at least one
   ulp of q per step and the loop terminates in a handful of iterations;
   the bound is a safety valve, not an expected path. *)
let residual ~partial ~fct =
  let q = ref (fct -. partial) in
  let budget = ref 4096 in
  while partial +. !q < fct && !budget > 0 do
    q := Float.succ !q;
    decr budget
  done;
  while partial +. !q > fct && !budget > 0 do
    q := Float.pred !q;
    decr budget
  done;
  if partial +. !q = fct then Some !q else None

let complete ~flow ~now ~fct =
  match Hashtbl.find_opt live flow with
  | None -> ()
  | Some st ->
      settle st now;
      Hashtbl.remove live flow;
      let measured = st.q_sum +. st.s_sum +. st.p_sum in
      let ser, prop =
        if measured > 0. then
          (st.net *. (st.s_sum /. measured), st.net *. (st.p_sum /. measured))
        else (st.net, 0.)
      in
      let partial = ser +. prop +. st.arb +. st.rto in
      let r =
        match residual ~partial ~fct with
        | Some queueing ->
            {
              flow;
              fct;
              serialization = ser;
              propagation = prop;
              queueing;
              arb_wait = st.arb;
              rto_stall = st.rto;
              timeouts = st.timeouts;
            }
        | None ->
            (* Unreachable in practice; keep the invariant over precision. *)
            {
              flow;
              fct;
              serialization = 0.;
              propagation = 0.;
              queueing = fct;
              arb_wait = 0.;
              rto_stall = 0.;
              timeouts = st.timeouts;
            }
      in
      Hashtbl.replace finished flow r

let discard ~flow =
  Hashtbl.remove live flow;
  Hashtbl.remove finished flow

let take ~flow =
  match Hashtbl.find_opt finished flow with
  | None -> None
  | Some r ->
      Hashtbl.remove finished flow;
      Some r

let check_sum r =
  r.serialization +. r.propagation +. r.arb_wait +. r.rto_stall +. r.queueing
  = r.fct
