(** Link telemetry: periodic sampling of utilization and queue occupancy.

    A sampler polls a set of links every [period] and records, per link,
    the utilization over the elapsed interval (bytes transmitted relative
    to capacity) and the instantaneous queue length. Used by benches and
    examples to show where a scheme holds queues and where it idles. *)

type sample = {
  time : float;
  utilization : float;  (** fraction of capacity used since last sample *)
  queue_pkts : int;  (** instantaneous queue occupancy, packets *)
  queue_bytes : int;  (** instantaneous queue occupancy, bytes *)
  bands : (int * int) array;
      (** per-band (pkts, bytes) occupancy for banded disciplines
          (priority/pFabric queues); [[||]] for unbanded FIFOs *)
}

type t

(** [create engine ~period links] starts sampling immediately; each link is
    identified by the label supplied with it. *)
val create : Engine.t -> period:float -> (string * Link.t) list -> t

(** Stop sampling (already-recorded samples remain readable). *)
val stop : t -> unit

(** Samples recorded for a link, oldest first. Unknown labels yield []. *)
val samples : t -> string -> sample list

(** Mean utilization of a link over the recorded window ([nan] if none). *)
val mean_utilization : t -> string -> float

(** Peak queue occupancy of a link over the recorded window (0 if none). *)
val peak_queue : t -> string -> int

(** Peak queue occupancy in bytes over the recorded window (0 if none). *)
val peak_queue_bytes : t -> string -> int

(** [peak_band t label i] is the peak (pkts, bytes) occupancy of band [i]
    of a banded discipline over the window ((0, 0) if none or unbanded). *)
val peak_band : t -> string -> int -> int * int

val labels : t -> string list
