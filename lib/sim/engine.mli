(** Discrete-event simulation engine.

    The engine owns virtual time. Events are thunks scheduled at absolute or
    relative times; [run] executes them in [(time, insertion-order)] order
    until the queue drains, a stop condition triggers, or [stop] is called
    from within an event. *)

type t

(** A handle that cancels a scheduled event when invoked. Cancelling an
    already-fired or already-cancelled event is a no-op. *)
type cancel = unit -> unit

val create : unit -> t

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. [label] names the schedule site for {!profile}; it is
    ignored (and costs nothing) unless profiling is on. *)
val schedule : ?label:string -> t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)
val schedule_at : ?label:string -> t -> time:float -> (unit -> unit) -> unit

(** Like [schedule], returning a cancellation handle. *)
val schedule_cancellable :
  ?label:string -> t -> delay:float -> (unit -> unit) -> cancel

(** [run ?until ?max_events t] processes events in order. Stops when the
    queue is empty, when virtual time would exceed [until], or after
    [max_events] events. When the run covers the whole window — i.e. it was
    not cut short by {!stop} or [max_events] — the clock advances to [until]
    on return, so censoring at [now t] measures against the horizon. Events
    beyond [until] stay queued with their original insertion order, making a
    sequence of chunked [run ~until] calls equivalent to one big run. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** [stop t] makes [run] return after the current event completes. *)
val stop : t -> unit

(** Number of events executed so far (cancelled events are not counted). *)
val events_processed : t -> int

(** Number of events currently pending (including cancelled-but-unreaped). *)
val pending : t -> int

(** {1 Profiling}

    Off by default. When enabled, [schedule*] calls carrying a [?label]
    count executions per site, the peak heap depth is tracked, and [run]
    accumulates CPU time. Site counts and peak depth are deterministic;
    [wall_s] is the only nondeterministic field and must never be folded
    into simulation results that are compared byte-for-byte. *)

type profile = {
  executed : int;  (** same as [events_processed] *)
  peak_heap : int;  (** max heap size observed at any schedule *)
  wall_s : float;  (** CPU seconds spent inside [run] (profiling runs only) *)
  sites : (string * int) list;
      (** executions per schedule-site label, sorted by label *)
}

val set_profiling : t -> bool -> unit
val profile : t -> profile
