(** Discrete-event simulation engine.

    The engine owns virtual time. Events are thunks scheduled at absolute or
    relative times; [run] executes them in [(time, insertion-order)] order
    until the queue drains, a stop condition triggers, or [stop] is called
    from within an event.

    Fired one-shot events are recycled through an internal pool, so the
    steady-state hot path (schedule, pop, execute) allocates nothing beyond
    the caller's closure. *)

type t

(** A handle that cancels a scheduled event when invoked. Cancelling an
    already-fired or already-cancelled event is a no-op. *)
type cancel = unit -> unit

val create : unit -> t

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. [label] names the schedule site for {!profile}; it is
    ignored (and costs nothing) unless profiling is on. *)
val schedule : ?label:string -> t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)
val schedule_at : ?label:string -> t -> time:float -> (unit -> unit) -> unit

(** Like [schedule], returning a cancellation handle. *)
val schedule_cancellable :
  ?label:string -> t -> delay:float -> (unit -> unit) -> cancel

(** {1 Timers}

    A [timer] is a reschedulable event handle: one callback, at most one
    pending firing. Rescheduling a pending timer supersedes the previous
    deadline in place — the old heap slot goes stale and is reaped lazily
    (the engine compacts the heap when stale slots outnumber live ones), so
    repeated re-arming (RTO resets, pause/unpause, periodic rounds) does
    not grow the heap and allocates no new event record. *)

type timer

(** [timer t f] makes a timer running [f] at each firing. The timer starts
    unscheduled. [label] names the site for {!profile}, as in {!schedule}. *)
val timer : ?label:string -> t -> (unit -> unit) -> timer

(** [timer_schedule t tm ~delay] (re)schedules [tm] to fire at
    [now t +. delay], superseding any pending firing. *)
val timer_schedule : t -> timer -> delay:float -> unit

(** [timer_schedule_at t tm ~time] (re)schedules [tm] to fire at absolute
    [time >= now t], superseding any pending firing. *)
val timer_schedule_at : t -> timer -> time:float -> unit

(** [timer_cancel t tm] unschedules any pending firing. No-op when idle. *)
val timer_cancel : t -> timer -> unit

(** [timer_pending tm] is [true] iff a firing is scheduled. *)
val timer_pending : timer -> bool

(** [run ?until ?max_events t] processes events in order. Stops when the
    queue is empty, when virtual time would exceed [until], or once
    [max_events] queue pops have been spent. The budget counts {e every}
    pop, including cancelled or superseded (dead) slots that are discarded
    without executing: draining dead slots is real work, and counting it
    guarantees [run] terminates within [max_events] iterations even on a
    heap full of dead timers ([events_processed] still reports only
    executed events). When the run covers the whole window — i.e. it was
    not cut short by {!stop} or [max_events] — the clock advances to
    [until] on return, so censoring at [now t] measures against the
    horizon. Events beyond [until] stay queued with their original
    insertion order, making a sequence of chunked [run ~until] calls
    equivalent to one big run. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** [stop t] makes [run] return after the current event completes. *)
val stop : t -> unit

(** Number of events executed so far (cancelled events are not counted). *)
val events_processed : t -> int

(** Number of events currently pending, including cancelled-but-unreaped
    slots (lazy compaction may shrink this without any event firing). *)
val pending : t -> int

(** {1 Profiling}

    Off by default. When enabled, [schedule*] calls carrying a [?label]
    count executions per site, the peak heap depth is tracked, and [run]
    accumulates CPU time and GC deltas ([Gc.quick_stat] before/after).
    Site counts and peak depth are deterministic; [wall_s] and the GC
    fields depend on process state and must never be folded into
    simulation results that are compared byte-for-byte. *)

type profile = {
  executed : int;  (** same as [events_processed] *)
  peak_heap : int;  (** max heap size observed at any schedule *)
  wall_s : float;  (** CPU seconds spent inside [run] (profiling runs only) *)
  minor_words : float;  (** minor-heap words allocated during [run] *)
  promoted_words : float;  (** words promoted to the major heap *)
  major_collections : int;  (** major GC cycles completed during [run] *)
  sites : (string * int) list;
      (** executions per schedule-site label, sorted by label *)
}

val set_profiling : t -> bool -> unit
val profile : t -> profile
