(* Structured tracing: a process-global event bus with typed events and
   pluggable sinks. The bus is disabled until a sink is attached; every
   instrumentation site guards on [on ()] before constructing its event, so
   a run with no sink attached pays one mutable-bool read per site and
   allocates nothing. *)

module Kind = struct
  type t =
    | Enqueue
    | Dequeue
    | Drop
    | Mark
    | Tx
    | Rx
    | Stray
    | Flow_start
    | Flow_finish
    | Flow_timeout
    | Cwnd
    | Rate
    | Queue_assign
    | Arb
    | Arb_alloc
    | Delegate
    | Ctrl
    | Alpha
    | Link_state
    | Blackhole

  let count = 20

  let index = function
    | Enqueue -> 0
    | Dequeue -> 1
    | Drop -> 2
    | Mark -> 3
    | Tx -> 4
    | Rx -> 5
    | Stray -> 6
    | Flow_start -> 7
    | Flow_finish -> 8
    | Flow_timeout -> 9
    | Cwnd -> 10
    | Rate -> 11
    | Queue_assign -> 12
    | Arb -> 13
    | Arb_alloc -> 14
    | Delegate -> 15
    | Ctrl -> 16
    | Alpha -> 17
    | Link_state -> 18
    | Blackhole -> 19

  let name = function
    | Enqueue -> "enqueue"
    | Dequeue -> "dequeue"
    | Drop -> "drop"
    | Mark -> "mark"
    | Tx -> "tx"
    | Rx -> "rx"
    | Stray -> "stray"
    | Flow_start -> "flow-start"
    | Flow_finish -> "flow-finish"
    | Flow_timeout -> "flow-timeout"
    | Cwnd -> "cwnd"
    | Rate -> "rate"
    | Queue_assign -> "queue-assign"
    | Arb -> "arb"
    | Arb_alloc -> "arb-alloc"
    | Delegate -> "delegate"
    | Ctrl -> "ctrl"
    | Alpha -> "alpha"
    | Link_state -> "link-state"
    | Blackhole -> "blackhole"

  let all =
    [
      Enqueue; Dequeue; Drop; Mark; Tx; Rx; Stray; Flow_start; Flow_finish;
      Flow_timeout; Cwnd; Rate; Queue_assign; Arb; Arb_alloc; Delegate; Ctrl;
      Alpha; Link_state; Blackhole;
    ]

  let of_name s = List.find_opt (fun k -> name k = s) all
end

(* Attachment point of a queue discipline: the directed link draining it.
   Mutable because the discipline is built before the topology wires it to
   an endpoint pair ([Net.connect] fills it in). *)
type loc = { mutable from_node : int; mutable to_node : int }

let unattached_loc () = { from_node = -1; to_node = -1 }

type event =
  | Enqueue of { pkt : Packet.t; link : int * int; qpkts : int }
  | Dequeue of { pkt : Packet.t; link : int * int; qpkts : int }
  | Drop of { pkt : Packet.t; link : int * int; qpkts : int }
  | Mark of { pkt : Packet.t; link : int * int; qpkts : int }
  | Tx of { pkt : Packet.t; link : int * int }
  | Rx of { pkt : Packet.t; node : int }
  | Stray of { pkt : Packet.t; node : int }
  | Flow_start of {
      flow : int;
      src : int;
      dst : int;
      size_pkts : int;
      deadline : float option;
    }
  | Flow_finish of { flow : int; fct : float }
  | Flow_timeout of { flow : int; backoff : int }
  | Cwnd of { flow : int; cwnd : float; ssthresh : float }
  | Rate of { flow : int; rate_bps : float }
  | Queue_assign of { flow : int; queue : int; rref_bps : float }
  | Arb of { link : int * int; delegate : int; flows : int; top_flows : int }
  | Arb_alloc of {
      link : int * int;
      delegate : int;
      flow : int;
      queue : int;
      rref_bps : float;
    }
  | Delegate of { parent : int * int; tor : int; share_bps : float }
  | Ctrl of { flow : int; msgs : int }
  | Alpha of { flow : int; alpha : float }
  | Link_state of { link : int * int; up : bool }
  | Blackhole of { pkt : Packet.t; link : int * int }

let kind_of : event -> Kind.t = function
  | Enqueue _ -> Kind.Enqueue
  | Dequeue _ -> Kind.Dequeue
  | Drop _ -> Kind.Drop
  | Mark _ -> Kind.Mark
  | Tx _ -> Kind.Tx
  | Rx _ -> Kind.Rx
  | Stray _ -> Kind.Stray
  | Flow_start _ -> Kind.Flow_start
  | Flow_finish _ -> Kind.Flow_finish
  | Flow_timeout _ -> Kind.Flow_timeout
  | Cwnd _ -> Kind.Cwnd
  | Rate _ -> Kind.Rate
  | Queue_assign _ -> Kind.Queue_assign
  | Arb _ -> Kind.Arb
  | Arb_alloc _ -> Kind.Arb_alloc
  | Delegate _ -> Kind.Delegate
  | Ctrl _ -> Kind.Ctrl
  | Alpha _ -> Kind.Alpha
  | Link_state _ -> Kind.Link_state
  | Blackhole _ -> Kind.Blackhole

let flow_of = function
  | Enqueue { pkt; _ }
  | Dequeue { pkt; _ }
  | Drop { pkt; _ }
  | Mark { pkt; _ }
  | Tx { pkt; _ }
  | Rx { pkt; _ }
  | Stray { pkt; _ }
  | Blackhole { pkt; _ } ->
      pkt.Packet.flow
  | Flow_start { flow; _ }
  | Flow_finish { flow; _ }
  | Flow_timeout { flow; _ }
  | Cwnd { flow; _ }
  | Rate { flow; _ }
  | Queue_assign { flow; _ }
  | Arb_alloc { flow; _ }
  | Ctrl { flow; _ }
  | Alpha { flow; _ } ->
      flow
  | Arb _ | Delegate _ | Link_state _ -> -1

let link_of = function
  | Enqueue { link; _ }
  | Dequeue { link; _ }
  | Drop { link; _ }
  | Mark { link; _ }
  | Tx { link; _ }
  | Arb { link; _ }
  | Arb_alloc { link; _ }
  | Link_state { link; _ }
  | Blackhole { link; _ } ->
      Some link
  | Delegate { parent; _ } -> Some parent
  | Rx _ | Stray _ | Flow_start _ | Flow_finish _ | Flow_timeout _ | Cwnd _
  | Rate _ | Queue_assign _ | Ctrl _ | Alpha _ ->
      None

(* ---- serialization ------------------------------------------------------ *)

(* JSON has no nan/inf; those become null. %.17g round-trips doubles, so a
   rerun of the same simulation serializes to identical bytes. *)
let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.17g" f

let json_opt_float = function None -> "null" | Some f -> json_float f

let pkt_fields (p : Packet.t) =
  Printf.sprintf
    {|"pkt":%d,"flow":%d,"ptype":"%s","src":%d,"dst":%d,"seq":%d,"size":%d,"tos":%d,"prio":%s,"ce":%b|}
    p.Packet.id p.Packet.flow
    (Packet.kind_str p.Packet.kind)
    p.Packet.src p.Packet.dst p.Packet.seq p.Packet.size p.Packet.tos
    (json_float p.Packet.prio)
    p.Packet.ecn_ce

let to_json ~time ev =
  let head = Printf.sprintf {|{"t":%s,"kind":"%s",|} (json_float time)
      (Kind.name (kind_of ev))
  in
  let body =
    match ev with
    | Enqueue { pkt; link = a, b; qpkts }
    | Dequeue { pkt; link = a, b; qpkts }
    | Drop { pkt; link = a, b; qpkts }
    | Mark { pkt; link = a, b; qpkts } ->
        Printf.sprintf {|%s,"link":[%d,%d],"qpkts":%d|} (pkt_fields pkt) a b
          qpkts
    | Tx { pkt; link = a, b } ->
        Printf.sprintf {|%s,"link":[%d,%d]|} (pkt_fields pkt) a b
    | Rx { pkt; node } | Stray { pkt; node } ->
        Printf.sprintf {|%s,"node":%d|} (pkt_fields pkt) node
    | Flow_start { flow; src; dst; size_pkts; deadline } ->
        Printf.sprintf
          {|"flow":%d,"src":%d,"dst":%d,"size_pkts":%d,"deadline":%s|} flow src
          dst size_pkts (json_opt_float deadline)
    | Flow_finish { flow; fct } ->
        Printf.sprintf {|"flow":%d,"fct":%s|} flow (json_float fct)
    | Flow_timeout { flow; backoff } ->
        Printf.sprintf {|"flow":%d,"backoff":%d|} flow backoff
    | Cwnd { flow; cwnd; ssthresh } ->
        Printf.sprintf {|"flow":%d,"cwnd":%s,"ssthresh":%s|} flow
          (json_float cwnd) (json_float ssthresh)
    | Rate { flow; rate_bps } ->
        Printf.sprintf {|"flow":%d,"rate_bps":%s|} flow (json_float rate_bps)
    | Queue_assign { flow; queue; rref_bps } ->
        Printf.sprintf {|"flow":%d,"queue":%d,"rref_bps":%s|} flow queue
          (json_float rref_bps)
    | Arb { link = a, b; delegate; flows; top_flows } ->
        Printf.sprintf
          {|"link":[%d,%d],"delegate":%d,"flows":%d,"top_flows":%d|} a b
          delegate flows top_flows
    | Arb_alloc { link = a, b; delegate; flow; queue; rref_bps } ->
        Printf.sprintf
          {|"link":[%d,%d],"delegate":%d,"flow":%d,"queue":%d,"rref_bps":%s|} a
          b delegate flow queue (json_float rref_bps)
    | Delegate { parent = a, b; tor; share_bps } ->
        Printf.sprintf {|"parent":[%d,%d],"tor":%d,"share_bps":%s|} a b tor
          (json_float share_bps)
    | Ctrl { flow; msgs } -> Printf.sprintf {|"flow":%d,"msgs":%d|} flow msgs
    | Alpha { flow; alpha } ->
        Printf.sprintf {|"flow":%d,"alpha":%s|} flow (json_float alpha)
    | Link_state { link = a, b; up } ->
        Printf.sprintf {|"link":[%d,%d],"up":%b|} a b up
    | Blackhole { pkt; link = a, b } ->
        Printf.sprintf {|%s,"link":[%d,%d]|} (pkt_fields pkt) a b
  in
  head ^ body ^ "}"

(* ns-2-style one-liners: packet events lead with the classic op character
   (+ enqueue, - dequeue, d drop, m mark, t tx, r receive, ? stray); control
   events lead with the kind name. *)
let to_text ~time ev =
  let pkt_line op (p : Packet.t) rest =
    Printf.sprintf "%s %.9f %s flow=%d seq=%d size=%d tos=%d prio=%g%s" op time
      (Packet.kind_str p.Packet.kind)
      p.Packet.flow p.Packet.seq p.Packet.size p.Packet.tos p.Packet.prio rest
  in
  match ev with
  | Enqueue { pkt; link = a, b; qpkts } ->
      pkt_line "+" pkt (Printf.sprintf " %d>%d q=%d" a b qpkts)
  | Dequeue { pkt; link = a, b; qpkts } ->
      pkt_line "-" pkt (Printf.sprintf " %d>%d q=%d" a b qpkts)
  | Drop { pkt; link = a, b; qpkts } ->
      pkt_line "d" pkt (Printf.sprintf " %d>%d q=%d" a b qpkts)
  | Mark { pkt; link = a, b; qpkts } ->
      pkt_line "m" pkt (Printf.sprintf " %d>%d q=%d" a b qpkts)
  | Tx { pkt; link = a, b } -> pkt_line "t" pkt (Printf.sprintf " %d>%d" a b)
  | Rx { pkt; node } -> pkt_line "r" pkt (Printf.sprintf " @%d" node)
  | Stray { pkt; node } -> pkt_line "?" pkt (Printf.sprintf " @%d" node)
  | Flow_start { flow; src; dst; size_pkts; deadline } ->
      Printf.sprintf "flow-start %.9f flow=%d %d>%d size=%d deadline=%s" time
        flow src dst size_pkts
        (match deadline with None -> "-" | Some d -> Printf.sprintf "%g" d)
  | Flow_finish { flow; fct } ->
      Printf.sprintf "flow-finish %.9f flow=%d fct=%.9f" time flow fct
  | Flow_timeout { flow; backoff } ->
      Printf.sprintf "flow-timeout %.9f flow=%d backoff=%d" time flow backoff
  | Cwnd { flow; cwnd; ssthresh } ->
      Printf.sprintf "cwnd %.9f flow=%d cwnd=%g ssthresh=%g" time flow cwnd
        ssthresh
  | Rate { flow; rate_bps } ->
      Printf.sprintf "rate %.9f flow=%d rate=%g" time flow rate_bps
  | Queue_assign { flow; queue; rref_bps } ->
      Printf.sprintf "queue-assign %.9f flow=%d queue=%d rref=%g" time flow
        queue rref_bps
  | Arb { link = a, b; delegate; flows; top_flows } ->
      Printf.sprintf "arb %.9f %d>%d delegate=%d flows=%d top=%d" time a b
        delegate flows top_flows
  | Arb_alloc { link = a, b; delegate; flow; queue; rref_bps } ->
      Printf.sprintf "arb-alloc %.9f %d>%d delegate=%d flow=%d queue=%d rref=%g"
        time a b delegate flow queue rref_bps
  | Delegate { parent = a, b; tor; share_bps } ->
      Printf.sprintf "delegate %.9f %d>%d tor=%d share=%g" time a b tor
        share_bps
  | Ctrl { flow; msgs } ->
      Printf.sprintf "ctrl %.9f flow=%d msgs=%d" time flow msgs
  | Alpha { flow; alpha } ->
      Printf.sprintf "alpha %.9f flow=%d alpha=%g" time flow alpha
  | Link_state { link = a, b; up } ->
      Printf.sprintf "link-state %.9f %d>%d up=%b" time a b up
  | Blackhole { pkt; link = a, b } ->
      pkt_line "b" pkt (Printf.sprintf " %d>%d" a b)

(* ---- sinks -------------------------------------------------------------- *)

type sink = { emit : float -> event -> unit; close : unit -> unit }

let jsonl_sink oc =
  {
    emit =
      (fun time ev ->
        output_string oc (to_json ~time ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let text_sink oc =
  {
    emit =
      (fun time ev ->
        output_string oc (to_text ~time ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

type ring = {
  capacity : int;
  items : (float * event) option array;
  mutable next : int;  (* write cursor *)
  mutable stored : int;  (* total ever written *)
}

let ring_sink ~capacity =
  if capacity <= 0 then
    invalid_arg "Trace.ring_sink: capacity must be positive";
  let r =
    { capacity; items = Array.make capacity None; next = 0; stored = 0 }
  in
  let emit time ev =
    r.items.(r.next) <- Some (time, ev);
    r.next <- (r.next + 1) mod r.capacity;
    r.stored <- r.stored + 1
  in
  (r, { emit; close = (fun () -> ()) })

let ring_length r = min r.stored r.capacity
let ring_seen r = r.stored
let ring_dropped r = max 0 (r.stored - r.capacity)

(* Oldest first. *)
let ring_contents r =
  let n = ring_length r in
  let start = if r.stored <= r.capacity then 0 else r.next in
  List.init n (fun i ->
      match r.items.((start + i) mod r.capacity) with
      | Some e -> e
      | None -> assert false)

(* ---- the global bus ----------------------------------------------------- *)

let enabled = ref false
let on () = !enabled

let clock : (unit -> float) ref = ref (fun () -> 0.)
let set_clock f = clock := f

let sinks : sink list ref = ref []
let kind_mask = Array.make Kind.count true
let flow_filter : int list ref = ref []
let link_filter : (int * int) list ref = ref []
let emitted_count = ref 0

let attach sink =
  sinks := !sinks @ [ sink ];
  enabled := true

let set_kind_filter = function
  | None -> Array.fill kind_mask 0 Kind.count true
  | Some kinds ->
      Array.fill kind_mask 0 Kind.count false;
      List.iter (fun k -> kind_mask.(Kind.index k) <- true) kinds

let set_flow_filter = function
  | None -> flow_filter := []
  | Some flows -> flow_filter := flows

let set_link_filter = function
  | None -> link_filter := []
  | Some links -> link_filter := links

let reset () =
  List.iter (fun s -> s.close ()) !sinks;
  sinks := [];
  enabled := false;
  set_kind_filter None;
  set_flow_filter None;
  set_link_filter None;
  emitted_count := 0

let emitted () = !emitted_count

let emit ev =
  if !enabled then begin
    let pass =
      kind_mask.(Kind.index (kind_of ev))
      && (match !flow_filter with
         | [] -> true
         | fs ->
             let f = flow_of ev in
             f >= 0 && List.mem f fs)
      &&
      match !link_filter with
      | [] -> true
      | ls -> ( match link_of ev with Some l -> List.mem l ls | None -> false)
    in
    if pass then begin
      incr emitted_count;
      let time = !clock () in
      List.iter (fun s -> s.emit time ev) !sinks
    end
  end
