type t = {
  enqueue : Packet.t -> unit;
  dequeue : unit -> Packet.t option;
  pkts : unit -> int;
  bytes : unit -> int;
  bands : unit -> (int * int) array;
  drops : unit -> int;
  set_cap_frac : float -> unit;
  loc : Trace.loc;
}

(* Marking thresholds scale with the capacity fraction left to the packet
   tier: DCTCP's K is calibrated to the drain rate, so when fluid traffic
   consumes part of the link the residual drains slower and must mark
   earlier. Computed only when the fraction changes (a fluid control event),
   never on the per-packet path. *)
let scaled_threshold k frac =
  max 1 (int_of_float (ceil (float_of_int k *. frac)))

let link_of (loc : Trace.loc) = (loc.Trace.from_node, loc.Trace.to_node)

let count_drop (loc : Trace.loc) (c : Counters.t) ~qpkts (pkt : Packet.t) =
  c.dropped_pkts <- c.dropped_pkts + 1;
  c.dropped_bytes <- c.dropped_bytes + pkt.size;
  (match pkt.kind with
  | Packet.Data -> c.dropped_data_pkts <- c.dropped_data_pkts + 1
  | Packet.Ack | Packet.Probe | Packet.Probe_ack | Packet.Ctrl -> ());
  if Trace.on () then Trace.emit (Trace.Drop { pkt; link = link_of loc; qpkts })
  else
    (* A dropped packet leaves the data path here: every caller discards it
       after this call, so it can be recycled (trace off only; see above). *)
    Packet.free pkt

let count_enqueue (loc : Trace.loc) (c : Counters.t) ~qpkts (pkt : Packet.t) =
  c.enqueued_pkts <- c.enqueued_pkts + 1;
  c.enqueued_bytes <- c.enqueued_bytes + pkt.size;
  if Delay.on () then pkt.enq_at <- Delay.now ();
  if Trace.on () then
    Trace.emit (Trace.Enqueue { pkt; link = link_of loc; qpkts })

let count_dequeue (loc : Trace.loc) (c : Counters.t) ~qpkts (pkt : Packet.t) =
  c.dequeued_pkts <- c.dequeued_pkts + 1;
  c.dequeued_bytes <- c.dequeued_bytes + pkt.size;
  (* Delay attribution reads [pkt.enq_at] once per hop at delivery time
     (Link.prop_done), not here: one combined accumulation per hop instead
     of three separate guarded table lookups. *)
  if Trace.on () then
    Trace.emit (Trace.Dequeue { pkt; link = link_of loc; qpkts })

let count_mark (loc : Trace.loc) (c : Counters.t) ~qpkts (pkt : Packet.t) =
  pkt.Packet.ecn_ce <- true;
  c.Counters.ecn_marked_pkts <- c.Counters.ecn_marked_pkts + 1;
  if Trace.on () then Trace.emit (Trace.Mark { pkt; link = link_of loc; qpkts })

let no_bands () = [||]

let fifo counters ~limit_pkts ~mark_threshold =
  let q : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let drops = ref 0 in
  let loc = Trace.unattached_loc () in
  let eff_mark = ref mark_threshold in
  let set_cap_frac frac =
    match mark_threshold with
    | Some k -> eff_mark := Some (scaled_threshold k frac)
    | None -> ()
  in
  let enqueue pkt =
    if Queue.length q >= limit_pkts then begin
      incr drops;
      count_drop loc counters ~qpkts:(Queue.length q) pkt
    end
    else begin
      (match !eff_mark with
      | Some k when pkt.Packet.ecn_capable && Queue.length q >= k ->
          count_mark loc counters ~qpkts:(Queue.length q) pkt
      | _ -> ());
      (* lint: allow pool-lifetime — ownership transfers to the FIFO; freed on drop or delivery *)
      Queue.push pkt q;
      bytes := !bytes + pkt.Packet.size;
      count_enqueue loc counters ~qpkts:(Queue.length q) pkt
    end
  in
  let dequeue () =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
        bytes := !bytes - pkt.Packet.size;
        count_dequeue loc counters ~qpkts:(Queue.length q) pkt;
        Some pkt
  in
  {
    enqueue;
    dequeue;
    pkts = (fun () -> Queue.length q);
    bytes = (fun () -> !bytes);
    bands = no_bands;
    drops = (fun () -> !drops);
    set_cap_frac;
    loc;
  }

let droptail counters ~limit_pkts = fifo counters ~limit_pkts ~mark_threshold:None

let red_ecn counters ~limit_pkts ~mark_threshold =
  fifo counters ~limit_pkts ~mark_threshold:(Some mark_threshold)
