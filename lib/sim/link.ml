(* The transmitter serializes: at most one packet is "on the wire head"
   ([txing]) at a time, and completed transmissions enter a FIFO ring of
   in-flight packets awaiting the (constant, per-link) propagation delay.
   Because the delay is constant and transmissions complete in schedule
   order, propagation events fire in ring order — so the two per-hop
   closures ("link-tx", "link-prop") are allocated once per link at
   [create] and reused for every packet, instead of once per packet hop. *)

type t = {
  engine : Engine.t;
  qdisc : Queue_disc.t;
  rate_bps : float;
  delay_s : float;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable bytes_txed : int;
  dummy : Packet.t;  (* fills dead slots so the ring retains nothing *)
  mutable txing : Packet.t;  (* the packet being serialized; dummy if none *)
  mutable fly : Packet.t array;  (* in-flight ring, FIFO *)
  mutable fly_head : int;
  mutable fly_len : int;
  mutable tx_done : unit -> unit;
  mutable prop_done : unit -> unit;
}

let fly_push t pkt =
  let cap = Array.length t.fly in
  if t.fly_len = cap then begin
    let ncap = 2 * cap in
    let nfly = Array.make ncap t.dummy in
    for i = 0 to t.fly_len - 1 do
      nfly.(i) <- t.fly.((t.fly_head + i) mod cap)
    done;
    t.fly <- nfly;
    t.fly_head <- 0
  end;
  t.fly.((t.fly_head + t.fly_len) mod Array.length t.fly) <- pkt;
  t.fly_len <- t.fly_len + 1

let fly_pop t =
  let pkt = t.fly.(t.fly_head) in
  t.fly.(t.fly_head) <- t.dummy;
  t.fly_head <- (t.fly_head + 1) mod Array.length t.fly;
  t.fly_len <- t.fly_len - 1;
  pkt

let transmit_next t =
  match t.qdisc.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      t.txing <- pkt;
      let tx_time = float_of_int (8 * pkt.Packet.size) /. t.rate_bps in
      Engine.schedule ~label:"link-tx" t.engine ~delay:tx_time t.tx_done

let create engine ~qdisc ~rate_bps ~delay_s ~deliver =
  if rate_bps <= 0. then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  let dummy = Packet.dummy () in
  let t =
    {
      engine;
      qdisc;
      rate_bps;
      delay_s;
      deliver;
      busy = false;
      bytes_txed = 0;
      dummy;
      txing = dummy;
      fly = Array.make 8 dummy;
      fly_head = 0;
      fly_len = 0;
      tx_done = ignore;
      prop_done = ignore;
    }
  in
  t.prop_done <- (fun () -> t.deliver (fly_pop t));
  t.tx_done <-
    (fun () ->
      let pkt = t.txing in
      t.txing <- t.dummy;
      t.bytes_txed <- t.bytes_txed + pkt.Packet.size;
      (if Trace.on () then
         let l = t.qdisc.Queue_disc.loc in
         Trace.emit
           (Trace.Tx { pkt; link = (l.Trace.from_node, l.Trace.to_node) }));
      (* Propagation: the head bit pipeline is folded into arrival time;
         the transmitter is free as soon as the last bit leaves. *)
      fly_push t pkt;
      Engine.schedule ~label:"link-prop" t.engine ~delay:t.delay_s t.prop_done;
      transmit_next t);
  t

let send t pkt =
  t.qdisc.Queue_disc.enqueue pkt;
  if not t.busy then transmit_next t

let rate_bps t = t.rate_bps
let delay_s t = t.delay_s
let qdisc t = t.qdisc
let bytes_txed t = t.bytes_txed
let busy t = t.busy
