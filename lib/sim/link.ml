type t = {
  engine : Engine.t;
  qdisc : Queue_disc.t;
  rate_bps : float;
  delay_s : float;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable bytes_txed : int;
}

let create engine ~qdisc ~rate_bps ~delay_s ~deliver =
  if rate_bps <= 0. then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  { engine; qdisc; rate_bps; delay_s; deliver; busy = false; bytes_txed = 0 }

let rec transmit_next t =
  match t.qdisc.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx_time = float_of_int (8 * pkt.Packet.size) /. t.rate_bps in
      Engine.schedule ~label:"link-tx" t.engine ~delay:tx_time (fun () ->
          t.bytes_txed <- t.bytes_txed + pkt.Packet.size;
          (if Trace.on () then
             let l = t.qdisc.Queue_disc.loc in
             Trace.emit
               (Trace.Tx { pkt; link = (l.Trace.from_node, l.Trace.to_node) }));
          (* Propagation: the head bit pipeline is folded into arrival time;
             the transmitter is free as soon as the last bit leaves. *)
          Engine.schedule ~label:"link-prop" t.engine ~delay:t.delay_s
            (fun () -> t.deliver pkt);
          transmit_next t)

let send t pkt =
  t.qdisc.Queue_disc.enqueue pkt;
  if not t.busy then transmit_next t

let rate_bps t = t.rate_bps
let delay_s t = t.delay_s
let qdisc t = t.qdisc
let bytes_txed t = t.bytes_txed
let busy t = t.busy
