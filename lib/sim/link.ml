(* The transmitter serializes: at most one packet is "on the wire head"
   ([txing]) at a time, and completed transmissions enter a FIFO ring of
   in-flight packets awaiting the (constant, per-link) propagation delay.
   Because the delay is constant and transmissions complete in schedule
   order, propagation events fire in ring order — so the two per-hop
   closures ("link-tx", "link-prop") are allocated once per link at
   [create] and reused for every packet, instead of once per packet hop.

   Fault plane: a link can be administratively [set_up false]. While down,
   the transmitter stalls (queued packets wait in the qdisc and may
   overflow it) and everything already on the wire is blackholed — the
   packet being serialized when the link dropped ([tx_doomed]) and the
   [doomed_fly] oldest ring entries, whose propagation events still fire on
   schedule but discard instead of delivering. Senders recover via their
   normal RTO path. *)

type t = {
  engine : Engine.t;
  qdisc : Queue_disc.t;
  rate_bps : float;
  mutable fluid_bps : float;
      (* capacity consumed by the fluid tier; the transmitter serializes
         against the residual. 0 outside hybrid runs: [rate -. 0. = rate]
         exactly, so the packet path is bit-identical with hybrid off. *)
  mutable standing_s : float;
      (* extra one-way latency modelling the standing queue fluid flows
         bottlenecked here maintain (DCTCP holds ~K packets); 0 outside
         hybrid runs and on non-bottleneck links *)
  mutable last_arrival : float;
      (* latest scheduled arrival; arrivals are clamped monotone so the
         constant-delay FIFO ring keeps firing in order even as
         [standing_s] moves between fluid recomputes *)
  delay_s : float;
  deliver : Packet.t -> unit;
  counters : Counters.t option;
  mutable busy : bool;
  mutable up : bool;
  mutable tx_doomed : bool;  (* packet on the wire head when the link died *)
  mutable doomed_fly : int;  (* oldest in-flight packets to blackhole *)
  mutable blackholed : int;
  mutable bytes_txed : int;
  dummy : Packet.t;  (* fills dead slots so the ring retains nothing *)
  mutable txing : Packet.t;  (* the packet being serialized; dummy if none *)
  mutable fly : Packet.t array;  (* in-flight ring, FIFO *)
  mutable fly_head : int;
  mutable fly_len : int;
  mutable tx_done : unit -> unit;
  mutable prop_done : unit -> unit;
}

let fly_push t pkt =
  let cap = Array.length t.fly in
  if t.fly_len = cap then begin
    let ncap = 2 * cap in
    let nfly = Array.make ncap t.dummy in
    for i = 0 to t.fly_len - 1 do
      (* lint: allow pool-lifetime — ring growth moves live in-flight packets between the old and new backing arrays *)
      nfly.(i) <- t.fly.((t.fly_head + i) mod cap)
    done;
    t.fly <- nfly;
    t.fly_head <- 0
  end;
  (* lint: allow pool-lifetime — ownership transfers to the in-flight ring; freed on delivery or blackhole *)
  t.fly.((t.fly_head + t.fly_len) mod Array.length t.fly) <- pkt;
  t.fly_len <- t.fly_len + 1

let fly_pop t =
  let pkt = t.fly.(t.fly_head) in
  t.fly.(t.fly_head) <- t.dummy;
  t.fly_head <- (t.fly_head + 1) mod Array.length t.fly;
  t.fly_len <- t.fly_len - 1;
  pkt

let blackhole t pkt =
  t.blackholed <- t.blackholed + 1;
  (match t.counters with
  | Some c -> c.Counters.blackholed_pkts <- c.Counters.blackholed_pkts + 1
  | None -> ());
  if Trace.on () then begin
    let l = t.qdisc.Queue_disc.loc in
    Trace.emit
      (Trace.Blackhole { pkt; link = (l.Trace.from_node, l.Trace.to_node) })
  end
  else Packet.free pkt

let transmit_next t =
  if not t.up then t.busy <- false
  else
    match t.qdisc.Queue_disc.dequeue () with
    | None -> t.busy <- false
    | Some pkt ->
        t.busy <- true;
        (* lint: allow pool-lifetime — ownership transfers to the wire head; handed to the fly ring or blackholed at tx_done *)
        t.txing <- pkt;
        let tx_time =
          float_of_int (8 * pkt.Packet.size) /. (t.rate_bps -. t.fluid_bps)
        in
        Engine.schedule ~label:"link-tx" t.engine ~delay:tx_time t.tx_done

let create engine ~qdisc ~rate_bps ~delay_s ?counters ~deliver () =
  if rate_bps <= 0. then invalid_arg "Link.create: rate must be positive";
  if delay_s < 0. then invalid_arg "Link.create: negative delay";
  let dummy = Packet.dummy () in
  let t =
    {
      engine;
      qdisc;
      rate_bps;
      delay_s;
      deliver;
      counters;
      fluid_bps = 0.;
      standing_s = 0.;
      last_arrival = 0.;
      busy = false;
      up = true;
      tx_doomed = false;
      doomed_fly = 0;
      blackholed = 0;
      bytes_txed = 0;
      dummy;
      txing = dummy;
      fly = Array.make 8 dummy;
      fly_head = 0;
      fly_len = 0;
      tx_done = ignore;
      prop_done = ignore;
    }
  in
  t.prop_done <-
    (fun () ->
      let pkt = fly_pop t in
      if t.doomed_fly > 0 then begin
        t.doomed_fly <- t.doomed_fly - 1;
        blackhole t pkt
      end
      else begin
        (if Delay.on () then
           (* The whole hop's attribution in one call: arrival time minus
              the propagation and (current-rate) serialization components is
              the qdisc residence, measured from the [enq_at] stamp. Only
              delivered packets contribute to the measured proportions. *)
           let ser =
             float_of_int (8 * pkt.Packet.size) /. (t.rate_bps -. t.fluid_bps)
           in
           let queue =
             Delay.now () -. t.delay_s -. ser -. pkt.Packet.enq_at
           in
           Delay.hop ~flow:pkt.Packet.flow
             ~queue:(Float.max 0. queue)
             ~ser ~prop:t.delay_s);
        t.deliver pkt
      end);
  t.tx_done <-
    (fun () ->
      let pkt = t.txing in
      t.txing <- t.dummy;
      if t.tx_doomed then begin
        (* The link dropped while this packet was being serialized: the
           tail never made it onto the wire. *)
        t.tx_doomed <- false;
        blackhole t pkt;
        transmit_next t
      end
      else begin
        t.bytes_txed <- t.bytes_txed + pkt.Packet.size;
        (if Trace.on () then
           let l = t.qdisc.Queue_disc.loc in
           Trace.emit
             (Trace.Tx { pkt; link = (l.Trace.from_node, l.Trace.to_node) }));
        (* Propagation: the head bit pipeline is folded into arrival time;
           the transmitter is free as soon as the last bit leaves. *)
        fly_push t pkt;
        (* The fast branch is the exact pre-hybrid computation: with the
           standing term never set (and so [last_arrival] never touched)
           the scheduled delay is bit-identical to [delay_s]. The slow
           branch clamps arrivals monotone — a FIFO never reorders — so a
           shrinking standing term cannot invert the fly ring's order. *)
        (if t.standing_s = 0. && t.last_arrival = 0. then
           Engine.schedule ~label:"link-prop" t.engine ~delay:t.delay_s
             t.prop_done
         else begin
           let now = Engine.now t.engine in
           let arrive =
             Float.max (now +. t.delay_s +. t.standing_s) t.last_arrival
           in
           t.last_arrival <- arrive;
           Engine.schedule ~label:"link-prop" t.engine ~delay:(arrive -. now)
             t.prop_done
         end);
        transmit_next t
      end);
  t

let set_up t up =
  if up <> t.up then begin
    t.up <- up;
    if up then begin
      if not t.busy then transmit_next t
    end
    else begin
      (* Everything on the wire is lost: the packet mid-serialization and
         every in-flight packet. Their already-scheduled events still fire
         (determinism: the event stream never mutates) but discard. *)
      t.doomed_fly <- t.fly_len;
      if t.busy then t.tx_doomed <- true
    end
  end

let send t pkt =
  t.qdisc.Queue_disc.enqueue pkt;
  if (not t.busy) && t.up then transmit_next t

let rate_bps t = t.rate_bps
let delay_s t = t.delay_s

(* At most 98% of the line rate goes to the fluid tier: the residual keeps
   ACKs and stray control packets of the packet tier trickling even on
   links the allocator filled completely (n_pkt counts only registered
   data paths, not reverse ACK paths). *)
let set_fluid_bps t bps =
  let bps = Float.max 0. (Float.min bps (0.98 *. t.rate_bps)) in
  if bps <> t.fluid_bps then begin
    t.fluid_bps <- bps;
    t.qdisc.Queue_disc.set_cap_frac ((t.rate_bps -. t.fluid_bps) /. t.rate_bps)
  end

let fluid_bps t = t.fluid_bps

(* Standing-queue latency from the fluid tier: DCTCP-family fluid flows hold
   roughly the marking threshold of backlog at their bottleneck, which
   packet-tier traffic waits behind in the full engine. Negative values
   clamp to zero; shrinkage is safe (arrival clamping above). *)
let set_standing_s t s = t.standing_s <- Float.max 0. s
let standing_s t = t.standing_s
let qdisc t = t.qdisc
let bytes_txed t = t.bytes_txed
let busy t = t.busy
let is_up t = t.up
let blackholed t = t.blackholed
