(** Deterministic traversal of [Hashtbl.t].

    [Hashtbl.iter] and [Hashtbl.fold] visit bindings in bucket order, which
    depends on the hash function and table history — iteration order leaks
    into float-summation order, list construction and event scheduling, and
    with it nondeterminism into results that must be byte-identical across
    runs. Every traversal of a hashtable in the simulator goes through this
    module instead: bindings are visited sorted by key.

    The [pase_lint] rule [no-hash-order] enforces this; this module is the
    single allowlisted implementation site.

    Tables are expected to use [Hashtbl.replace] semantics (at most one
    binding per key). If a key has several bindings, all are visited,
    most-recently-added first, adjacent in the sorted order. *)

(** [to_list tbl] is the bindings of [tbl] sorted by key with [cmp]
    (default: [Stdlib.compare]). *)
val to_list : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list

(** [keys tbl] is the keys of [tbl] in sorted order. *)
val keys : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

(** [iter f tbl] applies [f] to every binding, in sorted key order. *)
val iter : ?cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

(** [fold f tbl init] folds over bindings in sorted key order. Argument
    order mirrors [Hashtbl.fold]. *)
val fold :
  ?cmp:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
