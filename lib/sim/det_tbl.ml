(* The single place where hash-order traversal is allowed: the order is
   erased by the sort before any caller sees it. [stable_sort] keeps
   duplicate-key bindings in [Hashtbl.fold] relative order (most recent
   first), so even degenerate multi-binding tables traverse reproducibly. *)

let to_list ?(cmp = Stdlib.compare) tbl =
  (* lint: allow no-hash-order — traversal order is erased by the sort below *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.stable_sort (fun (a, _) (b, _) -> cmp a b)

let keys ?cmp tbl = List.map fst (to_list ?cmp tbl)
let iter ?cmp f tbl = List.iter (fun (k, v) -> f k v) (to_list ?cmp tbl)

let fold ?cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (to_list ?cmp tbl)
