(** Unidirectional link: a queue discipline drained at a fixed rate, followed
    by a propagation delay. Store-and-forward: a packet's transmission takes
    [8 * size / rate] seconds, after which it arrives [delay] seconds later
    at the receiving end's [deliver] callback. *)

type t

val create :
  Engine.t ->
  qdisc:Queue_disc.t ->
  rate_bps:float ->
  delay_s:float ->
  ?counters:Counters.t ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t

(** [send t pkt] enqueues [pkt] and starts the transmitter if idle. While the
    link is down packets accumulate in (and may overflow) the qdisc. *)
val send : t -> Packet.t -> unit

val rate_bps : t -> float
val delay_s : t -> float
val qdisc : t -> Queue_disc.t

(** Hybrid coupling: [set_fluid_bps t bps] declares that the fluid tier
    consumes [bps] of this link's capacity (clamped to 98% of line rate).
    The transmitter serializes packets against the residual and the qdisc
    rescales its ECN threshold to the residual drain rate. 0 outside hybrid
    runs — the packet path is then bit-identical to a build without the
    fluid tier. *)
val set_fluid_bps : t -> float -> unit

val fluid_bps : t -> float

(** [set_standing_s t s] adds [s] seconds of one-way latency modelling the
    standing queue that fluid flows bottlenecked on this link maintain
    (DCTCP-family congestion control holds roughly the marking threshold of
    backlog, which packet-tier traffic waits behind in the full engine).
    Arrivals stay monotone — a FIFO never reorders — so the term may shrink
    between fluid recomputes without breaking event order. Negative values
    clamp to zero; 0 outside hybrid runs (bit-identical packet path). *)
val set_standing_s : t -> float -> unit

val standing_s : t -> float

(** Total bytes fully transmitted so far (utilization accounting). *)
val bytes_txed : t -> int

val busy : t -> bool

(** [set_up t up] changes the administrative state. Taking the link down
    blackholes the packet being serialized and every in-flight packet
    (senders recover by RTO); bringing it up restarts the transmitter.
    Idempotent. Links start up. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** Packets blackholed on this link so far. *)
val blackholed : t -> int
