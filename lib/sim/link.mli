(** Unidirectional link: a queue discipline drained at a fixed rate, followed
    by a propagation delay. Store-and-forward: a packet's transmission takes
    [8 * size / rate] seconds, after which it arrives [delay] seconds later
    at the receiving end's [deliver] callback. *)

type t

val create :
  Engine.t ->
  qdisc:Queue_disc.t ->
  rate_bps:float ->
  delay_s:float ->
  ?counters:Counters.t ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t

(** [send t pkt] enqueues [pkt] and starts the transmitter if idle. While the
    link is down packets accumulate in (and may overflow) the qdisc. *)
val send : t -> Packet.t -> unit

val rate_bps : t -> float
val delay_s : t -> float
val qdisc : t -> Queue_disc.t

(** Total bytes fully transmitted so far (utilization accounting). *)
val bytes_txed : t -> int

val busy : t -> bool

(** [set_up t up] changes the administrative state. Taking the link down
    blackholes the packet being serialized and every in-flight packet
    (senders recover by RTO); bringing it up restarts the transmitter.
    Idempotent. Links start up. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** Packets blackholed on this link so far. *)
val blackholed : t -> int
