(** Binary min-heap keyed by [(time, seq)], used as the simulator's event
    queue. Ties on [time] break on insertion order ([seq]), giving the
    engine FIFO semantics for simultaneous events.

    The heap is laid out as a structure of arrays: an unboxed [float array]
    of times, an [int array] of seqs, and a value array. Keys never touch
    the OCaml heap after insertion, and sifting moves at most one slot per
    level (hole-based, not swap-based). *)

type 'a t

(** [create ~dummy ()] makes an empty heap. [dummy] fills dead value slots
    so popped values are not retained; it is never returned by any
    accessor. *)
val create : dummy:'a -> unit -> 'a t

(** [add t ~time ~seq v] inserts [v] with key [(time, seq)]. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** [min_time t] is the time key of the minimum element. Unspecified when
    the heap is empty: check {!is_empty} first. *)
val min_time : 'a t -> float

(** [min_seq t] is the seq key of the minimum element. Unspecified when the
    heap is empty: check {!is_empty} first. *)
val min_seq : 'a t -> int

(** [pop_min t] removes and returns the minimum element. The heap must not
    be empty: check {!is_empty} first. *)
val pop_min : 'a t -> 'a

(** [pop t] removes and returns the minimum element with its time, or
    [None] if empty. Convenience wrapper over {!pop_min}. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time t] returns the key of the minimum element without removal. *)
val peek_time : 'a t -> float option

(** [compact t ~keep] drops every element for which [keep ~seq v] is false,
    then restores the heap invariant (Floyd heapify, O(n)). Relative order
    of surviving elements is unchanged because their keys are unchanged.
    When survivors occupy less than a quarter of capacity (and capacity
    exceeds the 64-slot floor) the SoA backing arrays are reallocated at 2x
    the live size, releasing the high-water-mark footprint. *)
val compact : 'a t -> keep:(seq:int -> 'a -> bool) -> unit

val size : 'a t -> int
val is_empty : 'a t -> bool

(** Current backing-array capacity in slots (all three SoA arrays share
    it). Exposed for memory accounting and tests. *)
val capacity : 'a t -> int
