type sample = {
  time : float;
  utilization : float;
  queue_pkts : int;
  queue_bytes : int;
  bands : (int * int) array;
}

type tracked = {
  label : string;
  link : Link.t;
  mutable last_bytes : int;
  mutable samples : sample list;  (* newest first *)
}

type t = {
  engine : Engine.t;
  period : float;
  tracked : tracked list;
  mutable running : bool;
}

let rec tick t =
  if t.running then begin
    let now = Engine.now t.engine in
    List.iter
      (fun tr ->
        let bytes = Link.bytes_txed tr.link in
        let delta = bytes - tr.last_bytes in
        tr.last_bytes <- bytes;
        let capacity_bytes = Link.rate_bps tr.link *. t.period /. 8. in
        let utilization =
          if capacity_bytes <= 0. then 0.
          else Float.min 1. (float_of_int delta /. capacity_bytes)
        in
        let disc = Link.qdisc tr.link in
        tr.samples <-
          {
            time = now;
            utilization;
            queue_pkts = disc.Queue_disc.pkts ();
            queue_bytes = disc.Queue_disc.bytes ();
            bands = disc.Queue_disc.bands ();
          }
          :: tr.samples)
      t.tracked;
    Engine.schedule ~label:"telemetry" t.engine ~delay:t.period (fun () ->
        tick t)
  end

let create engine ~period links =
  if period <= 0. then invalid_arg "Telemetry.create: period must be positive";
  let tracked =
    List.map
      (fun (label, link) ->
        { label; link; last_bytes = Link.bytes_txed link; samples = [] })
      links
  in
  let t = { engine; period; tracked; running = true } in
  Engine.schedule ~label:"telemetry" engine ~delay:period (fun () -> tick t);
  t

let stop t = t.running <- false

let find t label = List.find_opt (fun tr -> tr.label = label) t.tracked

let samples t label =
  match find t label with Some tr -> List.rev tr.samples | None -> []

let mean_utilization t label =
  match samples t label with
  | [] -> nan
  | ss ->
      List.fold_left (fun acc s -> acc +. s.utilization) 0. ss
      /. float_of_int (List.length ss)

let peak_queue t label =
  List.fold_left (fun acc s -> max acc s.queue_pkts) 0 (samples t label)

let peak_queue_bytes t label =
  List.fold_left (fun acc s -> max acc s.queue_bytes) 0 (samples t label)

let peak_band t label band =
  List.fold_left
    (fun (pk, by) s ->
      if band < Array.length s.bands then
        let p, b = s.bands.(band) in
        (max pk p, max by b)
      else (pk, by))
    (0, 0) (samples t label)

let labels t = List.map (fun tr -> tr.label) t.tracked
