type event = { fn : unit -> unit; mutable live : bool; ctr : int ref option }

type t = {
  heap : event Eheap.t;
  mutable time : float;
  mutable seq : int;
  mutable processed : int;
  mutable stopped : bool;
  mutable profiling : bool;
  site_counts : (string, int ref) Hashtbl.t;
  mutable peak_heap : int;
  mutable wall_s : float;
}

type cancel = unit -> unit

type profile = {
  executed : int;
  peak_heap : int;
  wall_s : float;
  sites : (string * int) list;
}

let create () =
  {
    heap = Eheap.create ();
    time = 0.;
    seq = 0;
    processed = 0;
    stopped = false;
    profiling = false;
    site_counts = Hashtbl.create 16;
    peak_heap = 0;
    wall_s = 0.;
  }

let now t = t.time
let set_profiling t flag = t.profiling <- flag

let profile t =
  {
    executed = t.processed;
    peak_heap = t.peak_heap;
    wall_s = t.wall_s;
    sites =
      Det_tbl.fold (fun label c acc -> (label, !c) :: acc) t.site_counts []
      |> List.rev;
  }

(* Profiling resolves the label to its counter at schedule time; execution
   then pays a single [incr]. Label strings are only consulted when
   profiling is on, so the default path allocates nothing extra. *)
let site_ctr t label =
  if not t.profiling then None
  else
    match label with
    | None -> None
    | Some l -> (
        match Hashtbl.find_opt t.site_counts l with
        | Some c -> Some c
        | None ->
            let c = ref 0 in
            Hashtbl.replace t.site_counts l c;
            Some c)

let note_depth t =
  let d = Eheap.size t.heap in
  if d > t.peak_heap then t.peak_heap <- d

let schedule_at ?label t ~time fn =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.time);
  let e = { fn; live = true; ctr = site_ctr t label } in
  Eheap.add t.heap ~time ~seq:t.seq e;
  t.seq <- t.seq + 1;
  note_depth t

let schedule ?label t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?label t ~time:(t.time +. delay) fn

let schedule_cancellable ?label t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let e = { fn; live = true; ctr = site_ctr t label } in
  Eheap.add t.heap ~time:(t.time +. delay) ~seq:t.seq e;
  t.seq <- t.seq + 1;
  note_depth t;
  fun () -> e.live <- false

let run ?until ?max_events t =
  t.stopped <- false;
  let wall_start =
    (* lint: allow no-wallclock — profiling only; never feeds back into the
       simulation or its results. *)
    if t.profiling then Sys.time () else 0.
  in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  let exhausted = ref false in
  (* The horizon check peeks instead of popping-and-reinserting: the future
     event keeps its original seq, so FIFO tie-order is stable across chunked
     [run ~until] calls. *)
  while !continue && not t.stopped do
    match (Eheap.peek_time t.heap, until) with
    | None, _ ->
        exhausted := true;
        continue := false
    | Some next, Some horizon when next > horizon ->
        exhausted := true;
        continue := false
    | Some _, _ -> (
        match Eheap.pop t.heap with
        | None -> continue := false
        | Some (time, e) ->
            if e.live then begin
              t.time <- time;
              t.processed <- t.processed + 1;
              (match e.ctr with Some c -> incr c | None -> ());
              e.fn ();
              decr budget;
              if !budget <= 0 then continue := false
            end)
  done;
  if t.profiling then
    (* lint: allow no-wallclock — profiling only; never feeds back into the
       simulation or its results. *)
    t.wall_s <- t.wall_s +. (Sys.time () -. wall_start);
  (* A run that reached its horizon (rather than being stopped or running out
     of event budget) has simulated the whole [0, until] window: advance the
     clock so [now] reports the horizon, not the last event time. *)
  match until with
  | Some horizon when !exhausted && (not t.stopped) && horizon > t.time ->
      t.time <- horizon
  | _ -> ()

let stop t = t.stopped <- true
let events_processed t = t.processed
let pending t = Eheap.size t.heap
