(* Event records are mutable and pooled: a fired one-shot event goes back on
   a free list and its closure reference is dropped immediately (closures
   capture packets and flow state; see Eheap on retention). Timer events are
   owned by their [timer] handle for the life of the simulation and are
   never pooled.

   Staleness protocol: a heap slot is live iff the event it holds has
   [live = true] AND the slot's seq equals the event's [key_seq]. Timer
   rescheduling pushes a fresh slot with a fresh seq and bumps [key_seq];
   the superseded slot goes stale in place, no heap surgery needed. The
   engine counts dead slots and compacts the heap when they outnumber live
   ones ([maybe_compact]). *)

type event = {
  mutable fn : unit -> unit;
  mutable live : bool;
  mutable key_seq : int;  (* seq of the one heap slot that may fire this *)
  mutable gen : int;  (* bumped on pool reuse; guards stale cancel handles *)
  recyclable : bool;  (* timers are permanent, one-shots return to the pool *)
  mutable ctr : int ref option;
}

type timer = { tev : event; tlabel : string option }

type t = {
  heap : event Eheap.t;
  mutable time : float;
  mutable seq : int;
  mutable processed : int;
  mutable dead : int;  (* cancelled/superseded slots still in the heap *)
  mutable stopped : bool;
  mutable pool : event array;
  mutable pool_len : int;
  mutable profiling : bool;
  site_counts : (string, int ref) Hashtbl.t;
  mutable peak_heap : int;
  mutable wall_s : float;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_collections : int;
}

type cancel = unit -> unit

type profile = {
  executed : int;
  peak_heap : int;
  wall_s : float;
  minor_words : float;
  promoted_words : float;
  major_collections : int;
  sites : (string * int) list;
}

let ignore_fn = ignore

let dummy_event () =
  {
    fn = ignore_fn;
    live = false;
    key_seq = min_int;
    gen = 0;
    recyclable = false;
    ctr = None;
  }

let create () =
  {
    heap = Eheap.create ~dummy:(dummy_event ()) ();
    time = 0.;
    seq = 0;
    processed = 0;
    dead = 0;
    stopped = false;
    pool = [||];
    pool_len = 0;
    profiling = false;
    site_counts = Hashtbl.create 16;
    peak_heap = 0;
    wall_s = 0.;
    minor_words = 0.;
    promoted_words = 0.;
    major_collections = 0;
  }

let now t = t.time
let set_profiling t flag = t.profiling <- flag

let profile t =
  {
    executed = t.processed;
    peak_heap = t.peak_heap;
    wall_s = t.wall_s;
    minor_words = t.minor_words;
    promoted_words = t.promoted_words;
    major_collections = t.major_collections;
    sites =
      Det_tbl.fold (fun label c acc -> (label, !c) :: acc) t.site_counts []
      |> List.rev;
  }

(* Profiling resolves the label to its counter at schedule time; execution
   then pays a single [incr]. Label strings are only consulted when
   profiling is on, so the default path allocates nothing extra. *)
let site_ctr t label =
  if not t.profiling then None
  else
    match label with
    | None -> None
    | Some l -> (
        match Hashtbl.find_opt t.site_counts l with
        | Some c -> Some c
        | None ->
            let c = ref 0 in
            Hashtbl.replace t.site_counts l c;
            Some c)

let note_depth t =
  let d = Eheap.size t.heap in
  if d > t.peak_heap then t.peak_heap <- d

let pool_cap = 1024

let recycle t e =
  e.fn <- ignore_fn;
  e.ctr <- None;
  e.live <- false;
  if t.pool_len < pool_cap then begin
    if t.pool_len = Array.length t.pool then begin
      let ncap = max 64 (min pool_cap (2 * Array.length t.pool)) in
      let np = Array.make ncap e in
      Array.blit t.pool 0 np 0 t.pool_len;
      t.pool <- np
    end;
    t.pool.(t.pool_len) <- e;
    t.pool_len <- t.pool_len + 1
  end

let alloc_event t fn ctr =
  if t.pool_len > 0 then begin
    t.pool_len <- t.pool_len - 1;
    let e = t.pool.(t.pool_len) in
    e.fn <- fn;
    e.live <- true;
    e.gen <- e.gen + 1;
    e.ctr <- ctr;
    e
  end
  else { fn; live = true; key_seq = 0; gen = 0; recyclable = true; ctr }

(* Compact when dead slots outnumber live ones (and there are enough of
   them to matter). The trigger and the sweep are pure functions of
   simulation state, so compaction never perturbs results. *)
let maybe_compact t =
  let n = Eheap.size t.heap in
  if t.dead > 64 && 2 * t.dead > n then begin
    Eheap.compact t.heap ~keep:(fun ~seq e -> e.live && e.key_seq = seq);
    t.dead <- 0
  end

let push t ~time fn ctr =
  let e = alloc_event t fn ctr in
  e.key_seq <- t.seq;
  Eheap.add t.heap ~time ~seq:t.seq e;
  t.seq <- t.seq + 1;
  note_depth t;
  e

let schedule_at ?label t ~time fn =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.time);
  ignore (push t ~time fn (site_ctr t label))

let schedule ?label t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?label t ~time:(t.time +. delay) fn

let schedule_cancellable ?label t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let e = push t ~time:(t.time +. delay) fn (site_ctr t label) in
  let g = e.gen in
  fun () ->
    if e.gen = g && e.live then begin
      e.live <- false;
      t.dead <- t.dead + 1;
      maybe_compact t
    end

let timer ?label _t fn =
  {
    tev =
      {
        fn;
        live = false;
        key_seq = min_int;
        gen = 0;
        recyclable = false;
        ctr = None;
      };
    tlabel = label;
  }

let timer_schedule_at t tm ~time =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.timer_schedule_at: time %g is in the past (now %g)"
         time t.time);
  let e = tm.tev in
  if e.live then t.dead <- t.dead + 1 (* the superseded slot goes stale *);
  e.live <- true;
  e.key_seq <- t.seq;
  e.ctr <- site_ctr t tm.tlabel;
  Eheap.add t.heap ~time ~seq:t.seq e;
  t.seq <- t.seq + 1;
  note_depth t;
  maybe_compact t

let timer_schedule t tm ~delay =
  if delay < 0. then invalid_arg "Engine.timer_schedule: negative delay";
  timer_schedule_at t tm ~time:(t.time +. delay)

let timer_cancel t tm =
  let e = tm.tev in
  if e.live then begin
    e.live <- false;
    t.dead <- t.dead + 1;
    maybe_compact t
  end

let timer_pending tm = tm.tev.live

let run ?until ?max_events t =
  t.stopped <- false;
  let wall_start =
    (* lint: allow no-wallclock — profiling only; never feeds back into the
       simulation or its results. *)
    if t.profiling then Sys.time () else 0.
  in
  let gc_start = if t.profiling then Some (Gc.quick_stat ()) else None in
  let horizon = match until with None -> infinity | Some h -> h in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  let exhausted = ref false in
  (* The horizon check peeks instead of popping-and-reinserting: the future
     event keeps its original seq, so FIFO tie-order is stable across chunked
     [run ~until] calls. *)
  while !continue && not t.stopped do
    if Eheap.is_empty t.heap then begin
      exhausted := true;
      continue := false
    end
    else begin
      let time = Eheap.min_time t.heap in
      if time > horizon then begin
        exhausted := true;
        continue := false
      end
      else begin
        let seq = Eheap.min_seq t.heap in
        let e = Eheap.pop_min t.heap in
        (* Every pop counts against the budget, live or dead: draining dead
           slots is work, and an all-dead heap must still terminate. *)
        decr budget;
        if e.live && e.key_seq = seq then begin
          e.live <- false;
          t.time <- time;
          t.processed <- t.processed + 1;
          (match e.ctr with Some c -> incr c | None -> ());
          let fn = e.fn in
          if e.recyclable then recycle t e;
          fn ()
        end
        else begin
          t.dead <- t.dead - 1;
          if e.recyclable then recycle t e
        end;
        if !budget <= 0 then continue := false
      end
    end
  done;
  if t.profiling then begin
    (* lint: allow no-wallclock — profiling only; never feeds back into the
       simulation or its results. *)
    t.wall_s <- t.wall_s +. (Sys.time () -. wall_start);
    match gc_start with
    | None -> ()
    | Some gc0 ->
        let gc1 = Gc.quick_stat () in
        t.minor_words <-
          t.minor_words +. (gc1.Gc.minor_words -. gc0.Gc.minor_words);
        t.promoted_words <-
          t.promoted_words +. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
        t.major_collections <-
          t.major_collections
          + (gc1.Gc.major_collections - gc0.Gc.major_collections)
  end;
  (* A run that reached its horizon (rather than being stopped or running out
     of event budget) has simulated the whole [0, until] window: advance the
     clock so [now] reports the horizon, not the last event time. *)
  match until with
  | Some horizon when !exhausted && (not t.stopped) && horizon > t.time ->
      t.time <- horizon
  | _ -> ()

let stop t = t.stopped <- true
let events_processed t = t.processed
let pending t = Eheap.size t.heap
