type event = { fn : unit -> unit; mutable live : bool }

type t = {
  heap : event Eheap.t;
  mutable time : float;
  mutable seq : int;
  mutable processed : int;
  mutable stopped : bool;
}

type cancel = unit -> unit

let create () =
  { heap = Eheap.create (); time = 0.; seq = 0; processed = 0; stopped = false }

let now t = t.time

let schedule_at t ~time fn =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)" time
         t.time);
  let e = { fn; live = true } in
  Eheap.add t.heap ~time ~seq:t.seq e;
  t.seq <- t.seq + 1

let schedule t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.time +. delay) fn

let schedule_cancellable t ~delay fn =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let e = { fn; live = true } in
  Eheap.add t.heap ~time:(t.time +. delay) ~seq:t.seq e;
  t.seq <- t.seq + 1;
  fun () -> e.live <- false

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  let exhausted = ref false in
  (* The horizon check peeks instead of popping-and-reinserting: the future
     event keeps its original seq, so FIFO tie-order is stable across chunked
     [run ~until] calls. *)
  while !continue && not t.stopped do
    match (Eheap.peek_time t.heap, until) with
    | None, _ ->
        exhausted := true;
        continue := false
    | Some next, Some horizon when next > horizon ->
        exhausted := true;
        continue := false
    | Some _, _ -> (
        match Eheap.pop t.heap with
        | None -> continue := false
        | Some (time, e) ->
            if e.live then begin
              t.time <- time;
              t.processed <- t.processed + 1;
              e.fn ();
              decr budget;
              if !budget <= 0 then continue := false
            end)
  done;
  (* A run that reached its horizon (rather than being stopped or running out
     of event budget) has simulated the whole [0, until] window: advance the
     clock so [now] reports the horizon, not the last event time. *)
  match until with
  | Some horizon when !exhausted && (not t.stopped) && horizon > t.time ->
      t.time <- horizon
  | _ -> ()

let stop t = t.stopped <- true
let events_processed t = t.processed
let pending t = Eheap.size t.heap
