type node_kind = Host | Switch

type t = {
  engine : Engine.t;
  counters : Counters.t;
  mutable kinds : node_kind array;
  mutable n : int;
  adjacency : (int, (int * Link.t) list ref) Hashtbl.t;
      (* node -> outgoing (neighbour, link) *)
  directed : (int * int, Link.t) Hashtbl.t;
  handlers : (int * int, Packet.t -> unit) Hashtbl.t;
  mutable next_hops : int array array array;
      (* next_hops.(node).(dst) = equal-cost next hops, [||] if unreachable *)
  mutable finalized : bool;
}

let create engine counters =
  Trace.set_clock (fun () -> Engine.now engine);
  Delay.set_clock (fun () -> Engine.now engine);
  {
    engine;
    counters;
    kinds = Array.make 16 Host;
    n = 0;
    adjacency = Hashtbl.create 64;
    directed = Hashtbl.create 64;
    handlers = Hashtbl.create 256;
    next_hops = [||];
    finalized = false;
  }

let engine t = t.engine
let counters t = t.counters

let add_node t kind =
  if t.finalized then invalid_arg "Net: cannot add nodes after finalize";
  if t.n = Array.length t.kinds then begin
    let narr = Array.make (2 * t.n) Host in
    Array.blit t.kinds 0 narr 0 t.n;
    t.kinds <- narr
  end;
  t.kinds.(t.n) <- kind;
  let id = t.n in
  t.n <- t.n + 1;
  Hashtbl.replace t.adjacency id (ref []);
  id

let add_host t = add_node t Host
let add_switch t = add_node t Switch
let node_kind t i = t.kinds.(i)
let node_count t = t.n

(* Per-flow ECMP: among equal-cost next hops, a flow always picks the same
   one (SplitMix64 finalizer of the flow id as the hash). *)
let flow_hash flow =
  let z = Int64.of_int (flow + 0x9E3779B9) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let pick_next_hop t ~flow node dst =
  let hops = t.next_hops.(node).(dst) in
  let n = Array.length hops in
  if n = 0 then None
  else if n = 1 then Some hops.(0)
  else
    (* Salt with the switch id: per-hop hashes must be independent or
       multi-stage fabrics use only a correlated subset of their paths. *)
    Some hops.(flow_hash ((flow * 0x3779) lxor (node * 0x9e41)) mod n)

(* Forward declaration cycle: delivery needs routing which needs links. We
   route inside [deliver] by consulting the table built at [finalize]. *)
let rec deliver t pkt node =
  if node = pkt.Packet.dst then begin
    t.counters.Counters.delivered_pkts <- t.counters.Counters.delivered_pkts + 1;
    if Trace.on () then Trace.emit (Trace.Rx { pkt; node });
    (match Hashtbl.find_opt t.handlers (node, pkt.Packet.flow) with
    | Some f -> f pkt
    | None ->
        t.counters.Counters.stray_pkts <- t.counters.Counters.stray_pkts + 1;
        if Trace.on () then Trace.emit (Trace.Stray { pkt; node }));
    (* The packet is done: handlers read it synchronously and never retain
       it (see Packet.free). Recycling is off under tracing because sinks
       may keep references past delivery. *)
    if not (Trace.on ()) then Packet.free pkt
  end
  else forward t pkt node

and forward t pkt node =
  match pick_next_hop t ~flow:pkt.Packet.flow node pkt.Packet.dst with
  | None ->
      t.counters.Counters.stray_pkts <- t.counters.Counters.stray_pkts + 1;
      if Trace.on () then Trace.emit (Trace.Stray { pkt; node })
      else Packet.free pkt
  | Some nh -> (
      match Hashtbl.find_opt t.directed (node, nh) with
      | Some link -> Link.send link pkt
      | None -> assert false)

let connect t a b ~rate_bps ~delay_s ~qdisc =
  if t.finalized then invalid_arg "Net: cannot connect after finalize";
  let mk from to_ =
    let disc = qdisc () in
    disc.Queue_disc.loc.Trace.from_node <- from;
    disc.Queue_disc.loc.Trace.to_node <- to_;
    let link =
      Link.create t.engine ~qdisc:disc ~rate_bps ~delay_s ~counters:t.counters
        ~deliver:(fun pkt -> deliver t pkt to_)
        ()
    in
    Hashtbl.replace t.directed (from, to_) link;
    let adj = Hashtbl.find t.adjacency from in
    adj := (to_, link) :: !adj
  in
  mk a b;
  mk b a

let finalize t =
  if t.finalized then invalid_arg "Net.finalize: already finalized";
  t.finalized <- true;
  let n = t.n in
  t.next_hops <- Array.init n (fun _ -> Array.make n [||]);
  (* BFS from each destination over the (symmetric) adjacency; record, for
     every node, ALL neighbours on shortest paths toward dst (equal-cost
     multipath). Neighbour lists are sorted for determinism. *)
  let neighbours =
    Array.init n (fun i ->
        let adj = !(Hashtbl.find t.adjacency i) in
        List.sort Int.compare (List.map fst adj))
  in
  for dst = 0 to n - 1 do
    let dist = Array.make n max_int in
    dist.(dst) <- 0;
    let q = Queue.create () in
    Queue.push dst q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        neighbours.(u)
    done;
    for v = 0 to n - 1 do
      if v <> dst && dist.(v) < max_int then
        t.next_hops.(v).(dst) <-
          Array.of_list
            (List.filter (fun u -> dist.(u) = dist.(v) - 1) neighbours.(v))
    done
  done

let send t pkt =
  let src = pkt.Packet.src in
  if src = pkt.Packet.dst then deliver t pkt src else forward t pkt src

let register_flow t ~host ~flow f = Hashtbl.replace t.handlers (host, flow) f
let unregister_flow t ~host ~flow = Hashtbl.remove t.handlers (host, flow)

let route t ?(flow = 0) ~src ~dst () =
  let rec go node acc =
    if node = dst then List.rev (node :: acc)
    else
      match pick_next_hop t ~flow node dst with
      | None -> invalid_arg "Net.route: no path"
      | Some nh -> go nh (node :: acc)
  in
  go src []

let path_count t ~src ~dst =
  (* Number of distinct shortest paths (product of fanouts is an upper
     bound; count exactly by DP over the DAG). *)
  let memo = Hashtbl.create 16 in
  let rec count node =
    if node = dst then 1
    else
      match Hashtbl.find_opt memo node with
      | Some c -> c
      | None ->
          let c =
            Array.fold_left
              (fun acc nh -> acc + count nh)
              0
              t.next_hops.(node).(dst)
          in
          Hashtbl.replace memo node c;
          c
  in
  count src

let link_from t a b = Hashtbl.find_opt t.directed (a, b)

let links t =
  List.map (fun ((a, b), l) -> (a, b, l)) (Det_tbl.to_list t.directed)
