(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index), plus
   bechamel micro-benchmarks of the core primitives.

   Usage:
     dune exec bench/main.exe                 # all experiments
     dune exec bench/main.exe -- fig9a fig2   # a subset
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --quiet ...  # no progress chatter on stderr

   Environment:
     PASE_FLOWS      measured flows per run            (default 800)
     PASE_LOADS      comma-separated loads, e.g. 0.2,0.5,0.9
     PASE_SEED       workload seed                     (default 1)
     PASE_JOBS       worker processes (also --jobs=N)  (default: online cores)
     PASE_CACHE_DIR  on-disk result cache ("0" = off)  (default .pase-cache) *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let env_loads name default =
  match Sys.getenv_opt name with
  | Some v ->
      String.split_on_char ',' v
      |> List.filter_map float_of_string_opt
      |> fun l -> if l = [] then default else l
  | None -> default

let n_flows = env_int "PASE_FLOWS" 800
let seed = env_int "PASE_SEED" 1

let loads =
  env_loads "PASE_LOADS" [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let ms v = v *. 1e3
let fmt_ms v = Printf.sprintf "%.3f" v
let fmt_pct v = Printf.sprintf "%.1f" v

(* --quiet silences per-run progress chatter on stderr; results on stdout
   are unaffected. *)
let quiet = ref false

let progress fmt =
  Printf.ksprintf
    (fun s -> if not !quiet then Printf.eprintf "  [bench] %s\n%!" s)
    fmt

(* Worker-pool width: --jobs=N beats PASE_JOBS beats online cores. Set once
   in main before any experiment runs. *)
let jobs = ref None

(* Several figures share runs (e.g. 9a and 9b); memoize by configuration on
   top of Parallel's on-disk cache. Each figure prefetches its whole grid so
   the misses fan out to the worker pool instead of running one by one. *)
let memo : (string, Runner.result) Hashtbl.t = Hashtbl.create 64

let prefetch pairs =
  let fresh = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (proto, scenario) ->
      let key = Parallel.job_key proto scenario in
      if not (Hashtbl.mem memo key || Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        fresh := (key, (proto, scenario)) :: !fresh
      end)
    pairs;
  match List.rev !fresh with
  | [] -> ()
  | fresh ->
      let results =
        Parallel.run_jobs ?jobs:!jobs
          ~on_result:(fun _ ~cached ~wall r ->
            progress "%s / %s @ %.0f%%: afct %.3f ms (%s)" r.Runner.protocol
              r.Runner.scenario
              (r.Runner.load *. 100.)
              (ms r.Runner.afct)
              (if cached then "cached" else Printf.sprintf "%.1fs wall" wall))
          (List.map snd fresh)
      in
      List.iter2
        (fun (key, _) r -> Hashtbl.replace memo key r)
        fresh results

let run proto scenario =
  let key = Parallel.job_key proto scenario in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
      prefetch [ (proto, scenario) ];
      Hashtbl.find memo key

let grid protocols scenarios =
  List.concat_map
    (fun scenario -> List.map (fun p -> (p, scenario)) protocols)
    scenarios

let sweep ~title ~columns ~protocols ~scenario ~metric ~fmt_y =
  prefetch (grid protocols (List.map (fun load -> scenario ~load) loads));
  let rows =
    List.map
      (fun load ->
        ( load *. 100.,
          List.map (fun p -> metric (run p (scenario ~load))) protocols ))
      loads
  in
  Series.print ~fmt_y (Series.make ~title ~x_label:"load(%)" ~columns ~rows)

let pase_edf = Runner.Pase { Config.default with Config.scheduling = Config.Edf }

let pase_no_opts =
  Runner.Pase
    { Config.default with Config.early_pruning = false; delegation = false }

let pase_local = Runner.Pase { Config.default with Config.local_only = true }
let pase_dctcp = Runner.Pase { Config.default with Config.use_ref_rate = false }
let pase_queues k = Runner.Pase { Config.default with Config.num_queues = k }

(* ------------------------------------------------------------------ *)
(* Section 2 motivation figures                                         *)

let fig1 () =
  sweep
    ~title:
      "Figure 1: application throughput vs load (deadline flows, intra-rack)"
    ~columns:[ "pFabric"; "D2TCP"; "DCTCP" ]
    ~protocols:[ Runner.Pfabric; Runner.D2tcp; Runner.Dctcp ]
    ~scenario:(fun ~load ->
      Scenario.deadline_intra_rack ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> r.Runner.app_throughput)
    ~fmt_y:(Printf.sprintf "%.3f")

let fig2 () =
  sweep
    ~title:"Figure 2: AFCT (ms) vs load, PDQ vs DCTCP (intra-rack all-to-all)"
    ~columns:[ "PDQ"; "DCTCP" ]
    ~protocols:[ Runner.Pdq; Runner.Dctcp ]
    ~scenario:(fun ~load ->
      Scenario.intra_rack_medium ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

(* Figure 3 toy example: three flows, local (pFabric) prioritization stalls
   flow 3 while end-to-end arbitration (PASE) runs it alongside flow 1. *)
let fig3 () =
  let run_toy proto =
    Packet.reset_ids ();
    let e = Engine.create () in
    let c = Counters.create () in
    let cfg = Config.default in
    let qdisc ~rate_bps:_ =
      match proto with
      | `Pfabric -> Pfabric_queue.create c ~limit_pkts:76
      | `Pase ->
          Prio_queue.create c ~bands:cfg.Config.num_queues ~limit_pkts:500
            ~mark_threshold:20
    in
    let topo =
      Topology.single_rack e c ~hosts:4 ~rate_bps:1e9 ~link_delay_s:25e-6 ~qdisc
    in
    let h = topo.Topology.hosts in
    let net = topo.Topology.net in
    let hier =
      Hierarchy.create e c cfg topo ~base_rate_bps:(8. *. 1500. /. 1.5e-4)
    in
    (match proto with `Pase -> Hierarchy.start hier | `Pfabric -> ());
    let fcts = Hashtbl.create 4 in
    (* F1: src1 -> dst1 (smallest = highest priority), F2: src2 -> dst1,
       F3: src2 -> dst2 (largest = lowest priority). F2 shares its source
       link with F3 and its destination link with F1. *)
    let launch id src dst size =
      let flow = Flow.make ~id ~src ~dst ~size_pkts:size ~start_time:0. () in
      let recv = Receiver.create net ~flow () in
      let rtt = Topology.base_rtt topo ~src ~dst ~data_bytes:1500 in
      let on_complete _ ~fct =
        Receiver.stop recv;
        Hashtbl.replace fcts id fct
      in
      match proto with
      | `Pfabric ->
          Sender_base.start
            (Pfabric_host.create net ~flow
               ~conf:(Pfabric_host.conf ~init_rtt:rtt ())
               ~on_complete ())
      | `Pase ->
          Pase_host.start
            (Pase_host.create net hier ~flow ~cfg ~rtt ~nic_bps:1e9
               ~on_complete ())
    in
    launch 1 h.(0) h.(2) 800;
    launch 2 h.(1) h.(2) 900;
    launch 3 h.(1) h.(3) 1000;
    Engine.run ~until:1.0 e;
    Hierarchy.stop hier;
    ( (fun id -> try ms (Hashtbl.find fcts id) with Not_found -> nan),
      c.Counters.dropped_pkts )
  in
  let pf, pf_drops = run_toy `Pfabric in
  let pa, pa_drops = run_toy `Pase in
  Series.print_table
    ~title:
      "Figure 3 (toy): local prioritization stalls flow 3; arbitration does not"
    ~header:[ "flow"; "pFabric FCT(ms)"; "PASE FCT(ms)" ]
    [
      [ "F1 (high prio, s1->d1)"; fmt_ms (pf 1); fmt_ms (pa 1) ];
      [ "F2 (medium,   s2->d1)"; fmt_ms (pf 2); fmt_ms (pa 2) ];
      [ "F3 (low,      s2->d2)"; fmt_ms (pf 3); fmt_ms (pa 3) ];
      [ "drops"; string_of_int pf_drops; string_of_int pa_drops ];
    ]

let fig4 () =
  sweep
    ~title:"Figure 4: pFabric loss rate (%) vs load (worker-aggregator rack)"
    ~columns:[ "pFabric" ]
    ~protocols:[ Runner.Pfabric ]
    ~scenario:(fun ~load ->
      Scenario.worker_uniform ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> r.Runner.loss_rate *. 100.)
    ~fmt_y:fmt_pct

(* ------------------------------------------------------------------ *)
(* Tables                                                               *)

let tab1 () =
  Series.print_table ~title:"Table 1: transport strategies compared"
    ~header:[ "strategy"; "pros"; "cons"; "examples" ]
    [
      [
        "Self-adjusting endpoints";
        "ease of deployment";
        "no strict priority scheduling";
        "DCTCP, D2TCP, L2DCT";
      ];
      [
        "Arbitration";
        "strict priority; fast convergence";
        "flow switching overhead; imprecise rates";
        "D3, PDQ";
      ];
      [
        "In-network prioritization";
        "work conservation; low switching overhead";
        "few priority queues; switch-local decisions";
        "pFabric";
      ];
    ]

let tab2 () =
  Series.print_table
    ~title:"Table 2: priority queues and ECN in commodity ToR switches"
    ~header:[ "switch"; "vendor"; "queues"; "ECN" ]
    (List.map
       (fun (model, vendor, queues, ecn) ->
         [ model; vendor; string_of_int queues; (if ecn then "Yes" else "No") ])
       Config.switch_survey)

let tab3 () =
  Series.print_table ~title:"Table 3: default parameter settings"
    ~header:[ "scheme"; "parameters" ]
    [
      [ "DCTCP"; "qSize = 225 pkts, K = 65 (10G) / 20 (1G)" ];
      [ "D2TCP"; "markingThresh = 65 (10G) / 20 (1G)" ];
      [ "L2DCT"; "minRTO = 10 ms" ];
      [ "pFabric"; "qSize = 76 pkts, initCwnd = 38, minRTO = 1 ms" ];
      [
        "PASE";
        "qSize = 500 pkts, minRTO = 10 ms (top) / 200 ms (others), numQue = 8";
      ];
      [ "PDQ"; "qSize ~ 1.3 x BDP, ES window = 1 RTT" ];
    ]

(* ------------------------------------------------------------------ *)
(* Section 4.2 macro-benchmarks                                         *)

let left_right ~load = Scenario.left_right ~num_flows:n_flows ~seed ~load ()

let fig9a () =
  sweep
    ~title:"Figure 9a: AFCT (ms) vs load, PASE vs L2DCT vs DCTCP (left-right)"
    ~columns:[ "PASE"; "L2DCT"; "DCTCP" ]
    ~protocols:[ Runner.pase; Runner.L2dct; Runner.Dctcp ]
    ~scenario:left_right
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

let cdf_figure ~title ~protocols ~columns ~scenario =
  prefetch (grid protocols [ scenario ]);
  let results = List.map (fun p -> run p scenario) protocols in
  let points = 20 in
  let cdfs =
    List.map
      (fun r -> Fct.cdf ~points r.Runner.fct)
      results
  in
  let rows =
    List.init points (fun i ->
        let q = float_of_int (i + 1) /. float_of_int points in
        (q, List.map (fun cdf -> ms (fst (List.nth cdf i))) cdfs))
  in
  Series.print ~fmt_y:fmt_ms
    (Series.make ~title ~x_label:"quantile"
       ~columns:(List.map (fun c -> c ^ " FCT(ms)") columns)
       ~rows)

let fig9b () =
  cdf_figure ~title:"Figure 9b: FCT CDF at 70% load (left-right)"
    ~protocols:[ Runner.pase; Runner.L2dct; Runner.Dctcp ]
    ~columns:[ "PASE"; "L2DCT"; "DCTCP" ]
    ~scenario:(left_right ~load:0.7)

let fig9c () =
  sweep
    ~title:
      "Figure 9c: application throughput vs load, PASE vs D2TCP vs DCTCP \
       (deadline intra-rack)"
    ~columns:[ "PASE"; "D2TCP"; "DCTCP" ]
    ~protocols:[ pase_edf; Runner.D2tcp; Runner.Dctcp ]
    ~scenario:(fun ~load ->
      Scenario.deadline_intra_rack ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> r.Runner.app_throughput)
    ~fmt_y:(Printf.sprintf "%.3f")

let fig10a () =
  sweep
    ~title:
      "Figure 10a: 99th-percentile FCT (ms) vs load, PASE vs pFabric \
       (left-right)"
    ~columns:[ "PASE"; "pFabric" ]
    ~protocols:[ Runner.pase; Runner.Pfabric ]
    ~scenario:left_right
    ~metric:(fun r -> ms r.Runner.p99)
    ~fmt_y:fmt_ms

let fig10b () =
  cdf_figure
    ~title:"Figure 10b: FCT CDF at 70% load, PASE vs pFabric (left-right)"
    ~protocols:[ Runner.pase; Runner.Pfabric ]
    ~columns:[ "PASE"; "pFabric" ]
    ~scenario:(left_right ~load:0.7)

let fig10c () =
  prefetch
    (grid
       [ Runner.pase; Runner.Pfabric ]
       (List.map
          (fun load -> Scenario.worker_aggregator ~num_flows:n_flows ~seed ~load ())
          loads));
  let rows =
    List.map
      (fun load ->
        let scenario =
          Scenario.worker_aggregator ~num_flows:n_flows ~seed ~load ()
        in
        let pase = run Runner.pase scenario in
        let pfab = run Runner.Pfabric scenario in
        let improvement =
          (pfab.Runner.afct -. pase.Runner.afct) /. pfab.Runner.afct *. 100.
        in
        (load *. 100., [ ms pase.Runner.afct; ms pfab.Runner.afct; improvement ]))
      loads
  in
  Series.print ~fmt_y:fmt_ms
    (Series.make
       ~title:
         "Figure 10c: AFCT (ms) vs load, PASE vs pFabric (all-to-all \
          intra-rack, round-robin aggregators)"
       ~x_label:"load(%)"
       ~columns:[ "PASE"; "pFabric"; "improvement(%)" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Section 4.3 micro-benchmarks                                         *)

let fig11 () =
  prefetch
    (grid [ Runner.pase; pase_no_opts ] (List.map (fun load -> left_right ~load) loads));
  let rows =
    List.map
      (fun load ->
        let scenario = left_right ~load in
        let on = run Runner.pase scenario in
        let off = run pase_no_opts scenario in
        let afct_gain =
          (off.Runner.afct -. on.Runner.afct) /. off.Runner.afct *. 100.
        in
        let msg_cut =
          (off.Runner.ctrl_msg_rate -. on.Runner.ctrl_msg_rate)
          /. Float.max 1. off.Runner.ctrl_msg_rate
          *. 100.
        in
        (load *. 100., [ afct_gain; msg_cut ]))
      loads
  in
  Series.print ~fmt_y:fmt_pct
    (Series.make
       ~title:
         "Figure 11: gains from arbitration optimizations (early pruning + \
          delegation), left-right"
       ~x_label:"load(%)"
       ~columns:[ "AFCT improvement(%)"; "overhead reduction(%)" ]
       ~rows)

let fig12a () =
  sweep
    ~title:
      "Figure 12a: AFCT (ms), end-to-end arbitration vs local-only \
       (left-right)"
    ~columns:[ "arbitration=ON"; "arbitration=OFF (local)" ]
    ~protocols:[ Runner.pase; pase_local ]
    ~scenario:left_right
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

let fig12b () =
  (* Queue scarcity bites where single flows saturate the bottleneck (1 Gbps
     links): on the 10 Gbps left-right bottleneck ten flows share each band
     and the queue count barely matters, so this ablation runs intra-rack. *)
  sweep
    ~title:"Figure 12b: AFCT (ms) vs number of priority queues (intra-rack)"
    ~columns:[ "3 queues"; "4 queues"; "6 queues"; "8 queues" ]
    ~protocols:[ pase_queues 3; pase_queues 4; pase_queues 6; pase_queues 8 ]
    ~scenario:(fun ~load ->
      Scenario.intra_rack_medium ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

let fig13a () =
  sweep
    ~title:
      "Figure 13a: AFCT (ms), PASE vs PASE-DCTCP (no reference rate), \
       intra-rack"
    ~columns:[ "PASE"; "PASE-DCTCP" ]
    ~protocols:[ Runner.pase; pase_dctcp ]
    ~scenario:(fun ~load ->
      Scenario.intra_rack_medium ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

let fig13b () =
  sweep
    ~title:"Figure 13b: testbed replica AFCT (ms), PASE vs DCTCP (10 nodes)"
    ~columns:[ "PASE"; "DCTCP" ]
    ~protocols:[ Runner.pase; Runner.Dctcp ]
    ~scenario:(fun ~load -> Scenario.testbed ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> ms r.Runner.afct)
    ~fmt_y:fmt_ms

let probe_ablation () =
  let fast_low = { Config.default with Config.rto_low = 0.010 } in
  prefetch
    (grid
       [
         Runner.Pase fast_low;
         Runner.Pase { fast_low with Config.use_probes = false };
       ]
       (List.filter_map
          (fun load ->
            if load < 0.75 then None
            else Some (Scenario.worker_aggregator ~num_flows:n_flows ~seed ~load ()))
          loads));
  let rows =
    List.filter_map
      (fun load ->
        if load < 0.75 then None
        else
          (* Both arms use a fast low-queue RTO so that parking in a low
             band does trigger timeouts; the probes-arm recovers with 40 B
             probes, the other retransmits full windows spuriously. *)
          let scenario =
            Scenario.worker_aggregator ~num_flows:n_flows ~seed ~load ()
          in
          let fast_low = { Config.default with Config.rto_low = 0.010 } in
          let with_probes = run (Runner.Pase fast_low) scenario in
          let without =
            run (Runner.Pase { fast_low with Config.use_probes = false }) scenario
          in
          let gain =
            (without.Runner.afct -. with_probes.Runner.afct)
            /. without.Runner.afct *. 100.
          in
          Some
            ( load *. 100.,
              [ ms with_probes.Runner.afct; ms without.Runner.afct; gain ] ))
      loads
  in
  if rows = [] then print_endline "probe ablation: no loads >= 0.75 selected"
  else
    Series.print ~fmt_y:fmt_ms
      (Series.make
         ~title:"Probing ablation (sec 4.3.2): PASE with vs without probes"
         ~x_label:"load(%)"
         ~columns:[ "probes"; "no probes"; "gain(%)" ]
         ~rows)


(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's figures                                *)

(* All three arbitration-based designs plus the deadline-aware endpoint
   baseline on the deadline workload: D3's FCFS greedy allocation against
   PDQ's preemptive EDF and PASE's EDF arbitration (Table 1's lineage). *)
let ext_deadline () =
  sweep
    ~title:
      "Extension: deadline-aware designs compared (fraction of deadlines \
       met, intra-rack)"
    ~columns:[ "PASE (EDF)"; "PDQ"; "D3"; "D2TCP" ]
    ~protocols:[ pase_edf; Runner.Pdq; Runner.D3; Runner.D2tcp ]
    ~scenario:(fun ~load ->
      Scenario.deadline_intra_rack ~num_flows:n_flows ~seed ~load ())
    ~metric:(fun r -> r.Runner.app_throughput)
    ~fmt_y:(Printf.sprintf "%.3f")

(* Robustness: arbitration messages dropped with probability p. Soft state
   plus expiry keeps PASE correct; performance degrades gracefully toward
   local-only behaviour. *)
let ext_robust () =
  let probs = [ 0.0; 0.1; 0.3; 0.5; 0.8 ] in
  prefetch
    (List.map
       (fun p ->
         ( Runner.Pase { Config.default with Config.ctrl_loss_prob = p },
           left_right ~load:0.8 ))
       probs);
  let rows =
    List.map
      (fun p ->
        let proto =
          Runner.Pase { Config.default with Config.ctrl_loss_prob = p }
        in
        let r = run proto (left_right ~load:0.8) in
        (p *. 100., [ ms r.Runner.afct; ms r.Runner.p99 ]))
      probs
  in
  Series.print ~fmt_y:fmt_ms
    (Series.make
       ~title:
         "Extension: PASE under arbitration-message loss (left-right, 80% \
          load)"
       ~x_label:"msg loss(%)"
       ~columns:[ "AFCT(ms)"; "p99(ms)" ]
       ~rows)

(* Per-size breakdown and slowdown, the standard FCT decomposition. *)
let ext_buckets () =
  let scenario = left_right ~load:0.8 in
  let protocols =
    [ Runner.pase; Runner.Pfabric; Runner.L2dct; Runner.Dctcp ]
  in
  prefetch (grid protocols [ scenario ]);
  let rows =
    List.map
      (fun proto ->
        let r = run proto scenario in
        let f = r.Runner.fct in
        let b lo hi = Fct.bucket_afct f ~lo ~hi *. 1e3 in
        [
          r.Runner.protocol;
          Printf.sprintf "%.3f" (b 0 35);
          Printf.sprintf "%.3f" (b 35 90);
          Printf.sprintf "%.3f" (b 90 max_int);
          Printf.sprintf "%.2f" (Fct.mean_slowdown f);
          Printf.sprintf "%.2f" (Fct.p99_slowdown f);
        ])
      protocols
  in
  Series.print_table
    ~title:
      "Extension: AFCT by flow size and slowdown (left-right, 80% load; \
       sizes in segments)"
    ~header:
      [ "protocol"; "(0,50KB)"; "[50,130)KB"; ">=130KB"; "mean slowdown";
        "p99 slowdown" ]
    rows


(* Task-aware scheduling (sec 3.1.1's task-id criterion, after Baraat):
   whole queries (tasks) are scheduled FIFO instead of interleaving their
   flows by size. Metric: query (task) completion time. *)
let ext_task () =
  let pase_task =
    Runner.Pase { Config.default with Config.scheduling = Config.Task_aware }
  in
  prefetch
    (grid
       [ Runner.pase; pase_task ]
       (List.filter_map
          (fun load ->
            if load < 0.35 then None
            else
              Some
                (Scenario.worker_aggregator ~aggregators:4 ~num_flows:n_flows
                   ~seed ~load ()))
          loads));
  let rows =
    List.filter_map
      (fun load ->
        if load < 0.35 then None
        else
          (* Four hot aggregators: queries overlap, so task interleaving
             matters. *)
          let scenario =
            Scenario.worker_aggregator ~aggregators:4 ~num_flows:n_flows ~seed
              ~load ()
          in
          let stats proto =
            let r = run proto scenario in
            let ts = Fct.task_completion_times r.Runner.fct in
            (Summary.mean ts *. 1e3, Summary.percentile 99. ts *. 1e3)
          in
          let srpt_mean, srpt_p99 = stats Runner.pase in
          let task_mean, task_p99 = stats pase_task in
          Some (load *. 100., [ task_mean; srpt_mean; task_p99; srpt_p99 ]))
      loads
  in
  Series.print ~fmt_y:fmt_ms
    (Series.make
       ~title:
         "Extension: task-aware vs SRPT arbitration (query completion \
          times, worker-aggregator)"
       ~x_label:"load(%)"
       ~columns:
         [ "task mean"; "SRPT mean"; "task p99"; "SRPT p99" ]
       ~rows)


(* Fat-tree + ECMP (extension): the same protocols on a k=6 fat-tree with
   uniform random pairs — PASE needs no changes beyond its generic
   path-walking arbitration. *)
let ext_fattree () =
  prefetch
    (grid
       [ Runner.pase; Runner.Pfabric; Runner.Dctcp ]
       (List.filter_map
          (fun load ->
            if load < 0.25 then None
            else Some (Scenario.fat_tree_uniform ~k:6 ~num_flows:n_flows ~seed ~load ()))
          loads));
  let rows =
    List.filter_map
      (fun load ->
        if load < 0.25 then None
        else
          let scenario =
            Scenario.fat_tree_uniform ~k:6 ~num_flows:n_flows ~seed ~load ()
          in
          let afct p = ms (run p scenario).Runner.afct in
          Some
            ( load *. 100.,
              [ afct Runner.pase; afct Runner.Pfabric; afct Runner.Dctcp ] ))
      loads
  in
  Series.print ~fmt_y:fmt_ms
    (Series.make
       ~title:"Extension: k=6 fat-tree (54 hosts, ECMP), AFCT (ms)"
       ~x_label:"load(%)"
       ~columns:[ "PASE"; "pFabric"; "DCTCP" ]
       ~rows)


(* Empirical flow-size mixes (extension): the web-search and data-mining
   CDFs the transport literature evaluates on. Mice-vs-elephant separation
   is where SRPT-style scheduling pays off most. *)
let ext_empirical () =
  let rows scenario_of =
    prefetch
      (grid
         [ Runner.pase; Runner.Pfabric; Runner.Dctcp ]
         (List.filter_map
            (fun load ->
              if load < 0.45 || load > 0.85 then None
              else Some (scenario_of ~load))
            loads));
    List.filter_map
      (fun load ->
        if load < 0.45 || load > 0.85 then None
        else
          let scenario = scenario_of ~load in
          let stats proto =
            let r = run proto scenario in
            (ms r.Runner.afct, Fct.mean_slowdown r.Runner.fct)
          in
          let pa, pa_s = stats Runner.pase in
          let pf, pf_s = stats Runner.Pfabric in
          let dc, dc_s = stats Runner.Dctcp in
          Some (load *. 100., [ pa; pf; dc; pa_s; pf_s; dc_s ]))
      loads
  in
  List.iter
    (fun (title, scenario_of) ->
      Series.print ~fmt_y:fmt_ms
        (Series.make ~title ~x_label:"load(%)"
           ~columns:
             [ "PASE afct"; "pFabric afct"; "DCTCP afct"; "PASE slowdn";
               "pFab slowdn"; "DCTCP slowdn" ]
           ~rows:(rows scenario_of)))
    [
      ( "Extension: web-search flow sizes (AFCT ms / mean slowdown)",
        fun ~load -> Scenario.web_search ~num_flows:(n_flows / 2) ~seed ~load () );
      ( "Extension: data-mining flow sizes (AFCT ms / mean slowdown)",
        fun ~load -> Scenario.data_mining ~num_flows:(n_flows / 2) ~seed ~load () );
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of core primitives                         *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let arbitration_inputs =
    List.init 100 (fun i ->
        {
          Arbitration.flow = i;
          criterion = float_of_int (i * 37 mod 100);
          demand_bps = 1e9;
        })
  in
  let bench_assign () =
    ignore
      (Arbitration.assign ~capacity_bps:10e9 ~num_queues:8 ~base_rate_bps:1e5
         arbitration_inputs)
  in
  let bench_arbitrator () =
    let a = Arbitrator.create ~capacity_bps:10e9 () in
    for i = 0 to 99 do
      Arbitrator.upsert a ~flow:i
        ~criterion:(float_of_int (i * 37 mod 100))
        ~demand_bps:1e9 ~now:0.
    done;
    Arbitrator.arbitrate a ~num_queues:8 ~base_rate_bps:1e5
  in
  let c = Counters.create () in
  let prio = Prio_queue.create c ~bands:8 ~limit_pkts:500 ~mark_threshold:65 in
  let pkt =
    Packet.make ~flow:0 ~src:0 ~dst:1 ~kind:Packet.Data ~size:1500 ~seq:0
      ~tos:3 ~sent_at:0. ()
  in
  let bench_prio () =
    prio.Queue_disc.enqueue pkt;
    ignore (prio.Queue_disc.dequeue ())
  in
  let pfq = Pfabric_queue.create c ~limit_pkts:76 in
  let () =
    (* Pre-fill to a realistic occupancy. *)
    for i = 0 to 39 do
      pfq.Queue_disc.enqueue
        (Packet.make ~flow:i ~src:0 ~dst:1 ~kind:Packet.Data ~size:1500 ~seq:i
           ~prio:(float_of_int i) ~sent_at:0. ())
    done
  in
  let bench_pfabric () =
    pfq.Queue_disc.enqueue pkt;
    ignore (pfq.Queue_disc.dequeue ())
  in
  let bench_engine () =
    let e = Engine.create () in
    for _ = 1 to 1000 do
      Engine.schedule e ~delay:1.0 ignore
    done;
    Engine.run e
  in
  let tests =
    [
      Test.make ~name:"arbitration.assign-100-flows" (Staged.stage bench_assign);
      Test.make ~name:"arbitrator.round-100-flows" (Staged.stage bench_arbitrator);
      Test.make ~name:"prio-queue.enq+deq" (Staged.stage bench_prio);
      Test.make ~name:"pfabric-queue.enq+deq@40" (Staged.stage bench_pfabric);
      Test.make ~name:"engine.1k-events" (Staged.stage bench_engine);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows =
    Det_tbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Printf.sprintf "%.1f" e
          | Some [] | None -> "n/a"
        in
        [ name; est ] :: acc)
      results []
    |> List.sort (List.compare String.compare)
  in
  Series.print_table
    ~title:"Micro-benchmarks (ns per operation, monotonic clock OLS)"
    ~header:[ "operation"; "ns/op" ]
    rows

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("tab1", "Table 1: strategy comparison", tab1);
    ("tab2", "Table 2: commodity switch survey", tab2);
    ("tab3", "Table 3: parameter settings", tab3);
    ("fig1", "Fig 1: D2TCP/DCTCP vs pFabric app throughput", fig1);
    ("fig2", "Fig 2: PDQ vs DCTCP AFCT", fig2);
    ("fig3", "Fig 3: toy multi-link example", fig3);
    ("fig4", "Fig 4: pFabric loss rate", fig4);
    ("fig9a", "Fig 9a: PASE vs L2DCT vs DCTCP AFCT", fig9a);
    ("fig9b", "Fig 9b: FCT CDF at 70% load", fig9b);
    ("fig9c", "Fig 9c: deadline app throughput", fig9c);
    ("fig10a", "Fig 10a: PASE vs pFabric p99 FCT", fig10a);
    ("fig10b", "Fig 10b: PASE vs pFabric CDF", fig10b);
    ("fig10c", "Fig 10c: PASE vs pFabric all-to-all AFCT", fig10c);
    ("fig11", "Fig 11: arbitration optimization gains", fig11);
    ("fig12a", "Fig 12a: end-to-end vs local arbitration", fig12a);
    ("fig12b", "Fig 12b: number of priority queues", fig12b);
    ("fig13a", "Fig 13a: PASE vs PASE-DCTCP", fig13a);
    ("fig13b", "Fig 13b: testbed replica", fig13b);
    ("probe", "Probing ablation (sec 4.3.2)", probe_ablation);
    ("ext-deadline", "Extension: arbitration designs on deadlines", ext_deadline);
    ("ext-robust", "Extension: control-plane message loss", ext_robust);
    ("ext-buckets", "Extension: per-size AFCT and slowdown", ext_buckets);
    ("ext-task", "Extension: task-aware scheduling", ext_task);
    ("ext-fattree", "Extension: fat-tree + ECMP", ext_fattree);
    ("ext-empirical", "Extension: web-search/data-mining flow sizes", ext_empirical);
    ("micro", "Bechamel micro-benchmarks", micro);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  quiet := List.mem "--quiet" args;
  jobs :=
    List.find_map
      (fun a ->
        let prefix = "--jobs=" in
        let plen = String.length prefix in
        if String.length a > plen && String.sub a 0 plen = prefix then
          int_of_string_opt (String.sub a plen (String.length a - plen))
        else None)
      args;
  if List.mem "--list" args then
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) experiments
  else begin
    let ids =
      List.filter
        (fun a -> not (String.length a > 2 && String.sub a 0 2 = "--"))
        args
    in
    let selected =
      match ids with
      | [] -> experiments
      | ids -> List.filter (fun (id, _, _) -> List.mem id ids) experiments
    in
    if selected = [] then begin
      prerr_endline "no matching experiments; use --list";
      exit 1
    end;
    Printf.printf "PASE reproduction benchmarks (flows/run = %d, seed = %d)\n"
      n_flows seed;
    List.iter
      (fun (id, _, f) ->
        progress "=== %s ===" id;
        f ())
      selected
  end
