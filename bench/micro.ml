(* Engine hot-path benchmark: records the perf trajectory of the event
   engine in BENCH_engine.json.

   Usage:
     dune exec bench/micro.exe                      # full run, label "post"
     dune exec bench/micro.exe -- --quick           # CI smoke sizes
     dune exec bench/micro.exe -- --label pre       # record a baseline
     dune exec bench/micro.exe -- --out FILE        # default BENCH_engine.json
     dune exec bench/micro.exe -- --reps N          # macro repetitions

   Three measurements per run:
     - macro:        the k=6 fat-tree PASE scenario (the heaviest standard
                     workload) through Runner.run, in-process wall time and
                     self-measured GC deltas
     - heap churn:   self-rescheduling events hammering Eheap add/pop
     - timer churn:  the RTO re-arm pattern (cancel + reschedule every
                     round) that stresses dead-slot handling

   The harness deliberately restricts itself to the engine API surface
   that is stable across engine generations (schedule, schedule_cancellable,
   run, events_processed) so the very same file compiles against an older
   checkout of lib/ — that is how the committed "pre" entry was captured:
   stash the lib/ changes, build, `--label pre`, pop, rebuild, default
   label. Entries are merged by label into the output file, one JSON
   object per line inside the "entries" array, so repeated runs replace
   their own label and leave the rest of the trajectory intact. *)

(* lint: allow no-wallclock — benchmark harness; measures real elapsed
   time around whole runs, never inside simulation logic *)
let wall () = Unix.gettimeofday ()

(* ---- measurement ------------------------------------------------------- *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

type sample = { wall_s : float; events : int; gc : gc_delta }

(* Level the field, then time [f] and charge it for its allocations. *)
let measure f =
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = wall () in
  let events = f () in
  let t1 = wall () in
  let g1 = Gc.quick_stat () in
  {
    wall_s = t1 -. t0;
    events;
    gc =
      {
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
      };
  }

let per_sec s = float_of_int s.events /. s.wall_s

(* Fastest repetition: the others mostly measure scheduler noise. *)
let best samples =
  List.fold_left (fun a b -> if per_sec b > per_sec a then b else a)
    (List.hd samples) (List.tl samples)

(* ---- workloads --------------------------------------------------------- *)

(* Deterministic delay stream (SplitMix64-ish); the benchmark must pop in
   a data-dependent order or the heap path is unrealistically branchy. *)
let make_rng seed =
  let state = ref seed in
  fun () ->
    let z = Int64.add !state 0x9E3779B97F4A7C15L in
    state := z;
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) *. (1. /. 9007199254740992.)

let macro ?(attrib = false) ?hybrid ~flows ~reps () =
  let scenario = Scenario.fat_tree_uniform ~k:6 ~num_flows:flows ~seed:1 ~load:0.6 () in
  let samples =
    List.init reps (fun _ ->
        measure (fun () ->
            let r = Runner.run ~attrib ?hybrid Runner.pase scenario in
            r.Runner.events))
  in
  best samples

(* The empirical-workload point: the same k=6 fat-tree driven by the
   web-search CDF instead of U[2 KB, 198 KB]. Heavy-tailed sizes shift the
   event mix (a few flows carry most packets), so this tracks the
   inverse-CDF sampling layer plus the engine under realistic traffic. *)
let macro_empirical ~flows ~reps () =
  let scenario =
    Scenario.with_sizes
      (Scenario.fat_tree_uniform ~k:6 ~num_flows:flows ~seed:1 ~load:0.6 ())
      Dist.web_search_bytes
  in
  let samples =
    List.init reps (fun _ ->
        measure (fun () ->
            let r = Runner.run Runner.pase scenario in
            r.Runner.events))
  in
  best samples

let hybrid_default =
  { Runner.enabled = true; fluid_threshold = Runner.default_fluid_threshold }

(* The scale point: a k=10 fat-tree (250 hosts) at tens of thousands of
   flows, hybrid only — the packet engine at this size is what the hybrid
   tier exists to avoid, so there is no packet-mode twin. One rep: the
   run is long enough that scheduler noise is irrelevant. *)
let macro_scale ~flows () =
  let scenario =
    Scenario.fat_tree_uniform ~k:10 ~num_flows:flows ~seed:1 ~load:0.6 ()
  in
  measure (fun () ->
      let r = Runner.run ~hybrid:hybrid_default Runner.pase scenario in
      r.Runner.events)

(* [width] self-rescheduling events; every pop immediately pushes with a
   pseudo-random delay, so the heap stays [width] deep while add/pop and
   sift paths run [pops] times. *)
let heap_churn ~pops () =
  let e = Engine.create () in
  let next = make_rng 42L in
  let remaining = ref pops in
  let rec step () =
    if !remaining > 0 then begin
      decr remaining;
      Engine.schedule e ~delay:(1e-6 +. (1e-4 *. next ())) step
    end
  in
  let width = 1024 in
  measure (fun () ->
      for _ = 1 to width do
        Engine.schedule e ~delay:(1e-6 +. (1e-4 *. next ())) step
      done;
      Engine.run e;
      Engine.events_processed e)

(* The sender RTO pattern: each of [width] flows re-arms a far-future
   cancellable every round, cancelling the previous one. Almost every
   scheduled event dies unfired — the worst case for heap occupancy and
   exactly what timer rescheduling / lazy compaction are for. *)
let timer_churn ~rounds () =
  let e = Engine.create () in
  let next = make_rng 7L in
  let width = 256 in
  let cancels = Array.make width None in
  let remaining = ref rounds in
  let rec tick i () =
    (match cancels.(i) with Some c -> c () | None -> ());
    cancels.(i) <-
      Some (Engine.schedule_cancellable e ~delay:1.0 (fun () -> ()));
    if !remaining > 0 then begin
      decr remaining;
      Engine.schedule e ~delay:(1e-6 +. (1e-5 *. next ())) (tick i)
    end
  in
  measure (fun () ->
      for i = 0 to width - 1 do
        Engine.schedule e ~delay:(float_of_int (i + 1) *. 1e-7) (tick i)
      done;
      Engine.run e;
      Engine.events_processed e)

(* ---- BENCH_engine.json ------------------------------------------------- *)

(* The file is real JSON, but written one entry object per line so that
   merging by label needs no JSON parser: keep every entry line whose
   label differs, append ours, rewrite. *)

let entry_prefix = {|{"label":"|}

let entry_label line =
  let plen = String.length entry_prefix in
  if String.length line > plen && String.sub line 0 plen = entry_prefix then
    match String.index_from_opt line plen '"' with
    | Some stop -> Some (String.sub line plen (stop - plen))
    | None -> None
  else None

let read_entries path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.filter_map
      (fun line ->
        let line = String.trim line in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = ',' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        match entry_label line with Some l -> Some (l, line) | None -> None)
      (List.rev !lines)
  end

let write_entries path entries =
  let oc = open_out path in
  output_string oc "{\"benchmark\":\"engine\",\"schema\":1,\"entries\":[\n";
  List.iteri
    (fun i (_, line) ->
      if i > 0 then output_string oc ",\n";
      output_string oc line)
    entries;
  output_string oc "\n]}\n";
  close_out oc

(* First number following ["key":] in [line]; the entry schema is flat
   enough that a textual probe is unambiguous. *)
let probe_float line key =
  let pat = Printf.sprintf {|"%s":|} key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let entry_json ~label ~quick ~flows ~scale_flows ~(macro : sample)
    ~(attrib_m : sample) ~(hybrid_m : sample) ~(empirical_m : sample)
    ~(scale : sample) ~(heap : sample) ~(timer : sample) =
  (* macro_attrib / macro_hybrid / macro_scale keys are prefixed
     (attrib_events_per_sec, hybrid_events_per_sec, ...) so the flat
     textual probe stays unambiguous: a plain "events_per_sec" probe keeps
     hitting the attribution-off packet-mode macro number. *)
  Printf.sprintf
    {|{"label":"%s","quick":%b,"macro":{"scenario":"fat-tree-k6","protocol":"pase","load":0.6,"flows":%d,"events":%d,"wall_s":%.6f,"events_per_sec":%.0f,"gc":{"minor_words":%.0f,"promoted_words":%.0f,"major_collections":%d}},"macro_attrib":{"events":%d,"wall_s":%.6f,"attrib_events_per_sec":%.0f,"attrib_overhead_pct":%.2f},"macro_hybrid":{"events":%d,"wall_s":%.6f,"hybrid_events_per_sec":%.0f,"hybrid_wall_vs_macro":%.3f},"macro_empirical":{"scenario":"fat-tree-k6+web-search","flows":%d,"events":%d,"wall_s":%.6f,"empirical_events_per_sec":%.0f},"macro_scale":{"scenario":"fat-tree-k10","flows":%d,"events":%d,"wall_s":%.6f,"scale_events_per_sec":%.0f},"heap_churn":{"events":%d,"wall_s":%.6f,"events_per_sec":%.0f,"minor_words":%.0f},"timer_churn":{"events":%d,"wall_s":%.6f,"events_per_sec":%.0f,"minor_words":%.0f}}|}
    label quick flows macro.events macro.wall_s (per_sec macro)
    macro.gc.minor_words macro.gc.promoted_words macro.gc.major_collections
    attrib_m.events attrib_m.wall_s (per_sec attrib_m)
    (100. *. ((per_sec macro /. per_sec attrib_m) -. 1.))
    hybrid_m.events hybrid_m.wall_s (per_sec hybrid_m)
    (hybrid_m.wall_s /. macro.wall_s)
    flows empirical_m.events empirical_m.wall_s (per_sec empirical_m)
    scale_flows scale.events scale.wall_s (per_sec scale)
    heap.events heap.wall_s (per_sec heap) heap.gc.minor_words timer.events
    timer.wall_s (per_sec timer) timer.gc.minor_words

(* ---- driver ------------------------------------------------------------ *)

let () =
  let quick = ref false in
  let label = ref "post" in
  let out = ref "BENCH_engine.json" in
  let reps = ref 3 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--label" :: v :: rest ->
        label := v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--reps" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> reps := n
        | _ -> failwith ("--reps wants a positive integer, got " ^ v));
        parse rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let flows = if !quick then 120 else 800 in
  let pops = if !quick then 200_000 else 2_000_000 in
  let rounds = if !quick then 100_000 else 500_000 in
  let reps = if !quick then 1 else !reps in
  Printf.eprintf "  [micro] macro: fat-tree pase, %d flows, %d rep(s)\n%!" flows
    reps;
  let attrib_m = macro ~attrib:true ~flows ~reps () in
  Printf.eprintf "  [micro] macro+attrib: %d events in %.3fs = %.0f ev/s\n%!"
    attrib_m.events attrib_m.wall_s (per_sec attrib_m);
  let hybrid_m = macro ~hybrid:hybrid_default ~flows ~reps () in
  Printf.eprintf "  [micro] macro+hybrid: %d events in %.3fs = %.0f ev/s\n%!"
    hybrid_m.events hybrid_m.wall_s (per_sec hybrid_m);
  let macro = macro ~flows ~reps () in
  Printf.eprintf "  [micro] macro: %d events in %.3fs = %.0f ev/s\n%!"
    macro.events macro.wall_s (per_sec macro);
  let empirical_m = macro_empirical ~flows ~reps () in
  Printf.eprintf "  [micro] macro empirical: %d events in %.3fs = %.0f ev/s\n%!"
    empirical_m.events empirical_m.wall_s (per_sec empirical_m);
  let scale_flows = if !quick then 2000 else 20_000 in
  Printf.eprintf "  [micro] macro scale: fat-tree k=10, %d flows, hybrid\n%!"
    scale_flows;
  let scale = macro_scale ~flows:scale_flows () in
  Printf.eprintf "  [micro] macro scale: %d events in %.3fs = %.0f ev/s\n%!"
    scale.events scale.wall_s (per_sec scale);
  let heap = heap_churn ~pops () in
  Printf.eprintf "  [micro] heap churn: %d events in %.3fs = %.0f ev/s\n%!"
    heap.events heap.wall_s (per_sec heap);
  let timer = timer_churn ~rounds () in
  Printf.eprintf "  [micro] timer churn: %d events in %.3fs = %.0f ev/s\n%!"
    timer.events timer.wall_s (per_sec timer);
  let entry =
    entry_json ~label:!label ~quick:!quick ~flows ~scale_flows ~macro ~attrib_m
      ~hybrid_m ~empirical_m ~scale ~heap ~timer
  in
  let entries =
    List.filter (fun (l, _) -> l <> !label) (read_entries !out) @ [ (!label, entry) ]
  in
  write_entries !out entries;
  Printf.printf "%s: %d entr%s\n" !out (List.length entries)
    (if List.length entries = 1 then "y" else "ies");
  List.iter
    (fun (l, line) ->
      match probe_float line "events_per_sec" with
      | Some v -> Printf.printf "  %-8s macro %.0f ev/s\n" l v
      | None -> ())
    entries;
  (* The headline number: macro speedup of this run over the recorded
     baseline, when one exists. *)
  match
    (List.assoc_opt "pre" entries, !label <> "pre")
  with
  | Some pre_line, true -> (
      match
        (probe_float pre_line "events_per_sec", probe_float entry "events_per_sec")
      with
      | Some pre, Some cur when pre > 0. ->
          Printf.printf "macro speedup vs pre: %.2fx\n" (cur /. pre)
      | _ -> ())
  | _ -> ()
