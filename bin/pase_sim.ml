(* pase_sim: command-line front end for single experiments.

   Examples:
     pase_sim run --scenario left-right --protocol pase --load 0.7
     pase_sim run --scenario worker-aggregator --protocol pfabric --load 0.9 --flows 2000
     pase_sim run --scenario testbed --load 0.6 --json
     pase_sim compare --scenario deadline --load 0.8 --jobs 8
     pase_sim list

   `compare` fans the protocols out to a fork-based worker pool (--jobs /
   PASE_JOBS, default: online cores) and both subcommands reuse the on-disk
   result cache (PASE_CACHE_DIR, default .pase-cache; --no-cache skips). *)

let scenarios =
  [
    ( "left-right",
      "160-host three-tier tree; left subtree sends to right subtree",
      fun ~num_flows ~seed ~load -> Scenario.left_right ~num_flows ~seed ~load () );
    ( "deadline",
      "20-host rack, U[100,500] KB flows with U[5,25] ms deadlines",
      fun ~num_flows ~seed ~load ->
        Scenario.deadline_intra_rack ~num_flows ~seed ~load () );
    ( "intra-rack",
      "20-host rack, U[100,500] KB flows, random pairs",
      fun ~num_flows ~seed ~load ->
        Scenario.intra_rack_medium ~num_flows ~seed ~load () );
    ( "worker-aggregator",
      "40-host search rack, query fan-in to round-robin aggregators",
      fun ~num_flows ~seed ~load ->
        Scenario.worker_aggregator ~num_flows ~seed ~load () );
    ( "worker-uniform",
      "40-host search rack, random worker/aggregator pairs",
      fun ~num_flows ~seed ~load ->
        Scenario.worker_uniform ~num_flows ~seed ~load () );
    ( "testbed",
      "10-node 1 Gbps rack (testbed replica), 9 clients -> 1 server",
      fun ~num_flows ~seed ~load -> Scenario.testbed ~num_flows ~seed ~load () );
    ( "web-search",
      "40-host rack, empirical web-search flow sizes (heavy-tailed)",
      fun ~num_flows ~seed ~load -> Scenario.web_search ~num_flows ~seed ~load () );
    ( "data-mining",
      "40-host rack, empirical data-mining flow sizes (heavier tail)",
      fun ~num_flows ~seed ~load -> Scenario.data_mining ~num_flows ~seed ~load () );
    ( "hadoop",
      "40-host rack, empirical hadoop flow sizes (shuffle-heavy tail)",
      fun ~num_flows ~seed ~load ->
        Scenario.empirical ~dist:Dist.hadoop_bytes ~num_flows ~seed ~load () );
    ( "fat-tree",
      "k=6 fat-tree (54 hosts), uniform random pairs over ECMP",
      fun ~num_flows ~seed ~load ->
        Scenario.fat_tree_uniform ~k:6 ~num_flows ~seed ~load () );
    ( "fat-tree-k10",
      "k=10 fat-tree (250 hosts), uniform random pairs over ECMP",
      fun ~num_flows ~seed ~load ->
        Scenario.fat_tree_uniform ~k:10 ~num_flows ~seed ~load () );
    ( "hotspot",
      "k=6 fat-tree with rack-level skew: half the traffic targets one rack",
      fun ~num_flows ~seed ~load ->
        Scenario.hotspot ~k:6 ~num_flows ~seed ~load () );
    ( "traffic-matrix",
      "k=6 fat-tree driven by a seeded random rack-to-rack demand matrix",
      fun ~num_flows ~seed ~load ->
        Scenario.traffic_matrix ~k:6 ~num_flows ~seed ~load () );
  ]

let protocols =
  [
    ("pase", Runner.pase);
    ("pase-edf", Runner.Pase { Config.default with Config.scheduling = Config.Edf });
    ("pase-local", Runner.Pase { Config.default with Config.local_only = true });
    ("pase-dctcp", Runner.Pase { Config.default with Config.use_ref_rate = false });
    ("pase-task", Runner.Pase { Config.default with Config.scheduling = Config.Task_aware });
    ("dctcp", Runner.Dctcp);
    ("d2tcp", Runner.D2tcp);
    ("l2dct", Runner.L2dct);
    ("pfabric", Runner.Pfabric);
    ("pdq", Runner.Pdq);
    ("d3", Runner.D3);
  ]

let find_scenario name =
  match List.find_opt (fun (n, _, _) -> n = name) scenarios with
  | Some (_, _, f) -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (see `pase_sim list`)" name)

let find_protocol name =
  match List.assoc_opt name protocols with
  | Some p -> Ok p
  | None ->
      Error (Printf.sprintf "unknown protocol %S (see `pase_sim list`)" name)

let fault_rows (r : Runner.result) =
  if r.Runner.faults_injected = 0 then []
  else
    let f v = if Float.is_nan v then "n/a" else Printf.sprintf "%.3f" v in
    [
      [ "faults injected"; string_of_int r.Runner.faults_injected ];
      [ "blackholed pkts"; string_of_int r.Runner.blackholed_pkts ];
      [ "ctrl msgs lost"; string_of_int r.Runner.ctrl_lost_msgs ];
      [
        "link downtime (ms)"; Printf.sprintf "%.3f" (r.Runner.link_downtime_s *. 1e3);
      ];
      [
        "recovery (ms)";
        (if Float.is_nan r.Runner.recovery_s then "n/a"
         else Printf.sprintf "%.3f" (r.Runner.recovery_s *. 1e3));
      ];
      [ "AFCT inflation"; f r.Runner.afct_inflation ];
    ]

let hybrid_rows (r : Runner.result) =
  match r.Runner.hybrid with
  | None -> []
  | Some h ->
      [
        [ "hybrid"; (if h.Runner.hybrid_on then "on" else "off (tagging only)") ];
        [ "fluid threshold (B)"; string_of_int h.Runner.threshold_bytes ];
        [ "fluid flows"; string_of_int h.Runner.fluid_flows ];
        [ "fluid demotions"; string_of_int h.Runner.fluid_demotions ];
        [ "fault demotions"; string_of_int h.Runner.fault_demotions ];
        [ "fluid recomputes"; string_of_int h.Runner.fluid_recomputes ];
        [ "fluid bytes"; Printf.sprintf "%.0f" h.Runner.fluid_bytes ];
        [
          "short-flow p99 (ms)";
          (if Float.is_nan h.Runner.short_p99 then "n/a"
           else Printf.sprintf "%.3f" (h.Runner.short_p99 *. 1e3));
        ];
      ]

let coflow_rows (r : Runner.result) =
  match r.Runner.coflow with
  | None -> []
  | Some c ->
      let ms v =
        if Float.is_nan v then "n/a" else Printf.sprintf "%.3f" (v *. 1e3)
      in
      [
        [
          "coflows";
          Printf.sprintf "%d (%d censored)" (Coflow.coflows c)
            (Coflow.censored c);
        ];
        [ "coflow member flows"; string_of_int (Coflow.flows c) ];
        [ "CCT mean (ms)"; ms (Coflow.cct_mean c) ];
        [ "CCT p50 (ms)"; ms (Coflow.cct_quantile c 0.5) ];
        [ "CCT p99 (ms)"; ms (Coflow.cct_quantile c 0.99) ];
        [
          "coflow deadline met";
          (if Coflow.deadline_total c = 0 then "n/a"
           else
             Printf.sprintf "%d/%d (%.3f)" (Coflow.deadline_met c)
               (Coflow.deadline_total c)
               (Coflow.deadline_met_frac c));
        ];
      ]

let print_result (r : Runner.result) =
  Series.print_table
    ~title:
      (Printf.sprintf "%s on %s at %.0f%% load" r.Runner.protocol
         r.Runner.scenario (r.Runner.load *. 100.))
    ~header:[ "metric"; "value" ]
    ([
      [ "AFCT (ms)"; Printf.sprintf "%.3f" (r.Runner.afct *. 1e3) ];
      [ "99th pct FCT (ms)"; Printf.sprintf "%.3f" (r.Runner.p99 *. 1e3) ];
      [ "99.9th pct FCT (ms)"; Printf.sprintf "%.3f" (r.Runner.p999 *. 1e3) ];
      [
        "deadline met";
        (if Float.is_nan r.Runner.app_throughput then "n/a"
         else Printf.sprintf "%.3f" r.Runner.app_throughput);
      ];
      [ "loss rate (%)"; Printf.sprintf "%.2f" (r.Runner.loss_rate *. 100.) ];
      [ "control msgs"; string_of_int r.Runner.ctrl_msgs ];
      [ "control msgs/s"; Printf.sprintf "%.0f" r.Runner.ctrl_msg_rate ];
      [ "flows completed"; string_of_int r.Runner.completed ];
      [ "flows censored"; string_of_int r.Runner.censored ];
      [ "simulated time (s)"; Printf.sprintf "%.4f" r.Runner.duration ];
      [ "events"; string_of_int r.Runner.events ];
    ]
    @ (match Fct.sketch_info r.Runner.fct with
      | None -> []
      | Some sk ->
          [
            [
              "stats mode";
              Printf.sprintf "streaming (t-digest delta=%.0f, %d centroids)"
                sk.Fct.sk_delta sk.Fct.sk_centroids;
            ];
            [
              "p99 rank error";
              Printf.sprintf "%.4f" (Fct.quantile_rank_error r.Runner.fct 99.);
            ];
          ])
    @ coflow_rows r @ hybrid_rows r @ fault_rows r)

open Cmdliner

let load_arg =
  let doc = "Offered load on the scenario's bottleneck, in (0, 1]." in
  Arg.(value & opt float 0.5 & info [ "load"; "l" ] ~docv:"LOAD" ~doc)

let flows_arg =
  let doc = "Number of measured flows." in
  Arg.(value & opt int 800 & info [ "flows"; "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Workload seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let scenario_arg =
  let doc = "Scenario name (see `pase_sim list`)." in
  Arg.(value & opt string "left-right" & info [ "scenario"; "s" ] ~docv:"NAME" ~doc)

let protocol_arg =
  let doc = "Protocol name (see `pase_sim list`)." in
  Arg.(value & opt string "pase" & info [ "protocol"; "p" ] ~docv:"NAME" ~doc)

let jobs_arg =
  let doc =
    "Worker processes for parallel simulation (default: \\$(b,PASE_JOBS) or \
     the number of online cores)."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc = "Do not read or write the on-disk result cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let json_arg =
  let doc = "Print the result as JSON instead of a table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc =
    "Write a packet-level event trace to $(docv). Tracing disables the \
     result cache for this run (a cached result has no trace)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc = "Trace format: $(b,jsonl) (one JSON object per line) or $(b,text) \
             (ns-2-style one-liners)." in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("text", `Text) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT" ~doc)

let trace_limit_arg =
  let doc =
    "With $(b,--trace): keep only the most recent $(docv) events in a \
     bounded in-memory ring and write them out at the end of the run. The \
     summary reports how many earlier events the ring dropped."
  in
  Arg.(value & opt (some int) None & info [ "trace-limit" ] ~docv:"N" ~doc)

let attrib_arg =
  let doc =
    "Enable per-flow delay attribution and spill one JSON object per \
     completed flow to $(docv) (JSONL): FCT decomposed into serialization, \
     propagation, queueing, arbitration wait and RTO stall (the components \
     sum exactly to the FCT). The result also embeds per-band component \
     aggregates. Disables the result cache for this run."
  in
  Arg.(value & opt (some string) None & info [ "attrib" ] ~docv:"FILE" ~doc)

let series_arg =
  let doc =
    "Sample per-link utilization, per-band queue depths/drops and \
     arbitrator state on a fixed sim-time grid and spill one JSON object \
     per sample to $(docv) (JSONL). Disables the result cache for this \
     run."
  in
  Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)

let series_interval_arg =
  let doc = "Sampling period for $(b,--series), in simulated seconds." in
  Arg.(
    value & opt float 1e-3 & info [ "series-interval" ] ~docv:"SECONDS" ~doc)

let trace_filter_arg =
  let doc =
    "Comma-separated trace filters: $(b,flow=N), $(b,kind=NAME) (e.g. drop, \
     enqueue, cwnd, arb-alloc), $(b,link=A-B). Repeating a key widens that \
     filter; distinct keys intersect."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-filter" ] ~docv:"SPEC" ~doc)

let profile_arg =
  let doc =
    "Enable engine profiling: per-schedule-site event counts, reported in \
     the table / JSON output."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let stream_results_arg =
  let doc =
    "Spill one JSON object per flow record to $(docv) (JSONL) as the run \
     executes, and switch to bounded-memory streaming statistics (exact \
     Welford means, t-digest percentiles within a documented rank-error \
     bound). Disables the result cache for this run (a cached result has \
     no spill)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "stream-results" ] ~docv:"FILE" ~doc)

let exact_stats_arg =
  let doc =
    "With $(b,--stream-results): keep the exact in-memory statistics \
     (byte-identical to a plain run) while still spilling records. Without \
     $(b,--stream-results) this is the default and has no effect."
  in
  Arg.(value & flag & info [ "exact-stats" ] ~doc)

let hybrid_arg =
  let doc =
    "Enable the hybrid fluid/packet engine: flows at or above the fluid \
     threshold (and long-lived background flows) advance as max-min fair \
     rate shares and demote to packet level for their final bytes (or when \
     a fault touches their path). Only fluid-capable protocols (DCTCP \
     family, PASE) use the fluid tier; others run packet-level but still \
     tag records with the classifier decision."
  in
  Arg.(value & flag & info [ "hybrid" ] ~doc)

let fluid_threshold_arg =
  let doc =
    "Fluid classifier threshold in bytes (flows of at least $(docv) bytes \
     are fluid-eligible; demotion fires when remaining bytes fall to \
     $(docv)). Implies record tagging even without $(b,--hybrid), so a \
     packet-only run cuts the identical short-flow subset for accuracy \
     comparison."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "fluid-threshold" ] ~docv:"BYTES" ~doc)

let workload_arg =
  let doc =
    "Override the scenario's flow-size distribution with a built-in \
     empirical CDF: $(b,websearch), $(b,datamining) or $(b,hadoop) \
     (case/dash/underscore-insensitive). Mutually exclusive with $(b,--cdf)."
  in
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)

let cdf_arg =
  let doc =
    "Override the scenario's flow-size distribution with a user-supplied \
     empirical CDF table: a whitespace-separated two-column \
     $(b,<bytes> <cum-prob>) file ($(b,#) comments and blank lines \
     ignored), probabilities non-decreasing and ending at 1. Mutually \
     exclusive with $(b,--workload)."
  in
  Arg.(value & opt (some string) None & info [ "cdf" ] ~docv:"FILE" ~doc)

let coflows_arg =
  let doc =
    "Turn arrivals into coflow jobs: $(b,width=N) or $(b,width=LO-HI) \
     member flows per job (uniform over the range), optionally \
     $(b,,deadline=S) or $(b,,deadline=LO-HI) seconds shared by every \
     member. Jobs arrive Poisson at the per-flow rate divided by the mean \
     width; the result carries coflow-completion-time (CCT) and \
     deadline-met aggregates. Not valid on incast scenarios (queries are \
     already task groups)."
  in
  Arg.(value & opt (some string) None & info [ "coflows" ] ~docv:"SPEC" ~doc)

(* "N" or "LO-HI" (plain decimals; scientific notation only for single
   values, since '-' is the range separator). *)
let parse_range ~what s =
  let s = String.trim s in
  match float_of_string_opt s with
  | Some v when v > 0. && Float.is_finite v -> Ok (Dist.constant v)
  | Some _ -> Error (Printf.sprintf "%s must be positive, got %S" what s)
  | None -> (
      match String.split_on_char '-' s with
      | [ a; b ] -> (
          match (float_of_string_opt a, float_of_string_opt b) with
          | Some a, Some b when a > 0. && b >= a && Float.is_finite b ->
              Ok (Dist.uniform a b)
          | Some _, Some _ ->
              Error
                (Printf.sprintf "%s range %S must satisfy 0 < LO <= HI" what s)
          | _ -> Error (Printf.sprintf "bad %s %S (want N or LO-HI)" what s))
      | _ -> Error (Printf.sprintf "bad %s %S (want N or LO-HI)" what s))

let parse_coflows spec =
  let width = ref None and deadline = ref None and err = ref None in
  String.split_on_char ',' spec
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" && !err = None then
           match String.index_opt item '=' with
           | None ->
               err :=
                 Some
                   (Printf.sprintf "bad coflows item %S (want key=value)" item)
           | Some i -> (
               let key = String.sub item 0 i in
               let value =
                 String.sub item (i + 1) (String.length item - i - 1)
               in
               match key with
               | "width" -> (
                   match parse_range ~what:"coflow width" value with
                   | Ok d -> width := Some d
                   | Error e -> err := Some e)
               | "deadline" -> (
                   match parse_range ~what:"coflow deadline" value with
                   | Ok d -> deadline := Some d
                   | Error e -> err := Some e)
               | _ ->
                   err :=
                     Some (Printf.sprintf "unknown coflows key %S" key)));
  match (!err, !width) with
  | Some e, _ -> Error e
  | None, None -> Error "coflows spec needs width=N or width=LO-HI"
  | None, Some w -> Ok (w, !deadline)

(* Resolve --workload / --cdf into a size-distribution override. *)
let resolve_sizes ~workload ~cdf =
  match (workload, cdf) with
  | Some _, Some _ -> Error "--workload and --cdf are mutually exclusive"
  | Some name, None -> (
      match Dist.builtin name with
      | Some d -> Ok (Some d)
      | None ->
          Error
            (Printf.sprintf
               "unknown workload %S (want websearch, datamining or hadoop)"
               name))
  | None, Some file -> (
      match Dist.of_cdf_file file with
      | Ok d -> Ok (Some d)
      | Error e -> Error ("--cdf: " ^ e))
  | None, None -> Ok None

(* Apply --workload/--cdf and --coflows to a built scenario. *)
let customize scn ~sizes ~coflows =
  let scn =
    match sizes with None -> scn | Some d -> Scenario.with_sizes scn d
  in
  match coflows with
  | None -> Ok scn
  | Some (width, deadline_s) -> (
      try Ok (Scenario.with_coflows scn ?deadline_s ~width ())
      with Invalid_argument e -> Error e)

let faults_arg =
  let doc =
    "Semicolon-separated fault schedule: \
     $(b,down:a=NODE,b=NODE,at=S[,up=S]), \
     $(b,flap:a=NODE,b=NODE,at=S,down=S,up=S,count=N), \
     $(b,crash:node=NODE,at=S[,restart=S]), \
     $(b,ctrl:at=S,until=S,p=PROB); NODE is host<i>, tor<i>, agg<i>, \
     core<i> or node<i>. A faulted run also executes the fault-free \
     baseline to report AFCT inflation."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

(* Parse "flow=42,kind=drop,link=0-3" into per-dimension filter lists.
   An empty list for a dimension means "no filter on it". *)
let parse_trace_filter spec =
  let kinds = ref [] and flows = ref [] and links = ref [] in
  let err = ref None in
  String.split_on_char ',' spec
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" && !err = None then
           match String.index_opt item '=' with
           | None ->
               err :=
                 Some
                   (Printf.sprintf "bad trace filter %S (want key=value)" item)
           | Some i -> (
               let key = String.sub item 0 i in
               let value =
                 String.sub item (i + 1) (String.length item - i - 1)
               in
               match key with
               | "flow" -> (
                   match int_of_string_opt value with
                   | Some f -> flows := f :: !flows
                   | None ->
                       err := Some (Printf.sprintf "bad flow id %S" value))
               | "kind" -> (
                   match Trace.Kind.of_name value with
                   | Some k -> kinds := k :: !kinds
                   | None ->
                       err :=
                         Some
                           (Printf.sprintf "unknown event kind %S (known: %s)"
                              value
                              (String.concat ", "
                                 (List.map Trace.Kind.name Trace.Kind.all))))
               | "link" -> (
                   match String.split_on_char '-' value with
                   | [ a; b ] -> (
                       match (int_of_string_opt a, int_of_string_opt b) with
                       | Some a, Some b -> links := (a, b) :: !links
                       | _ ->
                           err :=
                             Some
                               (Printf.sprintf "bad link %S (want A-B)" value))
                   | _ ->
                       err :=
                         Some (Printf.sprintf "bad link %S (want A-B)" value))
               | _ ->
                   err :=
                     Some
                       (Printf.sprintf "unknown trace filter key %S" key)))
  |> ignore;
  match !err with
  | Some e -> Error e
  | None ->
      let opt = function [] -> None | l -> Some (List.rev l) in
      Ok (opt !kinds, opt !flows, opt !links)

let cache_dir ~no_cache =
  if no_cache then None else Parallel.default_cache_dir ()

let profile_rows (r : Runner.result) =
  let sites =
    List.map
      (fun (label, n) -> [ Printf.sprintf "events[%s]" label; string_of_int n ])
      r.Runner.sched_profile
  in
  (* GC deltas ride along on profiled runs (see Engine.profile). *)
  if r.Runner.sched_profile = [] then sites
  else
    sites
    @ [
        [ "gc.minor_words"; Printf.sprintf "%.0f" r.Runner.gc_minor_words ];
        [ "gc.promoted_words"; Printf.sprintf "%.0f" r.Runner.gc_promoted_words ];
        [
          "gc.major_collections"; string_of_int r.Runner.gc_major_collections;
        ];
      ]

let run_cmd =
  let action scenario protocol load flows seed no_cache json trace trace_format
      trace_filter trace_limit profile faults stream_results exact_stats attrib
      series series_interval hybrid_on fluid_threshold workload cdf coflows =
    match (find_scenario scenario, find_protocol protocol) with
    | Ok sc, Ok proto ->
        if load <= 0. || load > 1. then `Error (false, "load must be in (0,1]")
        else if series_interval <= 0. then
          `Error (false, "series-interval must be positive")
        else if
          match fluid_threshold with Some t -> t <= 0 | None -> false
        then `Error (false, "fluid-threshold must be positive")
        else begin
          (* --hybrid alone uses the default threshold; --fluid-threshold
             alone configures tagging-only (enabled = false) so a packet run
             carries the classifier tags for accuracy comparison. *)
          let hybrid =
            match (hybrid_on, fluid_threshold) with
            | false, None -> None
            | enabled, thr ->
                Some
                  {
                    Runner.enabled;
                    fluid_threshold =
                      Option.value thr ~default:Runner.default_fluid_threshold;
                  }
          in
          let filter =
            match trace_filter with
            | None -> Ok (None, None, None)
            | Some spec -> parse_trace_filter spec
          in
          let faults =
            match faults with None -> Ok [] | Some spec -> Fault.parse spec
          in
          let sizes = resolve_sizes ~workload ~cdf in
          let coflows =
            match coflows with
            | None -> Ok None
            | Some spec -> Result.map Option.some (parse_coflows spec)
          in
          match (filter, faults, sizes, coflows) with
          | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _
          | _, _, _, Error e ->
              `Error (false, e)
          | Ok (kinds, flows_f, links), Ok fault_events, Ok sizes, Ok coflows
            ->
              let trace_oc =
                match trace with
                | None -> None
                | Some file ->
                    let oc = open_out file in
                    let ring =
                      match trace_limit with
                      | None ->
                          let sink =
                            match trace_format with
                            | `Jsonl -> Trace.jsonl_sink oc
                            | `Text -> Trace.text_sink oc
                          in
                          Trace.attach sink;
                          None
                      | Some cap ->
                          (* Bounded ring: retain the tail in memory, write
                             it out once the run is over. *)
                          let ring, sink = Trace.ring_sink ~capacity:cap in
                          Trace.attach sink;
                          Some ring
                    in
                    Trace.set_kind_filter kinds;
                    Trace.set_flow_filter flows_f;
                    Trace.set_link_filter links;
                    Some (file, oc, ring)
              in
              (* Tracing, attribution and fabric sampling all need the
                 simulation to actually execute, in this process: skip the
                 cache entirely. *)
              let no_cache =
                no_cache || trace_oc <> None || attrib <> None
                || series <> None
              in
              match
                customize
                  (Scenario.with_faults (sc ~num_flows:flows ~seed ~load)
                     fault_events)
                  ~sizes ~coflows
              with
              | Error e -> `Error (false, e)
              | Ok scn ->
              let attrib_flows = ref 0 in
              let series_seen = ref 0 in
              let series_dropped = ref 0 in
              let in_process =
                stream_results <> None || attrib <> None || series <> None
              in
              let r =
                (* Fault.parse checks syntax; node refs only resolve against
                   the topology once the run builds it, so schedule/topology
                   mismatches surface here as Invalid_argument. *)
                if not in_process then (
                  match
                    Parallel.run_jobs ~jobs:1 ~cache_dir:(cache_dir ~no_cache)
                      ~profile ?hybrid
                      [ (proto, scn) ]
                  with
                  | [ r ] -> Ok r
                  | _ -> assert false
                  | exception Invalid_argument e -> Error e)
                else begin
                  (* Spill sinks need the simulation to execute here, record
                     by record: bypass the pool and the cache. *)
                  let opened = ref [] in
                  let open_spill file =
                    let oc = open_out file in
                    opened := oc :: !opened;
                    oc
                  in
                  let on_record =
                    Option.map
                      (fun file ->
                        let oc = open_spill file in
                        fun rec_ ->
                          output_string oc (Result_codec.record_to_json rec_);
                          output_char oc '\n')
                      stream_results
                  in
                  let on_attrib =
                    Option.map
                      (fun file ->
                        let oc = open_spill file in
                        fun ~size_pkts rec_ ->
                          incr attrib_flows;
                          output_string oc
                            (Result_codec.attrib_record_to_json ~size_pkts
                               rec_);
                          output_char oc '\n')
                      attrib
                  in
                  let series_store =
                    Option.map
                      (fun file ->
                        let oc = open_spill file in
                        Series.store
                          ~spill:(fun s ->
                            output_string oc (Series.sample_json s);
                            output_char oc '\n')
                          ())
                      series
                  in
                  let stats =
                    if stream_results <> None && not exact_stats then
                      `Streaming
                    else `Exact
                  in
                  match
                    Fun.protect
                      ~finally:(fun () -> List.iter close_out_noerr !opened)
                      (fun () ->
                        Runner.run ~profile ~stats ?on_record
                          ~attrib:(attrib <> None) ?on_attrib
                          ?series:
                            (Option.map
                               (fun st -> (st, series_interval))
                               series_store)
                          ?hybrid proto scn)
                  with
                  | r ->
                      (match series_store with
                      | Some st ->
                          series_seen := Series.seen st;
                          series_dropped := Series.dropped st
                      | None -> ());
                      Ok r
                  | exception Invalid_argument e -> Error e
                end
              in
              match r with
              | Error e -> `Error (false, e)
              | Ok r ->
              let trace_summary =
                match trace_oc with
                | None -> []
                | Some (file, oc, ring) ->
                    let emitted = Trace.emitted () in
                    let dropped =
                      match ring with
                      | None -> 0
                      | Some ring ->
                          let fmt =
                            match trace_format with
                            | `Jsonl -> Trace.to_json
                            | `Text -> Trace.to_text
                          in
                          List.iter
                            (fun (time, ev) ->
                              output_string oc (fmt ~time ev);
                              output_char oc '\n')
                            (Trace.ring_contents ring);
                          Trace.ring_dropped ring
                    in
                    Trace.reset ();
                    close_out oc;
                    [
                      ("trace_file", Printf.sprintf "%S" file);
                      ("trace_events", string_of_int emitted);
                      ("trace_dropped_events", string_of_int dropped);
                    ]
              in
              let extra =
                trace_summary
                @ (match stream_results with
                  | None -> []
                  | Some file ->
                      [
                        ("stream_results_file", Printf.sprintf "%S" file);
                        ( "stream_results_records",
                          string_of_int (Fct.count r.Runner.fct) );
                      ])
                @ (match attrib with
                  | None -> []
                  | Some file ->
                      [
                        ("attrib_file", Printf.sprintf "%S" file);
                        ("attrib_flows", string_of_int !attrib_flows);
                      ])
                @
                match series with
                | None -> []
                | Some file ->
                    [
                      ("series_file", Printf.sprintf "%S" file);
                      ("series_samples", string_of_int !series_seen);
                      ("series_dropped", string_of_int !series_dropped);
                    ]
              in
              if json then
                print_endline (Result_codec.to_json ~extra r)
              else begin
                print_result r;
                List.iter
                  (fun row -> print_endline (String.concat "  " row))
                  (profile_rows r);
                List.iter (fun (k, v) -> Printf.printf "%s  %s\n" k v) extra
              end;
              `Ok ()
        end
    | Error e, _ | _, Error e -> `Error (false, e)
  in
  let term =
    Term.(
      ret (const action $ scenario_arg $ protocol_arg $ load_arg $ flows_arg
          $ seed_arg $ no_cache_arg $ json_arg $ trace_arg $ trace_format_arg
          $ trace_filter_arg $ trace_limit_arg $ profile_arg $ faults_arg
          $ stream_results_arg $ exact_stats_arg $ attrib_arg $ series_arg
          $ series_interval_arg $ hybrid_arg $ fluid_threshold_arg
          $ workload_arg $ cdf_arg $ coflows_arg))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one protocol on one scenario") term

let compare_cmd =
  let action scenario load flows seed jobs no_cache hybrid_on fluid_threshold
      workload cdf coflows =
    match find_scenario scenario with
    | Error e -> `Error (false, e)
    | Ok sc -> (
        if match fluid_threshold with Some t -> t <= 0 | None -> false then
          `Error (false, "fluid-threshold must be positive")
        else
        let hybrid =
          match (hybrid_on, fluid_threshold) with
          | false, None -> None
          | enabled, thr ->
              Some
                {
                  Runner.enabled;
                  fluid_threshold =
                    Option.value thr ~default:Runner.default_fluid_threshold;
                }
        in
        let sizes = resolve_sizes ~workload ~cdf in
        let coflows =
          match coflows with
          | None -> Ok None
          | Some spec -> Result.map Option.some (parse_coflows spec)
        in
        match (sizes, coflows) with
        | Error e, _ | _, Error e -> `Error (false, e)
        | Ok sizes, Ok coflows -> (
            match customize (sc ~num_flows:flows ~seed ~load) ~sizes ~coflows with
            | Error e -> `Error (false, e)
            | Ok scn ->
                (* Fan every protocol out to the worker pool; results come
                   back in input order, so the table is identical to a
                   serial run. *)
                let pairs =
                  List.map (fun (_, proto) -> (proto, scn)) protocols
                in
                let results =
                  Parallel.run_jobs ?jobs ~cache_dir:(cache_dir ~no_cache)
                    ?hybrid pairs
                in
                (* Same scenario everywhere: either every result carries a
                   coflow aggregate or none does. *)
                let with_cct =
                  List.exists (fun r -> r.Runner.coflow <> None) results
                in
                let rows =
                  List.map2
                    (fun (name, _) r ->
                      [
                        name;
                        Printf.sprintf "%.3f" (r.Runner.afct *. 1e3);
                        Printf.sprintf "%.3f" (r.Runner.p99 *. 1e3);
                        (if Float.is_nan r.Runner.app_throughput then "n/a"
                         else Printf.sprintf "%.3f" r.Runner.app_throughput);
                        Printf.sprintf "%.2f" (r.Runner.loss_rate *. 100.);
                      ]
                      @
                      if not with_cct then []
                      else
                        match r.Runner.coflow with
                        | None -> [ "n/a"; "n/a" ]
                        | Some c ->
                            let ms v =
                              if Float.is_nan v then "n/a"
                              else Printf.sprintf "%.3f" (v *. 1e3)
                            in
                            [
                              ms (Coflow.cct_mean c);
                              ms (Coflow.cct_quantile c 0.99);
                            ])
                    protocols results
                in
                Series.print_table
                  ~title:
                    (Printf.sprintf "all protocols on %s at %.0f%% load"
                       scenario (load *. 100.))
                  ~header:
                    ([
                       "protocol"; "AFCT(ms)"; "p99(ms)"; "deadline-met";
                       "loss(%)";
                     ]
                    @ if with_cct then [ "CCT(ms)"; "CCT p99(ms)" ] else [])
                  rows;
                `Ok ()))
  in
  let term =
    Term.(
      ret (const action $ scenario_arg $ load_arg $ flows_arg $ seed_arg
          $ jobs_arg $ no_cache_arg $ hybrid_arg $ fluid_threshold_arg
          $ workload_arg $ cdf_arg $ coflows_arg))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every protocol on one scenario (in parallel) and compare")
    term

let report_cmd =
  let result_arg =
    let doc = "Result JSON file, as written by $(b,pase_sim run --json)." in
    Arg.(
      required & opt (some string) None & info [ "result" ] ~docv:"FILE" ~doc)
  in
  let report_attrib_arg =
    let doc =
      "Per-flow attribution JSONL spill from $(b,pase_sim run --attrib)."
    in
    Arg.(value & opt (some string) None & info [ "attrib" ] ~docv:"FILE" ~doc)
  in
  let report_series_arg =
    let doc = "Fabric series JSONL spill from $(b,pase_sim run --series)." in
    Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)
  in
  let vs_arg =
    let doc =
      "Second result JSON file to diff against: compares mean per-component \
       delay attribution protocol-vs-protocol (both results must embed \
       attribution aggregates, i.e. come from $(b,--attrib) runs)."
    in
    Arg.(value & opt (some string) None & info [ "vs" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Number of hot links / hot queues to show." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)
  in
  let action result attrib series vs top json =
    match Report.of_files ~result ?attrib ?series ?vs ~top () with
    | report ->
        if json then print_endline (Report.to_json report)
        else Report.print report;
        `Ok ()
    | exception Failure e -> `Error (false, e)
  in
  let term =
    Term.(
      ret
        (const action $ result_arg $ report_attrib_arg $ report_series_arg
       $ vs_arg $ top_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Explain a run from its result/attrib/series files: p99 flow delay \
          breakdown, component totals checked against the AFCT, top-k hot \
          links and queues, protocol-vs-protocol attribution diff")
    term

let list_cmd =
  let action () =
    print_endline "scenarios:";
    List.iter
      (fun (n, d, _) -> Printf.printf "  %-18s %s\n" n d)
      scenarios;
    print_endline "\nprotocols:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) protocols;
    print_endline "\nworkloads (for --workload; --cdf FILE takes a table):";
    List.iter
      (fun (n, d) ->
        Printf.printf "  %-12s mean %.0f bytes\n" n d.Dist.mean)
      Dist.builtins;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List scenarios and protocols")
    Term.(ret (const action $ const ()))

let () =
  let doc = "PASE data-center transport simulator (SIGCOMM'14 reproduction)" in
  let info = Cmd.info "pase_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; compare_cmd; report_cmd; list_cmd ]))
